//! Churn substrate benchmarks: synthetic smartphone trace generation and
//! the Figure-1 statistics pass.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ta_churn::stats::figure1_series;
use ta_churn::synthetic::SmartphoneTraceModel;
use ta_sim::paper;
use ta_sim::time::SimDuration;

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn");
    group.sample_size(20);
    group.bench_function("generate_trace_5000x2days", |b| {
        let model = SmartphoneTraceModel::default();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(model.generate(5_000, paper::TWO_DAYS, seed))
        });
    });
    let schedule = SmartphoneTraceModel::default().generate(5_000, paper::TWO_DAYS, 9);
    group.bench_function("figure1_series_hourly", |b| {
        b.iter(|| {
            black_box(figure1_series(
                &schedule,
                paper::TWO_DAYS,
                SimDuration::from_hours(1),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
