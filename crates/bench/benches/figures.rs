//! Per-figure wall-time benchmarks: scaled-down regenerations of the
//! paper's artifacts, so regressions in the experiment pipeline (not just
//! the engine) are caught. One iteration = one full figure at micro scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ta_experiments::cli::FigureOpts;
use ta_experiments::figures::{fig1, fig2, fig5, Family};
use ta_experiments::runner::run_experiment;
use ta_experiments::spec::{AppKind, ExperimentSpec, TopologyKind};
use token_account::StrategySpec;

fn micro_opts(tag: &str) -> FigureOpts {
    FigureOpts {
        n: Some(120),
        runs: Some(1),
        rounds: Some(40),
        seed: 42,
        out_dir: std::env::temp_dir().join(format!("ta-bench-figures-{tag}")),
        full: false,
        shards: None,
        pin: false,
    }
}

fn bench_fig1(c: &mut Criterion) {
    let opts = micro_opts("fig1");
    c.bench_function("fig1_micro", |b| {
        b.iter(|| black_box(fig1::run(&opts).unwrap()))
    });
}

fn bench_fig2_panel(c: &mut Criterion) {
    let mut base =
        ExperimentSpec::paper_defaults(AppKind::PushGossip, StrategySpec::Proactive, 120)
            .with_rounds(40)
            .with_runs(1)
            .with_seed(42);
    base.topology = TopologyKind::KOut { k: 10 };
    let mut group = c.benchmark_group("fig2_micro");
    group.sample_size(10);
    group.bench_function("push_gossip_randomized_panel", |b| {
        b.iter(|| {
            black_box(fig2::run_panel(AppKind::PushGossip, Family::Randomized, &base).unwrap())
        })
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let opts = micro_opts("fig5");
    let mut group = c.benchmark_group("fig5_micro");
    group.sample_size(10);
    group.bench_function("tokens_vs_meanfield", |b| {
        b.iter(|| black_box(fig5::run(&opts).unwrap()))
    });
    group.finish();
}

fn bench_single_experiment(c: &mut Criterion) {
    let mut spec = ExperimentSpec::paper_defaults(
        AppKind::GossipLearning,
        StrategySpec::Randomized { a: 5, c: 10 },
        120,
    )
    .with_rounds(40)
    .with_runs(1)
    .with_seed(42);
    spec.topology = TopologyKind::KOut { k: 10 };
    let mut group = c.benchmark_group("experiment");
    group.sample_size(20);
    group.bench_function("gossip_learning_single_run", |b| {
        b.iter(|| black_box(run_experiment(&spec).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig2_panel,
    bench_fig5,
    bench_single_experiment
);
criterion_main!(benches);
