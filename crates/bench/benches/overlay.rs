//! Overlay substrate benchmarks: graph generation and the centralized
//! reference eigenvector (the per-experiment setup cost of chaotic
//! iteration).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ta_overlay::analysis::is_strongly_connected;
use ta_overlay::generators::{k_out_random, watts_strogatz};
use ta_overlay::spectral::dominant_eigenvector;
use ta_sim::rng::Xoshiro256pp;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_generation");
    group.bench_function("k_out_random_5000_20", |b| {
        let mut rng = Xoshiro256pp::stream(1, 0);
        b.iter(|| black_box(k_out_random(5_000, 20, &mut rng).unwrap()));
    });
    group.bench_function("watts_strogatz_5000_4", |b| {
        let mut rng = Xoshiro256pp::stream(2, 0);
        b.iter(|| black_box(watts_strogatz(5_000, 4, 0.01, &mut rng).unwrap()));
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::stream(3, 0);
    let kout = k_out_random(5_000, 20, &mut rng).unwrap();
    let ws = watts_strogatz(1_000, 4, 0.01, &mut rng).unwrap();
    let mut group = c.benchmark_group("overlay_analysis");
    group.bench_function("strong_connectivity_5000_20", |b| {
        b.iter(|| black_box(is_strongly_connected(&kout)));
    });
    group.sample_size(10);
    group.bench_function("dominant_eigenvector_ws1000", |b| {
        b.iter(|| black_box(dominant_eigenvector(&ws, 5_000, 1e-10).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_analysis);
criterion_main!(benches);
