//! Scheduler ablation: binary heap vs. hierarchical timing wheel.
//!
//! Two workloads: a uniformly random offset mix, and the round-based
//! pattern that dominates the token account protocols (every pending event
//! is either a Δ round tick or a transfer-delay delivery). The wheel's
//! `O(1)` insertion is expected to win on the periodic workload.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ta_bench::legacy_wheel::LegacyVecWheel;
use ta_sim::queue::{BinaryHeapQueue, EventQueue};
use ta_sim::rng::Xoshiro256pp;
use ta_sim::time::SimTime;
use ta_sim::wheel::TimingWheel;

const PENDING: usize = 10_000;
const OPS: usize = 20_000;

/// Drives `queue` through a steady-state churn of push/pop pairs.
fn churn<Q: EventQueue<u64>>(mut queue: Q, offsets: &[u64]) -> u64 {
    let mut now = 0u64;
    let mut acc = 0u64;
    // Pre-fill.
    for (i, &off) in offsets.iter().take(PENDING).enumerate() {
        queue.push(SimTime::from_micros(now + off), i as u64);
    }
    for (i, &off) in offsets.iter().cycle().skip(PENDING).take(OPS).enumerate() {
        let popped = queue.pop().expect("queue stays non-empty");
        now = popped.time.as_micros();
        acc ^= popped.event;
        queue.push(SimTime::from_micros(now + off), i as u64);
    }
    acc
}

fn uniform_offsets(n: usize) -> Vec<u64> {
    let mut rng = Xoshiro256pp::stream(11, 0);
    (0..n).map(|_| rng.below(400_000_000)).collect()
}

/// The protocol pattern: mostly 1.728 s transfers plus Δ = 172.8 s ticks.
fn periodic_offsets(n: usize) -> Vec<u64> {
    let mut rng = Xoshiro256pp::stream(13, 0);
    (0..n)
        .map(|_| {
            if rng.chance(0.5) {
                172_800_000
            } else {
                1_728_000
            }
        })
        .collect()
}

fn bench_queues(c: &mut Criterion) {
    let workloads: [(&str, Vec<u64>); 2] = [
        ("uniform", uniform_offsets(PENDING + OPS)),
        ("periodic", periodic_offsets(PENDING + OPS)),
    ];
    let mut group = c.benchmark_group("event_queue");
    for (workload, offsets) in &workloads {
        group.bench_with_input(
            BenchmarkId::new("binary_heap", workload),
            offsets,
            |b, offsets| {
                b.iter(|| black_box(churn(BinaryHeapQueue::new(), offsets)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("legacy_vec_wheel", workload),
            offsets,
            |b, offsets| {
                b.iter(|| black_box(churn(LegacyVecWheel::new(), offsets)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("slab_wheel", workload),
            offsets,
            |b, offsets| {
                b.iter(|| black_box(churn(TimingWheel::new(), offsets)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
