//! End-to-end simulator throughput: a full token-account push gossip run
//! at micro scale, under both scheduler implementations.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ta_apps::protocol::TokenProtocol;
use ta_apps::push_gossip::PushGossip;
use ta_bench::scales::{BENCH_N, BENCH_ROUNDS};
use ta_overlay::generators::k_out_random;
use ta_overlay::Topology;
use ta_sim::config::{QueueKind, SimConfig};
use ta_sim::engine::{AlwaysOn, Simulation};
use ta_sim::paper;
use ta_sim::rng::Xoshiro256pp;
use token_account::prelude::*;

fn run_once(topo: &Arc<Topology>, queue: QueueKind) -> u64 {
    let n = topo.n();
    let cfg = SimConfig::builder(n)
        .duration(paper::DELTA * BENCH_ROUNDS)
        .sample_period(paper::DELTA)
        .injection_period(paper::UPDATE_INJECTION_PERIOD)
        .queue(queue)
        .seed(3)
        .build()
        .expect("valid bench config");
    let app = PushGossip::new(n, &vec![true; n]);
    let strategy: Box<dyn Strategy> =
        Box::new(RandomizedTokenAccount::new(10, 20).expect("valid strategy"));
    let proto = TokenProtocol::new(Arc::clone(topo), strategy, app, vec![true; n]);
    let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
    sim.run_to_end();
    sim.stats().events_processed
}

fn bench_engine(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::stream(5, 0);
    let topo = Arc::new(k_out_random(BENCH_N, 20, &mut rng).expect("valid topology"));
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(20);
    for queue in [QueueKind::Heap, QueueKind::Wheel] {
        group.bench_with_input(
            BenchmarkId::new("push_gossip_run", format!("{queue:?}")),
            &queue,
            |b, &queue| b.iter(|| black_box(run_once(&topo, queue))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
