//! Micro-benchmarks of the strategy kernels: the `PROACTIVE`/`REACTIVE`
//! evaluations, probabilistic rounding, and the Algorithm-4 node steps.
//! These are the per-event costs every simulated message pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use ta_sim::rng::Xoshiro256pp;
use token_account::prelude::*;

fn strategies() -> Vec<(&'static str, Box<dyn Strategy>)> {
    vec![
        ("proactive", Box::new(PurelyProactive)),
        (
            "reactive_k1",
            Box::new(PurelyReactive::if_useful(1).unwrap()),
        ),
        ("simple_c20", Box::new(SimpleTokenAccount::new(20))),
        (
            "generalized_a10_c20",
            Box::new(GeneralizedTokenAccount::new(10, 20).unwrap()),
        ),
        (
            "randomized_a10_c20",
            Box::new(RandomizedTokenAccount::new(10, 20).unwrap()),
        ),
    ]
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_kernels");
    for (name, strategy) in strategies() {
        group.bench_function(format!("proactive/{name}"), |b| {
            let mut balance = 0i64;
            b.iter(|| {
                balance = (balance + 1) % 21;
                black_box(strategy.proactive(black_box(balance)))
            });
        });
        group.bench_function(format!("reactive/{name}"), |b| {
            let mut balance = 0i64;
            b.iter(|| {
                balance = (balance + 1) % 21;
                black_box(strategy.reactive(black_box(balance), Usefulness::Useful))
            });
        });
    }
    group.finish();
}

fn bench_rand_round(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    c.bench_function("rand_round", |b| {
        b.iter(|| black_box(rand_round(black_box(2.37), &mut rng)))
    });
}

fn bench_node_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_node");
    for (name, strategy) in strategies() {
        if strategy.allows_debt() {
            continue; // the debt path is not the hot loop
        }
        group.bench_function(format!("round_and_message/{name}"), |b| {
            let mut node = TokenNode::new(0);
            let mut rng = Xoshiro256pp::seed_from_u64(7);
            b.iter(|| {
                node.on_round(&strategy, &mut rng);
                black_box(node.on_message(&strategy, Usefulness::Useful, &mut rng))
            });
        });
    }
    group.finish();
}

/// Boxed vs. monomorphized strategy dispatch on the Algorithm-4 node
/// steps — the virtual-call tax the protocol hot path no longer pays.
fn bench_dispatch_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_dispatch");
    let concrete = RandomizedTokenAccount::new(10, 20).unwrap();
    let boxed: Box<dyn Strategy> = Box::new(concrete);
    group.bench_function("round_and_message/monomorphized", |b| {
        let mut node = TokenNode::new(0);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        b.iter(|| {
            node.on_round(&concrete, &mut rng);
            black_box(node.on_message(&concrete, Usefulness::Useful, &mut rng))
        });
    });
    group.bench_function("round_and_message/boxed", |b| {
        let mut node = TokenNode::new(0);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        b.iter(|| {
            node.on_round(&boxed, &mut rng);
            black_box(node.on_message(&boxed, Usefulness::Useful, &mut rng))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_rand_round,
    bench_node_steps,
    bench_dispatch_modes
);
criterion_main!(benches);
