//! The pre-slab timing wheel, kept as a benchmark baseline.
//!
//! This is the previous `ta_sim::wheel::TimingWheel` storage scheme: 64
//! `Vec`s per level (drained with `std::mem::take`), a `VecDeque` ready
//! batch with `O(k)` sorted insertion for same-tick merges, and a fresh
//! `Vec` allocation per cascade. It produces exactly the same `(time, seq)`
//! pop order as the current slab wheel and the binary heap; it exists so
//! `bench_sim` and the `event_queue` bench can quantify what the slab +
//! intrusive-free-list rewrite bought. Not used by the engine.

use std::collections::{BTreeMap, VecDeque};

use ta_sim::queue::{EventQueue, Scheduled};
use ta_sim::time::SimTime;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
const LEVELS: usize = 4;

/// Default tick resolution: 2^10 µs ≈ 1.024 ms (matches the slab wheel).
pub const DEFAULT_TICK_SHIFT: u32 = 10;

#[derive(Debug)]
struct Level<E> {
    slots: Vec<Vec<(SimTime, u64, E)>>,
    occupied: u64,
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: 0,
        }
    }

    #[inline]
    fn insert(&mut self, slot: usize, entry: (SimTime, u64, E)) {
        self.slots[slot].push(entry);
        self.occupied |= 1 << slot;
    }

    #[inline]
    fn drain_slot(&mut self, slot: usize) -> Vec<(SimTime, u64, E)> {
        self.occupied &= !(1 << slot);
        std::mem::take(&mut self.slots[slot])
    }

    #[inline]
    fn next_occupied(&self, from: u64) -> Option<u64> {
        if from >= 64 {
            return None;
        }
        let masked = self.occupied & ((!0u64) << from);
        if masked == 0 {
            None
        } else {
            Some(masked.trailing_zeros() as u64)
        }
    }
}

/// Vec-of-Vecs hierarchical timing wheel (the pre-slab implementation).
#[derive(Debug)]
pub struct LegacyVecWheel<E> {
    levels: Vec<Level<E>>,
    overflow: BTreeMap<(u64, SimTime, u64), E>,
    ready: VecDeque<(SimTime, u64, E)>,
    ready_tick: u64,
    current_tick: u64,
    wheel_len: usize,
    len: usize,
    next_seq: u64,
    shift: u32,
}

impl<E> LegacyVecWheel<E> {
    /// Creates a wheel with the default ~1 ms tick resolution.
    pub fn new() -> Self {
        Self::with_tick_shift(DEFAULT_TICK_SHIFT)
    }

    /// Creates a wheel whose tick lasts `2^shift` microseconds.
    pub fn with_tick_shift(shift: u32) -> Self {
        assert!(shift <= 32, "tick shift too large: {shift}");
        LegacyVecWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BTreeMap::new(),
            ready: VecDeque::new(),
            ready_tick: 0,
            current_tick: 0,
            wheel_len: 0,
            len: 0,
            next_seq: 0,
            shift,
        }
    }

    #[inline]
    fn tick_of(&self, time: SimTime) -> u64 {
        time.as_micros() >> self.shift
    }

    fn insert_raw(&mut self, time: SimTime, seq: u64, event: E) {
        let mut tick = self.tick_of(time);
        if tick < self.current_tick {
            tick = self.current_tick;
        }
        if tick == self.ready_tick && (tick == self.current_tick) {
            // The O(k) sorted insert the slab wheel's ready heap replaced.
            let key = (time, seq);
            let pos = self
                .ready
                .iter()
                .position(|&(t, s, _)| (t, s) > key)
                .unwrap_or(self.ready.len());
            self.ready.insert(pos, (time, seq, event));
            return;
        }
        let diff = tick ^ self.current_tick;
        let level = if diff >> SLOT_BITS == 0 {
            0
        } else if diff >> (2 * SLOT_BITS) == 0 {
            1
        } else if diff >> (3 * SLOT_BITS) == 0 {
            2
        } else if diff >> (4 * SLOT_BITS) == 0 {
            3
        } else {
            self.overflow.insert((tick, time, seq), event);
            return;
        };
        let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        self.levels[level].insert(slot, (time, seq, event));
        self.wheel_len += 1;
    }

    fn cascade(&mut self, level: usize) {
        let slot = ((self.current_tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        let entries = self.levels[level].drain_slot(slot);
        self.wheel_len -= entries.len();
        for (time, seq, event) in entries {
            self.insert_raw(time, seq, event);
        }
    }

    fn refill_overflow(&mut self) {
        let window_bits = SLOT_BITS * LEVELS as u32;
        let window_end = ((self.current_tick >> window_bits) + 1).saturating_mul(1 << window_bits);
        let keep = self.overflow.split_off(&(window_end, SimTime::ZERO, 0));
        let pulled = std::mem::replace(&mut self.overflow, keep);
        for ((_, time, seq), event) in pulled {
            self.insert_raw(time, seq, event);
        }
    }

    fn advance_to(&mut self, target_tick: u64) {
        let old = self.current_tick;
        self.current_tick = target_tick;
        let crossed = |bits: u32| (old >> bits) != (target_tick >> bits);
        if crossed(SLOT_BITS * 4) {
            self.refill_overflow();
        }
        if crossed(SLOT_BITS * 3) {
            self.cascade(3);
        }
        if crossed(SLOT_BITS * 2) {
            self.cascade(2);
        }
        if crossed(SLOT_BITS) {
            self.cascade(1);
        }
    }

    fn next_target(&self) -> Option<u64> {
        for level in 1..LEVELS {
            let bits = SLOT_BITS * level as u32;
            let pos = (self.current_tick >> bits) & SLOT_MASK;
            if let Some(slot) = self.levels[level].next_occupied(pos + 1) {
                let base = (self.current_tick >> (bits + SLOT_BITS)) << (bits + SLOT_BITS);
                return Some(base + (slot << bits));
            }
        }
        self.overflow.keys().next().map(|&(tick, _, _)| tick)
    }

    fn ensure_ready(&mut self) -> bool {
        if !self.ready.is_empty() {
            return true;
        }
        if self.len == 0 {
            return false;
        }
        loop {
            let pos = self.current_tick & SLOT_MASK;
            if let Some(slot) = self.levels[0].next_occupied(pos) {
                let base = (self.current_tick >> SLOT_BITS) << SLOT_BITS;
                let tick = base + slot;
                self.current_tick = tick;
                self.ready_tick = tick;
                let mut batch = self.levels[0].drain_slot(slot as usize);
                self.wheel_len -= batch.len();
                batch.sort_unstable_by_key(|&(t, s, _)| (t, s));
                self.ready = batch.into();
                return true;
            }
            match self.next_target() {
                Some(target) => {
                    let window_start = (target >> SLOT_BITS) << SLOT_BITS;
                    let next_window = ((self.current_tick >> SLOT_BITS) + 1) << SLOT_BITS;
                    self.advance_to(window_start.max(next_window));
                }
                None => {
                    debug_assert_eq!(self.wheel_len, 0);
                    return false;
                }
            }
        }
    }
}

impl<E> Default for LegacyVecWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for LegacyVecWheel<E> {
    fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert_raw(time, seq, event);
        self.len += 1;
    }

    fn push_keyed(&mut self, time: SimTime, key: u64, event: E) {
        self.insert_raw(time, key, event);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        if !self.ensure_ready() {
            return None;
        }
        let (time, seq, event) = self.ready.pop_front().expect("ensure_ready lied");
        self.len -= 1;
        Some(Scheduled { time, seq, event })
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if !self.ensure_ready() {
            return None;
        }
        self.ready.front().map(|&(time, _, _)| time)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_sim::rng::Xoshiro256pp;
    use ta_sim::wheel::TimingWheel;

    /// The baseline must agree with the current slab wheel, otherwise the
    /// benchmark comparison is apples to oranges.
    #[test]
    fn legacy_and_slab_wheels_agree() {
        let mut rng = Xoshiro256pp::stream(77, 3);
        let mut legacy = LegacyVecWheel::new();
        let mut slab = TimingWheel::new();
        let mut now = 0u64;
        for i in 0..10_000u64 {
            if rng.chance(0.6) || legacy.is_empty() {
                let offset = match rng.below(4) {
                    0 => rng.below(2_000),
                    1 => 172_800_000,
                    2 => 1_728_000,
                    _ => rng.below(40_000_000_000),
                };
                let t = SimTime::from_micros(now + offset);
                legacy.push(t, i);
                slab.push(t, i);
            } else {
                let a = legacy.pop().unwrap();
                let b = slab.pop().unwrap();
                assert_eq!(a.key(), b.key(), "diverged at op {i}");
                now = a.time.as_micros();
            }
        }
        loop {
            match (legacy.pop(), slab.pop()) {
                (None, None) => break,
                (Some(a), Some(b)) => assert_eq!(a.key(), b.key()),
                (a, b) => panic!("length mismatch: {:?} vs {:?}", a.is_some(), b.is_some()),
            }
        }
    }

    /// `drain_ready` (the trait's pop-loop fallback here) must hand out
    /// exactly the same-time runs the slab wheel's overridden batch path
    /// produces, for random push/drain interleavings over cascading and
    /// dense same-tick offsets — the third queue of the batch-equivalence
    /// matrix (heap and slab wheel are property-tested in `ta-sim`).
    #[test]
    fn legacy_drain_ready_matches_slab_wheel_batches() {
        use ta_sim::queue::ReadyBatch;
        let mut rng = Xoshiro256pp::stream(78, 4);
        let mut legacy = LegacyVecWheel::new();
        let mut slab = TimingWheel::new();
        let mut legacy_batch = ReadyBatch::new();
        let mut slab_batch = ReadyBatch::new();
        let mut now = 0u64;
        for i in 0..8_000u64 {
            if rng.chance(0.7) || legacy.is_empty() {
                let offset = match rng.below(4) {
                    0 => rng.below(2_000),
                    1 => 172_800_000,
                    2 => 1_728_000,
                    _ => rng.below(40_000_000_000),
                };
                let t = SimTime::from_micros(now + offset);
                legacy.push(t, i);
                slab.push(t, i);
            } else {
                legacy.drain_ready(&mut legacy_batch);
                slab.drain_ready(&mut slab_batch);
                assert_eq!(legacy_batch.len(), slab_batch.len(), "at op {i}");
                assert_eq!(legacy_batch.time(), slab_batch.time());
                for (a, b) in legacy_batch.drain().zip(slab_batch.drain()) {
                    assert_eq!((a.0, a.1, a.2), (b.0, b.1, b.2));
                    now = a.0.as_micros();
                }
                assert_eq!(legacy.len(), slab.len());
            }
        }
        loop {
            legacy.drain_ready(&mut legacy_batch);
            slab.drain_ready(&mut slab_batch);
            if legacy_batch.is_empty() && slab_batch.is_empty() {
                break;
            }
            assert_eq!(legacy_batch.len(), slab_batch.len());
            for (a, b) in legacy_batch.drain().zip(slab_batch.drain()) {
                assert_eq!((a.0, a.1, a.2), (b.0, b.1, b.2));
            }
        }
    }
}
