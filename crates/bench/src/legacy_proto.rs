//! The pre-monomorphization protocol hot path, kept as a benchmark
//! baseline (the same role [`crate::legacy_wheel`] plays for the slab
//! wheel rewrite).
//!
//! [`LegacyTokenProtocol`] reproduces the three per-event taxes the
//! protocol layer used to pay:
//!
//! 1. **boxed dispatch** — the strategy lives behind `Box<dyn Strategy>`,
//!    so every `PROACTIVE`/`REACTIVE` evaluation is a virtual call;
//! 2. **two-pass peer selection** — every send scans the sender's
//!    neighbour list twice (count online, then `nth`), O(degree) per send;
//! 3. **per-send payload allocation** — [`CloningSgd`] clones the full
//!    weight vector on every `create_message` and twice more on adoption,
//!    exactly as the old `SgdGossipLearning` did.
//!
//! Only the paths the end-to-end benchmark exercises are implemented
//! (round ticks and application messages under a failure-free schedule);
//! the accounting is identical to the real driver on those paths, so the
//! two produce comparable event streams.

use std::sync::Arc;

use ta_apps::sgd::{LinearModel, RegressionData};
use ta_overlay::Topology;
use ta_sim::engine::{Driver, SimApi};
use ta_sim::rng::Xoshiro256pp;
use ta_sim::NodeId;
use token_account::node::{RoundAction, TokenNode};
use token_account::{Strategy, Usefulness};

/// The old exact two-pass online selection: count, then `nth` (no
/// rejection sampling, no packed mirror).
pub fn two_pass_select_online(
    topo: &Topology,
    node: NodeId,
    online: &[bool],
    rng: &mut Xoshiro256pp,
) -> Option<NodeId> {
    let peers = topo.out_neighbors(node);
    let alive = peers.iter().filter(|p| online[p.index()]).count();
    if alive == 0 {
        return None;
    }
    let pick = rng.below(alive as u64) as usize;
    peers
        .iter()
        .filter(|p| online[p.index()])
        .nth(pick)
        .copied()
}

/// Gossip learning over real SGD models with the old value-copy message
/// semantics: one fresh `Vec<f64>` per send, two more per adoption.
#[derive(Debug)]
pub struct CloningSgd {
    data: RegressionData,
    models: Vec<LinearModel>,
    eta: f64,
}

impl CloningSgd {
    /// One zero model and one example per node.
    pub fn new(data: RegressionData, eta: f64) -> Self {
        let n = data.len();
        let dim = data.dim();
        CloningSgd {
            data,
            models: (0..n).map(|_| LinearModel::zeros(dim)).collect(),
            eta,
        }
    }

    /// Mean model age (workload sanity checks).
    pub fn mean_age(&self) -> f64 {
        self.models.iter().map(|m| m.age as f64).sum::<f64>() / self.models.len() as f64
    }

    fn create_message(&mut self, node: NodeId) -> LinearModel {
        self.models[node.index()].clone()
    }

    fn update_state(&mut self, node: NodeId, msg: &LinearModel) -> Usefulness {
        let current = &self.models[node.index()];
        if msg.age >= current.age {
            let mut adopted = msg.clone();
            let (x, y) = self.data.example(node);
            adopted.sgd_step(x, y, self.eta);
            self.models[node.index()] = adopted;
            Usefulness::Useful
        } else {
            Usefulness::NotUseful
        }
    }
}

/// The pre-PR Algorithm-4 driver: boxed strategy, two-pass selection,
/// cloning payloads, per-send transfer-time lookups.
#[derive(Debug)]
pub struct LegacyTokenProtocol {
    strategy: Box<dyn Strategy>,
    app: CloningSgd,
    topo: Arc<Topology>,
    nodes: Vec<TokenNode>,
    online: Vec<bool>,
    sends_per_slot: Vec<u64>,
    /// Sends performed (sanity checks against the modern driver).
    pub sent: u64,
}

impl LegacyTokenProtocol {
    /// Builds the driver over an always-online population.
    pub fn new(topo: Arc<Topology>, strategy: Box<dyn Strategy>, app: CloningSgd) -> Self {
        let n = topo.n();
        LegacyTokenProtocol {
            strategy,
            app,
            topo,
            nodes: vec![TokenNode::new(0); n],
            online: vec![true; n],
            sends_per_slot: Vec::new(),
            sent: 0,
        }
    }

    /// The application, for post-run inspection.
    pub fn app(&self) -> &CloningSgd {
        &self.app
    }

    fn record_send(&mut self, api: &SimApi<'_, LinearModel>) {
        // Pre-PR behavior: the slot length is recomputed on every send.
        let slot_len = api.config().transfer_time().as_micros().max(1);
        let bucket = (api.now().as_micros() / slot_len) as usize;
        if bucket >= self.sends_per_slot.len() {
            self.sends_per_slot.resize(bucket + 1, 0);
        }
        self.sends_per_slot[bucket] += 1;
    }

    fn send_state(&mut self, api: &mut SimApi<'_, LinearModel>, node: NodeId) -> bool {
        match two_pass_select_online(&self.topo, node, &self.online, api.rng()) {
            Some(peer) => {
                let msg = self.app.create_message(node);
                api.send(node, peer, msg);
                self.record_send(api);
                self.sent += 1;
                true
            }
            None => false,
        }
    }
}

impl Driver for LegacyTokenProtocol {
    type Msg = LinearModel;

    fn on_round_tick(&mut self, api: &mut SimApi<'_, Self::Msg>, node: NodeId) {
        let action = self.nodes[node.index()].on_round(&self.strategy, api.rng());
        match action {
            RoundAction::SendProactive => {
                if !self.send_state(api, node) {
                    self.nodes[node.index()].bank_token();
                }
            }
            RoundAction::SaveToken => {}
        }
    }

    fn on_message(
        &mut self,
        api: &mut SimApi<'_, Self::Msg>,
        _from: NodeId,
        to: NodeId,
        msg: Self::Msg,
    ) {
        let usefulness = self.app.update_state(to, &msg);
        let burst = self.nodes[to.index()].on_message(&self.strategy, usefulness, api.rng());
        for _ in 0..burst {
            if !self.send_state(api, to) {
                self.nodes[to.index()].bank_token();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_overlay::generators::k_out_random;
    use ta_sim::config::SimConfig;
    use ta_sim::engine::{AlwaysOn, Simulation};
    use ta_sim::paper;
    use token_account::prelude::*;

    #[test]
    fn legacy_driver_runs_and_learns() {
        let n = 60;
        let mut rng = Xoshiro256pp::stream(2, 0);
        let topo = Arc::new(k_out_random(n, 8, &mut rng).unwrap());
        let cfg = SimConfig::builder(n)
            .delta(paper::DELTA)
            .transfer_time(paper::TRANSFER_TIME)
            .duration(paper::DELTA * 30)
            .seed(5)
            .build()
            .unwrap();
        let data = RegressionData::generate(n, 4, 0.05, 3);
        let app = CloningSgd::new(data, 0.1);
        let strategy: Box<dyn Strategy> = Box::new(RandomizedTokenAccount::new(5, 10).unwrap());
        let proto = LegacyTokenProtocol::new(topo, strategy, app);
        let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
        sim.run_to_end();
        assert!(sim.driver().sent > 0);
        assert!(sim.driver().app().mean_age() > 1.0);
    }

    #[test]
    fn two_pass_matches_online_filter() {
        let mut rng = Xoshiro256pp::stream(4, 0);
        let topo = k_out_random(20, 6, &mut rng).unwrap();
        let online: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        for node in 0..20 {
            let id = NodeId::from_index(node);
            match two_pass_select_online(&topo, id, &online, &mut rng) {
                Some(p) => assert!(online[p.index()]),
                None => assert!(topo.out_neighbors(id).iter().all(|p| !online[p.index()])),
            }
        }
    }
}
