//! The `bench_live` harness: machine-readable live-runtime perf tracking.
//!
//! Measures, in one process and one run:
//!
//! * **loadgen** — closed-loop admission decisions/sec of the full live
//!   stack (sharded atomic accounts + granter thread + latency
//!   histogram) at 1, 2, and 4 workers, total and per worker. The
//!   committed baseline documents the ≥ 1M decisions/sec/worker
//!   acceptance bar on the sharded-atomic path;
//! * **contended** — the adversarial case: 4 workers hammering 64
//!   shared accounts, with the account map in a single shard vs. 64
//!   cache-line-aware shards;
//! * **granter_sweep** — accounts/sec of the per-shard batched Δ grant
//!   over one million accounts;
//! * **histogram_record** — samples/sec of the allocation-free
//!   log-linear latency histogram's record path;
//! * **replay** — events/sec of the virtual-clock live-vs-sim replay
//!   (the cross-validation harness itself);
//! * **persist** — durability overhead and recovery speed: the same
//!   closed-loop run with the grant/spend journal off vs. on (the
//!   `persist_journal_on_vs_off` speedup documents the ≤ 10% admit
//!   overhead bar), and `recover()` records/sec at two journal lengths
//!   (recovery time must scale with the tail, not the history);
//! * **telemetry** — introspection overhead: the same closed loop with
//!   no registry, with counters only (`--trace-sample 0`), with 1-in-64
//!   decision tracing, and with the full observability plane scraped
//!   over TCP (an active `WATCH 200` + `TRACE 64` subscriber for the
//!   whole run); `counters_only_vs_off` documents the ≥ 0.95×
//!   acceptance bar for the always-on counter path, and
//!   `obs_scraped_vs_traced_s64` the same ≥ 0.95× bar for serving a
//!   live scraper.
//!
//! Results are written as `BENCH_live.json` (override with `--out PATH`);
//! `--test` runs each workload briefly (CI smoke), `--diff BASELINE`
//! prints the shared non-failing comparison. The `meta` section records
//! the measuring host's core count — multi-worker rows on a 1-core
//! container measure time-slicing, not scaling, exactly like
//! `BENCH_sim.json`'s threaded shard rows.

use std::fmt::Write as _;
use std::time::Duration;

use criterion::black_box;
use ta_live::harness::{replay_trace, run_sim_oracle, OracleWorkload};
use ta_live::histogram::LatencyHistogram;
use ta_live::loadgen::{
    run_loadgen, run_loadgen_durable, run_loadgen_observed, ArrivalMode, BurstMix, LoadGenConfig,
};
use ta_live::obs::{ObsServer, StatsPump, TraceBus};
use ta_live::persist::{recover, PersistConfig, Persistence};
use ta_live::runtime::LiveRuntime;
use ta_live::{LiveCounters, LiveTelemetry};
use ta_sim::rng::Xoshiro256pp;
use token_account::prelude::*;

use crate::report::{find, host_cores, json_section, measure_events_per_sec, Sample};

/// Workload scale of one run (reported in the `scale` section; ids stay
/// mode-independent so the CI smoke diff lines up against the committed
/// full-mode baseline).
fn scales(smoke: bool) -> (usize, Duration, usize) {
    if smoke {
        // (clients, loadgen duration, granter-sweep accounts)
        (10_000, Duration::from_millis(200), 100_000)
    } else {
        (100_000, Duration::from_secs(2), 1_000_000)
    }
}

fn loadgen_cfg(smoke: bool, workers: usize, clients: usize, shards: usize) -> LoadGenConfig {
    let (_, duration, _) = scales(smoke);
    LoadGenConfig {
        clients,
        workers,
        account_shards: shards,
        duration,
        mode: ArrivalMode::Closed,
        useful_probability: 0.8,
        burst: Some(BurstMix {
            probability: 0.05,
            size: 8,
        }),
        round_period: Some(Duration::from_millis(100)),
        seed: 17,
    }
}

fn bench_loadgen(smoke: bool) -> Vec<Sample> {
    let (clients, _, _) = scales(smoke);
    let strategy = RandomizedTokenAccount::new(5, 10).expect("valid strategy");
    let mut samples = Vec::new();
    for workers in [1usize, 2, 4] {
        let report = run_loadgen(strategy, &loadgen_cfg(smoke, workers, clients, 64));
        assert!(report.conserves(), "loadgen books must close");
        samples.push(Sample {
            id: format!("loadgen/closed_w{workers}"),
            value: report.decisions_per_sec(),
        });
        samples.push(Sample {
            id: format!("loadgen/closed_w{workers}_per_worker"),
            value: report.decisions_per_sec_per_worker(),
        });
    }
    // Contended: every worker hits the same tiny account set; the only
    // difference between the two rows is the account-map sharding.
    for (id, shards) in [
        ("contended/single_shard_w4", 1),
        ("contended/sharded_w4", 64),
    ] {
        let report = run_loadgen(strategy, &loadgen_cfg(smoke, 4, 64, shards));
        assert!(report.conserves(), "contended books must close");
        samples.push(Sample {
            id: id.into(),
            value: report.decisions_per_sec(),
        });
    }
    samples
}

fn bench_granter(smoke: bool) -> Sample {
    let (_, _, accounts) = scales(smoke);
    let runtime = LiveRuntime::new(
        RandomizedTokenAccount::new(5, 10).expect("valid strategy"),
        accounts,
        64,
    );
    let mut rng = Xoshiro256pp::stream(23, 0);
    let mut counters = LiveCounters::default();
    let value = measure_events_per_sec(
        || {
            let mut swept = 0u64;
            for s in 0..runtime.accounts().shard_count() {
                swept += runtime.round_sweep(s, &mut rng, &mut counters, |_| {});
            }
            swept
        },
        smoke,
    );
    black_box(counters.rounds);
    Sample {
        id: "granter_sweep".into(),
        value,
    }
}

fn bench_histogram(smoke: bool) -> Sample {
    let mut h = LatencyHistogram::new();
    let iters: u64 = if smoke { 100_000 } else { 2_000_000 };
    let value = measure_events_per_sec(
        || {
            let mut x = 0x9e3779b97f4a7c15u64;
            for _ in 0..iters {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                h.record(x & 0xf_ffff);
            }
            iters
        },
        smoke,
    );
    black_box(h.count());
    Sample {
        id: "histogram_record".into(),
        value,
    }
}

fn bench_replay(smoke: bool) -> Sample {
    let clients = if smoke { 100 } else { 400 };
    let workload = OracleWorkload {
        clients,
        injection_period: ta_sim::SimDuration::from_millis(100),
        ..OracleWorkload::quick(clients, 29)
    };
    let strategy = RandomizedTokenAccount::new(5, 10).expect("valid strategy");
    let (sim, trace) = run_sim_oracle(strategy, &workload);
    let events = trace.events.len() as u64;
    let value = measure_events_per_sec(
        || {
            let live = replay_trace(strategy, &trace, 2, 16);
            assert_eq!(live, sim, "replay must stay exact while being timed");
            events
        },
        smoke,
    );
    Sample {
        id: "replay/virtual_clock".into(),
        value,
    }
}

fn bench_persist(smoke: bool) -> Vec<Sample> {
    let (clients, _, _) = scales(smoke);
    let strategy = RandomizedTokenAccount::new(5, 10).expect("valid strategy");
    let cfg = loadgen_cfg(smoke, 2, clients, 64);
    let scratch = std::env::temp_dir().join(format!("ta-bench-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut samples = Vec::new();

    // The same closed loop, journal off vs. on: the admit path adds one
    // epoch-cell toggle + a buffered record per decision; everything
    // else (framing, CRC, fsync) rides the async writer thread.
    let off = run_loadgen(strategy, &cfg);
    assert!(off.conserves(), "journal-off books must close");
    samples.push(Sample {
        id: "closed_w2_journal_off".into(),
        value: off.decisions_per_sec(),
    });

    let dir = scratch.join("overhead");
    let p = Persistence::open(&PersistConfig::new(&dir), clients, 64).expect("open journal");
    let (on, _) = run_loadgen_durable(strategy, &cfg, &p, None, None);
    assert!(on.conserves(), "journal-on books must close");
    p.shutdown().expect("clean journal shutdown");
    samples.push(Sample {
        id: "closed_w2_journal_on".into(),
        value: on.decisions_per_sec(),
    });

    // Recovery speed at two journal lengths: records replayed per
    // second of `recover()` wall clock (manifest + scan + fold + the
    // conservation check). Doubling the tail should roughly double the
    // time — visible as the two rows staying in the same decade.
    let (short, long) = if smoke {
        (20_000u64, 80_000u64)
    } else {
        (100_000u64, 400_000u64)
    };
    for (id, records) in [
        ("recovery_replay_short", short),
        ("recovery_replay_long", long),
    ] {
        let dir = scratch.join(id.rsplit('/').next().unwrap());
        let (rclients, rshards) = (10_000usize, 16usize);
        let p = Persistence::open(&PersistConfig::new(&dir), rclients, rshards)
            .expect("open recovery journal");
        let block = rclients.div_ceil(rshards);
        let mut h = p.handle();
        for i in 0..records {
            let shard = (i % rshards as u64) as usize;
            let client = shard * block + (i as usize / rshards) % block;
            h.enter(shard);
            h.record(shard, client as u32, 1);
            h.exit();
        }
        drop(h);
        let stats = p.shutdown().expect("clean journal shutdown");
        assert_eq!(stats.records, records, "every record must reach disk");
        let value = measure_events_per_sec(
            || {
                let state = recover(&dir).expect("recovery must succeed");
                assert_eq!(state.replayed, records);
                records
            },
            smoke,
        );
        samples.push(Sample {
            id: id.into(),
            value,
        });
    }
    let _ = std::fs::remove_dir_all(&scratch);
    samples
}

fn bench_telemetry(smoke: bool) -> Vec<Sample> {
    let (clients, _, _) = scales(smoke);
    let strategy = RandomizedTokenAccount::new(5, 10).expect("valid strategy");
    let cfg = loadgen_cfg(smoke, 2, clients, 64);
    let mut samples = Vec::new();

    // The closed-loop reference with no registry at all.
    let off = run_loadgen(strategy, &cfg);
    assert!(off.conserves(), "telemetry-off books must close");
    samples.push(Sample {
        id: "closed_w2_telemetry_off".into(),
        value: off.decisions_per_sec(),
    });

    // Counters only (`--trace-sample 0`): per decision the hot path pays
    // one relaxed load + two branches; deltas are published every 256
    // decisions. The acceptance bar is ≥ 0.95× of the row above.
    let telem = LiveTelemetry::new(cfg.workers, 0, LiveTelemetry::DEFAULT_RING_CAPACITY);
    let counters_only = run_loadgen_observed(strategy, &cfg, &telem);
    assert!(counters_only.conserves(), "counters-only books must close");
    let snap = telem.snapshot();
    assert_eq!(
        snap.counter_by_name("admit_requests"),
        Some(counters_only.counters.requests),
        "registry totals must equal the run's own books"
    );
    samples.push(Sample {
        id: "closed_w2_counters_only".into(),
        value: counters_only.decisions_per_sec(),
    });

    // Tracing at the CI smoke sample rate (1-in-64) on top.
    let telem = LiveTelemetry::new(cfg.workers, 64, LiveTelemetry::DEFAULT_RING_CAPACITY);
    let traced = run_loadgen_observed(strategy, &cfg, &telem);
    assert!(traced.conserves(), "traced books must close");
    samples.push(Sample {
        id: "closed_w2_traced_s64".into(),
        value: traced.decisions_per_sec(),
    });

    // The full observability plane under an active scraper: stats pump,
    // trace bus, and the TCP server, with one connection holding
    // `WATCH 200` and another holding `TRACE 64` for the whole run.
    // Same 1-in-64 gate as the row above, so the delta is purely the
    // obs plane + scraper.
    let telem = LiveTelemetry::new(cfg.workers, 64, LiveTelemetry::DEFAULT_RING_CAPACITY);
    let pump = StatsPump::start(
        std::sync::Arc::clone(&telem),
        std::time::Instant::now(),
        None,
    );
    let bus = TraceBus::start(&telem, None);
    let server = ObsServer::spawn(
        "127.0.0.1:0",
        &telem,
        std::sync::Arc::clone(&pump),
        std::sync::Arc::clone(&bus),
    )
    .expect("bind obs server on loopback");
    let addr = server.addr();
    let watch = std::thread::spawn(move || drain_obs_stream(addr, "WATCH 200\n"));
    let trace = std::thread::spawn(move || drain_obs_stream(addr, "TRACE 64\n"));
    let scraped = run_loadgen_observed(strategy, &cfg, &telem);
    assert!(scraped.conserves(), "scraped books must close");
    pump.finalize();
    bus.finish(&telem.snapshot()).expect("trace bus finish");
    server.shutdown();
    let watch_lines = watch.join().expect("watch subscriber");
    let trace_lines = trace.join().expect("trace subscriber");
    assert!(
        watch_lines > 0 && trace_lines > 0,
        "subscribers must have received data ({watch_lines} watch, {trace_lines} trace)"
    );
    samples.push(Sample {
        id: "closed_w2_obs_scraped".into(),
        value: scraped.decisions_per_sec(),
    });

    // The on/off closed-loop ratio the acceptance bar reads directly.
    samples.push(Sample {
        id: "counters_only_vs_off".into(),
        value: counters_only.decisions_per_sec() / off.decisions_per_sec(),
    });
    // Acceptance bar ≥ 0.95 on multi-core hosts: serving a live
    // WATCH + TRACE scraper may cost at most 5% of the equivalently-
    // traced closed loop — the drop-and-count queues exist precisely so
    // a subscriber never back-pressures admission. On a 1-core
    // container (see `meta`/`host_cores`) the pump, bus, server, and
    // subscriber threads time-slice against the workers, so the ratio
    // there measures scheduling, not the obs plane's cost.
    samples.push(Sample {
        id: "obs_scraped_vs_traced_s64".into(),
        value: scraped.decisions_per_sec() / traced.decisions_per_sec(),
    });
    samples
}

/// Connects to the obs server, issues one streaming verb, and reads
/// lines until the server closes the stream; returns the line count.
fn drain_obs_stream(addr: std::net::SocketAddr, verb: &str) -> u64 {
    use std::io::{BufRead, BufReader, Write};
    let mut conn = std::net::TcpStream::connect(addr).expect("connect obs server");
    conn.write_all(verb.as_bytes()).expect("send verb");
    let mut lines = 0u64;
    for line in BufReader::new(conn).lines() {
        if line.is_err() {
            break;
        }
        lines += 1;
    }
    lines
}

/// Runs every section and writes the JSON report; returns the report text.
pub fn run(smoke: bool, out_path: &str) -> String {
    let (clients, duration, granter_accounts) = scales(smoke);
    eprintln!(
        "bench_live: loadgen ({})...",
        if smoke { "smoke" } else { "full" }
    );
    let mut live_samples = bench_loadgen(smoke);
    eprintln!("bench_live: granter sweep...");
    live_samples.push(bench_granter(smoke));
    eprintln!("bench_live: histogram...");
    live_samples.push(bench_histogram(smoke));
    eprintln!("bench_live: live-vs-sim replay...");
    live_samples.push(bench_replay(smoke));
    eprintln!("bench_live: persist (journal overhead + recovery)...");
    let persist_samples = bench_persist(smoke);
    eprintln!("bench_live: telemetry (counters / tracing overhead)...");
    let telemetry_samples = bench_telemetry(smoke);

    let speedups = vec![
        Sample {
            id: "loadgen_w2_vs_w1".into(),
            value: find(&live_samples, "loadgen/closed_w2")
                / find(&live_samples, "loadgen/closed_w1"),
        },
        Sample {
            id: "loadgen_w4_vs_w1".into(),
            value: find(&live_samples, "loadgen/closed_w4")
                / find(&live_samples, "loadgen/closed_w1"),
        },
        Sample {
            id: "contended_sharded_vs_single_shard".into(),
            value: find(&live_samples, "contended/sharded_w4")
                / find(&live_samples, "contended/single_shard_w4"),
        },
        // ≥ 0.9 is the acceptance bar: journaling every grant/spend may
        // cost at most 10% of closed-loop admission throughput.
        Sample {
            id: "persist_journal_on_vs_off".into(),
            value: find(&persist_samples, "closed_w2_journal_on")
                / find(&persist_samples, "closed_w2_journal_off"),
        },
    ];
    let scale_samples = vec![
        Sample {
            id: "clients".into(),
            value: clients as f64,
        },
        Sample {
            id: "loadgen_duration_secs".into(),
            value: duration.as_secs_f64(),
        },
        Sample {
            id: "granter_accounts".into(),
            value: granter_accounts as f64,
        },
        Sample {
            id: "host_cores".into(),
            value: host_cores() as f64,
        },
    ];

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"ta-bench-live/v1\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(
        out,
        "  \"units\": {{ \"live\": \"decisions/sec (granter_sweep: accounts/sec, replay: events/sec)\", \"persist\": \"decisions/sec (recovery_replay_*: records/sec)\", \"telemetry\": \"decisions/sec (counters_only_vs_off, obs_scraped_vs_traced_s64: ratio)\", \"speedup\": \"ratio\" }},"
    );
    json_section(&mut out, "scale", &scale_samples, false);
    json_section(&mut out, "live", &live_samples, false);
    json_section(&mut out, "persist", &persist_samples, false);
    json_section(&mut out, "telemetry", &telemetry_samples, false);
    json_section(&mut out, "speedup", &speedups, true);
    out.push('}');
    out.push('\n');

    match std::fs::write(out_path, &out) {
        Ok(()) => eprintln!("bench_live: wrote {out_path}"),
        Err(e) => {
            eprintln!("bench_live: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    out
}

/// CLI entry: `bench_live [--test] [--out PATH] [--diff BASELINE]`.
pub fn run_from_args() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--test" || a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_live.json".to_string());
    let diff_base = args
        .iter()
        .position(|a| a == "--diff")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let report = run(smoke, &out_path);
    println!("{report}");
    if let Some(base) = diff_base {
        if !crate::report::diff_report(&report, &base, &["scale/", "speedup/"]) {
            eprintln!("bench_live: report schema drifted from {base}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed_and_complete() {
        let dir = std::env::temp_dir().join(format!("ta-bench-live-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_live.json");
        let report = run(true, path.to_str().unwrap());
        assert!(report.starts_with('{') && report.trim_end().ends_with('}'));
        for key in [
            "\"scale\"",
            "\"live\"",
            "\"speedup\"",
            "host_cores",
            "loadgen/closed_w1",
            "loadgen/closed_w1_per_worker",
            "loadgen/closed_w2",
            "loadgen/closed_w4",
            "contended/single_shard_w4",
            "contended/sharded_w4",
            "granter_sweep",
            "histogram_record",
            "replay/virtual_clock",
            "\"persist\"",
            "closed_w2_journal_off",
            "closed_w2_journal_on",
            "recovery_replay_short",
            "recovery_replay_long",
            "\"telemetry\"",
            "closed_w2_telemetry_off",
            "closed_w2_counters_only",
            "closed_w2_traced_s64",
            "closed_w2_obs_scraped",
            "counters_only_vs_off",
            "obs_scraped_vs_traced_s64",
            "loadgen_w2_vs_w1",
            "contended_sharded_vs_single_shard",
            "persist_journal_on_vs_off",
        ] {
            assert!(report.contains(key), "missing {key} in report:\n{report}");
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), report);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
