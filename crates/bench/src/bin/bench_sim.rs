fn main() {
    ta_bench::bench_sim::run_from_args();
}
