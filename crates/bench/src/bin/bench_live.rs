fn main() {
    ta_bench::bench_live::run_from_args();
}
