//! # ta-bench — criterion benchmarks for the token account reproduction
//!
//! This crate carries no library code; its `benches/` directory holds the
//! Criterion harnesses:
//!
//! | Bench | What it measures |
//! |-------|------------------|
//! | `strategy` | proactive/reactive kernels of all five strategies, `randRound`, Algorithm-4 node steps |
//! | `event_queue` | binary heap vs. hierarchical timing wheel (the DESIGN.md scheduler ablation) |
//! | `engine` | end-to-end simulator throughput (events/second) under both queues |
//! | `overlay` | k-out and Watts–Strogatz generation, reference eigenvector |
//! | `churn` | synthetic smartphone trace generation |
//! | `figures` | scaled-down regenerations of Figures 1, 2 and 5 (per-figure wall time) |
//!
//! Run with `cargo bench -p ta-bench` (or `cargo bench --workspace`).

/// Common scale constants shared by the benches so results are comparable
/// across runs.
pub mod scales {
    /// Node count for micro-scale simulation benches.
    pub const BENCH_N: usize = 200;
    /// Rounds for micro-scale simulation benches.
    pub const BENCH_ROUNDS: u64 = 50;
}
