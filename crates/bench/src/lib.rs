//! # ta-bench — benchmarks for the token account reproduction
//!
//! The `benches/` directory holds the criterion harnesses:
//!
//! | Bench | What it measures |
//! |-------|------------------|
//! | `strategy` | proactive/reactive kernels of all five strategies, `randRound`, Algorithm-4 node steps |
//! | `event_queue` | binary heap vs. legacy Vec wheel vs. slab wheel (the DESIGN.md scheduler ablation) |
//! | `engine` | end-to-end simulator throughput (events/second) under both queues |
//! | `overlay` | k-out and Watts–Strogatz generation, reference eigenvector |
//! | `churn` | synthetic smartphone trace generation |
//! | `figures` | scaled-down regenerations of Figures 1, 2 and 5 (per-figure wall time) |
//!
//! Run with `cargo bench -p ta-bench` (or `cargo bench --workspace`).
//!
//! The library carries three support pieces:
//!
//! * [`bench_sim`] — the `bench_sim` binary's harness, which measures
//!   queue, engine, and protocol throughput plus sweep wall-clock and
//!   writes a machine-readable `BENCH_sim.json` for PR-to-PR perf
//!   tracking: `cargo run --release -p ta-bench --bin bench_sim` (add
//!   `--test` for the CI smoke mode, `--diff PATH` for a non-failing
//!   comparison against a committed baseline);
//! * [`legacy_wheel`] — the pre-slab Vec-of-Vecs timing wheel, kept as the
//!   baseline the slab rewrite is measured against;
//! * [`legacy_proto`] — the pre-monomorphization protocol driver (boxed
//!   strategy dispatch, two-pass peer selection, cloning payloads), kept
//!   as the baseline the allocation-free protocol path is measured
//!   against.

pub mod bench_live;
pub mod bench_sim;
pub mod legacy_proto;
pub mod legacy_wheel;
pub mod report;

/// Common scale constants shared by the benches so results are comparable
/// across runs.
pub mod scales {
    /// Node count for micro-scale simulation benches.
    pub const BENCH_N: usize = 200;
    /// Rounds for micro-scale simulation benches.
    pub const BENCH_ROUNDS: u64 = 50;
}
