//! The `bench_sim` harness: machine-readable simulator perf tracking.
//!
//! Measures, in one process and one run:
//!
//! * **event_queue** — steady-state push/pop churn throughput (events/sec)
//!   of the binary heap, the legacy Vec-of-Vecs wheel, and the slab wheel,
//!   on the uniform and the protocol-periodic offset mixes;
//! * **engine** — end-to-end engine throughput (processed events/sec) under
//!   heap vs. slab wheel, for a lean echo driver (engine-bound) and a real
//!   push gossip protocol run;
//! * **sweep** — wall-clock seconds for a micro parameter sweep through the
//!   bounded-pool grid executor.
//!
//! Results are written as `BENCH_sim.json` (override with `--out PATH`) so
//! the perf trajectory is tracked from PR to PR; `--test` runs each
//! workload once and writes the file with `"mode": "smoke"` (values are
//! still measured, just from a single iteration — good enough for CI to
//! validate the harness, not for comparisons).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::black_box;
use ta_apps::protocol::TokenProtocol;
use ta_apps::push_gossip::PushGossip;
use ta_experiments::runner::{prepare_topology, run_grid_prepared};
use ta_experiments::spec::{AppKind, ExperimentSpec, TopologyKind};
use ta_overlay::generators::k_out_random;
use ta_sim::config::{QueueKind, SimConfig};
use ta_sim::engine::{AlwaysOn, Driver, SimApi, Simulation};
use ta_sim::paper;
use ta_sim::queue::{BinaryHeapQueue, EventQueue};
use ta_sim::rng::Xoshiro256pp;
use ta_sim::time::SimTime;
use ta_sim::wheel::TimingWheel;
use ta_sim::NodeId;
use token_account::prelude::*;

use crate::legacy_wheel::LegacyVecWheel;

/// Pending events kept in flight during queue churn.
const PENDING: usize = 10_000;
/// Push/pop pairs per queue-churn invocation.
const OPS: usize = 100_000;

/// One measured number, in the unit its section implies.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Key within the JSON section.
    pub id: String,
    /// Events/sec for throughput entries, seconds for wall-clock entries.
    pub value: f64,
}

/// Repeats `workload` (which reports how many events it processed) until
/// the measurement budget is spent; returns events/sec.
fn measure_events_per_sec<F: FnMut() -> u64>(mut workload: F, smoke: bool) -> f64 {
    if smoke {
        let start = Instant::now();
        let events = workload();
        return events as f64 / start.elapsed().as_secs_f64().max(1e-9);
    }
    // Warmup invocation (fills caches, grows slabs/heaps to steady state).
    black_box(workload());
    let budget = Duration::from_millis(1_000);
    let start = Instant::now();
    let mut events = 0u64;
    loop {
        events += workload();
        if start.elapsed() >= budget {
            break;
        }
    }
    events as f64 / start.elapsed().as_secs_f64()
}

/// Steady-state churn of push/pop pairs against `queue`; returns events
/// processed (pushes + pops).
fn queue_churn<Q: EventQueue<u64>>(mut queue: Q, offsets: &[u64]) -> u64 {
    let mut now = 0u64;
    let mut acc = 0u64;
    for (i, &off) in offsets.iter().take(PENDING).enumerate() {
        queue.push(SimTime::from_micros(now + off), i as u64);
    }
    for (i, &off) in offsets.iter().cycle().skip(PENDING).take(OPS).enumerate() {
        let popped = queue.pop().expect("queue stays non-empty");
        now = popped.time.as_micros();
        acc ^= popped.event;
        queue.push(SimTime::from_micros(now + off), i as u64);
    }
    black_box(acc);
    (PENDING + 2 * OPS) as u64
}

fn uniform_offsets(n: usize) -> Vec<u64> {
    let mut rng = Xoshiro256pp::stream(11, 0);
    (0..n).map(|_| rng.below(400_000_000)).collect()
}

/// The protocol pattern: mostly 1.728 s transfers plus Δ = 172.8 s ticks.
fn periodic_offsets(n: usize) -> Vec<u64> {
    let mut rng = Xoshiro256pp::stream(13, 0);
    (0..n)
        .map(|_| {
            if rng.chance(0.5) {
                172_800_000
            } else {
                1_728_000
            }
        })
        .collect()
}

fn bench_event_queue(smoke: bool) -> Vec<Sample> {
    let workloads = [
        ("uniform", uniform_offsets(PENDING + OPS)),
        ("periodic", periodic_offsets(PENDING + OPS)),
    ];
    let mut samples = Vec::new();
    for (name, offsets) in &workloads {
        samples.push(Sample {
            id: format!("binary_heap/{name}"),
            value: measure_events_per_sec(|| queue_churn(BinaryHeapQueue::new(), offsets), smoke),
        });
        samples.push(Sample {
            id: format!("legacy_wheel/{name}"),
            value: measure_events_per_sec(|| queue_churn(LegacyVecWheel::new(), offsets), smoke),
        });
        samples.push(Sample {
            id: format!("slab_wheel/{name}"),
            value: measure_events_per_sec(|| queue_churn(TimingWheel::new(), offsets), smoke),
        });
    }
    samples
}

/// A protocol-free driver: every tick sends one message to a random online
/// peer; deliveries are counted and dropped. Isolates the engine + queue
/// hot path from strategy/application work.
struct Echo {
    delivered: u64,
}

impl Driver for Echo {
    type Msg = u64;
    fn on_round_tick(&mut self, api: &mut SimApi<'_, u64>, node: NodeId) {
        if let Some(peer) = api.random_online_node() {
            api.send(node, peer, node.raw() as u64);
        }
    }
    fn on_message(&mut self, _api: &mut SimApi<'_, u64>, _from: NodeId, _to: NodeId, msg: u64) {
        self.delivered = self.delivered.wrapping_add(msg);
    }
}

fn engine_echo_run(n: usize, rounds: u64, queue: QueueKind) -> u64 {
    let cfg = SimConfig::builder(n)
        .delta(paper::DELTA)
        .transfer_time(paper::TRANSFER_TIME)
        .duration(paper::DELTA * rounds)
        .queue(queue)
        .seed(42)
        .build()
        .expect("valid bench config");
    let mut sim = Simulation::new(cfg, &AlwaysOn, Echo { delivered: 0 });
    sim.run_to_end();
    black_box(sim.driver().delivered);
    sim.stats().events_processed
}

fn engine_gossip_run(topo: &Arc<ta_overlay::Topology>, rounds: u64, queue: QueueKind) -> u64 {
    let n = topo.n();
    let cfg = SimConfig::builder(n)
        .delta(paper::DELTA)
        .transfer_time(paper::TRANSFER_TIME)
        .duration(paper::DELTA * rounds)
        .sample_period(paper::DELTA)
        .injection_period(paper::UPDATE_INJECTION_PERIOD)
        .queue(queue)
        .seed(3)
        .build()
        .expect("valid bench config");
    let app = PushGossip::new(n, &vec![true; n]);
    let strategy: Box<dyn Strategy> =
        Box::new(RandomizedTokenAccount::new(10, 20).expect("valid strategy"));
    let proto = TokenProtocol::new(Arc::clone(topo), strategy, app, vec![true; n]);
    let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
    sim.run_to_end();
    sim.stats().events_processed
}

fn bench_engine(smoke: bool) -> Vec<Sample> {
    let (echo_n, echo_rounds) = if smoke { (1_000, 2) } else { (10_000, 8) };
    let (gossip_n, gossip_rounds) = if smoke { (200, 2) } else { (2_000, 8) };
    let mut rng = Xoshiro256pp::stream(5, 0);
    let topo =
        Arc::new(k_out_random(gossip_n, paper::OUT_DEGREE, &mut rng).expect("valid topology"));
    let mut samples = Vec::new();
    for (label, queue) in [
        ("binary_heap", QueueKind::Heap),
        ("slab_wheel", QueueKind::Wheel),
    ] {
        samples.push(Sample {
            id: format!("echo_n{echo_n}/{label}"),
            value: measure_events_per_sec(|| engine_echo_run(echo_n, echo_rounds, queue), smoke),
        });
    }
    for (label, queue) in [
        ("binary_heap", QueueKind::Heap),
        ("slab_wheel", QueueKind::Wheel),
    ] {
        samples.push(Sample {
            id: format!("push_gossip_n{gossip_n}/{label}"),
            value: measure_events_per_sec(|| engine_gossip_run(&topo, gossip_rounds, queue), smoke),
        });
    }
    samples
}

/// Times a micro sweep through the bounded-pool grid executor.
fn bench_sweep(smoke: bool) -> (f64, usize, usize) {
    let runs = 2;
    let mut base = ExperimentSpec::paper_defaults(
        AppKind::PushGossip,
        StrategySpec::Proactive,
        if smoke { 60 } else { 200 },
    )
    .with_rounds(if smoke { 10 } else { 40 })
    .with_runs(runs)
    .with_seed(7);
    base.topology = TopologyKind::KOut { k: 8 };
    let strategies = [
        StrategySpec::Proactive,
        StrategySpec::Simple { c: 10 },
        StrategySpec::Simple { c: 20 },
        StrategySpec::Generalized { a: 5, c: 10 },
        StrategySpec::Randomized { a: 5, c: 10 },
        StrategySpec::Randomized { a: 10, c: 20 },
    ];
    let specs: Vec<ExperimentSpec> = strategies
        .iter()
        .map(|&strategy| ExperimentSpec {
            strategy,
            ..base.clone()
        })
        .collect();
    let prepared = prepare_topology(&base).expect("bench topology generates");
    let start = Instant::now();
    let results = run_grid_prepared(&specs, &prepared).expect("bench sweep runs");
    let wall = start.elapsed().as_secs_f64();
    black_box(results.len());
    (
        wall,
        specs.len() * runs,
        ta_experiments::pool::max_workers(),
    )
}

fn json_section(out: &mut String, name: &str, samples: &[Sample], last: bool) {
    let _ = writeln!(out, "  \"{name}\": {{");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}\": {:.1}{comma}", s.id, s.value);
    }
    let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
}

fn find(samples: &[Sample], id: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.id == id)
        .map(|s| s.value)
        .unwrap_or(f64::NAN)
}

/// Runs every section and writes the JSON report; returns the report text.
pub fn run(smoke: bool, out_path: &str) -> String {
    eprintln!(
        "bench_sim: event_queue ({})...",
        if smoke { "smoke" } else { "full" }
    );
    let queue_samples = bench_event_queue(smoke);
    eprintln!("bench_sim: engine...");
    let engine_samples = bench_engine(smoke);
    eprintln!("bench_sim: sweep...");
    let (sweep_wall, sweep_jobs, workers) = bench_sweep(smoke);

    // Headline speedups: slab wheel vs. the binary-heap baseline, same run.
    let speedups = {
        let mut v = Vec::new();
        for name in ["uniform", "periodic"] {
            v.push(Sample {
                id: format!("event_queue_{name}_slab_wheel_vs_binary_heap"),
                value: find(&queue_samples, &format!("slab_wheel/{name}"))
                    / find(&queue_samples, &format!("binary_heap/{name}")),
            });
            v.push(Sample {
                id: format!("event_queue_{name}_slab_wheel_vs_legacy_wheel"),
                value: find(&queue_samples, &format!("slab_wheel/{name}"))
                    / find(&queue_samples, &format!("legacy_wheel/{name}")),
            });
        }
        let engine_ids: Vec<&str> = engine_samples
            .iter()
            .map(|s| s.id.as_str())
            .filter(|id| id.ends_with("/binary_heap"))
            .collect();
        for heap_id in engine_ids {
            let stem = heap_id.trim_end_matches("/binary_heap");
            v.push(Sample {
                id: format!("engine_{}_slab_wheel_vs_binary_heap", stem),
                value: find(&engine_samples, &format!("{stem}/slab_wheel"))
                    / find(&engine_samples, heap_id),
            });
        }
        v
    };

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"ta-bench-sim/v1\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(
        out,
        "  \"units\": {{ \"event_queue\": \"events/sec\", \"engine\": \"events/sec\", \"speedup\": \"ratio\", \"sweep\": \"seconds\" }},"
    );
    json_section(&mut out, "event_queue", &queue_samples, false);
    json_section(&mut out, "engine", &engine_samples, false);
    json_section(&mut out, "speedup", &speedups, false);
    let _ = writeln!(out, "  \"sweep\": {{");
    let _ = writeln!(out, "    \"wall_clock_seconds\": {sweep_wall:.3},");
    let _ = writeln!(out, "    \"jobs\": {sweep_jobs},");
    let _ = writeln!(out, "    \"pool_workers\": {workers}");
    let _ = writeln!(out, "  }}");
    out.push('}');
    out.push('\n');

    match std::fs::write(out_path, &out) {
        Ok(()) => eprintln!("bench_sim: wrote {out_path}"),
        Err(e) => {
            eprintln!("bench_sim: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    out
}

/// CLI entry: `bench_sim [--test] [--out PATH]`.
pub fn run_from_args() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--test" || a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let report = run(smoke, &out_path);
    println!("{report}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed_and_complete() {
        let dir = std::env::temp_dir().join(format!("ta-bench-sim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sim.json");
        let report = run(true, path.to_str().unwrap());
        assert!(report.starts_with('{') && report.trim_end().ends_with('}'));
        for key in [
            "\"event_queue\"",
            "\"engine\"",
            "\"speedup\"",
            "\"sweep\"",
            "binary_heap/periodic",
            "legacy_wheel/periodic",
            "slab_wheel/periodic",
            "wall_clock_seconds",
        ] {
            assert!(report.contains(key), "missing {key} in report:\n{report}");
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), report);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
