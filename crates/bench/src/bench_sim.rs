//! The `bench_sim` harness: machine-readable simulator perf tracking.
//!
//! Measures, in one process and one run:
//!
//! * **event_queue** — steady-state push/pop churn throughput (events/sec)
//!   of the binary heap, the legacy Vec-of-Vecs wheel, and the slab wheel,
//!   on the uniform and the protocol-periodic offset mixes;
//! * **engine** — end-to-end engine throughput (processed events/sec) under
//!   heap vs. slab wheel, for a lean echo driver (engine-bound) and a real
//!   push gossip protocol run;
//! * **protocol** — the protocol-layer hot path: strategy dispatch
//!   (boxed vs. monomorphized node steps), online peer sampling under
//!   churn (two-pass scan vs. rejection fallback vs. packed mirror), and
//!   the end-to-end SGD gossip-learning workload against the
//!   [`crate::legacy_proto`] baseline;
//! * **shard** — the intra-run sharded engine: S=1 overhead against the
//!   monomorphized serial engine, multi-shard scaling at S ∈ {2, 4}
//!   (results are byte-identical across all of them; only wall-clock
//!   differs — on a single-core container the multi-shard rows measure
//!   the per-window synchronization tax, not a speedup);
//! * **shard_sync** — per-window synchronization in isolation: the
//!   channel-pipeline dispatch vs. the retired two-`Barrier::wait`
//!   rendezvous on empty windows, plus engine rows at S ∈ {2, 4} ×
//!   threads ∈ {1, 2, 4};
//! * **sweep** — wall-clock seconds for a micro parameter sweep through the
//!   bounded-pool grid executor.
//!
//! Results are written as `BENCH_sim.json` (override with `--out PATH`) so
//! the perf trajectory is tracked from PR to PR; `--test` runs each
//! workload once and writes the file with `"mode": "smoke"` (values are
//! still measured, just from a single iteration — good enough for CI to
//! validate the harness, not for comparisons). `--diff BASELINE.json`
//! additionally prints a non-failing comparison of every metric present in
//! both reports (CI runs it against the committed `BENCH_sim.json` so perf
//! regressions are visible in PR logs), calling out the known dense
//! same-tick periodic trade-off explicitly.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use criterion::black_box;
use ta_apps::protocol::TokenProtocol;
use ta_apps::push_gossip::PushGossip;
use ta_apps::sgd::{RegressionData, SgdGossipLearning};
use ta_experiments::runner::{prepare_topology, run_grid_prepared};
use ta_experiments::spec::{AppKind, ExperimentSpec, TopologyKind};
use ta_overlay::generators::k_out_random;
use ta_overlay::sampling::{OnlineNeighbors, PeerSampler};
use ta_sim::config::{QueueKind, SimConfig};
use ta_sim::engine::{AlwaysOn, Driver, SimApi, Simulation};
use ta_sim::paper;
use ta_sim::queue::{BinaryHeapQueue, EventQueue};
use ta_sim::rng::Xoshiro256pp;
use ta_sim::time::SimTime;
use ta_sim::wheel::TimingWheel;
use ta_sim::NodeId;
use token_account::node::TokenNode;
use token_account::prelude::*;

use crate::legacy_proto::{two_pass_select_online, CloningSgd, LegacyTokenProtocol};
use crate::legacy_wheel::LegacyVecWheel;
use crate::report::{find, json_section, measure_events_per_sec, Sample};

/// Pending events kept in flight during queue churn.
const PENDING: usize = 10_000;
/// Push/pop pairs per queue-churn invocation.
const OPS: usize = 100_000;

/// Steady-state churn of push/pop pairs against `queue`; returns events
/// processed (pushes + pops).
fn queue_churn<Q: EventQueue<u64>>(mut queue: Q, offsets: &[u64]) -> u64 {
    let mut now = 0u64;
    let mut acc = 0u64;
    for (i, &off) in offsets.iter().take(PENDING).enumerate() {
        queue.push(SimTime::from_micros(now + off), i as u64);
    }
    for (i, &off) in offsets.iter().cycle().skip(PENDING).take(OPS).enumerate() {
        let popped = queue.pop().expect("queue stays non-empty");
        now = popped.time.as_micros();
        acc ^= popped.event;
        queue.push(SimTime::from_micros(now + off), i as u64);
    }
    black_box(acc);
    (PENDING + 2 * OPS) as u64
}

fn uniform_offsets(n: usize) -> Vec<u64> {
    let mut rng = Xoshiro256pp::stream(11, 0);
    (0..n).map(|_| rng.below(400_000_000)).collect()
}

/// The protocol pattern: mostly 1.728 s transfers plus Δ = 172.8 s ticks.
fn periodic_offsets(n: usize) -> Vec<u64> {
    let mut rng = Xoshiro256pp::stream(13, 0);
    (0..n)
        .map(|_| {
            if rng.chance(0.5) {
                172_800_000
            } else {
                1_728_000
            }
        })
        .collect()
}

/// Reactive-burst insertion: rounds of `k` pushes sharing one deadline
/// (`now + transfer_time`, the pattern every reactive burst produces),
/// drained between rounds. `batched` routes each round through
/// [`EventQueue::push_keyed_run`] — one slot classification per burst —
/// instead of per-event `push_keyed`.
fn burst_push_drain(batched: bool, bursts: u64, k: u64) -> u64 {
    use ta_sim::queue::order_key;
    let mut wheel: TimingWheel<u64> = TimingWheel::new();
    let mut now = 0u64;
    let mut acc = 0u64;
    for b in 0..bursts {
        let t = SimTime::from_micros(now + 1_728_000);
        if batched {
            wheel.push_keyed_run(t, (0..k).map(|j| (order_key(j as u32, b), j)));
        } else {
            for j in 0..k {
                wheel.push_keyed(t, order_key(j as u32, b), j);
            }
        }
        while let Some(s) = wheel.pop() {
            acc ^= s.event;
        }
        now = t.as_micros();
    }
    black_box(acc);
    2 * bursts * k
}

fn bench_event_queue(smoke: bool) -> Vec<Sample> {
    let workloads = [
        ("uniform", uniform_offsets(PENDING + OPS)),
        ("periodic", periodic_offsets(PENDING + OPS)),
    ];
    let mut samples = Vec::new();
    for (name, offsets) in &workloads {
        samples.push(Sample {
            id: format!("binary_heap/{name}"),
            value: measure_events_per_sec(|| queue_churn(BinaryHeapQueue::new(), offsets), smoke),
        });
        samples.push(Sample {
            id: format!("legacy_wheel/{name}"),
            value: measure_events_per_sec(|| queue_churn(LegacyVecWheel::new(), offsets), smoke),
        });
        samples.push(Sample {
            id: format!("slab_wheel/{name}"),
            value: measure_events_per_sec(|| queue_churn(TimingWheel::new(), offsets), smoke),
        });
    }
    // Same-deadline burst batching (the ROADMAP "reactive-burst send
    // batching" item): per-push vs. one-classification-per-run insertion.
    let (bursts, k) = if smoke { (2_000, 16) } else { (40_000, 16) };
    samples.push(Sample {
        id: "slab_wheel/burst16_single".into(),
        value: measure_events_per_sec(|| burst_push_drain(false, bursts, k), smoke),
    });
    samples.push(Sample {
        id: "slab_wheel/burst16_batched".into(),
        value: measure_events_per_sec(|| burst_push_drain(true, bursts, k), smoke),
    });
    samples
}

/// Dense same-tick waves through one queue: each wave pushes `k` events
/// sharing one deadline Δ out (landing in a deep wheel level, so the mass
/// cascades down before it drains), consumed either per event (`pop`) or
/// as one contiguous [`EventQueue::drain_ready`] batch. The pop/drain
/// pair isolates the dispatch tax the batch-drain engine loop removes;
/// the cross-queue drain rows give the dense-tick slab-vs-legacy ratio.
fn dense_wave<Q: EventQueue<u64>>(mut queue: Q, batched: bool, waves: u64, k: u64) -> u64 {
    use ta_sim::queue::{order_key, ReadyBatch};
    let mut batch = ReadyBatch::new();
    let mut now = 0u64;
    let mut acc = 0u64;
    for w in 0..waves {
        let t = SimTime::from_micros(now + 172_800_000);
        queue.push_keyed_run(t, (0..k).map(|j| (order_key(j as u32, w), j)));
        if batched {
            queue.drain_ready(&mut batch);
            debug_assert_eq!(batch.len() as u64, k);
            for (_, _, e) in batch.drain() {
                acc ^= e;
            }
        } else {
            while let Some(s) = queue.pop() {
                acc ^= s.event;
            }
        }
        now = t.as_micros();
    }
    black_box(acc);
    2 * waves * k
}

/// The `batch` section: contiguous same-time drains vs per-event pops on
/// dense waves, for all three queue implementations (the legacy wheel
/// runs the trait's pop-loop fallback — its rows are the "no contiguous
/// ready run to swap" baseline).
fn bench_batch(smoke: bool) -> Vec<Sample> {
    let (waves, k) = if smoke { (50, 1_024) } else { (400, 4_096) };
    let mut samples = Vec::new();
    for (mode, batched) in [("pop", false), ("drain", true)] {
        samples.push(Sample {
            id: format!("dense_wave/binary_heap/{mode}"),
            value: measure_events_per_sec(
                || dense_wave(BinaryHeapQueue::new(), batched, waves, k),
                smoke,
            ),
        });
        samples.push(Sample {
            id: format!("dense_wave/legacy_wheel/{mode}"),
            value: measure_events_per_sec(
                || dense_wave(LegacyVecWheel::new(), batched, waves, k),
                smoke,
            ),
        });
        samples.push(Sample {
            id: format!("dense_wave/slab_wheel/{mode}"),
            value: measure_events_per_sec(
                || dense_wave(TimingWheel::new(), batched, waves, k),
                smoke,
            ),
        });
    }
    samples
}

/// A protocol-free driver: every tick sends one message to a random online
/// peer; deliveries are counted and dropped. Isolates the engine + queue
/// hot path from strategy/application work.
struct Echo {
    delivered: u64,
}

impl Driver for Echo {
    type Msg = u64;
    fn on_round_tick(&mut self, api: &mut SimApi<'_, u64>, node: NodeId) {
        if let Some(peer) = api.random_online_node() {
            api.send(node, peer, node.raw() as u64);
        }
    }
    fn on_message(&mut self, _api: &mut SimApi<'_, u64>, _from: NodeId, _to: NodeId, msg: u64) {
        self.delivered = self.delivered.wrapping_add(msg);
    }
}

fn engine_echo_run(n: usize, rounds: u64, queue: QueueKind) -> u64 {
    let cfg = SimConfig::builder(n)
        .delta(paper::DELTA)
        .transfer_time(paper::TRANSFER_TIME)
        .duration(paper::DELTA * rounds)
        .queue(queue)
        .seed(42)
        .build()
        .expect("valid bench config");
    let mut sim = Simulation::new(cfg, &AlwaysOn, Echo { delivered: 0 });
    sim.run_to_end();
    black_box(sim.driver().delivered);
    sim.stats().events_processed
}

fn engine_gossip_run(topo: &Arc<ta_overlay::Topology>, rounds: u64, queue: QueueKind) -> u64 {
    let n = topo.n();
    let cfg = SimConfig::builder(n)
        .delta(paper::DELTA)
        .transfer_time(paper::TRANSFER_TIME)
        .duration(paper::DELTA * rounds)
        .sample_period(paper::DELTA)
        .injection_period(paper::UPDATE_INJECTION_PERIOD)
        .queue(queue)
        .seed(3)
        .build()
        .expect("valid bench config");
    let app = PushGossip::new(n, &vec![true; n]);
    // (A=5, C=10) so accounts fill within a handful of rounds and the run
    // is message-dominated — with (10, 20) and a short horizon nothing
    // ever gets sent and the "protocol" bench degenerates to bare ticks.
    let strategy = RandomizedTokenAccount::new(5, 10).expect("valid strategy");
    let proto = TokenProtocol::new(Arc::clone(topo), strategy, app, vec![true; n]);
    let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
    sim.run_to_end();
    sim.stats().events_processed
}

/// Workload scale parameters of one run, reported in the JSON `scale`
/// section. Sample ids stay mode-independent so the CI smoke diff can
/// line every metric up against the committed full-mode baseline (values
/// differ in scale — the diff is informational — but a vanished speedup
/// is visible instead of the rows silently failing to match).
/// `host_cores` records the measurement context (BENCH_live already
/// does): multi-core regenerations are distinguishable from 1-core
/// container runs.
fn scale_samples(smoke: bool) -> Vec<Sample> {
    let ((echo_n, echo_rounds), (gossip_n, gossip_rounds), (sgd_n, sgd_dim, sgd_rounds)) =
        scales(smoke);
    [
        ("echo_n", echo_n as f64),
        ("echo_rounds", echo_rounds as f64),
        ("push_gossip_n", gossip_n as f64),
        ("push_gossip_rounds", gossip_rounds as f64),
        ("sgd_n", sgd_n as f64),
        ("sgd_dim", sgd_dim as f64),
        ("sgd_rounds", sgd_rounds as f64),
        ("host_cores", crate::report::host_cores() as f64),
    ]
    .into_iter()
    .map(|(id, value)| Sample {
        id: id.into(),
        value,
    })
    .collect()
}

#[allow(clippy::type_complexity)]
fn scales(smoke: bool) -> ((usize, u64), (usize, u64), (usize, usize, u64)) {
    if smoke {
        ((1_000, 2), (200, 6), (100, 32, 10))
    } else {
        ((10_000, 8), (2_000, 24), (500, 256, 60))
    }
}

fn bench_engine(smoke: bool) -> Vec<Sample> {
    let ((echo_n, echo_rounds), (gossip_n, gossip_rounds), _) = scales(smoke);
    let mut rng = Xoshiro256pp::stream(5, 0);
    let topo =
        Arc::new(k_out_random(gossip_n, paper::OUT_DEGREE, &mut rng).expect("valid topology"));
    let mut samples = Vec::new();
    for (label, queue) in [
        ("binary_heap", QueueKind::Heap),
        ("slab_wheel", QueueKind::Wheel),
    ] {
        samples.push(Sample {
            id: format!("echo/{label}"),
            value: measure_events_per_sec(|| engine_echo_run(echo_n, echo_rounds, queue), smoke),
        });
    }
    for (label, queue) in [
        ("binary_heap", QueueKind::Heap),
        ("slab_wheel", QueueKind::Wheel),
    ] {
        samples.push(Sample {
            id: format!("push_gossip/{label}"),
            value: measure_events_per_sec(|| engine_gossip_run(&topo, gossip_rounds, queue), smoke),
        });
    }
    samples
}

/// Algorithm-4 node steps (one round tick + one message reaction) through
/// a `&dyn Strategy`, the pre-PR dispatch mode.
fn node_steps_boxed(strategy: &dyn Strategy, iters: u64) -> u64 {
    let mut node = TokenNode::new(0);
    let mut rng = Xoshiro256pp::stream(17, 0);
    for _ in 0..iters {
        black_box(node.on_round(&strategy, &mut rng));
        black_box(node.on_message(&strategy, Usefulness::Useful, &mut rng));
    }
    2 * iters
}

/// The same node steps with the strategy type known statically (the
/// monomorphized protocol path).
fn node_steps_monomorphized<S: Strategy>(strategy: &S, iters: u64) -> u64 {
    let mut node = TokenNode::new(0);
    let mut rng = Xoshiro256pp::stream(17, 0);
    for _ in 0..iters {
        black_box(node.on_round(strategy, &mut rng));
        black_box(node.on_message(strategy, Usefulness::Useful, &mut rng));
    }
    2 * iters
}

/// Selections per second under churn: every `flip_every` selections one
/// random node flips its online state. `mode` picks the sampler.
fn sampling_churn_run(
    topo: &Arc<ta_overlay::Topology>,
    mode: &str,
    selections: u64,
    online_fraction: f64,
) -> u64 {
    let n = topo.n();
    let mut rng = Xoshiro256pp::stream(23, 0);
    let mut online: Vec<bool> = (0..n).map(|_| rng.chance(online_fraction)).collect();
    online[0] = true; // keep at least one node up
    let mut mirror = OnlineNeighbors::new(topo, &online);
    let sampler = PeerSampler::new(topo);
    let flip_every = 16u64;
    let mut acc = 0u64;
    for i in 0..selections {
        if i % flip_every == 0 {
            let v = rng.below(n as u64) as usize;
            let up = !online[v];
            online[v] = up;
            mirror.set_online(NodeId::from_index(v), up);
        }
        let node = NodeId::from_index((i % n as u64) as usize);
        let picked = match mode {
            "two_pass" => two_pass_select_online(topo, node, &online, &mut rng),
            "rejection_fallback" => sampler.select_online(node, &online, &mut rng),
            "packed_mirror" => mirror.select(node, &mut rng),
            _ => unreachable!("unknown sampling mode"),
        };
        if let Some(p) = picked {
            acc = acc.wrapping_add(p.raw() as u64);
        }
    }
    black_box(acc);
    selections
}

/// End-to-end SGD gossip learning through the modern allocation-free,
/// monomorphized protocol path.
fn sgd_run_modern(topo: &Arc<ta_overlay::Topology>, data: &RegressionData, rounds: u64) -> u64 {
    let n = topo.n();
    let cfg = SimConfig::builder(n)
        .delta(paper::DELTA)
        .transfer_time(paper::TRANSFER_TIME)
        .duration(paper::DELTA * rounds)
        .queue(QueueKind::Wheel)
        .seed(29)
        .build()
        .expect("valid bench config");
    let app = SgdGossipLearning::new(data.clone(), 0.1);
    let strategy = RandomizedTokenAccount::new(5, 10).expect("valid strategy");
    let proto = TokenProtocol::new(Arc::clone(topo), strategy, app, vec![true; n]);
    let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
    sim.run_to_end();
    black_box(sim.driver().app().mean_age());
    sim.stats().events_processed
}

/// The same workload through the pre-PR baseline: boxed dispatch, two-pass
/// selection, cloning payloads ([`crate::legacy_proto`]).
fn sgd_run_legacy(topo: &Arc<ta_overlay::Topology>, data: &RegressionData, rounds: u64) -> u64 {
    let n = topo.n();
    let cfg = SimConfig::builder(n)
        .delta(paper::DELTA)
        .transfer_time(paper::TRANSFER_TIME)
        .duration(paper::DELTA * rounds)
        .queue(QueueKind::Wheel)
        .seed(29)
        .build()
        .expect("valid bench config");
    let app = CloningSgd::new(data.clone(), 0.1);
    let strategy: Box<dyn Strategy> =
        Box::new(RandomizedTokenAccount::new(5, 10).expect("valid strategy"));
    let proto = LegacyTokenProtocol::new(Arc::clone(topo), strategy, app);
    let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
    sim.run_to_end();
    black_box(sim.driver().app().mean_age());
    sim.stats().events_processed
}

fn bench_protocol(smoke: bool) -> Vec<Sample> {
    let mut samples = Vec::new();

    // Strategy dispatch micro: identical work, only the dispatch differs.
    let iters = if smoke { 20_000 } else { 2_000_000 };
    let concrete = RandomizedTokenAccount::new(10, 20).expect("valid strategy");
    let boxed: Box<dyn Strategy> = Box::new(concrete);
    samples.push(Sample {
        id: "node_step/boxed".into(),
        value: measure_events_per_sec(|| node_steps_boxed(boxed.as_ref(), iters), smoke),
    });
    samples.push(Sample {
        id: "node_step/monomorphized".into(),
        value: measure_events_per_sec(|| node_steps_monomorphized(&concrete, iters), smoke),
    });

    // Peer sampling under churn, with a minority of neighbours online (the
    // regime where scans hurt and rejection sampling misses often).
    let (sample_n, selections) = if smoke {
        (500, 20_000)
    } else {
        (2_000, 400_000)
    };
    let mut rng = Xoshiro256pp::stream(19, 0);
    let sample_topo =
        Arc::new(k_out_random(sample_n, paper::OUT_DEGREE, &mut rng).expect("valid topology"));
    for mode in ["two_pass", "rejection_fallback", "packed_mirror"] {
        samples.push(Sample {
            id: format!("sampling_churn/{mode}"),
            value: measure_events_per_sec(
                || sampling_churn_run(&sample_topo, mode, selections, 0.3),
                smoke,
            ),
        });
    }

    // End-to-end SGD gossip learning: modern vs. legacy hot path. Long
    // enough that accounts fill and messages dominate the event mix, with
    // a model payload on the scale the cloning cost actually shows.
    let (_, _, (sgd_n, sgd_dim, sgd_rounds)) = scales(smoke);
    let mut rng = Xoshiro256pp::stream(21, 0);
    let sgd_topo =
        Arc::new(k_out_random(sgd_n, paper::OUT_DEGREE, &mut rng).expect("valid topology"));
    let sgd_data = RegressionData::generate(sgd_n, sgd_dim, 0.05, 31);
    samples.push(Sample {
        id: "sgd/legacy_boxed_cloning".into(),
        value: measure_events_per_sec(|| sgd_run_legacy(&sgd_topo, &sgd_data, sgd_rounds), smoke),
    });
    samples.push(Sample {
        id: "sgd/monomorphized_arc".into(),
        value: measure_events_per_sec(|| sgd_run_modern(&sgd_topo, &sgd_data, sgd_rounds), smoke),
    });
    samples
}

/// One gossip-learning (age-only) run through the serial or the sharded
/// engine; returns events processed. The workload is message-dominated
/// (accounts fill within a few rounds) so cross-shard traffic is heavy —
/// the honest case for the per-window synchronization overhead.
fn shard_gossip_run(
    topo: &Arc<ta_overlay::Topology>,
    rounds: u64,
    mode: Option<(usize, usize)>,
) -> u64 {
    use ta_apps::gossip_learning::GossipLearning;
    use ta_sim::shard::ShardedSimulation;
    let n = topo.n();
    let cfg = SimConfig::builder(n)
        .delta(paper::DELTA)
        .transfer_time(paper::TRANSFER_TIME)
        .duration(paper::DELTA * rounds)
        .sample_period(paper::DELTA)
        .queue(QueueKind::Wheel)
        .seed(37)
        .build()
        .expect("valid bench config");
    let app = GossipLearning::new(n, paper::TRANSFER_TIME, &vec![true; n]);
    let strategy = RandomizedTokenAccount::new(5, 10).expect("valid strategy");
    let proto = TokenProtocol::new(Arc::clone(topo), strategy, app, vec![true; n]);
    match mode {
        None => {
            let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
            sim.run_to_end();
            sim.stats().events_processed
        }
        Some((shards, threads)) => {
            let mut sim = ShardedSimulation::new(cfg, &AlwaysOn, proto, shards, threads);
            sim.run_to_end();
            sim.stats().events_processed
        }
    }
}

/// Windows/sec through one synchronization point, pure rendezvous cost
/// (no simulation work at all — the empty-window case):
///
/// * `barrier` replays the retired engine's per-window discipline — two
///   `std::sync::Barrier::wait` rendezvous per window across all workers
///   plus the coordinator;
/// * `channel` runs the pipeline's dispatch — one mpsc work send per
///   worker and one shared done-channel receive each, which is the entire
///   traffic of a window the gate skips.
fn sync_windows(mode: &str, workers: usize, windows: u64) -> u64 {
    match mode {
        "barrier" => {
            let barrier = std::sync::Barrier::new(workers + 1);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        for _ in 0..windows {
                            barrier.wait();
                            barrier.wait();
                        }
                    });
                }
                for _ in 0..windows {
                    barrier.wait();
                    barrier.wait();
                }
            });
        }
        "channel" => {
            use std::sync::mpsc;
            std::thread::scope(|scope| {
                let (done_tx, done_rx) = mpsc::channel::<()>();
                let mut txs = Vec::with_capacity(workers);
                for _ in 0..workers {
                    let (tx, rx) = mpsc::channel::<()>();
                    let done = done_tx.clone();
                    txs.push(tx);
                    scope.spawn(move || {
                        while rx.recv().is_ok() {
                            if done.send(()).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(done_tx);
                for _ in 0..windows {
                    for tx in &txs {
                        tx.send(()).expect("worker alive");
                    }
                    for _ in 0..workers {
                        done_rx.recv().expect("worker alive");
                    }
                }
            });
        }
        _ => unreachable!("unknown sync mode"),
    }
    windows
}

/// The `shard_sync` section: per-window synchronization overhead of the
/// channel pipeline against the retired barrier rendezvous. The
/// `empty_window` micro isolates the pure sync cost (windows/sec, no
/// simulation work); the `engine` rows run the real gossip workload
/// through the pipeline at S ∈ {2, 4} × threads ∈ {1, 2, 4} — on a
/// single-core container the thread axis measures scheduling overhead,
/// not speedup (see ROADMAP on cross-regeneration comparisons).
fn bench_shard_sync(smoke: bool) -> Vec<Sample> {
    let windows = if smoke { 500 } else { 5_000 };
    let mut samples = Vec::new();
    for workers in [2usize, 4] {
        for mode in ["barrier", "channel"] {
            samples.push(Sample {
                id: format!("empty_window/{mode}_w{workers}"),
                value: measure_events_per_sec(|| sync_windows(mode, workers, windows), smoke),
            });
        }
    }
    let (n, rounds) = if smoke { (300, 6) } else { (1_000, 16) };
    let mut rng = Xoshiro256pp::stream(43, 0);
    let topo = Arc::new(k_out_random(n, paper::OUT_DEGREE, &mut rng).expect("valid topology"));
    for shards in [2usize, 4] {
        for threads in [1usize, 2, 4] {
            samples.push(Sample {
                id: format!("engine/s{shards}_t{threads}"),
                value: measure_events_per_sec(
                    || shard_gossip_run(&topo, rounds, Some((shards, threads))),
                    smoke,
                ),
            });
            // Work-distribution counts from one representative run: the
            // gate counts claims/steals/skips unconditionally (they live
            // under the gate lock), so no profiling env is needed.
            let prof = shard_gossip_profile(&topo, rounds, shards, threads);
            for (what, value) in [
                ("gate_claims", prof.claims),
                ("gate_steals", prof.steals),
                ("gate_skipped", prof.skipped_windows),
            ] {
                samples.push(Sample {
                    id: format!("{what}/s{shards}_t{threads}"),
                    value: value as f64,
                });
            }
        }
    }
    samples
}

/// Runs the sharded gossip workload once and returns its profile block
/// (only the unconditional gate counts are meaningful without
/// `TA_PROFILE=1`).
fn shard_gossip_profile(
    topo: &Arc<ta_overlay::Topology>,
    rounds: u64,
    shards: usize,
    threads: usize,
) -> ta_telemetry::ProfileData {
    use ta_apps::gossip_learning::GossipLearning;
    use ta_sim::shard::ShardedSimulation;
    let n = topo.n();
    let cfg = SimConfig::builder(n)
        .delta(paper::DELTA)
        .transfer_time(paper::TRANSFER_TIME)
        .duration(paper::DELTA * rounds)
        .sample_period(paper::DELTA)
        .queue(QueueKind::Wheel)
        .seed(37)
        .build()
        .expect("valid bench config");
    let app = GossipLearning::new(n, paper::TRANSFER_TIME, &vec![true; n]);
    let strategy = RandomizedTokenAccount::new(5, 10).expect("valid strategy");
    let proto = TokenProtocol::new(Arc::clone(topo), strategy, app, vec![true; n]);
    let mut sim = ShardedSimulation::new(cfg, &AlwaysOn, proto, shards, threads);
    sim.run_to_end();
    sim.profile()
}

/// The `shard` section: S=1 overhead against the monomorphized serial
/// engine, and multi-shard scaling at S ∈ {2, 4} (threads = S). All four
/// runs are byte-identical in results; only wall-clock differs.
fn bench_shard(smoke: bool) -> Vec<Sample> {
    let (n, rounds) = if smoke { (300, 6) } else { (2_000, 24) };
    let mut rng = Xoshiro256pp::stream(41, 0);
    let topo = Arc::new(k_out_random(n, paper::OUT_DEGREE, &mut rng).expect("valid topology"));
    let mut samples = Vec::new();
    samples.push(Sample {
        id: "gossip/serial_engine".into(),
        value: measure_events_per_sec(|| shard_gossip_run(&topo, rounds, None), smoke),
    });
    for (id, shards, threads) in [
        ("gossip/s1_t1", 1, 1),
        // s2_t1 runs two shards inline on the coordinator thread: it
        // isolates the window/gate machinery from thread context
        // switches (the two are indistinguishable in s2_t2 on one core).
        ("gossip/s2_t1", 2, 1),
        ("gossip/s2_t2", 2, 2),
        ("gossip/s4_t4", 4, 4),
    ] {
        samples.push(Sample {
            id: id.into(),
            value: measure_events_per_sec(
                || shard_gossip_run(&topo, rounds, Some((shards, threads))),
                smoke,
            ),
        });
    }
    samples
}

/// Times a micro sweep through the bounded-pool grid executor.
fn bench_sweep(smoke: bool) -> (f64, usize, usize) {
    let runs = 2;
    let mut base = ExperimentSpec::paper_defaults(
        AppKind::PushGossip,
        StrategySpec::Proactive,
        if smoke { 60 } else { 200 },
    )
    .with_rounds(if smoke { 10 } else { 40 })
    .with_runs(runs)
    .with_seed(7);
    base.topology = TopologyKind::KOut { k: 8 };
    let strategies = [
        StrategySpec::Proactive,
        StrategySpec::Simple { c: 10 },
        StrategySpec::Simple { c: 20 },
        StrategySpec::Generalized { a: 5, c: 10 },
        StrategySpec::Randomized { a: 5, c: 10 },
        StrategySpec::Randomized { a: 10, c: 20 },
    ];
    let specs: Vec<ExperimentSpec> = strategies
        .iter()
        .map(|&strategy| ExperimentSpec {
            strategy,
            ..base.clone()
        })
        .collect();
    let prepared = prepare_topology(&base).expect("bench topology generates");
    let start = Instant::now();
    let results = run_grid_prepared(&specs, &prepared).expect("bench sweep runs");
    let wall = start.elapsed().as_secs_f64();
    black_box(results.len());
    (
        wall,
        specs.len() * runs,
        ta_experiments::pool::max_workers(),
    )
}

/// Runs every section and writes the JSON report; returns the report text.
pub fn run(smoke: bool, out_path: &str) -> String {
    eprintln!(
        "bench_sim: event_queue ({})...",
        if smoke { "smoke" } else { "full" }
    );
    let queue_samples = bench_event_queue(smoke);
    eprintln!("bench_sim: batch...");
    let batch_samples = bench_batch(smoke);
    eprintln!("bench_sim: engine...");
    let engine_samples = bench_engine(smoke);
    eprintln!("bench_sim: protocol...");
    let protocol_samples = bench_protocol(smoke);
    eprintln!("bench_sim: shard...");
    let shard_samples = bench_shard(smoke);
    eprintln!("bench_sim: shard_sync...");
    let shard_sync_samples = bench_shard_sync(smoke);
    eprintln!("bench_sim: sweep...");
    let (sweep_wall, sweep_jobs, workers) = bench_sweep(smoke);

    // Headline speedups: slab wheel vs. the binary-heap baseline, same run.
    let speedups = {
        let mut v = Vec::new();
        for name in ["uniform", "periodic"] {
            v.push(Sample {
                id: format!("event_queue_{name}_slab_wheel_vs_binary_heap"),
                value: find(&queue_samples, &format!("slab_wheel/{name}"))
                    / find(&queue_samples, &format!("binary_heap/{name}")),
            });
            v.push(Sample {
                id: format!("event_queue_{name}_slab_wheel_vs_legacy_wheel"),
                value: find(&queue_samples, &format!("slab_wheel/{name}"))
                    / find(&queue_samples, &format!("legacy_wheel/{name}")),
            });
        }
        let engine_ids: Vec<&str> = engine_samples
            .iter()
            .map(|s| s.id.as_str())
            .filter(|id| id.ends_with("/binary_heap"))
            .collect();
        for heap_id in engine_ids {
            let stem = heap_id.trim_end_matches("/binary_heap");
            v.push(Sample {
                id: format!("engine_{}_slab_wheel_vs_binary_heap", stem),
                value: find(&engine_samples, &format!("{stem}/slab_wheel"))
                    / find(&engine_samples, heap_id),
            });
        }
        // Protocol-layer headlines: dispatch, sampling, end-to-end.
        v.push(Sample {
            id: "protocol_node_step_monomorphized_vs_boxed".into(),
            value: find(&protocol_samples, "node_step/monomorphized")
                / find(&protocol_samples, "node_step/boxed"),
        });
        v.push(Sample {
            id: "protocol_sampling_packed_vs_two_pass".into(),
            value: find(&protocol_samples, "sampling_churn/packed_mirror")
                / find(&protocol_samples, "sampling_churn/two_pass"),
        });
        v.push(Sample {
            id: "protocol_sampling_packed_vs_rejection".into(),
            value: find(&protocol_samples, "sampling_churn/packed_mirror")
                / find(&protocol_samples, "sampling_churn/rejection_fallback"),
        });
        v.push(Sample {
            id: "protocol_sgd_end_to_end_vs_legacy".into(),
            value: find(&protocol_samples, "sgd/monomorphized_arc")
                / find(&protocol_samples, "sgd/legacy_boxed_cloning"),
        });
        // Burst batching and sharded-engine headlines.
        v.push(Sample {
            id: "event_queue_burst16_batched_vs_single".into(),
            value: find(&queue_samples, "slab_wheel/burst16_batched")
                / find(&queue_samples, "slab_wheel/burst16_single"),
        });
        // Batch-drain headlines: what drain_ready buys over per-event
        // pops on dense waves, and the dense-tick slab-vs-legacy ratio
        // under batch draining (the ROADMAP deep-level contiguity item).
        for queue in ["binary_heap", "legacy_wheel", "slab_wheel"] {
            v.push(Sample {
                id: format!("batch_dense_wave_drain_vs_pop_{queue}"),
                value: find(&batch_samples, &format!("dense_wave/{queue}/drain"))
                    / find(&batch_samples, &format!("dense_wave/{queue}/pop")),
            });
        }
        v.push(Sample {
            id: "batch_dense_wave_drain_slab_vs_legacy".into(),
            value: find(&batch_samples, "dense_wave/slab_wheel/drain")
                / find(&batch_samples, "dense_wave/legacy_wheel/drain"),
        });
        for (id, sample) in [
            ("shard_s1_vs_serial_engine", "gossip/s1_t1"),
            ("shard_s2_vs_serial_engine", "gossip/s2_t2"),
            ("shard_s4_vs_serial_engine", "gossip/s4_t4"),
        ] {
            v.push(Sample {
                id: id.into(),
                value: find(&shard_samples, sample) / find(&shard_samples, "gossip/serial_engine"),
            });
        }
        // Per-window sync overhead: the pipeline's channel dispatch vs the
        // retired two-wait barrier rendezvous, pure-sync case.
        for w in [2, 4] {
            v.push(Sample {
                id: format!("shard_sync_channel_vs_barrier_w{w}"),
                value: find(&shard_sync_samples, &format!("empty_window/channel_w{w}"))
                    / find(&shard_sync_samples, &format!("empty_window/barrier_w{w}")),
            });
        }
        v
    };

    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"ta-bench-sim/v1\",");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(
        out,
        "  \"units\": {{ \"event_queue\": \"events/sec\", \"batch\": \"events/sec\", \"engine\": \"events/sec\", \"protocol\": \"events/sec\", \"shard\": \"events/sec\", \"shard_sync\": \"windows/sec (empty_window) or events/sec (engine)\", \"speedup\": \"ratio\", \"sweep\": \"seconds\" }},"
    );
    json_section(&mut out, "scale", &scale_samples(smoke), false);
    json_section(&mut out, "event_queue", &queue_samples, false);
    json_section(&mut out, "batch", &batch_samples, false);
    json_section(&mut out, "engine", &engine_samples, false);
    json_section(&mut out, "protocol", &protocol_samples, false);
    json_section(&mut out, "shard", &shard_samples, false);
    json_section(&mut out, "shard_sync", &shard_sync_samples, false);
    json_section(&mut out, "speedup", &speedups, false);
    let _ = writeln!(out, "  \"sweep\": {{");
    let _ = writeln!(out, "    \"wall_clock_seconds\": {sweep_wall:.3},");
    let _ = writeln!(out, "    \"jobs\": {sweep_jobs},");
    let _ = writeln!(out, "    \"pool_workers\": {workers}");
    let _ = writeln!(out, "  }}");
    out.push('}');
    out.push('\n');

    match std::fs::write(out_path, &out) {
        Ok(()) => eprintln!("bench_sim: wrote {out_path}"),
        Err(e) => {
            eprintln!("bench_sim: cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    out
}

/// Prints a metric-by-metric comparison of `current` against the
/// baseline report at `baseline_path` (typically the committed
/// `BENCH_sim.json`), then surfaces the dense same-tick periodic case
/// explicitly (the trade-off the hybrid spill wheel was built to close),
/// so movement in either direction is one line away in every CI log.
/// Value movement never fails; returns `false` on report **schema**
/// drift — a section name present in only one of the two reports (see
/// [`crate::report::section_drift`]) — so a harness refactor cannot
/// silently drop a comparison family like the `batch` rows.
#[must_use]
pub fn diff_report(current: &str, baseline_path: &str) -> bool {
    let schema_ok =
        crate::report::diff_report(current, baseline_path, &["sweep/", "speedup/", "scale/"]);
    let new = crate::report::parse_report(current);
    let pick = |entries: &[(String, f64)], key: &str| {
        entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(f64::NAN)
    };
    let slab = pick(&new, "event_queue/slab_wheel/periodic");
    let legacy = pick(&new, "event_queue/legacy_wheel/periodic");
    println!(
        "dense same-tick periodic case: slab_wheel {slab:.0} vs legacy_wheel {legacy:.0} \
         ev/s (slab/legacy = {:.2}x; hybrid spill runs, see ROADMAP)",
        slab / legacy
    );
    schema_ok
}

/// CLI entry: `bench_sim [--test] [--out PATH] [--diff BASELINE]`.
pub fn run_from_args() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--test" || a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let diff_base = args
        .iter()
        .position(|a| a == "--diff")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let report = run(smoke, &out_path);
    println!("{report}");
    if let Some(base) = diff_base {
        if !diff_report(&report, &base) {
            eprintln!("bench_sim: report schema drifted from {base}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed_and_complete() {
        let dir = std::env::temp_dir().join(format!("ta-bench-sim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sim.json");
        let report = run(true, path.to_str().unwrap());
        assert!(report.starts_with('{') && report.trim_end().ends_with('}'));
        for key in [
            "\"scale\"",
            "host_cores",
            "\"batch\"",
            "dense_wave/binary_heap/pop",
            "dense_wave/binary_heap/drain",
            "dense_wave/legacy_wheel/pop",
            "dense_wave/legacy_wheel/drain",
            "dense_wave/slab_wheel/pop",
            "dense_wave/slab_wheel/drain",
            "batch_dense_wave_drain_vs_pop_slab_wheel",
            "batch_dense_wave_drain_slab_vs_legacy",
            "echo/binary_heap",
            "push_gossip/slab_wheel",
            "sgd/legacy_boxed_cloning",
            "sgd/monomorphized_arc",
            "\"event_queue\"",
            "\"engine\"",
            "\"protocol\"",
            "\"speedup\"",
            "\"sweep\"",
            "binary_heap/periodic",
            "legacy_wheel/periodic",
            "slab_wheel/periodic",
            "node_step/boxed",
            "node_step/monomorphized",
            "sampling_churn/two_pass",
            "sampling_churn/rejection_fallback",
            "sampling_churn/packed_mirror",
            "protocol_node_step_monomorphized_vs_boxed",
            "protocol_sampling_packed_vs_two_pass",
            "protocol_sgd_end_to_end_vs_legacy",
            "\"shard\"",
            "gossip/serial_engine",
            "gossip/s1_t1",
            "gossip/s2_t1",
            "gossip/s2_t2",
            "gossip/s4_t4",
            "shard_s1_vs_serial_engine",
            "\"shard_sync\"",
            "empty_window/barrier_w2",
            "empty_window/channel_w2",
            "empty_window/barrier_w4",
            "empty_window/channel_w4",
            "engine/s2_t1",
            "engine/s2_t2",
            "engine/s2_t4",
            "engine/s4_t1",
            "engine/s4_t2",
            "engine/s4_t4",
            "shard_sync_channel_vs_barrier_w2",
            "shard_sync_channel_vs_barrier_w4",
            "slab_wheel/burst16_single",
            "slab_wheel/burst16_batched",
            "event_queue_burst16_batched_vs_single",
            "wall_clock_seconds",
        ] {
            assert!(report.contains(key), "missing {key} in report:\n{report}");
        }
        assert_eq!(std::fs::read_to_string(&path).unwrap(), report);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn diff_report_survives_missing_baseline() {
        // Must not panic or fail on a nonexistent path.
        assert!(diff_report("{}", "/nonexistent/baseline.json"));
    }

    #[test]
    fn diff_report_fails_on_section_drift() {
        let dir = std::env::temp_dir().join(format!("ta-bench-drift-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base_path = dir.join("baseline.json");
        std::fs::write(
            &base_path,
            "{\n  \"engine\": {\n    \"x\": 1.0\n  },\n  \"batch\": {\n    \"y\": 2.0\n  }\n}\n",
        )
        .unwrap();
        // Same sections: passes.
        let ok =
            "{\n  \"engine\": {\n    \"x\": 9.0\n  },\n  \"batch\": {\n    \"y\": 8.0\n  }\n}\n";
        assert!(diff_report(ok, base_path.to_str().unwrap()));
        // Dropped `batch` section: schema drift, must fail.
        let dropped = "{\n  \"engine\": {\n    \"x\": 9.0\n  }\n}\n";
        assert!(!diff_report(dropped, base_path.to_str().unwrap()));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
