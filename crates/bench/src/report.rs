//! Shared machinery of the `BENCH_*.json` harnesses.
//!
//! `bench_sim` and `bench_live` write the same two-level JSON shape
//! (sections of numeric leaves), parse it back with the same line
//! parser, and print the same non-failing baseline diff in CI. This
//! module is the single home of that machinery so the two reports
//! cannot drift in format.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use criterion::black_box;

/// One measured number, in the unit its section implies.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Key within the JSON section.
    pub id: String,
    /// Events/sec for throughput entries, seconds for wall-clock entries.
    pub value: f64,
}

/// Repeats `workload` (which reports how many events it processed) until
/// the measurement budget is spent; returns events/sec. In smoke mode the
/// workload runs exactly once (CI validates the harness, not the
/// numbers).
pub fn measure_events_per_sec<F: FnMut() -> u64>(mut workload: F, smoke: bool) -> f64 {
    if smoke {
        let start = Instant::now();
        let events = workload();
        return events as f64 / start.elapsed().as_secs_f64().max(1e-9);
    }
    // Warmup invocation (fills caches, grows slabs/heaps to steady state).
    black_box(workload());
    let budget = Duration::from_millis(1_000);
    let start = Instant::now();
    let mut events = 0u64;
    loop {
        events += workload();
        if start.elapsed() >= budget {
            break;
        }
    }
    events as f64 / start.elapsed().as_secs_f64()
}

/// Appends one `"name": { ... }` section of samples to the report.
pub fn json_section(out: &mut String, name: &str, samples: &[Sample], last: bool) {
    let _ = writeln!(out, "  \"{name}\": {{");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{}\": {:.1}{comma}", s.id, s.value);
    }
    let _ = writeln!(out, "  }}{}", if last { "" } else { "," });
}

/// Looks up a sample by id (`NaN` when absent).
pub fn find(samples: &[Sample], id: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.id == id)
        .map(|s| s.value)
        .unwrap_or(f64::NAN)
}

/// Parses one of our own reports into `section/key -> value` pairs.
///
/// The format is the fixed subset the harnesses emit (two-level objects
/// of numeric leaves), so a line parser suffices — no JSON dependency.
pub fn parse_report(text: &str) -> Vec<(String, f64)> {
    let mut entries = Vec::new();
    let mut section = String::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, rest)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        let rest = rest.trim();
        if rest == "{" {
            section = key;
        } else if let Ok(v) = rest.parse::<f64>() {
            if !section.is_empty() {
                entries.push((format!("{section}/{key}"), v));
            }
        }
    }
    entries
}

/// Extracts the top-level section names of a report (objects opened with
/// a `"name": {` line), in order of appearance.
pub fn section_names(text: &str) -> Vec<String> {
    let mut names = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, rest)) = line.split_once(':') else {
            continue;
        };
        if rest.trim() == "{" {
            names.push(key.trim().trim_matches('"').to_string());
        }
    }
    names
}

/// Compares the section sets of two reports. Returns a human-readable
/// drift description if either report carries a section the other lacks —
/// the schema gate that keeps a bench refactor from silently dropping a
/// whole comparison family (values may drift freely; section *names* may
/// not). `None` means the schemas agree.
pub fn section_drift(current: &str, baseline: &str) -> Option<String> {
    let cur = section_names(current);
    let base = section_names(baseline);
    let missing: Vec<&String> = base.iter().filter(|s| !cur.contains(s)).collect();
    let unknown: Vec<&String> = cur.iter().filter(|s| !base.contains(s)).collect();
    if missing.is_empty() && unknown.is_empty() {
        return None;
    }
    let mut msg = String::from("bench report schema drift:");
    if !missing.is_empty() {
        let _ = write!(msg, " missing sections {missing:?}");
    }
    if !unknown.is_empty() {
        let _ = write!(msg, " unknown sections {unknown:?}");
    }
    let _ = write!(
        msg,
        " (regenerate the committed baseline together with the harness change)"
    );
    Some(msg)
}

/// Prints a metric-by-metric comparison of `current` against the
/// baseline report at `baseline_path` (typically a committed
/// `BENCH_*.json`). Sections whose name starts with one of
/// `context_prefixes` are shown without a faster/slower verdict
/// (wall-clock, workload scale, ratios-of-ratios: context, not
/// verdicts). Value differences never fail the build: smoke-mode CI
/// values are single-shot and noisy; the report exists so perf movement
/// is *visible* in PR logs, with regressions left to human judgement.
/// **Schema** differences do fail: returns `false` when the two reports
/// disagree on section names (see [`section_drift`]), so a bench
/// refactor cannot silently drop comparisons. A missing baseline file
/// skips the diff and passes.
#[must_use]
pub fn diff_report(current: &str, baseline_path: &str, context_prefixes: &[&str]) -> bool {
    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench: no baseline at {baseline_path} ({e}); skipping diff");
            return true;
        }
    };
    let baseline: Vec<(String, f64)> = parse_report(&baseline_text);
    let new: Vec<(String, f64)> = parse_report(current);
    println!("\n== bench diff vs {baseline_path} (informational, never fails) ==");
    println!(
        "{:<58} {:>14} {:>14} {:>7}",
        "metric", "baseline", "current", "ratio"
    );
    for (key, new_v) in &new {
        let Some((_, base_v)) = baseline.iter().find(|(k, _)| k == key) else {
            println!("{key:<58} {:>14} {new_v:>14.1} {:>7}", "-", "new");
            continue;
        };
        let ratio = if *base_v != 0.0 {
            new_v / base_v
        } else {
            f64::NAN
        };
        let marker = if context_prefixes.iter().any(|p| key.starts_with(p)) {
            ""
        } else if ratio < 0.9 {
            "  <-- slower"
        } else if ratio > 1.1 {
            "  <-- faster"
        } else {
            ""
        };
        println!("{key:<58} {base_v:>14.1} {new_v:>14.1} {ratio:>6.2}x{marker}");
    }
    for (key, _) in &baseline {
        if !new.iter().any(|(k, _)| k == key) {
            println!("{key:<58} (present in baseline only)");
        }
    }
    match section_drift(current, &baseline_text) {
        Some(drift) => {
            eprintln!("{drift}");
            false
        }
        None => true,
    }
}

/// Physical cores visible to this process — recorded in every report so
/// committed numbers carry their measurement context (a 1-core container
/// and a 32-core workstation are not comparable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_parser_roundtrips_own_format() {
        let text = "{\n  \"schema\": \"x\",\n  \"event_queue\": {\n    \"a/b\": 12.5,\n    \"c\": 3.0\n  },\n  \"sweep\": {\n    \"wall\": 0.5\n  }\n}\n";
        let entries = parse_report(text);
        assert_eq!(
            entries,
            vec![
                ("event_queue/a/b".to_string(), 12.5),
                ("event_queue/c".to_string(), 3.0),
                ("sweep/wall".to_string(), 0.5),
            ]
        );
    }

    #[test]
    fn diff_report_survives_missing_baseline() {
        // Must not panic or fail on a nonexistent path.
        assert!(diff_report("{}", "/nonexistent/baseline.json", &[]));
    }

    #[test]
    fn section_drift_detects_missing_and_unknown_sections() {
        let base = "{\n  \"a\": {\n    \"x\": 1.0\n  },\n  \"b\": {\n    \"y\": 2.0\n  }\n}\n";
        let same = base;
        assert_eq!(section_drift(same, base), None);
        let missing = "{\n  \"a\": {\n    \"x\": 1.0\n  }\n}\n";
        let drift = section_drift(missing, base).expect("missing section is drift");
        assert!(drift.contains("missing"), "{drift}");
        assert!(drift.contains('b'), "{drift}");
        let unknown = "{\n  \"a\": {\n    \"x\": 1.0\n  },\n  \"b\": {\n    \"y\": 2.0\n  },\n  \"c\": {\n    \"z\": 3.0\n  }\n}\n";
        let drift = section_drift(unknown, base).expect("unknown section is drift");
        assert!(drift.contains("unknown"), "{drift}");
        // One-line objects (the `units` header) are not sections.
        let with_units = "{\n  \"units\": { \"a\": \"x\" },\n  \"a\": {\n    \"x\": 1.0\n  },\n  \"b\": {\n    \"y\": 2.0\n  }\n}\n";
        assert_eq!(section_drift(with_units, base), None);
    }

    #[test]
    fn sections_render_and_find_works() {
        let samples = vec![
            Sample {
                id: "a".into(),
                value: 1.5,
            },
            Sample {
                id: "b".into(),
                value: 2.0,
            },
        ];
        let mut out = String::from("{\n");
        json_section(&mut out, "sec", &samples, true);
        out.push('}');
        assert!(out.contains("\"sec\""));
        assert_eq!(parse_report(&out).len(), 2);
        assert_eq!(find(&samples, "b"), 2.0);
        assert!(find(&samples, "zzz").is_nan());
        assert!(host_cores() >= 1);
    }
}
