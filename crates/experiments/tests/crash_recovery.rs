//! Kill-mid-burst crash recovery: SIGKILL the `live` binary while it is
//! journaling under full load, then prove the recovered state equals an
//! **independent reference fold** of what survived on disk.
//!
//! The reference fold is deliberately test-local: it re-derives the
//! balances and per-shard books from the newest CRC-valid snapshot plus
//! every decodable journal frame using only the parsing primitives
//! (`snapshot::load`, `scan_segment`) — none of `recovery.rs`'s replay
//! logic — so a bug in recovery cannot hide by agreeing with itself.
//!
//! Matrix: workers {1, 4} × shards {1, 4, 16}, per the durability
//! acceptance criteria.

use std::path::Path;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use ta_live::persist::journal::{list_segments, scan_segment, FramePayload};
use ta_live::persist::snapshot::{list_snapshot_files, load as load_snapshot, SnapshotData};
use ta_live::persist::{read_manifest, recover};

/// An independently folded image of the on-disk state.
struct Reference {
    balances: Vec<i64>,
    granted: Vec<u64>,
    burned: Vec<u64>,
}

/// Mirrors the contiguous-block shard layout from geometry alone.
fn shard_of(client: usize, clients: usize, shards: usize) -> usize {
    let block = clients.div_ceil(shards).max(1);
    (client / block).min(shards - 1)
}

/// Folds snapshot + surviving journal prefix into a [`Reference`],
/// without touching `recovery.rs`'s replay path.
fn reference_fold(dir: &Path) -> Reference {
    let m = read_manifest(dir).expect("manifest must survive the kill");

    // Newest CRC-valid snapshot, if any.
    let snap: Option<SnapshotData> = list_snapshot_files(dir)
        .unwrap()
        .into_iter()
        .rev()
        .find_map(|(_, p)| load_snapshot(&p).ok());

    let mut balances = vec![0i64; m.clients];
    let mut granted = vec![0u64; m.shards];
    let mut burned = vec![0u64; m.shards];
    let mut watermark = vec![0u64; m.shards];
    if let Some(s) = &snap {
        let mut client = 0usize;
        for (i, sh) in s.shards.iter().enumerate() {
            granted[i] = sh.granted;
            burned[i] = sh.burned;
            watermark[i] = sh.watermark;
            for &b in &sh.balances {
                balances[client] = b;
                client += 1;
            }
        }
        assert_eq!(client, m.clients, "snapshot covers every client");
    }

    // Replay every decodable frame up to the first damage; deltas
    // commute, so per-shard sums are order-independent.
    for (_, path) in list_segments(dir).unwrap() {
        let scan = scan_segment(&std::fs::read(&path).unwrap());
        for frame in &scan.frames {
            let s = frame.shard as usize;
            match &frame.payload {
                FramePayload::Deltas(recs) => {
                    for r in recs {
                        if r.seq < watermark[s] {
                            continue; // already inside the snapshot
                        }
                        assert_eq!(
                            shard_of(r.client as usize, m.clients, m.shards),
                            s,
                            "journal record landed in the wrong shard"
                        );
                        balances[r.client as usize] += i64::from(r.delta);
                        if r.delta >= 0 {
                            granted[s] += r.delta as u64;
                        } else {
                            burned[s] += (-i64::from(r.delta)) as u64;
                        }
                    }
                }
                FramePayload::Ranges(recs) => {
                    for r in recs {
                        if r.seq < watermark[s] {
                            continue;
                        }
                        let (lo, hi) = (r.lo as usize, r.lo as usize + r.len as usize);
                        assert!(
                            shard_of(lo, m.clients, m.shards) == s
                                && shard_of(hi - 1, m.clients, m.shards) == s,
                            "range grant crosses a shard boundary"
                        );
                        for b in &mut balances[lo..hi] {
                            *b += 1;
                        }
                        granted[s] += u64::from(r.len);
                    }
                }
            }
        }
        if scan.error.is_some() {
            break; // everything after the damage is unreachable
        }
    }
    Reference {
        balances,
        granted,
        burned,
    }
}

/// Launches the binary under load, waits for the journal (and at least
/// one snapshot, when requested) to materialize, and SIGKILLs it.
fn kill_mid_burst(dir: &Path, workers: usize, shards: usize, snapshots: bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_live"));
    cmd.args([
        "--clients",
        "3000",
        "--workers",
        &workers.to_string(),
        "--shards",
        &shards.to_string(),
        "--round-ms",
        "20",
        "--duration-secs",
        "30",
        "--commit-ms",
        "1",
        "--journal-dir",
    ])
    .arg(dir)
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    if snapshots {
        cmd.args(["--snapshot-every", "0.08"]);
    }
    let mut child = cmd.spawn().expect("spawn live binary");

    // Poll the directory until there is real work to destroy: tens of
    // kilobytes of journal, plus a completed snapshot when asked for.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let journal_bytes: u64 = list_segments(dir)
            .map(|v| {
                v.iter()
                    .filter_map(|(_, p)| p.metadata().ok())
                    .map(|md| md.len())
                    .sum()
            })
            .unwrap_or(0);
        let snapped = !snapshots
            || list_snapshot_files(dir)
                .map(|v| !v.is_empty())
                .unwrap_or(false);
        if journal_bytes > 30_000 && snapped {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "journal never grew: bytes={journal_bytes}, snapshot={snapped}"
        );
        if let Ok(Some(status)) = child.try_wait() {
            panic!("live binary exited early: {status}");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
}

fn check_crash_recovery(workers: usize, shards: usize, snapshots: bool) {
    let dir = std::env::temp_dir().join(format!(
        "ta-crash-{}-w{workers}-s{shards}-{snapshots}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    kill_mid_burst(&dir, workers, shards, snapshots);

    let state = recover(&dir).expect("recovery after SIGKILL must succeed");
    assert_eq!(state.clients, 3000);
    assert_eq!(state.shards, shards);

    let reference = reference_fold(&dir);
    assert_eq!(
        state.balances, reference.balances,
        "recovered balances != independent fold of the surviving prefix"
    );
    assert_eq!(state.granted, reference.granted, "granted books diverge");
    assert_eq!(state.burned, reference.burned, "burned books diverge");

    // Exact conservation, shard by shard, straight from the fold.
    for s in 0..shards {
        let lo = s * 3000usize.div_ceil(shards).max(1);
        let hi = ((s + 1) * 3000usize.div_ceil(shards).max(1)).min(3000);
        let sum: i64 = reference.balances[lo.min(3000)..hi].iter().sum();
        assert_eq!(
            reference.granted[s] as i64 - reference.burned[s] as i64,
            sum,
            "shard {s} books do not conserve"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Pulls one `key=value` integer out of an `event=` line.
fn event_field(stdout: &str, event: &str, key: &str) -> u64 {
    let line = stdout
        .lines()
        .find(|l| l.starts_with(&format!("event={event}")))
        .unwrap_or_else(|| panic!("no event={event} line in:\n{stdout}"));
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {key}= field in: {line}"))
}

/// The degraded-mode leg of the matrix: the binary runs **to
/// completion** through an injected disk-full outage under
/// `--on-journal-fail degrade`. It must keep admitting (exit 0 with the
/// conservation gate green), restart the writer once space returns, and
/// leave a directory whose fold still reconciles exactly — the books
/// survive a mid-run hole in the journal.
#[test]
fn degraded_run_survives_disk_full_and_reconciles() {
    let dir = std::env::temp_dir().join(format!("ta-crash-degrade-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let out = Command::new(env!("CARGO_BIN_EXE_live"))
        .args([
            "--clients",
            "3000",
            "--workers",
            "4",
            "--shards",
            "4",
            "--round-ms",
            "20",
            "--duration-secs",
            "4",
            "--commit-ms",
            "1",
            "--stats-every",
            "200",
            "--fault",
            "enospc_after:30000",
            "--on-journal-fail",
            "degrade",
            "--journal-dir",
        ])
        .arg(&dir)
        .stderr(Stdio::inherit())
        .output()
        .expect("run live binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "degrade policy must keep the run green, got {}:\n{stdout}",
        out.status
    );

    // The health ledger closes the self-healing books: durability was
    // suspended (records dropped) and the writer came back.
    assert!(event_field(&stdout, "health", "dropped_records") > 0);
    assert!(
        event_field(&stdout, "health", "writer_restarts") >= 1,
        "the writer never restarted:\n{stdout}"
    );
    assert!(
        stdout
            .lines()
            .any(|l| l.starts_with("event=health") && l.contains("durability=ok")),
        "durability must be back by shutdown:\n{stdout}"
    );

    // Recovery agrees with the independent fold, and the fold conserves
    // shard by shard despite the dropped slice.
    let state = recover(&dir).expect("recovery after a degraded run must succeed");
    let reference = reference_fold(&dir);
    assert_eq!(state.balances, reference.balances, "balances diverge");
    assert_eq!(state.granted, reference.granted, "granted books diverge");
    assert_eq!(state.burned, reference.burned, "burned books diverge");
    for s in 0..4usize {
        let block = 3000usize.div_ceil(4).max(1);
        let (lo, hi) = (s * block, ((s + 1) * block).min(3000));
        let sum: i64 = reference.balances[lo..hi].iter().sum();
        assert_eq!(
            reference.granted[s] as i64 - reference.burned[s] as i64,
            sum,
            "shard {s} books do not conserve"
        );
    }

    // And the recover-only mode of the binary agrees too (exit 0).
    let rec = Command::new(env!("CARGO_BIN_EXE_live"))
        .args(["--recover", "--journal-dir"])
        .arg(&dir)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .status()
        .expect("run live --recover");
    assert!(rec.success(), "live --recover rejected the directory");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_burst_1_worker_1_shard() {
    check_crash_recovery(1, 1, false);
}

#[test]
fn kill_mid_burst_1_worker_4_shards() {
    check_crash_recovery(1, 4, true);
}

#[test]
fn kill_mid_burst_1_worker_16_shards() {
    check_crash_recovery(1, 16, false);
}

#[test]
fn kill_mid_burst_4_workers_1_shard() {
    check_crash_recovery(4, 1, true);
}

#[test]
fn kill_mid_burst_4_workers_4_shards() {
    check_crash_recovery(4, 4, false);
}

#[test]
fn kill_mid_burst_4_workers_16_shards() {
    check_crash_recovery(4, 16, true);
}
