//! ta-scope: the client side of the live observability plane.
//!
//! Connects to a `live --obs-listen` server, speaks the line protocol
//! (`STATS` / `WATCH <ms>` / `TRACE <n>`), parses `ta-stats/v2` lines
//! with a small hand-rolled JSON reader (this path must stay
//! dependency-free, like everything else in the workspace), and diffs
//! consecutive snapshots into human-scale **rates**: decisions/sec,
//! reactive-held ratio, journal bytes/sec, fsync p99. The `live-top`
//! binary renders those as a refreshing table; `--once` makes it a
//! one-shot CI probe.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed JSON value (the subset of state `ta-stats/v2` can carry;
/// numbers are `f64`, exact for counters below 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("eof in escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("eof in \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let s = &self.b[self.i..];
                    let ch = std::str::from_utf8(s)
                        .map_err(|_| "invalid utf-8")?
                        .chars()
                        .next()
                        .ok_or("eof in string")?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
                None => return Err("eof in string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

/// Headline percentiles + totals of one histogram in a stats line.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistView {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Precomputed percentiles: p50, p90, p99, p999.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// One parsed `ta-stats/v2` line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Snapshot sequence number (strictly increasing per producer).
    pub seq: u64,
    /// Process uptime when the snapshot was swept.
    pub uptime_ms: u64,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram views by name.
    pub histograms: BTreeMap<String, HistView>,
    /// Component health states (`journal_writer`, `granter`, …) plus
    /// the failure `policy` and `durability` status, when the producer
    /// runs under a supervision board. Empty otherwise.
    pub health: BTreeMap<String, String>,
}

impl Stats {
    /// Parses one stats line; rejects other schemas.
    pub fn parse(line: &str) -> Result<Stats, String> {
        let v = Json::parse(line.trim())?;
        let schema = match v.get("schema") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return Err("missing schema tag".into()),
        };
        if schema != "ta-stats/v2" {
            return Err(format!("unsupported schema {schema:?}"));
        }
        let need = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing {key}"))
        };
        let mut stats = Stats {
            seq: need("seq")?,
            uptime_ms: need("uptime_ms")?,
            ..Stats::default()
        };
        if let Some(Json::Obj(members)) = v.get("counters") {
            for (name, val) in members {
                stats.counters.insert(
                    name.clone(),
                    val.as_u64().ok_or_else(|| format!("bad counter {name}"))?,
                );
            }
        }
        if let Some(Json::Obj(members)) = v.get("gauges") {
            for (name, val) in members {
                let g = val.as_f64().ok_or_else(|| format!("bad gauge {name}"))?;
                stats.gauges.insert(name.clone(), g as i64);
            }
        }
        if let Some(Json::Obj(members)) = v.get("histograms") {
            for (name, h) in members {
                let f = |key: &str| -> Result<u64, String> {
                    h.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("bad histogram field {name}.{key}"))
                };
                stats.histograms.insert(
                    name.clone(),
                    HistView {
                        count: f("count")?,
                        sum: f("sum")?,
                        max: f("max")?,
                        p50: f("p50")?,
                        p90: f("p90")?,
                        p99: f("p99")?,
                        p999: f("p999")?,
                    },
                );
            }
        }
        if let Some(Json::Obj(members)) = v.get("health") {
            for (name, val) in members {
                if let Json::Str(s) = val {
                    stats.health.insert(name.clone(), s.clone());
                }
            }
        }
        Ok(stats)
    }

    /// Whether any supervised component reports a non-healthy state.
    pub fn degraded(&self) -> bool {
        self.health
            .iter()
            .any(|(k, v)| k != "policy" && k != "durability" && v != "healthy")
            || self.health.get("durability").is_some_and(|v| v != "ok")
    }

    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Rates derived from two consecutive snapshots of one producer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Rates {
    /// Interval the rates cover.
    pub interval_ms: u64,
    /// Admission decisions per second.
    pub decisions_per_sec: f64,
    /// Fraction of decisions held (no token available).
    pub held_ratio: f64,
    /// Journal bytes (delta + range frames) per second.
    pub journal_bytes_per_sec: f64,
    /// fsync p99 at the later snapshot, nanoseconds.
    pub fsync_p99_ns: u64,
    /// Admit-latency p99 at the later snapshot, nanoseconds.
    pub admit_p99_ns: u64,
}

impl Rates {
    /// Diffs `prev → cur`. Returns `None` when the interval is empty or
    /// the snapshots are out of order (stale scrape, producer restart).
    pub fn between(prev: &Stats, cur: &Stats) -> Option<Rates> {
        if cur.seq <= prev.seq || cur.uptime_ms <= prev.uptime_ms {
            return None;
        }
        let dt = (cur.uptime_ms - prev.uptime_ms) as f64 / 1000.0;
        let d = |name: &str| cur.counter(name).saturating_sub(prev.counter(name)) as f64;
        let decisions = d("admit_requests");
        let bytes = d("journal_bytes_delta") + d("journal_bytes_range");
        Some(Rates {
            interval_ms: cur.uptime_ms - prev.uptime_ms,
            decisions_per_sec: decisions / dt,
            held_ratio: if decisions > 0.0 {
                d("admit_reactive_held") / decisions
            } else {
                0.0
            },
            journal_bytes_per_sec: bytes / dt,
            fsync_p99_ns: cur.histograms.get("fsync_ns").map_or(0, |h| h.p99),
            admit_p99_ns: cur.histograms.get("admit_ns").map_or(0, |h| h.p99),
        })
    }
}

/// A connection to a `live --obs-listen` server.
#[derive(Debug)]
pub struct ScopeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ScopeClient {
    /// Connects to `addr` (e.g. `127.0.0.1:9900`).
    pub fn connect(addr: &str) -> std::io::Result<ScopeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(ScopeClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One `STATS` round trip.
    pub fn stats(&mut self) -> Result<Stats, String> {
        self.writer
            .write_all(b"STATS\n")
            .map_err(|e| e.to_string())?;
        Stats::parse(&self.read_line()?)
    }

    /// Switches the connection into `WATCH <ms>` mode; afterwards only
    /// [`next_line`](Self::next_line) is meaningful.
    pub fn watch(&mut self, every: Duration) -> Result<(), String> {
        self.writer
            .write_all(format!("WATCH {}\n", every.as_millis().max(1)).as_bytes())
            .map_err(|e| e.to_string())
    }

    /// Reads the next pushed line (empty string at EOF).
    pub fn next_line(&mut self) -> Result<String, String> {
        self.read_line()
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| e.to_string())?;
        Ok(line.trim_end().to_string())
    }
}

/// Formats nanoseconds compactly (`840ns`, `3.2us`, `1.5ms`).
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// One rendered rate-view row (the `live-top` table body).
pub fn render_row(cur: &Stats, rates: &Rates) -> String {
    format!(
        "{:>8}  {:>9.0}  {:>6.1}%  {:>10.0}  {:>9}  {:>9}  {:>6}",
        cur.seq,
        rates.decisions_per_sec,
        rates.held_ratio * 100.0,
        rates.journal_bytes_per_sec,
        fmt_ns(rates.admit_p99_ns),
        fmt_ns(rates.fsync_p99_ns),
        cur.counter("trace_dropped"),
    )
}

/// The `live-top` table header matching [`render_row`].
pub fn render_header() -> String {
    format!(
        "{:>8}  {:>9}  {:>7}  {:>10}  {:>9}  {:>9}  {:>6}",
        "seq", "dec/s", "held", "jrnl B/s", "admit p99", "fsync p99", "drops"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_telemetry::{stats_line, Registry};

    #[test]
    fn json_parser_handles_the_wire_shapes() {
        let v =
            Json::parse(r#"{"a":1,"b":[1,2,3],"c":{"d":"x=\"y\"","e":-2.5},"f":true}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("b"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Num(3.0)
            ]))
        );
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")),
            Some(&Json::Str("x=\"y\"".into()))
        );
        assert_eq!(
            v.get("c").and_then(|c| c.get("e")).and_then(Json::as_f64),
            Some(-2.5)
        );
        assert_eq!(v.get("f"), Some(&Json::Bool(true)));
        assert!(Json::parse("{\"a\":1}trailing").is_err());
        assert!(Json::parse("{\"a\"").is_err());
    }

    #[test]
    fn stats_parse_roundtrips_a_real_line() {
        let reg = Registry::with_hists(
            &["admit_requests", "admit_reactive_held"],
            &["journal_queue_depth"],
            &["admit_ns"],
            1,
        );
        let h = reg.handle(0);
        h.add(0, 1000);
        h.add(1, 250);
        h.gauge_add(0, -2);
        for v in [100u64, 200, 300, 40_000] {
            h.hist_record(0, v);
        }
        let line = stats_line(&reg.snapshot(), 1500);
        let stats = Stats::parse(&line).unwrap();
        assert_eq!(stats.seq, 0);
        assert_eq!(stats.uptime_ms, 1500);
        assert_eq!(stats.counters["admit_requests"], 1000);
        assert_eq!(stats.gauges["journal_queue_depth"], -2);
        let admit = &stats.histograms["admit_ns"];
        assert_eq!(admit.count, 4);
        assert!(admit.p99 >= admit.p50);
        assert!(admit.max >= 40_000);
        // Only v2 is understood.
        assert!(Stats::parse(&line.replace("ta-stats/v2", "ta-stats/v1")).is_err());
        // No health section → empty map, not an error.
        assert!(stats.health.is_empty());
        assert!(!stats.degraded());
    }

    #[test]
    fn health_section_parses_and_flags_degradation() {
        let reg = Registry::new(&["admit_requests"], &[], 1);
        let healthy = concat!(
            r#"{"policy":"degrade","journal_writer":"healthy","granter":"healthy","#,
            r#""trace_bus":"healthy","stats_pump":"healthy","durability":"ok"}"#
        );
        let line =
            ta_telemetry::stats_line_with(&reg.snapshot(), 900, &[("health", healthy.to_string())]);
        let stats = Stats::parse(&line).unwrap();
        assert_eq!(stats.health["policy"], "degrade");
        assert_eq!(stats.health["journal_writer"], "healthy");
        assert_eq!(stats.health.len(), 6);
        assert!(!stats.degraded());
        // A failed writer or suspended durability flips the flag; the
        // policy field alone never does.
        let degraded = Stats::parse(&line.replace(
            r#""journal_writer":"healthy""#,
            r#""journal_writer":"failed""#,
        ))
        .unwrap();
        assert!(degraded.degraded());
        let suspended =
            Stats::parse(&line.replace(r#""durability":"ok""#, r#""durability":"suspended""#))
                .unwrap();
        assert!(suspended.degraded());
    }

    fn synthetic(seq: u64, uptime_ms: u64, requests: u64, held: u64, bytes: u64) -> Stats {
        let mut s = Stats {
            seq,
            uptime_ms,
            ..Stats::default()
        };
        s.counters.insert("admit_requests".into(), requests);
        s.counters.insert("admit_reactive_held".into(), held);
        s.counters.insert("journal_bytes_delta".into(), bytes);
        s.histograms.insert(
            "fsync_ns".into(),
            HistView {
                p99: 500_000,
                ..HistView::default()
            },
        );
        s
    }

    #[test]
    fn rates_diff_consecutive_snapshots_exactly() {
        let a = synthetic(5, 1000, 10_000, 2_000, 4_096);
        let b = synthetic(6, 3000, 50_000, 12_000, 20_480);
        let r = Rates::between(&a, &b).unwrap();
        assert_eq!(r.interval_ms, 2000);
        assert!((r.decisions_per_sec - 20_000.0).abs() < 1e-9);
        assert!((r.held_ratio - 0.25).abs() < 1e-9);
        assert!((r.journal_bytes_per_sec - 8_192.0).abs() < 1e-9);
        assert_eq!(r.fsync_p99_ns, 500_000);
        // Out-of-order or same-instant snapshots yield no rates.
        assert!(Rates::between(&b, &a).is_none());
        assert!(Rates::between(&a, &a).is_none());
    }

    #[test]
    fn table_rendering_is_aligned_and_units_scale() {
        assert_eq!(fmt_ns(840), "840ns");
        assert_eq!(fmt_ns(3_200), "3.2us");
        assert_eq!(fmt_ns(1_500_000), "1.5ms");
        let cur = synthetic(7, 4000, 1, 0, 0);
        let rates = Rates::default();
        let header = render_header();
        let row = render_row(&cur, &rates);
        assert_eq!(header.len(), row.len(), "{header:?} vs {row:?}");
        assert!(header.contains("dec/s") && header.contains("fsync p99"));
    }
}
