//! Executing experiment specs: build, run, replicate, average.
//!
//! One [`ExperimentSpec`] maps to `spec.runs` independent simulations that
//! differ only in their per-run seed (fresh protocol randomness, fresh
//! churn draws), sharing the topology — exactly the Section 4.2 procedure
//! ("10 independent runs for every parameter combination, and the average
//! of these runs is shown"). Replicas execute on the bounded worker pool of
//! [`crate::pool`]; [`run_grid_prepared`] additionally flattens a whole
//! *(spec × run)* grid — a figure panel or the Section 4.2 sweep — into one
//! job list so every core stays busy across cells, not just within one.
//!
//! When even the flattened grid cannot fill the pool (one huge-N spec, a
//! straggler tail), replicas of shardable applications are routed through
//! the intra-run sharded engine ([`ta_sim::shard::ShardedSimulation`])
//! instead — `TA_SHARDS`/`--shards` overrides the automatic trade, and
//! `TA_PIN`/`--pin` additionally pins the shard workers to cores. Whatever
//! the trade, intra-run worker threads are capped so that *concurrent
//! replicas × threads per replica* never exceeds the pool size (an
//! explicit shard count keeps its S blocks, multiplexed onto fewer
//! threads). Either path produces byte-identical results; failure-free specs additionally
//! share one frozen copy-on-churn `OnlineNeighbors` mirror across all
//! their runs (built once per prepared topology instead of once per job).

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use ta_apps::app::Application;
use ta_apps::chaotic::ChaoticIteration;
use ta_apps::gossip_learning::GossipLearning;
use ta_apps::protocol::sharded::ShardableApplication;
use ta_apps::protocol::{ProtocolStats, TokenProtocol};
use ta_apps::push_gossip::PushGossip;
use ta_churn::schedule::AvailabilitySchedule;
use ta_churn::synthetic::SmartphoneTraceModel;
use ta_metrics::TimeSeries;
use ta_overlay::generators::{k_out_random, watts_strogatz_strongly_connected, GenerateError};
use ta_overlay::sampling::OnlineNeighbors;
use ta_overlay::spectral::{dominant_eigenvector, NotStochasticError};
use ta_overlay::Topology;
use ta_sim::config::{InvalidConfigError, SimConfig};
use ta_sim::engine::{SimStats, Simulation};
use ta_sim::rng::{SplitMix64, Xoshiro256pp};
use ta_sim::shard::{ShardOpts, ShardedSimulation};
use ta_sim::NodeId;
use ta_telemetry::ProfileData;
use token_account::{InvalidStrategyError, Strategy, StrategyVisitor};

use crate::spec::{AppKind, ChurnKind, ExperimentSpec, TopologyKind};

/// Error running an experiment.
#[derive(Debug)]
#[non_exhaustive]
pub enum RunError {
    /// Topology generation failed.
    Topology(GenerateError),
    /// Strategy parameters invalid.
    Strategy(InvalidStrategyError),
    /// Simulator configuration invalid.
    Config(InvalidConfigError),
    /// The chaotic-iteration matrix was not column-stochastic.
    Spectral(NotStochasticError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Topology(e) => write!(f, "topology generation failed: {e}"),
            RunError::Strategy(e) => write!(f, "invalid strategy: {e}"),
            RunError::Config(e) => write!(f, "invalid simulation config: {e}"),
            RunError::Spectral(e) => write!(f, "spectral setup failed: {e}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Topology(e) => Some(e),
            RunError::Strategy(e) => Some(e),
            RunError::Config(e) => Some(e),
            RunError::Spectral(e) => Some(e),
        }
    }
}

impl From<GenerateError> for RunError {
    fn from(e: GenerateError) -> Self {
        RunError::Topology(e)
    }
}
impl From<InvalidStrategyError> for RunError {
    fn from(e: InvalidStrategyError) -> Self {
        RunError::Strategy(e)
    }
}
impl From<InvalidConfigError> for RunError {
    fn from(e: InvalidConfigError) -> Self {
        RunError::Config(e)
    }
}
impl From<NotStochasticError> for RunError {
    fn from(e: NotStochasticError) -> Self {
        RunError::Spectral(e)
    }
}

/// The outcome of a single simulation run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Metric series of this run.
    pub metric: TimeSeries,
    /// Average-token series (empty unless recording was enabled).
    pub tokens: TimeSeries,
    /// Protocol message counters.
    pub protocol: ProtocolStats,
    /// Engine counters.
    pub sim: SimStats,
    /// Messages sent per transfer-time slot (burstiness histogram,
    /// Section 3.4; the paper's setup has 100 slots per round Δ).
    pub sends_per_slot: Vec<u64>,
    /// Engine self-profiling totals (all-zero unless `TA_PROFILE=1`).
    pub profile: ProfileData,
}

/// `TA_PROFILE=1` turns on engine self-profiling for every run in the
/// process (checked once; the per-event cost is a dead branch otherwise).
fn profiling_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("TA_PROFILE").is_ok_and(|v| v == "1"))
}

/// Process-wide profile accumulator: every profiled run merges here, and
/// [`take_profile`] drains it for the report's `profile` block.
static PROFILE: std::sync::Mutex<Option<ProfileData>> = std::sync::Mutex::new(None);

fn note_profile(p: &ProfileData) {
    let mut total = PROFILE.lock().expect("profile accumulator");
    total.get_or_insert_with(ProfileData::default).merge(p);
}

/// Drains the accumulated self-profiling totals of every run executed
/// since the last call (always empty unless `TA_PROFILE=1`).
pub fn take_profile() -> ProfileData {
    PROFILE
        .lock()
        .expect("profile accumulator")
        .take()
        .unwrap_or_default()
}

/// Aggregated counters over all runs of an experiment.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AggregateStats {
    /// Mean messages sent per run (all kinds).
    pub mean_messages_sent: f64,
    /// Mean proactive sends per run.
    pub mean_proactive: f64,
    /// Mean reactive sends per run.
    pub mean_reactive: f64,
    /// Mean round ticks per run.
    pub mean_ticks: f64,
}

/// The averaged result of an experiment.
#[derive(Debug)]
pub struct ExperimentResult {
    /// The spec that produced it.
    pub spec: ExperimentSpec,
    /// Mean metric over runs (the paper's plotted curves).
    pub metric: TimeSeries,
    /// Mean token balance over runs (empty unless recorded).
    pub tokens: TimeSeries,
    /// Per-run outcomes.
    pub runs: Vec<RunOutcome>,
    /// Aggregated counters.
    pub stats: AggregateStats,
    /// Merged engine self-profiling totals over all runs (all-zero
    /// unless `TA_PROFILE=1`).
    pub profile: ProfileData,
}

/// Builds the topology for a spec (shared across runs, as in the paper:
/// "the same random 20-out network is used").
pub fn build_topology(spec: &ExperimentSpec) -> Result<Topology, GenerateError> {
    let mut topo_seed = SplitMix64::new(spec.seed ^ 0x7069_7065);
    match spec.topology {
        TopologyKind::KOut { k } => {
            let mut rng = Xoshiro256pp::stream(topo_seed.next_u64(), 0x70);
            k_out_random(spec.n, k, &mut rng)
        }
        TopologyKind::WattsStrogatz { k, p } => {
            watts_strogatz_strongly_connected(spec.n, k, p, topo_seed.next_u64(), 50)
        }
    }
}

/// Per-run master seed derivation (stable across spec changes).
fn run_seed(spec: &ExperimentSpec, run: usize) -> u64 {
    let mut mixer = SplitMix64::new(spec.seed.wrapping_add(0x9e37 * run as u64));
    mixer.next_u64()
}

/// Builds the availability schedule for one run.
fn build_schedule(spec: &ExperimentSpec, run: usize) -> AvailabilitySchedule {
    match spec.churn {
        ChurnKind::None => AvailabilitySchedule::always_on(spec.n),
        ChurnKind::SmartphoneTrace => SmartphoneTraceModel::default().generate(
            spec.n,
            spec.duration,
            run_seed(spec, run) ^ 0xc4a9,
        ),
    }
}

fn build_config(spec: &ExperimentSpec, run: usize) -> Result<SimConfig, InvalidConfigError> {
    let mut builder = SimConfig::builder(spec.n)
        .delta(spec.delta)
        .transfer_time(spec.transfer)
        .duration(spec.duration)
        .sample_period(spec.sample_period)
        .drop_probability(spec.drop_probability)
        .tick_phase(spec.tick_phase)
        .seed(run_seed(spec, run));
    if let Some(p) = spec.injection_period() {
        builder = builder.injection_period(p);
    }
    builder.build()
}

/// How one replica executes: serially, or sharded over the intra-run
/// engine with explicit [`ShardOpts`] (shard blocks, worker threads, core
/// pinning).
///
/// Sharding never changes results — the sharded engine is byte-identical
/// to the serial one — so this is purely a wall-clock scheduling choice.
/// The shard *count* and the worker-*thread* count are decoupled on
/// purpose: `run_grid_prepared` caps `grid workers × intra-run threads` at
/// the pool size, so an explicit `TA_SHARDS` still partitions into S
/// blocks but multiplexes them onto the capped thread budget instead of
/// oversubscribing the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunMode {
    Serial,
    Sharded(ShardOpts),
}

/// Monomorphizing bridge from the serializable [`StrategySpec`] to
/// [`run_single`]: `visit` compiles once per concrete strategy family, so
/// the whole simulation loop below it runs with direct strategy calls.
struct SingleRun<'a, A, F> {
    spec: &'a ExperimentSpec,
    run: usize,
    topo: &'a Arc<Topology>,
    mirror: Option<&'a Arc<OnlineNeighbors>>,
    make_app: F,
    _app: std::marker::PhantomData<fn() -> A>,
}

impl<A, F> StrategyVisitor for SingleRun<'_, A, F>
where
    A: Application,
    F: FnOnce(&[bool]) -> A,
{
    type Output = Result<RunOutcome, RunError>;

    fn visit<S: Strategy + Clone + 'static>(self, strategy: S) -> Self::Output {
        run_single(
            self.spec,
            self.run,
            self.topo,
            self.mirror,
            self.make_app,
            strategy,
        )
    }
}

/// The [`SingleRun`] counterpart for shardable applications: dispatches
/// into the intra-run sharded engine.
struct SingleRunSharded<'a, A, F> {
    spec: &'a ExperimentSpec,
    run: usize,
    topo: &'a Arc<Topology>,
    mirror: Option<&'a Arc<OnlineNeighbors>>,
    make_app: F,
    opts: ShardOpts,
    _app: std::marker::PhantomData<fn() -> A>,
}

impl<A, F> StrategyVisitor for SingleRunSharded<'_, A, F>
where
    A: ShardableApplication,
    A::Msg: Send,
    F: FnOnce(&[bool]) -> A,
{
    type Output = Result<RunOutcome, RunError>;

    fn visit<S: Strategy + Clone + 'static>(self, strategy: S) -> Self::Output {
        let cfg = build_config(self.spec, self.run)?;
        let schedule = build_schedule(self.spec, self.run);
        let proto = build_protocol(
            self.spec,
            self.topo,
            self.mirror,
            &schedule,
            self.make_app,
            strategy,
        );
        let mut sim = ShardedSimulation::with_opts(cfg, &schedule, proto, self.opts);
        sim.run_to_end();
        let profile = if profiling_enabled() {
            sim.profile()
        } else {
            ProfileData::default()
        };
        let (proto, sim_stats) = sim.into_parts();
        Ok(outcome_of(proto.into_results(), sim_stats, profile))
    }
}

/// Builds the concrete strategy for `spec` and runs one replica with it,
/// without boxing (see [`SingleRun`]).
fn run_single_dispatched<A, F>(
    spec: &ExperimentSpec,
    run: usize,
    topo: &Arc<Topology>,
    mirror: Option<&Arc<OnlineNeighbors>>,
    make_app: F,
) -> Result<RunOutcome, RunError>
where
    A: Application,
    F: FnOnce(&[bool]) -> A,
{
    spec.strategy
        .dispatch(SingleRun {
            spec,
            run,
            topo,
            mirror,
            make_app,
            _app: std::marker::PhantomData,
        })
        .map_err(RunError::Strategy)?
}

/// Shared construction of the Algorithm-4 driver, used by both the serial
/// and the sharded replica paths (so the two cannot drift). Failure-free
/// specs reuse the prepared grid's frozen online-neighbour `mirror` (an
/// O(E) build otherwise); the first churn transition of a run copies it,
/// so sharing is always sound.
fn build_protocol<A, S, F>(
    spec: &ExperimentSpec,
    topo: &Arc<Topology>,
    mirror: Option<&Arc<OnlineNeighbors>>,
    schedule: &AvailabilitySchedule,
    make_app: F,
    strategy: S,
) -> TokenProtocol<A, S>
where
    A: Application,
    S: Strategy,
    F: FnOnce(&[bool]) -> A,
{
    let initial_online: Vec<bool> = (0..spec.n)
        .map(|i| schedule.segment(NodeId::from_index(i)).initial_online)
        .collect();
    let app = make_app(&initial_online);
    let mut proto = match (mirror, spec.churn) {
        (Some(m), ChurnKind::None) => TokenProtocol::with_shared_peers(
            Arc::clone(topo),
            strategy,
            app,
            initial_online,
            Arc::clone(m),
        ),
        _ => TokenProtocol::new(Arc::clone(topo), strategy, app, initial_online),
    };
    proto = proto.with_reply_policy(spec.reply_policy);
    if spec.record_tokens {
        proto = proto.with_token_recording();
    }
    if spec.react_to_injections {
        proto = proto.with_injection_reaction();
    }
    if matches!(spec.app, AppKind::PushGossip) && matches!(spec.churn, ChurnKind::SmartphoneTrace) {
        proto = proto.with_pull_on_rejoin();
    }
    proto
}

fn outcome_of<A>(
    results: ta_apps::protocol::ProtocolResults<A>,
    sim_stats: SimStats,
    profile: ProfileData,
) -> RunOutcome {
    if !profile.is_empty() {
        note_profile(&profile);
    }
    RunOutcome {
        metric: results.metric,
        tokens: results.tokens,
        protocol: results.stats,
        sim: sim_stats,
        sends_per_slot: results.sends_per_slot,
        profile,
    }
}

fn run_single<A, S, F>(
    spec: &ExperimentSpec,
    run: usize,
    topo: &Arc<Topology>,
    mirror: Option<&Arc<OnlineNeighbors>>,
    make_app: F,
    strategy: S,
) -> Result<RunOutcome, RunError>
where
    A: Application,
    S: Strategy,
    F: FnOnce(&[bool]) -> A,
{
    let cfg = build_config(spec, run)?;
    let schedule = build_schedule(spec, run);
    let proto = build_protocol(spec, topo, mirror, &schedule, make_app, strategy);
    let mut sim = Simulation::new(cfg, &schedule, proto);
    sim.run_to_end();
    let profile = if profiling_enabled() {
        *sim.profile().data()
    } else {
        ProfileData::default()
    };
    let (proto, sim_stats) = sim.into_parts();
    Ok(outcome_of(proto.into_results(), sim_stats, profile))
}

fn dispatch_run(
    spec: &ExperimentSpec,
    run: usize,
    topo: &Arc<Topology>,
    reference: &Option<Arc<Vec<f64>>>,
    mirror: Option<&Arc<OnlineNeighbors>>,
    mode: RunMode,
) -> Result<RunOutcome, RunError> {
    match spec.app {
        AppKind::GossipLearning => {
            let make = |online: &[bool]| GossipLearning::new(spec.n, spec.transfer, online);
            // Shardable: routed through the intra-run engine when the
            // mode asks for it (results are identical either way).
            match mode {
                RunMode::Sharded(opts) if opts.shards > 1 => spec
                    .strategy
                    .dispatch(SingleRunSharded {
                        spec,
                        run,
                        topo,
                        mirror,
                        make_app: make,
                        opts,
                        _app: std::marker::PhantomData,
                    })
                    .map_err(RunError::Strategy)?,
                _ => run_single_dispatched::<GossipLearning, _>(spec, run, topo, mirror, make),
            }
        }
        AppKind::PushGossip => {
            let make = |online: &[bool]| PushGossip::new(spec.n, online);
            match mode {
                RunMode::Sharded(opts) if opts.shards > 1 => spec
                    .strategy
                    .dispatch(SingleRunSharded {
                        spec,
                        run,
                        topo,
                        mirror,
                        make_app: make,
                        opts,
                        _app: std::marker::PhantomData,
                    })
                    .map_err(RunError::Strategy)?,
                _ => run_single_dispatched::<PushGossip, _>(spec, run, topo, mirror, make),
            }
        }
        AppKind::ChaoticIteration => {
            let reference = reference
                .as_ref()
                .expect("reference eigenvector precomputed for chaotic runs");
            run_single_dispatched::<ChaoticIteration, _>(spec, run, topo, mirror, |_online| {
                let mut app =
                    ChaoticIteration::with_reference(Arc::clone(topo), reference.as_ref().clone());
                // Algorithm 3 starts from "any positive value"; a random
                // start makes the convergence race measurable (constant
                // buffers begin almost at the fixed point).
                let mut rng = Xoshiro256pp::stream(run_seed(spec, run), 0xb0f);
                app.randomize_buffers(&mut rng);
                app
            })
        }
    }
}

/// A topology (and, for chaotic iteration, its reference eigenvector)
/// prepared once and shared across the experiments of a panel or sweep.
#[derive(Debug, Clone)]
pub struct PreparedTopology {
    /// The shared overlay.
    pub topo: Arc<Topology>,
    /// Reference dominant eigenvector (chaotic iteration only).
    pub reference: Option<Arc<Vec<f64>>>,
    /// Frozen all-online neighbour mirror, shared by every run of a
    /// failure-free spec (the O(E) build — five passes over the edge set —
    /// used to repeat once per (spec × run) job). Copy-on-churn: runs
    /// under churn copy it on their first transition, so sharing is
    /// unconditionally sound.
    pub frozen_mirror: Option<Arc<OnlineNeighbors>>,
}

/// Builds the topology for `spec` and, for chaotic iteration, computes the
/// reference eigenvector once. Failure-free specs also get the frozen
/// all-online neighbour mirror shared across their runs.
///
/// # Errors
///
/// Returns [`RunError`] on generation or spectral failures.
pub fn prepare_topology(spec: &ExperimentSpec) -> Result<PreparedTopology, RunError> {
    let topo = Arc::new(build_topology(spec)?);
    let reference = match spec.app {
        AppKind::ChaoticIteration => Some(Arc::new(dominant_eigenvector(&topo, 200_000, 1e-13)?)),
        _ => None,
    };
    let frozen_mirror = match spec.churn {
        ChurnKind::None => Some(Arc::new(OnlineNeighbors::new(&topo, &vec![true; spec.n]))),
        ChurnKind::SmartphoneTrace => None,
    };
    Ok(PreparedTopology {
        topo,
        reference,
        frozen_mirror,
    })
}

/// Runs all replicas of `spec` (in parallel) and averages the series.
///
/// # Errors
///
/// Returns [`RunError`] if the topology, strategy, or configuration is
/// invalid; individual runs cannot fail once those are validated.
pub fn run_experiment(spec: &ExperimentSpec) -> Result<ExperimentResult, RunError> {
    let prepared = prepare_topology(spec)?;
    run_experiment_prepared(spec, &prepared)
}

/// Runs `spec` over an already-prepared topology (sweeps over the `(A, C)`
/// grid share one overlay and one reference eigenvector, as in the paper).
///
/// # Errors
///
/// Returns [`RunError`] on invalid strategy or configuration.
///
/// # Panics
///
/// Panics if `prepared` does not match the spec's network size, or if a
/// chaotic spec is given a prepared topology without a reference vector.
pub fn run_experiment_prepared(
    spec: &ExperimentSpec,
    prepared: &PreparedTopology,
) -> Result<ExperimentResult, RunError> {
    let mut results = run_grid_prepared(std::slice::from_ref(spec), prepared)?;
    Ok(results.pop().expect("one spec yields one result"))
}

/// Runs a whole grid of specs — a sweep, a figure panel — over one shared
/// prepared topology, parallelizing across the flattened *(spec × run)* job
/// list on the bounded worker pool.
///
/// This is the preferred entry point for anything with more than one cell:
/// scheduling the whole grid at once keeps every worker busy until the last
/// job drains, instead of hitting a join barrier after each cell's replicas.
/// Results come back in spec order and are bit-identical to running each
/// spec alone (per-run seeds depend only on `(spec.seed, run)`).
///
/// # Errors
///
/// Returns [`RunError`] if any spec's strategy or configuration is invalid
/// (validated up front; jobs themselves cannot fail afterwards).
///
/// # Panics
///
/// Panics if `prepared` does not match a spec's network size, or if a
/// chaotic spec is given a prepared topology without a reference vector.
pub fn run_grid_prepared(
    specs: &[ExperimentSpec],
    prepared: &PreparedTopology,
) -> Result<Vec<ExperimentResult>, RunError> {
    // Validate every spec up front so pool jobs can't hit construction
    // errors mid-grid.
    for spec in specs {
        assert!(spec.runs > 0, "an experiment needs at least one run");
        assert_eq!(
            prepared.topo.n(),
            spec.n,
            "prepared topology size does not match the spec"
        );
        if matches!(spec.app, AppKind::ChaoticIteration) {
            assert!(
                prepared.reference.is_some(),
                "chaotic iteration needs a prepared reference eigenvector"
            );
        }
        spec.strategy.build()?;
        build_config(spec, 0)?;
    }

    // Flatten the (spec × run) grid into one job list.
    let jobs: Vec<(usize, usize)> = specs
        .iter()
        .enumerate()
        .flat_map(|(s, spec)| (0..spec.runs).map(move |r| (s, r)))
        .collect();
    // Trade across-run against intra-run parallelism: while the job list
    // alone can fill the pool, run every replica serially; once there are
    // fewer jobs than workers (one huge-N spec, a tail of stragglers),
    // shard each replica so the machine stays saturated. `TA_SHARDS`
    // overrides the choice; results are byte-identical either way.
    //
    // Oversubscription policy: the pool runs `min(max_workers, jobs)`
    // replicas concurrently, so each replica's intra-run engine gets a
    // thread budget of `max_workers / grid_workers` — the product never
    // exceeds the pool size. An explicit `TA_SHARDS=S` keeps its S shard
    // *blocks* (the partition is part of the byte-identical contract's
    // schedule, never its results) but multiplexes them onto the capped
    // budget instead of spawning S threads per concurrent replica.
    let workers = crate::pool::max_workers();
    let grid_workers = workers.min(jobs.len()).max(1);
    let thread_budget = (workers / grid_workers).max(1);
    let mode = match crate::pool::shard_override() {
        Some(s) => {
            if s > 1 {
                RunMode::Sharded(ShardOpts::new(s, s.min(thread_budget)))
            } else {
                RunMode::Serial
            }
        }
        None => {
            if jobs.len() >= workers {
                RunMode::Serial
            } else {
                let shards = thread_budget.clamp(1, 8);
                if shards > 1 {
                    RunMode::Sharded(ShardOpts::new(shards, shards))
                } else {
                    RunMode::Serial
                }
            }
        }
    };
    let topo = Arc::clone(&prepared.topo);
    let reference = prepared.reference.clone();
    let mirror = prepared.frozen_mirror.clone();
    let mut outcomes = crate::pool::run_indexed(jobs.len(), |j| {
        let (s, run) = jobs[j];
        dispatch_run(&specs[s], run, &topo, &reference, mirror.as_ref(), mode)
            .expect("validated spec cannot fail at run time")
    });

    // Regroup per spec (jobs are flattened in spec order) and average.
    let mut results = Vec::with_capacity(specs.len());
    for spec in specs {
        let rest = outcomes.split_off(spec.runs);
        let runs: Vec<RunOutcome> = std::mem::replace(&mut outcomes, rest);
        results.push(aggregate(spec, runs));
    }
    Ok(results)
}

/// Averages one spec's replica outcomes into an [`ExperimentResult`].
fn aggregate(spec: &ExperimentSpec, runs: Vec<RunOutcome>) -> ExperimentResult {
    let metric = TimeSeries::mean_of_iter(runs.iter().map(|r| &r.metric));
    let tokens = if spec.record_tokens {
        TimeSeries::mean_of_iter(runs.iter().map(|r| &r.tokens))
    } else {
        TimeSeries::new()
    };
    let n_runs = runs.len() as f64;
    let stats = AggregateStats {
        mean_messages_sent: runs.iter().map(|r| r.sim.messages_sent as f64).sum::<f64>() / n_runs,
        mean_proactive: runs
            .iter()
            .map(|r| r.protocol.proactive_sent as f64)
            .sum::<f64>()
            / n_runs,
        mean_reactive: runs
            .iter()
            .map(|r| r.protocol.reactive_sent as f64)
            .sum::<f64>()
            / n_runs,
        mean_ticks: runs.iter().map(|r| r.sim.ticks_fired as f64).sum::<f64>() / n_runs,
    };
    let mut profile = ProfileData::default();
    for r in &runs {
        profile.merge(&r.profile);
    }
    ExperimentResult {
        spec: spec.clone(),
        metric,
        tokens,
        runs,
        stats,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use token_account::StrategySpec;

    fn tiny(app: AppKind, strategy: StrategySpec) -> ExperimentSpec {
        let mut spec = ExperimentSpec::paper_defaults(app, strategy, 60)
            .with_rounds(40)
            .with_runs(2)
            .with_seed(5);
        // Small networks need a smaller out-degree.
        if !matches!(app, AppKind::ChaoticIteration) {
            spec.topology = TopologyKind::KOut { k: 8 };
        }
        spec
    }

    #[test]
    fn gossip_learning_beats_proactive_baseline() {
        let baseline =
            run_experiment(&tiny(AppKind::GossipLearning, StrategySpec::Proactive)).unwrap();
        let token = run_experiment(&tiny(
            AppKind::GossipLearning,
            StrategySpec::Randomized { a: 5, c: 10 },
        ))
        .unwrap();
        let b = baseline.metric.last_value().unwrap();
        let t = token.metric.last_value().unwrap();
        assert!(
            t > b * 1.5,
            "token account ({t}) should clearly beat proactive ({b})"
        );
    }

    #[test]
    fn push_gossip_reduces_lag() {
        let baseline = run_experiment(&tiny(AppKind::PushGossip, StrategySpec::Proactive)).unwrap();
        let token = run_experiment(&tiny(
            AppKind::PushGossip,
            StrategySpec::Generalized { a: 5, c: 10 },
        ))
        .unwrap();
        let b = baseline.metric.mean_value_from(1000.0).unwrap();
        let t = token.metric.mean_value_from(1000.0).unwrap();
        assert!(t < b, "token account lag {t} should be below proactive {b}");
    }

    #[test]
    fn chaotic_iteration_runs_and_converges_downward() {
        let result = run_experiment(&tiny(
            AppKind::ChaoticIteration,
            StrategySpec::Simple { c: 10 },
        ))
        .unwrap();
        let first = result.metric.values()[0];
        let last = result.metric.last_value().unwrap();
        assert!(last < first, "angle should decrease: {first} -> {last}");
    }

    #[test]
    fn results_are_deterministic() {
        let spec = tiny(AppKind::PushGossip, StrategySpec::Simple { c: 5 });
        let a = run_experiment(&spec).unwrap();
        let b = run_experiment(&spec).unwrap();
        assert_eq!(a.metric, b.metric);
        assert_eq!(a.runs[0].protocol, b.runs[0].protocol);
    }

    #[test]
    fn seeds_change_results() {
        let spec = tiny(AppKind::PushGossip, StrategySpec::Simple { c: 5 });
        let a = run_experiment(&spec).unwrap();
        let b = run_experiment(&spec.clone().with_seed(6)).unwrap();
        assert_ne!(a.metric, b.metric);
    }

    #[test]
    fn smartphone_churn_scenario_runs() {
        let spec =
            tiny(AppKind::PushGossip, StrategySpec::Simple { c: 10 }).with_smartphone_churn();
        let result = run_experiment(&spec).unwrap();
        assert!(!result.metric.is_empty());
        // Pull requests are wired in under churn.
        let pulls: u64 = result.runs.iter().map(|r| r.protocol.pull_requests).sum();
        assert!(pulls > 0, "rejoining nodes should send pull requests");
    }

    #[test]
    fn token_recording_produces_series() {
        let spec = tiny(
            AppKind::GossipLearning,
            StrategySpec::Randomized { a: 2, c: 5 },
        )
        .with_token_recording();
        let result = run_experiment(&spec).unwrap();
        assert_eq!(result.tokens.len(), result.metric.len());
        for &v in result.tokens.values() {
            assert!((0.0..=5.0).contains(&v));
        }
    }

    #[test]
    fn rate_limit_holds_across_all_runs() {
        // Section 3.4: per node at most rounds + C messages; globally
        // N·(rounds + C). Pull replies also burn tokens so they count.
        let spec = tiny(
            AppKind::PushGossip,
            StrategySpec::Generalized { a: 1, c: 10 },
        );
        let result = run_experiment(&spec).unwrap();
        for run in &result.runs {
            let bound = run.sim.ticks_fired + 10 * spec.n as u64;
            assert!(
                run.protocol.total_sent() <= bound,
                "sent {} > bound {}",
                run.protocol.total_sent(),
                bound
            );
        }
    }

    #[test]
    fn sharded_replicas_match_serial_bit_for_bit() {
        // The runner's intra-run sharded path must reproduce the serial
        // path exactly — metric series included — for every shard count
        // and both shardable applications.
        for (app, churn) in [
            (AppKind::GossipLearning, false),
            (AppKind::GossipLearning, true),
            (AppKind::PushGossip, false),
            (AppKind::PushGossip, true),
        ] {
            let mut spec =
                tiny(app, StrategySpec::Randomized { a: 5, c: 10 }).with_token_recording();
            if churn {
                spec = spec.with_smartphone_churn();
            }
            let prepared = prepare_topology(&spec).unwrap();
            let serial = dispatch_run(
                &spec,
                0,
                &prepared.topo,
                &prepared.reference,
                prepared.frozen_mirror.as_ref(),
                RunMode::Serial,
            )
            .unwrap();
            for (shards, pin) in [(2, false), (3, true), (4, false)] {
                let sharded = dispatch_run(
                    &spec,
                    0,
                    &prepared.topo,
                    &prepared.reference,
                    prepared.frozen_mirror.as_ref(),
                    RunMode::Sharded(ShardOpts {
                        shards,
                        threads: 2,
                        pin,
                    }),
                )
                .unwrap();
                assert_eq!(serial.metric, sharded.metric, "churn={churn} S={shards}");
                assert_eq!(serial.tokens, sharded.tokens, "churn={churn} S={shards}");
                assert_eq!(
                    serial.protocol, sharded.protocol,
                    "churn={churn} S={shards}"
                );
                assert_eq!(serial.sim, sharded.sim, "churn={churn} S={shards}");
                assert_eq!(serial.sends_per_slot, sharded.sends_per_slot);
            }
        }
    }

    #[test]
    fn frozen_mirror_sharing_does_not_change_results() {
        let spec = tiny(AppKind::PushGossip, StrategySpec::Simple { c: 5 });
        let prepared = prepare_topology(&spec).unwrap();
        assert!(
            prepared.frozen_mirror.is_some(),
            "failure-free specs get a shared mirror"
        );
        let with_mirror = dispatch_run(
            &spec,
            1,
            &prepared.topo,
            &prepared.reference,
            prepared.frozen_mirror.as_ref(),
            RunMode::Serial,
        )
        .unwrap();
        let without = dispatch_run(
            &spec,
            1,
            &prepared.topo,
            &prepared.reference,
            None,
            RunMode::Serial,
        )
        .unwrap();
        assert_eq!(with_mirror.metric, without.metric);
        assert_eq!(with_mirror.protocol, without.protocol);
        assert_eq!(with_mirror.sim, without.sim);
        // Churn specs must not share (per-run initial states differ).
        let churny =
            tiny(AppKind::PushGossip, StrategySpec::Simple { c: 5 }).with_smartphone_churn();
        assert!(prepare_topology(&churny).unwrap().frozen_mirror.is_none());
    }

    #[test]
    fn invalid_strategy_is_reported() {
        let spec = tiny(
            AppKind::PushGossip,
            StrategySpec::Generalized { a: 9, c: 3 },
        );
        assert!(matches!(
            run_experiment(&spec).unwrap_err(),
            RunError::Strategy(_)
        ));
    }
}
