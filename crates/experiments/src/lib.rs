//! # ta-experiments — the figure-regeneration harness
//!
//! Declarative [`spec::ExperimentSpec`]s, a parallel multi-run
//! [`runner`], and one [`figures`] module per artifact of the paper's
//! evaluation (Figures 1–5, the Section 4.2 parameter sweep, and the
//! fault-injection extension).
//!
//! Each figure is also a binary:
//!
//! ```text
//! cargo run --release -p ta-experiments --bin fig2 -- [--full] [--n N] ...
//! ```
//!
//! Quick defaults reproduce the paper's *shapes* in minutes; `--full`
//! switches to paper scale (N = 5000 / 500,000, 1000 rounds, 10 runs).
//! Results are printed as tables and written as gnuplot-ready `.dat`
//! files under `results/`.
//!
//! ```no_run
//! use ta_experiments::runner::run_experiment;
//! use ta_experiments::spec::{AppKind, ExperimentSpec};
//! use token_account::StrategySpec;
//!
//! let spec = ExperimentSpec::paper_defaults(
//!     AppKind::PushGossip,
//!     StrategySpec::Randomized { a: 10, c: 20 },
//!     5_000,
//! );
//! let result = run_experiment(&spec)?;
//! println!("steady lag: {:?}", result.metric.last_value());
//! # Ok::<(), ta_experiments::runner::RunError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod figures;
pub mod pool;
pub mod report;
pub mod runner;
pub mod scope;
pub mod spec;

pub use cli::FigureOpts;
pub use report::Report;
pub use runner::{run_experiment, ExperimentResult};
pub use spec::{AppKind, ChurnKind, ExperimentSpec, TopologyKind};
