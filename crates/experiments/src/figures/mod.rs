//! Regeneration of every figure in the paper's evaluation (Section 4).
//!
//! One module per figure, plus the Section 4.2 parameter sweep and the
//! fault-injection extension:
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig1`] | Figure 1 — smartphone trace churn pattern |
//! | [`fig2`] | Figure 2 — three applications, failure-free, N = 5000 |
//! | [`fig3`] | Figure 3 — gossip learning & push gossip over the trace |
//! | [`fig4`] | Figure 4 — failure-free at N = 500,000 |
//! | [`fig5`] | Figure 5 — average tokens vs. mean-field prediction |
//! | [`sweep`] | Section 4.2 — the full `(A, C)` exploration |
//! | [`faults`] | Section 3.3.1 — proactive error correction under drops |
//! | [`ablation`] | design-choice ablations: reply policy, round phasing |
//! | [`burstiness`] | Sections 1/3.4 — per-round traffic histograms, peak-to-mean |
//!
//! Quick defaults finish in minutes on a laptop; `--full` switches to the
//! paper's scale. The *shape* of every comparison (who wins, by what
//! factor) is preserved at quick scale; EXPERIMENTS.md records both.

pub mod ablation;
pub mod burstiness;
pub mod faults;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod sweep;

use std::io;

use ta_metrics::{Table, TimeSeries};
use token_account::StrategySpec;

use crate::runner::{ExperimentResult, RunError};
use crate::spec::AppKind;

/// Error running a figure module (simulation or I/O).
#[derive(Debug)]
pub enum FigureError {
    /// An experiment failed.
    Run(RunError),
    /// Writing a data file failed.
    Io(io::Error),
}

impl std::fmt::Display for FigureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FigureError::Run(e) => write!(f, "experiment failed: {e}"),
            FigureError::Io(e) => write!(f, "write failed: {e}"),
        }
    }
}

impl std::error::Error for FigureError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FigureError::Run(e) => Some(e),
            FigureError::Io(e) => Some(e),
        }
    }
}

impl From<RunError> for FigureError {
    fn from(e: RunError) -> Self {
        FigureError::Run(e)
    }
}

impl From<io::Error> for FigureError {
    fn from(e: io::Error) -> Self {
        FigureError::Io(e)
    }
}

/// The representative `(A, C)` selection shown in Figures 2–4 (the text
/// names A=10/C=10, A=10/C=20, A=1/C=5, A=1/C=10, A=5/C=10, C=20, C=40).
pub const REPRESENTATIVE_AC: &[(u64, u64)] =
    &[(1, 5), (1, 10), (5, 10), (10, 10), (10, 20), (20, 40)];

/// Capacities for the simple strategy panels.
pub const SIMPLE_CS: &[u64] = &[1, 5, 10, 20, 40];

/// A strategy family of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Simple token account (Section 3.3.1).
    Simple,
    /// Generalized token account (Section 3.3.2).
    Generalized,
    /// Randomized token account (Section 3.3.3).
    Randomized,
}

impl Family {
    /// All three families.
    pub const ALL: [Family; 3] = [Family::Simple, Family::Generalized, Family::Randomized];

    /// Family name for file names and tables.
    pub fn name(self) -> &'static str {
        match self {
            Family::Simple => "simple",
            Family::Generalized => "generalized",
            Family::Randomized => "randomized",
        }
    }

    /// The representative strategy set of this family for the figures.
    pub fn representative(self) -> Vec<StrategySpec> {
        match self {
            Family::Simple => SIMPLE_CS
                .iter()
                .map(|&c| StrategySpec::Simple { c })
                .collect(),
            Family::Generalized => REPRESENTATIVE_AC
                .iter()
                .map(|&(a, c)| StrategySpec::Generalized { a, c })
                .collect(),
            Family::Randomized => REPRESENTATIVE_AC
                .iter()
                .map(|&(a, c)| StrategySpec::Randomized { a, c })
                .collect(),
        }
    }

    /// Builds a member of the family from `(A, C)`; the simple family only
    /// uses `C`.
    pub fn with_params(self, a: u64, c: u64) -> StrategySpec {
        match self {
            Family::Simple => StrategySpec::Simple { c },
            Family::Generalized => StrategySpec::Generalized { a, c },
            Family::Randomized => StrategySpec::Randomized { a, c },
        }
    }
}

/// Summary numbers of one experiment for the comparison tables.
#[derive(Debug, Clone, Copy)]
pub struct MetricSummary {
    /// Metric at the end of the horizon.
    pub final_value: f64,
    /// Mean over the second half of the horizon (steady state).
    pub steady_mean: f64,
}

/// Extracts [`MetricSummary`] from a result.
pub fn summarize(result: &ExperimentResult) -> MetricSummary {
    let series = &result.metric;
    let final_value = series.last_value().unwrap_or(f64::NAN);
    let horizon = series.times().last().copied().unwrap_or(0.0);
    let steady_mean = series.mean_value_from(horizon / 2.0).unwrap_or(final_value);
    MetricSummary {
        final_value,
        steady_mean,
    }
}

/// Speedup of `result` relative to `baseline` for the given application:
///
/// * gossip learning — ratio of steady relative-speed metrics (higher is
///   faster learning);
/// * push gossip — inverse ratio of steady lags (paper: "one third of the
///   delay" ⇒ speedup 3);
/// * chaotic iteration — ratio of the times at which each reaches the
///   baseline's final angle (how much sooner the token account variant got
///   as far as the baseline ever did); falls back to the angle ratio when
///   the baseline never stabilizes.
pub fn speedup(app: AppKind, result: &ExperimentResult, baseline: &ExperimentResult) -> f64 {
    let r = summarize(result);
    let b = summarize(baseline);
    match app {
        AppKind::GossipLearning => r.steady_mean / b.steady_mean,
        AppKind::PushGossip => b.steady_mean / r.steady_mean,
        AppKind::ChaoticIteration => {
            let target = b.final_value;
            match (
                result.metric.first_time_below(target),
                baseline.metric.times().last(),
            ) {
                (Some(t_result), Some(&t_baseline)) if t_result > 0.0 => t_baseline / t_result,
                _ => b.final_value / r.final_value,
            }
        }
    }
}

/// Builds the standard comparison table: one row per strategy with final
/// value, steady mean, speedup vs. the first (baseline) entry, and the
/// per-run message budget.
pub fn comparison_table(app: AppKind, entries: &[(String, ExperimentResult)]) -> Table {
    let mut table = Table::new(vec![
        "strategy".into(),
        "final".into(),
        "steady".into(),
        "speedup".into(),
        "msgs/run".into(),
    ]);
    let baseline = &entries[0].1;
    for (label, result) in entries {
        let s = summarize(result);
        table.row(vec![
            label.clone(),
            format!("{:.4}", s.final_value),
            format!("{:.4}", s.steady_mean),
            format!("{:.2}x", speedup(app, result, baseline)),
            format!("{:.0}", result.stats.mean_messages_sent),
        ]);
    }
    table
}

/// The metric series to plot for an app: push gossip is smoothed over 15
/// minutes as in the paper; others are raw.
pub fn plot_series(app: AppKind, result: &ExperimentResult) -> TimeSeries {
    match app {
        AppKind::PushGossip => result.metric.smooth(15.0 * 60.0),
        _ => result.metric.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;
    use crate::spec::{ExperimentSpec, TopologyKind};

    fn mini(app: AppKind, strategy: StrategySpec) -> ExperimentResult {
        let mut spec = ExperimentSpec::paper_defaults(app, strategy, 50)
            .with_rounds(30)
            .with_runs(1)
            .with_seed(3);
        if !matches!(app, AppKind::ChaoticIteration) {
            spec.topology = TopologyKind::KOut { k: 5 };
        }
        run_experiment(&spec).unwrap()
    }

    #[test]
    fn families_enumerate_representative_sets() {
        assert_eq!(Family::Simple.representative().len(), SIMPLE_CS.len());
        assert_eq!(
            Family::Randomized.representative().len(),
            REPRESENTATIVE_AC.len()
        );
        assert_eq!(
            Family::Generalized.with_params(5, 10),
            StrategySpec::Generalized { a: 5, c: 10 }
        );
        assert_eq!(
            Family::Simple.with_params(5, 10),
            StrategySpec::Simple { c: 10 }
        );
    }

    #[test]
    fn gossip_learning_speedup_exceeds_one() {
        let base = mini(AppKind::GossipLearning, StrategySpec::Proactive);
        let tok = mini(
            AppKind::GossipLearning,
            StrategySpec::Randomized { a: 2, c: 5 },
        );
        assert!(speedup(AppKind::GossipLearning, &tok, &base) > 1.0);
        // Baseline vs itself is exactly 1.
        assert!((speedup(AppKind::GossipLearning, &base, &base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_table_has_one_row_per_entry() {
        let base = mini(AppKind::PushGossip, StrategySpec::Proactive);
        let tok = mini(AppKind::PushGossip, StrategySpec::Simple { c: 10 });
        let entries = vec![
            ("proactive".to_string(), base),
            ("simple(C=10)".to_string(), tok),
        ];
        let table = comparison_table(AppKind::PushGossip, &entries);
        assert_eq!(table.len(), 2);
        let text = table.render();
        assert!(text.contains("speedup"));
        assert!(text.contains("1.00x"));
    }

    #[test]
    fn plot_series_smooths_push_gossip_only() {
        let pg = mini(AppKind::PushGossip, StrategySpec::Simple { c: 5 });
        let gl = mini(AppKind::GossipLearning, StrategySpec::Simple { c: 5 });
        // Smoothing preserves the grid.
        assert_eq!(
            plot_series(AppKind::PushGossip, &pg).times(),
            pg.metric.times()
        );
        // Gossip learning series is returned untouched.
        assert_eq!(plot_series(AppKind::GossipLearning, &gl), gl.metric);
    }
}
