//! Figure 1: the smartphone trace churn pattern.
//!
//! "Proportion of users online, and proportion of users that have been
//! online, as a function of time. The bars indicate the proportion of the
//! simulated users that log in and log out ... in the given period."
//!
//! Regenerated from the synthetic STUNner-calibrated model (see DESIGN.md,
//! "Substitutions"). The quick default simulates 5,000 two-day segments;
//! `--full` uses the paper's 40,658.

use ta_churn::stats::figure1_series;
use ta_churn::synthetic::SmartphoneTraceModel;
use ta_metrics::{Table, TimeSeries};
use ta_sim::paper;
use ta_sim::time::SimDuration;

use crate::cli::FigureOpts;
use crate::report::Report;

/// Runs the Figure 1 regeneration.
///
/// # Errors
///
/// Returns an I/O error if the data file cannot be written.
pub fn run(opts: &FigureOpts) -> std::io::Result<Report> {
    let n = opts.effective_n(5_000, 40_658);
    let schedule = SmartphoneTraceModel::default().generate(n, paper::TWO_DAYS, opts.seed);
    let buckets = figure1_series(&schedule, paper::TWO_DAYS, SimDuration::from_hours(1));

    let mut report = Report::new(
        "fig1",
        format!("smartphone trace churn pattern over 48 h ({n} segments)"),
    );

    let mut table = Table::new(vec![
        "hour".into(),
        "online".into(),
        "has_been_online".into(),
        "logins/h".into(),
        "logouts/h".into(),
    ]);
    for b in buckets.iter().step_by(3) {
        table.row(vec![
            format!("{:.0}", b.hour),
            format!("{:.3}", b.online),
            format!("{:.3}", b.has_been_online),
            format!("{:.3}", b.logins),
            format!("{:.3}", b.logouts),
        ]);
    }
    report.table("churn pattern (every 3rd hour)", table);

    let mut shape = Table::new(vec!["property".into(), "value".into(), "paper".into()]);
    let online_mean = buckets.iter().map(|b| b.online).sum::<f64>() / buckets.len() as f64;
    let night = buckets
        .iter()
        .filter(|b| (b.hour % 24.0) < 6.0)
        .map(|b| b.online);
    let day = buckets
        .iter()
        .filter(|b| (12.0..18.0).contains(&(b.hour % 24.0)))
        .map(|b| b.online);
    let night_mean = night.clone().sum::<f64>() / night.count().max(1) as f64;
    let day_mean = day.clone().sum::<f64>() / day.count().max(1) as f64;
    shape.row_display([
        "never-online fraction".to_string(),
        format!("{:.3}", schedule.never_online_fraction()),
        "~0.30".to_string(),
    ]);
    shape.row_display([
        "mean online fraction".to_string(),
        format!("{online_mean:.3}"),
        "~0.3-0.45".to_string(),
    ]);
    shape.row_display([
        "night vs day availability".to_string(),
        format!("{night_mean:.3} vs {day_mean:.3}"),
        "night higher".to_string(),
    ]);
    report.table("shape checks vs. the paper", shape);

    // One .dat with the four series on the hourly grid.
    let times: Vec<f64> = buckets.iter().map(|b| b.hour * 3600.0).collect();
    let col = |f: fn(&ta_churn::ChurnBucket) -> f64| {
        TimeSeries::from_parts(times.clone(), buckets.iter().map(f).collect())
    };
    let series = [
        col(|b| b.online),
        col(|b| b.has_been_online),
        col(|b| b.logins),
        col(|b| b.logouts),
    ];
    let path = opts.out_dir.join("fig1_churn.dat");
    ta_metrics::output::write_dat(
        &path,
        "Figure 1: churn pattern of the synthetic smartphone trace",
        &["online", "has_been_online", "logins", "logouts"],
        &series,
    )?;
    report.file(path);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_tables_and_file() {
        let dir = std::env::temp_dir().join(format!("ta-fig1-{}", std::process::id()));
        let opts = FigureOpts {
            n: Some(300),
            out_dir: dir.clone(),
            ..FigureOpts::default()
        };
        let report = run(&opts).unwrap();
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.files.len(), 1);
        assert!(report.files[0].exists());
        let text = report.render();
        assert!(text.contains("never-online fraction"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
