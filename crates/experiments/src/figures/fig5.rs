//! Figure 5: average number of tokens vs. the mean-field prediction.
//!
//! "Average number of tokens (gossip learning, failure free scenario)" —
//! the measured steady-state token count of the randomized strategy should
//! agree with the Section 4.3 equilibrium `a = A·C/(C + 1)` ("this means
//! a ≈ A"). This module records the average balance over time, prints the
//! measured equilibrium against the closed form, the numeric eq. 10
//! solution, and the RK4-integrated eq. 8–9 trajectory endpoint.

use ta_metrics::{Table, TimeSeries};
use token_account::meanfield::{randomized_equilibrium, MeanFieldModel};
use token_account::strategies::RandomizedTokenAccount;
use token_account::{StrategySpec, Usefulness};

use crate::cli::FigureOpts;
use crate::figures::FigureError;
use crate::report::Report;
use crate::runner::{prepare_topology, run_grid_prepared};
use crate::spec::{AppKind, ExperimentSpec};

/// The `(A, C)` combinations validated in Figure 5.
pub const FIG5_AC: &[(u64, u64)] = &[(1, 10), (5, 10), (10, 20), (20, 40)];

/// Runs the Figure 5 regeneration.
///
/// # Errors
///
/// Returns [`FigureError`] on simulation or I/O failures.
pub fn run(opts: &FigureOpts) -> Result<Report, FigureError> {
    let n = opts.effective_n(1_000, 5_000);
    let rounds = opts.effective_rounds(500);
    let runs = opts.effective_runs(3);
    let mut report = Report::new(
        "fig5",
        format!(
            "average tokens, gossip learning, failure-free (N={n}, {rounds} rounds, {runs} runs)"
        ),
    );

    let base = ExperimentSpec::paper_defaults(AppKind::GossipLearning, StrategySpec::Proactive, n)
        .with_rounds(rounds)
        .with_runs(runs)
        .with_seed(opts.seed)
        .with_token_recording();
    let prepared = prepare_topology(&base)?;

    let mut table = Table::new(vec![
        "strategy".into(),
        "measured".into(),
        "closed form A·C/(C+1)".into(),
        "eq.10 solver".into(),
        "ODE endpoint".into(),
    ]);
    let mut labels = Vec::new();
    let mut series = Vec::new();
    // All (A, C) curves run as one flattened job grid over the shared
    // topology.
    let specs: Vec<ExperimentSpec> = FIG5_AC
        .iter()
        .map(|&(a, c)| ExperimentSpec {
            strategy: StrategySpec::Randomized { a, c },
            ..base.clone()
        })
        .collect();
    let results = run_grid_prepared(&specs, &prepared)?;
    for (&(a, c), result) in FIG5_AC.iter().zip(&results) {
        let strategy = StrategySpec::Randomized { a, c };
        let horizon = result.tokens.times().last().copied().unwrap_or(0.0);
        let measured = result
            .tokens
            .mean_value_from(horizon / 2.0)
            .unwrap_or(f64::NAN);

        let concrete = RandomizedTokenAccount::new(a, c).expect("valid by construction");
        let model = MeanFieldModel::new(&concrete, base.delta.as_secs_f64(), Usefulness::Useful);
        let solver = model.equilibrium_balance().unwrap_or(f64::NAN);
        let ode = model
            .integrate(0.0, 0.0, horizon.max(1.0), 1.0, 10_000)
            .last()
            .map(|s| s.tokens)
            .unwrap_or(f64::NAN);

        table.row(vec![
            strategy.label(),
            format!("{measured:.3}"),
            format!("{:.3}", randomized_equilibrium(a, c)),
            format!("{solver:.3}"),
            format!("{ode:.3}"),
        ]);
        labels.push(strategy.label());
        series.push(result.tokens.clone());
    }
    report.table("steady-state token count vs. mean-field prediction", table);

    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let path = opts.out_dir.join("fig5_tokens.dat");
    ta_metrics::output::write_dat(
        &path,
        &format!("Figure 5: average tokens over time (gossip learning, N={n})"),
        &label_refs,
        &series,
    )?;
    report.file(path);

    // Also write the mean-field trajectories for overlay plotting.
    let mut mf_series: Vec<TimeSeries> = Vec::new();
    for &(a, c) in FIG5_AC {
        let concrete = RandomizedTokenAccount::new(a, c).expect("valid by construction");
        let model = MeanFieldModel::new(&concrete, base.delta.as_secs_f64(), Usefulness::Useful);
        let horizon = base.duration.as_secs_f64();
        let traj = model.integrate(0.0, 0.0, horizon, 1.0, 200);
        mf_series.push(TimeSeries::from_parts(
            traj.iter().map(|s| s.time).collect(),
            traj.iter().map(|s| s.tokens).collect(),
        ));
    }
    let mf_path = opts.out_dir.join("fig5_meanfield.dat");
    ta_metrics::output::write_dat(
        &mf_path,
        "Figure 5 overlay: mean-field trajectories of eqs. 8-9",
        &label_refs,
        &mf_series,
    )?;
    report.file(mf_path);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_tokens_agree_with_prediction_at_small_scale() {
        let dir = std::env::temp_dir().join(format!("ta-fig5-{}", std::process::id()));
        let opts = FigureOpts {
            n: Some(150),
            rounds: Some(200),
            runs: Some(1),
            out_dir: dir.clone(),
            ..FigureOpts::default()
        };
        let report = run(&opts).unwrap();
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.files.len(), 2);
        // "Very good agreement with the predicted value": check the table
        // carries sane numbers by re-deriving one prediction.
        assert!((randomized_equilibrium(10, 20) - 9.52).abs() < 0.01);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
