//! The burstiness guarantee (Sections 1, 3.4).
//!
//! The paper's motivation is that reactive protocols "may cause bursts in
//! bandwidth consumption" through "cascading instantaneous reactions",
//! while token accounts give "strong guarantees regarding the total
//! communication cost and burstiness": a node sends at most `t/Δ + C`
//! messages in any window of length `t`.
//!
//! This experiment records the network-wide traffic histogram at
//! **transfer-time resolution** (τ = Δ/100 in the paper's setup — reactive
//! cascades complete within a few τ, so Δ-sized buckets would average them
//! away) and reports mean, peak, and peak-to-mean sends per slot. The
//! purely reactive reference runs with injection reactions enabled (it
//! reacts to any state change) and burst `k = 2`, so every fresh update
//! triggers a flood wave.
//!
//! Expected shape: the token-account strategies hug the proactive
//! baseline's one-message-per-node-per-round budget, while the reactive
//! flood's mean and peak are an order of magnitude larger with no bound at
//! all. (Peak-to-mean alone understates the difference under a
//! *continuous* injection stream — overlapping waves inflate the flood's
//! own mean — so the table reports absolute peaks and totals alongside
//! it.)
//!
//! One measured subtlety validates Section 3.4 verbatim: strategies
//! "allowing for spending the full account at once" (the generalized
//! family reacts even to useless messages once `a > A`) occasionally
//! cascade banked tokens into a single slot — large relative spikes that
//! nevertheless stay far below the `N·(1+C)` hard bound, which is the
//! guarantee the paper actually makes.

use ta_metrics::stats::peak_to_mean;
use ta_metrics::{Table, TimeSeries};
use token_account::StrategySpec;

use crate::cli::FigureOpts;
use crate::figures::FigureError;
use crate::report::Report;
use crate::runner::{prepare_topology, run_grid_prepared, ExperimentResult, RunOutcome};
use crate::spec::{AppKind, ExperimentSpec};

/// Strategies compared (the reactive reference uses `k = 2`: every useful
/// message triggers two forwards, a branching process that floods).
pub fn strategies() -> Vec<StrategySpec> {
    vec![
        StrategySpec::Proactive,
        StrategySpec::Reactive { k: 2 },
        StrategySpec::Simple { c: 20 },
        StrategySpec::Generalized { a: 5, c: 20 },
        StrategySpec::Randomized { a: 10, c: 20 },
    ]
}

/// Mean per-slot histogram over the runs of an experiment.
fn mean_histogram(result: &ExperimentResult) -> Vec<f64> {
    let len = result
        .runs
        .iter()
        .map(|r| r.sends_per_slot.len())
        .max()
        .unwrap_or(0);
    let mut acc = vec![0.0; len];
    for run in &result.runs {
        for (i, &c) in run.sends_per_slot.iter().enumerate() {
            acc[i] += c as f64;
        }
    }
    for v in acc.iter_mut() {
        *v /= result.runs.len() as f64;
    }
    acc
}

/// Per-run steady peak-to-mean, skipping the zero-initialization
/// thermalization transient (`skip_slots` leading slots).
fn steady_peak_to_mean(run: &RunOutcome, skip_slots: usize) -> f64 {
    peak_to_mean(run.sends_per_slot.get(skip_slots..).unwrap_or(&[]))
}

/// Runs the burstiness measurement.
///
/// # Errors
///
/// Returns [`FigureError`] on simulation or I/O failures.
pub fn run(opts: &FigureOpts) -> Result<Report, FigureError> {
    let n = opts.effective_n(800, 5_000);
    let rounds = opts.effective_rounds(250);
    let runs = opts.effective_runs(2);
    let mut report = Report::new(
        "burstiness",
        format!(
            "traffic shape of push gossip at transfer-time resolution (N={n}, {rounds} rounds, {runs} runs)"
        ),
    );
    let base = ExperimentSpec::paper_defaults(AppKind::PushGossip, StrategySpec::Proactive, n)
        .with_rounds(rounds)
        .with_runs(runs)
        .with_seed(opts.seed);
    let prepared = prepare_topology(&base)?;
    let slots_per_round = (base.delta.as_micros() / base.transfer.as_micros()).max(1) as usize;

    let mut table = Table::new(vec![
        "strategy".into(),
        "mean/slot".into(),
        "peak/slot".into(),
        "p2m (steady)".into(),
        "total sent".into(),
        "bound N·(1+C)/round".into(),
    ]);
    let mut labels = Vec::new();
    let mut series = Vec::new();
    // All strategies run as one flattened job grid over the shared overlay.
    let specs: Vec<ExperimentSpec> = strategies()
        .into_iter()
        .map(|strategy| {
            let mut spec = ExperimentSpec {
                strategy,
                ..base.clone()
            };
            if matches!(strategy, StrategySpec::Reactive { .. }) {
                // The reactive reference reacts to any state change,
                // injections included — without this it would never send at
                // all.
                spec = spec.with_injection_reaction();
            }
            spec
        })
        .collect();
    let results = run_grid_prepared(&specs, &prepared)?;
    for (strategy, result) in strategies().into_iter().zip(&results) {
        let capacity = strategy.build().expect("validated above").capacity();
        // Skip the fill-up transient (~2C rounds) for the steady measure.
        let skip = capacity
            .finite()
            .map(|c| (2 * c as usize + 10) * slots_per_round)
            .unwrap_or(10 * slots_per_round);
        let p2m = result
            .runs
            .iter()
            .map(|r| steady_peak_to_mean(r, skip))
            .sum::<f64>()
            / result.runs.len() as f64;
        let hist = mean_histogram(result);
        let steady = hist.get(skip..).unwrap_or(&[]);
        let mean = steady.iter().sum::<f64>() / steady.len().max(1) as f64;
        let peak = steady.iter().copied().fold(0.0f64, f64::max);
        let bound = capacity
            .finite()
            .map(|c| format!("{}", n as u64 * (1 + c)))
            .unwrap_or_else(|| "unbounded".into());
        table.row(vec![
            strategy.label(),
            format!("{mean:.1}"),
            format!("{peak:.0}"),
            format!("{p2m:.2}"),
            format!("{:.0}", result.stats.mean_messages_sent),
            bound,
        ]);
        labels.push(strategy.label());
        let tau = base.transfer.as_secs_f64();
        let times: Vec<f64> = (0..hist.len()).map(|i| i as f64 * tau).collect();
        series.push(TimeSeries::from_parts(times, hist));
    }
    report.table(
        "traffic shape by strategy (slot = one transfer time, Δ/100)",
        table,
    );

    // Pad histograms to a common grid before writing.
    let max_len = series.iter().map(TimeSeries::len).max().unwrap_or(0);
    let tau = base.transfer.as_secs_f64();
    let padded: Vec<TimeSeries> = series
        .iter()
        .map(|s| {
            let mut times: Vec<f64> = s.times().to_vec();
            let mut values: Vec<f64> = s.values().to_vec();
            while times.len() < max_len {
                times.push(times.len() as f64 * tau);
                values.push(0.0);
            }
            TimeSeries::from_parts(times, values)
        })
        .collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let path = opts.out_dir.join("burstiness_traffic.dat");
    ta_metrics::output::write_dat(
        &path,
        &format!("Per-slot sends of push gossip by strategy (N={n}, slot=transfer time)"),
        &label_refs,
        &padded,
    )?;
    report.file(path);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;
    use crate::spec::TopologyKind;

    fn mk(strategy: StrategySpec, inject_react: bool) -> ExperimentResult {
        let mut spec = ExperimentSpec::paper_defaults(AppKind::PushGossip, strategy, 100)
            .with_rounds(100)
            .with_runs(1)
            .with_seed(12);
        spec.topology = TopologyKind::KOut { k: 10 };
        if inject_react {
            spec = spec.with_injection_reaction();
        }
        run_experiment(&spec).unwrap()
    }

    #[test]
    fn token_account_peaks_stay_low_reactive_peaks_explode() {
        let simple = mk(StrategySpec::Simple { c: 20 }, false);
        let reactive = mk(StrategySpec::Reactive { k: 2 }, true);
        // Steady state: skip the zero-init thermalization (~50 rounds of
        // 100 slots each).
        let skip = 50 * 100;
        let peak = |r: &ExperimentResult| {
            r.runs[0]
                .sends_per_slot
                .get(skip..)
                .unwrap_or(&[])
                .iter()
                .max()
                .copied()
                .unwrap_or(0)
        };
        let peak_simple = peak(&simple);
        let peak_reactive = peak(&reactive);
        assert!(
            peak_reactive > 4 * peak_simple,
            "reactive peaks should dwarf token-account peaks: {peak_reactive} vs {peak_simple}"
        );
        // The token-account peak stays a small multiple of the
        // one-per-node-per-round budget (100 nodes / 100 slots = 1/slot).
        assert!(
            peak_simple <= 15,
            "token account peak per slot too high: {peak_simple}"
        );
    }

    #[test]
    fn per_round_sends_respect_the_section_3_4_bound() {
        let result = mk(StrategySpec::Generalized { a: 1, c: 10 }, false);
        // Aggregate transfer slots back into Δ rounds: each node sends at
        // most 1 + C messages per Δ window ⇒ N·(1 + C) network-wide.
        let bound = 100 * (1 + 10);
        for (i, chunk) in result.runs[0].sends_per_slot.chunks(100).enumerate() {
            let count: u64 = chunk.iter().sum();
            assert!(count <= bound, "round {i}: {count} sends > bound {bound}");
        }
    }

    #[test]
    fn reactive_reference_sends_more_total_messages() {
        // Rate limitation is the point: the flood wins no budget prize.
        let simple = mk(StrategySpec::Simple { c: 20 }, false);
        let reactive = mk(StrategySpec::Reactive { k: 2 }, true);
        assert!(
            reactive.stats.mean_messages_sent > simple.stats.mean_messages_sent,
            "flooding should cost more: {} vs {}",
            reactive.stats.mean_messages_sent,
            simple.stats.mean_messages_sent
        );
    }
}
