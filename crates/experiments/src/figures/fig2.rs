//! Figure 2: token account strategies in the failure-free scenario.
//!
//! Nine panels — {gossip learning, push gossip, chaotic iteration} ×
//! {simple, generalized, randomized} — each showing the proactive baseline
//! and a representative selection of `(A, C)` combinations over 1000
//! rounds at N = 5000 (Watts–Strogatz N = 5000 for chaotic iteration).
//!
//! Expected shape (Section 4.2): *every* parameter combination beats the
//! proactive baseline significantly for gossip learning and push gossip,
//! and most do for chaotic iteration; push gossip is insensitive to the
//! parameters except `A = C`; gossip learning needs a large enough `C`.

use crate::cli::FigureOpts;
use crate::figures::{comparison_table, plot_series, Family, FigureError};
use crate::report::Report;
use crate::runner::{prepare_topology, run_grid_prepared, ExperimentResult, RunError};
use crate::spec::{AppKind, ExperimentSpec};
use token_account::StrategySpec;

/// The applications of Figure 2, in paper row order.
pub const APPS: [AppKind; 3] = [
    AppKind::GossipLearning,
    AppKind::PushGossip,
    AppKind::ChaoticIteration,
];

/// Runs one panel (one app × one family): baseline first, then the
/// family's representative strategies. Returns labelled results.
pub fn run_panel(
    app: AppKind,
    family: Family,
    base_spec: &ExperimentSpec,
) -> Result<Vec<(String, ExperimentResult)>, RunError> {
    debug_assert_eq!(app, base_spec.app, "panel app must match the base spec");
    let prepared = prepare_topology(base_spec)?;
    let mut strategies = vec![StrategySpec::Proactive];
    strategies.extend(family.representative());
    // One flattened (strategy × run) grid: the whole panel saturates the
    // worker pool instead of joining after each curve.
    let specs: Vec<ExperimentSpec> = strategies
        .iter()
        .map(|&strategy| ExperimentSpec {
            strategy,
            ..base_spec.clone()
        })
        .collect();
    let results = run_grid_prepared(&specs, &prepared)?;
    Ok(strategies.iter().map(|s| s.label()).zip(results).collect())
}

/// Runs the full Figure 2 regeneration.
///
/// # Errors
///
/// Returns [`FigureError`] on simulation or I/O failures.
pub fn run(opts: &FigureOpts) -> Result<Report, FigureError> {
    let rounds = opts.effective_rounds(250);
    let runs = opts.effective_runs(3);
    let mut report = Report::new(
        "fig2",
        format!("failure-free scenario, {rounds} rounds, {runs} runs per curve"),
    );
    for app in APPS {
        let n = opts.effective_n(1_000, 5_000);
        for family in Family::ALL {
            let base = ExperimentSpec::paper_defaults(app, StrategySpec::Proactive, n)
                .with_rounds(rounds)
                .with_runs(runs)
                .with_seed(opts.seed);
            let entries = run_panel(app, family, &base)?;
            report.table(
                format!("{} / {}", app.name(), family.name()),
                comparison_table(app, &entries),
            );
            let labels: Vec<String> = entries.iter().map(|(l, _)| l.clone()).collect();
            let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            let series: Vec<_> = entries.iter().map(|(_, r)| plot_series(app, r)).collect();
            let path = opts
                .out_dir
                .join(format!("fig2_{}_{}.dat", app.name(), family.name()));
            ta_metrics::output::write_dat(
                &path,
                &format!(
                    "Figure 2 panel: {} with {} strategies (failure-free, N={n})",
                    app.name(),
                    family.name()
                ),
                &label_refs,
                &series,
            )?;
            report.file(path);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologyKind;

    #[test]
    fn one_panel_runs_and_every_strategy_beats_the_baseline() {
        let mut base =
            ExperimentSpec::paper_defaults(AppKind::GossipLearning, StrategySpec::Proactive, 80)
                .with_rounds(40)
                .with_runs(1)
                .with_seed(2);
        base.topology = TopologyKind::KOut { k: 8 };
        let entries = run_panel(AppKind::GossipLearning, Family::Randomized, &base).unwrap();
        // Baseline + 6 representative combos.
        assert_eq!(entries.len(), 7);
        let baseline = entries[0].1.metric.last_value().unwrap();
        for (label, result) in &entries[1..] {
            let v = result.metric.last_value().unwrap();
            assert!(
                v > baseline,
                "{label} ({v}) should beat proactive ({baseline})"
            );
        }
    }
}
