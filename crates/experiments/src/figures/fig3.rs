//! Figure 3: token account strategies over the smartphone trace.
//!
//! Six panels — {gossip learning, push gossip} × {simple, generalized,
//! randomized} — over the (synthetic) smartphone availability trace.
//! Metrics are computed over online nodes only; tokens are granted only
//! while online; push gossip nodes send a pull request on rejoin
//! (Section 4.1.2).
//!
//! Expected shape: an apparent diurnal pattern on top of results "rather
//! consistent with those in the failure-free scenario" — very significant
//! improvement over the proactive baseline at the same communication cost.
//! (Chaotic iteration is excluded, as in the paper: convergence is not
//! well-defined under aggressive churn.)

use crate::cli::FigureOpts;
use crate::figures::{comparison_table, plot_series, Family, FigureError};
use crate::report::Report;
use crate::runner::{prepare_topology, run_grid_prepared};
use crate::spec::{AppKind, ExperimentSpec};
use token_account::StrategySpec;

/// The applications of Figure 3 (chaotic iteration excluded).
pub const APPS: [AppKind; 2] = [AppKind::GossipLearning, AppKind::PushGossip];

/// Runs the Figure 3 regeneration.
///
/// # Errors
///
/// Returns [`FigureError`] on simulation or I/O failures.
pub fn run(opts: &FigureOpts) -> Result<Report, FigureError> {
    // The diurnal pattern needs the full two-day horizon; scale N instead
    // of rounds at quick scale.
    let rounds = opts.effective_rounds(1000);
    let runs = opts.effective_runs(3);
    let n = opts.effective_n(1_000, 5_000);
    let mut report = Report::new(
        "fig3",
        format!("smartphone trace scenario, N={n}, {rounds} rounds, {runs} runs per curve"),
    );
    for app in APPS {
        for family in Family::ALL {
            let base = ExperimentSpec::paper_defaults(app, StrategySpec::Proactive, n)
                .with_rounds(rounds)
                .with_runs(runs)
                .with_seed(opts.seed)
                .with_smartphone_churn();
            let prepared = prepare_topology(&base)?;
            let mut strategies = vec![StrategySpec::Proactive];
            strategies.extend(family.representative());
            // One flattened (strategy × run) grid per panel.
            let specs: Vec<ExperimentSpec> = strategies
                .iter()
                .map(|&strategy| ExperimentSpec {
                    strategy,
                    ..base.clone()
                })
                .collect();
            let results = run_grid_prepared(&specs, &prepared)?;
            let entries: Vec<_> = strategies.iter().map(|s| s.label()).zip(results).collect();
            report.table(
                format!("{} / {} (trace)", app.name(), family.name()),
                comparison_table(app, &entries),
            );
            let labels: Vec<String> = entries.iter().map(|(l, _)| l.clone()).collect();
            let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            let series: Vec<_> = entries.iter().map(|(_, r)| plot_series(app, r)).collect();
            let path = opts
                .out_dir
                .join(format!("fig3_{}_{}.dat", app.name(), family.name()));
            ta_metrics::output::write_dat(
                &path,
                &format!(
                    "Figure 3 panel: {} with {} strategies (smartphone trace, N={n})",
                    app.name(),
                    family.name()
                ),
                &label_refs,
                &series,
            )?;
            report.file(path);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;
    use crate::spec::TopologyKind;

    #[test]
    fn trace_scenario_still_beats_proactive() {
        let mut base =
            ExperimentSpec::paper_defaults(AppKind::PushGossip, StrategySpec::Proactive, 100)
                .with_rounds(120)
                .with_runs(1)
                .with_seed(4)
                .with_smartphone_churn();
        base.topology = TopologyKind::KOut { k: 10 };
        let baseline = run_experiment(&base).unwrap();
        let token = run_experiment(&ExperimentSpec {
            strategy: StrategySpec::Generalized { a: 5, c: 10 },
            ..base
        })
        .unwrap();
        let horizon = baseline.metric.times().last().copied().unwrap();
        let b = baseline.metric.mean_value_from(horizon / 2.0).unwrap();
        let t = token.metric.mean_value_from(horizon / 2.0).unwrap();
        assert!(t < b, "trace scenario: token lag {t} vs proactive {b}");
    }
}
