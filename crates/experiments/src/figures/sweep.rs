//! The Section 4.2 parameter exploration.
//!
//! "The parameter space included all the combinations defined by
//! A = 1, 2, 5, 10, 15, 20, 40 and C − A = 0, 1, 2, 5, 10, 15, 20, 40, 80."
//! This module runs the full grid for a family and prints the steady
//! metric per cell, making the paper's qualitative conclusions checkable:
//! every combination improves on the proactive baseline, `A = C` cells are
//! inferior for push gossip, and gossip learning wants a large enough `C`.

use ta_metrics::Table;
use token_account::StrategySpec;

use crate::cli::FigureOpts;
use crate::figures::{summarize, Family, FigureError};
use crate::report::Report;
use crate::runner::{prepare_topology, run_grid_prepared};
use crate::spec::{AppKind, ExperimentSpec};

/// The `A` values of the paper's grid.
pub const A_VALUES: &[u64] = &[1, 2, 5, 10, 15, 20, 40];

/// The `C − A` values of the paper's grid.
pub const C_MINUS_A_VALUES: &[u64] = &[0, 1, 2, 5, 10, 15, 20, 40, 80];

/// Runs the sweep for one application and family; returns the grid table
/// (rows: `A`; columns: `C − A`) of steady metric values, with the
/// proactive baseline in the caption row.
///
/// # Errors
///
/// Returns [`FigureError`] on simulation failures.
pub fn run_grid(
    app: AppKind,
    family: Family,
    base: &ExperimentSpec,
) -> Result<(f64, Table), FigureError> {
    debug_assert_eq!(app, base.app, "grid app must match the base spec");
    let prepared = prepare_topology(base)?;
    // The baseline and all 63 (A, C−A) cells flatten into one job grid, so
    // the bounded pool schedules every replica of every cell at once.
    let mut specs = vec![ExperimentSpec {
        strategy: StrategySpec::Proactive,
        ..base.clone()
    }];
    for &a in A_VALUES {
        for &d in C_MINUS_A_VALUES {
            specs.push(ExperimentSpec {
                strategy: family.with_params(a, a + d),
                ..base.clone()
            });
        }
    }
    let results = run_grid_prepared(&specs, &prepared)?;
    let mut steady = results.iter().map(|r| summarize(r).steady_mean);
    let baseline_steady = steady.next().expect("baseline result present");

    let mut headers = vec!["A \\ C-A".to_string()];
    headers.extend(C_MINUS_A_VALUES.iter().map(|d| d.to_string()));
    let mut table = Table::new(headers);
    for &a in A_VALUES {
        let mut row = vec![a.to_string()];
        for _ in C_MINUS_A_VALUES {
            let cell = steady.next().expect("one result per grid cell");
            row.push(format!("{cell:.3}"));
        }
        table.row(row);
    }
    Ok((baseline_steady, table))
}

/// Runs the sweep. Quick default: gossip learning and push gossip with the
/// randomized family; `--full` adds chaotic iteration and the other
/// families.
///
/// # Errors
///
/// Returns [`FigureError`] on simulation failures.
pub fn run(opts: &FigureOpts) -> Result<Report, FigureError> {
    let n = opts.effective_n(500, 5_000);
    let rounds = opts.effective_rounds(150);
    let runs = opts.effective_runs(2);
    let apps: Vec<AppKind> = if opts.full {
        vec![
            AppKind::GossipLearning,
            AppKind::PushGossip,
            AppKind::ChaoticIteration,
        ]
    } else {
        vec![AppKind::GossipLearning, AppKind::PushGossip]
    };
    let families: Vec<Family> = if opts.full {
        Family::ALL.to_vec()
    } else {
        vec![Family::Randomized]
    };
    let mut report = Report::new(
        "sweep",
        format!(
            "Section 4.2 parameter exploration (N={n}, {rounds} rounds, {runs} runs per cell; steady metric per (A, C-A) cell)"
        ),
    );
    for &app in &apps {
        for &family in &families {
            let base = ExperimentSpec::paper_defaults(app, StrategySpec::Proactive, n)
                .with_rounds(rounds)
                .with_runs(runs)
                .with_seed(opts.seed);
            let (baseline, table) = run_grid(app, family, &base)?;
            report.table(
                format!(
                    "{} / {} — proactive baseline steady metric: {baseline:.3}",
                    app.name(),
                    family.name()
                ),
                table,
            );
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologyKind;

    #[test]
    fn tiny_grid_runs_and_beats_baseline_everywhere() {
        let mut base =
            ExperimentSpec::paper_defaults(AppKind::GossipLearning, StrategySpec::Proactive, 60)
                .with_rounds(30)
                .with_runs(1)
                .with_seed(6);
        base.topology = TopologyKind::KOut { k: 6 };
        // Shrink the grid through the public constants? The full grid is
        // 63 cells; at this scale that is still fast enough.
        let (baseline, table) =
            run_grid(AppKind::GossipLearning, Family::Randomized, &base).unwrap();
        assert_eq!(table.len(), A_VALUES.len());
        assert!(baseline > 0.0);
        // Spot-check cells with A small enough to bootstrap within the 30
        // simulated rounds — accounts start empty, so a strategy with
        // A − 1 ≈ rounds never begins to send (the paper notes this
        // zero-initialization handicap for large C explicitly).
        let csv = table.to_csv();
        let mut checked = 0;
        for line in csv.lines().skip(1) {
            let mut cells = line.split(',');
            let a: u64 = cells.next().unwrap().parse().unwrap();
            if a > 5 {
                continue;
            }
            for cell in cells.take(3) {
                let v: f64 = cell.parse().unwrap();
                assert!(
                    v > baseline,
                    "A={a}: cell {v} should beat proactive baseline {baseline}"
                );
                checked += 1;
            }
        }
        assert_eq!(checked, 9);
    }
}
