//! Figure 4: scalability — the failure-free scenario at N = 500,000.
//!
//! Four panels: {gossip learning, push gossip} × {generalized,
//! randomized}. The paper's headline observations:
//!
//! * push gossip stays "very robust to the parameter settings" — every
//!   `C > A` curve is nearly identical, with only a logarithmic delay
//!   increase from the larger diameter;
//! * gossip learning shows a *crossover*: the most aggressive reactive
//!   variants (`A = 1`) are among the worst in the small network (walks
//!   stall from finite-size effects) but among the best in the large one;
//! * `A = 5, C = 10` is a robust choice at every scale.
//!
//! The quick default runs N = 10,000 (the crossover is already visible);
//! `--full` runs the paper's N = 500,000.

use crate::cli::FigureOpts;
use crate::figures::{comparison_table, plot_series, Family, FigureError};
use crate::report::Report;
use crate::runner::{prepare_topology, run_grid_prepared};
use crate::spec::{AppKind, ExperimentSpec};
use token_account::StrategySpec;

/// The `(A, C)` set highlighted by the paper's Figure 4 discussion.
pub const LARGE_N_AC: &[(u64, u64)] = &[(1, 5), (1, 10), (5, 10), (10, 20)];

/// The applications of Figure 4.
pub const APPS: [AppKind; 2] = [AppKind::GossipLearning, AppKind::PushGossip];

/// Runs the Figure 4 regeneration.
///
/// # Errors
///
/// Returns [`FigureError`] on simulation or I/O failures.
pub fn run(opts: &FigureOpts) -> Result<Report, FigureError> {
    let n = opts.effective_n(10_000, 500_000);
    let rounds = opts.effective_rounds(150);
    let runs = opts.effective_runs(2);
    let mut report = Report::new(
        "fig4",
        format!("failure-free scenario at N={n}, {rounds} rounds, {runs} runs per curve"),
    );
    for app in APPS {
        for family in [Family::Generalized, Family::Randomized] {
            let base = ExperimentSpec::paper_defaults(app, StrategySpec::Proactive, n)
                .with_rounds(rounds)
                .with_runs(runs)
                .with_seed(opts.seed);
            let prepared = prepare_topology(&base)?;
            let mut strategies = vec![StrategySpec::Proactive];
            strategies.extend(LARGE_N_AC.iter().map(|&(a, c)| family.with_params(a, c)));
            // One flattened (strategy × run) grid per panel.
            let specs: Vec<ExperimentSpec> = strategies
                .iter()
                .map(|&strategy| ExperimentSpec {
                    strategy,
                    ..base.clone()
                })
                .collect();
            let results = run_grid_prepared(&specs, &prepared)?;
            let entries: Vec<_> = strategies.iter().map(|s| s.label()).zip(results).collect();
            report.table(
                format!("{} / {} (N={n})", app.name(), family.name()),
                comparison_table(app, &entries),
            );
            let labels: Vec<String> = entries.iter().map(|(l, _)| l.clone()).collect();
            let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            let series: Vec<_> = entries.iter().map(|(_, r)| plot_series(app, r)).collect();
            let path = opts
                .out_dir
                .join(format!("fig4_{}_{}.dat", app.name(), family.name()));
            ta_metrics::output::write_dat(
                &path,
                &format!(
                    "Figure 4 panel: {} with {} strategies (failure-free, N={n})",
                    app.name(),
                    family.name()
                ),
                &label_refs,
                &series,
            )?;
            report.file(path);
        }
    }
    Ok(report)
}
