//! Design-choice ablations (DESIGN.md: "Design decisions & ablations").
//!
//! Two protocol-level knobs the paper fixes are made measurable here:
//!
//! * **Reply policy** — Algorithm 4 addresses every reactive message to a
//!   random peer; the push–pull extension answers the sender first
//!   (Section 2.3 calls push–pull "superior to push according to a number
//!   of performance metrics").
//! * **Round phasing** — the paper's system model allows synchronized or
//!   unsynchronized rounds; the engine supports both
//!   ([`TickPhase`]), and the lag of the *proactive baseline* is
//!   sensitive to it while token-account strategies are not.
//!
//! (The scheduler ablation — binary heap vs. timing wheel — is timing-only
//! and lives in `ta-bench`'s `event_queue`/`engine` benches; both produce
//! bit-identical simulations, which `tests/determinism.rs` asserts.)

use ta_apps::protocol::ReplyPolicy;
use ta_metrics::Table;
use ta_sim::config::TickPhase;
use token_account::StrategySpec;

use crate::cli::FigureOpts;
use crate::figures::{summarize, FigureError};
use crate::report::Report;
use crate::runner::{prepare_topology, run_grid_prepared};
use crate::spec::{AppKind, ExperimentSpec};

/// Runs both ablations on push gossip.
///
/// # Errors
///
/// Returns [`FigureError`] on simulation failures.
pub fn run(opts: &FigureOpts) -> Result<Report, FigureError> {
    let n = opts.effective_n(800, 5_000);
    let rounds = opts.effective_rounds(250);
    let runs = opts.effective_runs(2);
    let mut report = Report::new(
        "ablation",
        format!(
            "protocol design-choice ablations on push gossip (N={n}, {rounds} rounds, {runs} runs)"
        ),
    );
    let base = ExperimentSpec::paper_defaults(AppKind::PushGossip, StrategySpec::Proactive, n)
        .with_rounds(rounds)
        .with_runs(runs)
        .with_seed(opts.seed);
    let prepared = prepare_topology(&base)?;

    // Ablation 1: reactive reply addressing.
    let mut reply = Table::new(vec![
        "strategy".into(),
        "random peer (paper)".into(),
        "sender-first (push-pull)".into(),
        "change".into(),
    ]);
    let reply_strategies = [
        StrategySpec::Simple { c: 20 },
        StrategySpec::Generalized { a: 5, c: 20 },
        StrategySpec::Randomized { a: 10, c: 20 },
    ];
    // Flatten the (strategy × policy) grid into one parallel batch.
    let specs: Vec<ExperimentSpec> = reply_strategies
        .iter()
        .flat_map(|&strategy| {
            [ReplyPolicy::RandomPeer, ReplyPolicy::SenderFirst].map(|policy| {
                ExperimentSpec {
                    strategy,
                    ..base.clone()
                }
                .with_reply_policy(policy)
            })
        })
        .collect();
    let results = run_grid_prepared(&specs, &prepared)?;
    for (strategy, pair) in reply_strategies.iter().zip(results.chunks(2)) {
        let lags: Vec<f64> = pair.iter().map(|r| summarize(r).steady_mean).collect();
        reply.row(vec![
            strategy.label(),
            format!("{:.2}", lags[0]),
            format!("{:.2}", lags[1]),
            format!("{:+.1}%", (lags[1] / lags[0] - 1.0) * 100.0),
        ]);
    }
    report.table("steady lag by reply policy", reply);

    // Ablation 2: round phasing.
    let mut phasing = Table::new(vec![
        "strategy".into(),
        "unsynchronized (paper)".into(),
        "synchronized".into(),
        "change".into(),
    ]);
    let phasing_strategies = [
        StrategySpec::Proactive,
        StrategySpec::Simple { c: 20 },
        StrategySpec::Randomized { a: 10, c: 20 },
    ];
    let specs: Vec<ExperimentSpec> = phasing_strategies
        .iter()
        .flat_map(|&strategy| {
            [TickPhase::UniformRandom, TickPhase::Synchronized].map(|phase| {
                ExperimentSpec {
                    strategy,
                    ..base.clone()
                }
                .with_tick_phase(phase)
            })
        })
        .collect();
    let results = run_grid_prepared(&specs, &prepared)?;
    for (strategy, pair) in phasing_strategies.iter().zip(results.chunks(2)) {
        let lags: Vec<f64> = pair.iter().map(|r| summarize(r).steady_mean).collect();
        phasing.row(vec![
            strategy.label(),
            format!("{:.2}", lags[0]),
            format!("{:.2}", lags[1]),
            format!("{:+.1}%", (lags[1] / lags[0] - 1.0) * 100.0),
        ]);
    }
    report.table("steady lag by round phasing", phasing);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;
    use crate::spec::TopologyKind;

    #[test]
    fn sender_first_does_not_break_rate_limiting() {
        let mut spec = ExperimentSpec::paper_defaults(
            AppKind::PushGossip,
            StrategySpec::Generalized { a: 5, c: 10 },
            80,
        )
        .with_rounds(60)
        .with_runs(1)
        .with_seed(3)
        .with_reply_policy(ReplyPolicy::SenderFirst);
        spec.topology = TopologyKind::KOut { k: 8 };
        let result = run_experiment(&spec).unwrap();
        for run in &result.runs {
            let bound = run.sim.ticks_fired + 80 * 10;
            assert!(run.protocol.total_sent() <= bound);
        }
    }

    #[test]
    fn both_policies_are_deterministic_and_distinct() {
        let mk = |policy| {
            let mut spec = ExperimentSpec::paper_defaults(
                AppKind::PushGossip,
                StrategySpec::Randomized { a: 5, c: 10 },
                80,
            )
            .with_rounds(60)
            .with_runs(1)
            .with_seed(3)
            .with_reply_policy(policy);
            spec.topology = TopologyKind::KOut { k: 8 };
            run_experiment(&spec).unwrap().metric
        };
        let random_a = mk(ReplyPolicy::RandomPeer);
        let random_b = mk(ReplyPolicy::RandomPeer);
        let sender = mk(ReplyPolicy::SenderFirst);
        assert_eq!(random_a, random_b);
        assert_ne!(random_a, sender);
    }
}
