//! Fault-injection extension: the proactive floor under message drops.
//!
//! Section 3.3.1 argues that the token-account proactive component "helps
//! maintain a certain level of communication rate naturally even under
//! high message drop rates, which is impossible in a purely reactive
//! implementation": lost messages stop triggering reactions, but the
//! accounts fill up and the proactive path revives traffic.
//!
//! This experiment (not a figure in the paper; flagged in DESIGN.md as an
//! extension) runs push gossip under increasing drop probabilities and
//! reports the per-round message rate and the steady lag. The expected
//! shape: token-account strategies keep a send rate close to one message
//! per node per round at any drop rate, while the purely reactive
//! reference collapses.

use ta_metrics::Table;
use token_account::StrategySpec;

use crate::cli::FigureOpts;
use crate::figures::{summarize, FigureError};
use crate::report::Report;
use crate::runner::{prepare_topology, run_grid_prepared};
use crate::spec::{AppKind, ExperimentSpec};

/// Drop probabilities exercised.
pub const DROPS: &[f64] = &[0.0, 0.3, 0.6];

/// Strategies compared (the reactive reference uses k = 1).
pub fn strategies() -> Vec<StrategySpec> {
    vec![
        StrategySpec::Proactive,
        StrategySpec::Reactive { k: 1 },
        StrategySpec::Simple { c: 20 },
        StrategySpec::Generalized { a: 5, c: 20 },
        StrategySpec::Randomized { a: 10, c: 20 },
    ]
}

/// Runs the fault-injection experiment.
///
/// # Errors
///
/// Returns [`FigureError`] on simulation failures.
pub fn run(opts: &FigureOpts) -> Result<Report, FigureError> {
    let n = opts.effective_n(800, 5_000);
    let rounds = opts.effective_rounds(300);
    let runs = opts.effective_runs(2);
    let mut report = Report::new(
        "faults",
        format!(
            "push gossip under message drops (N={n}, {rounds} rounds, {runs} runs): send rate per node-round and steady lag"
        ),
    );
    let base = ExperimentSpec::paper_defaults(AppKind::PushGossip, StrategySpec::Proactive, n)
        .with_rounds(rounds)
        .with_runs(runs)
        .with_seed(opts.seed);
    let prepared = prepare_topology(&base)?;

    let mut table = Table::new(vec![
        "strategy".into(),
        "drop".into(),
        "sends/node-round".into(),
        "steady lag".into(),
    ]);
    // The whole (strategy × drop) grid runs as one flattened job list.
    let mut cells = Vec::new();
    let mut specs = Vec::new();
    for strategy in strategies() {
        for &drop in DROPS {
            let mut spec = ExperimentSpec {
                strategy,
                ..base.clone()
            }
            .with_drop_probability(drop);
            if matches!(strategy, StrategySpec::Reactive { .. }) {
                // The reactive reference reacts to injections too —
                // otherwise it never bootstraps and the comparison is
                // trivial.
                spec = spec.with_injection_reaction();
            }
            cells.push((strategy, drop));
            specs.push(spec);
        }
    }
    let results = run_grid_prepared(&specs, &prepared)?;
    for ((strategy, drop), result) in cells.into_iter().zip(&results) {
        let sends_per_node_round =
            result.stats.mean_messages_sent / result.stats.mean_ticks.max(1.0);
        let lag = summarize(result).steady_mean;
        table.row(vec![
            strategy.label(),
            format!("{drop:.1}"),
            format!("{sends_per_node_round:.3}"),
            format!("{lag:.2}"),
        ]);
    }
    report.table("fault tolerance of the proactive floor", table);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;
    use crate::spec::TopologyKind;

    /// The core claim: under drops, the simple token account keeps sending
    /// (proactive floor) while the purely reactive reference starves.
    #[test]
    fn proactive_floor_survives_drops_reactive_starves() {
        let mk = |strategy: StrategySpec, drop| {
            let mut spec = ExperimentSpec::paper_defaults(AppKind::PushGossip, strategy, 80)
                .with_rounds(100)
                .with_runs(1)
                .with_seed(8)
                .with_drop_probability(drop);
            spec.topology = TopologyKind::KOut { k: 8 };
            if matches!(strategy, StrategySpec::Reactive { .. }) {
                spec = spec.with_injection_reaction();
            }
            run_experiment(&spec).unwrap()
        };
        let simple = mk(StrategySpec::Simple { c: 20 }, 0.6);
        let reactive = mk(StrategySpec::Reactive { k: 1 }, 0.6);
        let simple_rate = simple.stats.mean_messages_sent / simple.stats.mean_ticks;
        let reactive_rate = reactive.stats.mean_messages_sent / reactive.stats.mean_ticks;
        assert!(
            simple_rate > 0.5,
            "simple token account rate collapsed: {simple_rate}"
        );
        assert!(
            reactive_rate < simple_rate / 2.0,
            "reactive should starve: {reactive_rate} vs {simple_rate}"
        );
    }
}
