//! Minimal command-line options shared by the figure binaries.
//!
//! Every figure binary accepts the same flags:
//!
//! ```text
//! --n <nodes>       override the network size
//! --runs <k>        independent runs per configuration
//! --rounds <k>      proactive rounds to simulate (paper: 1000)
//! --seed <s>        master seed
//! --out <dir>       output directory for .dat files (default: results)
//! --shards <s>      intra-run shards per replica (default: auto)
//! --pin             pin intra-run shard workers to cores
//! --full            paper-scale defaults (N, rounds, runs as in the paper)
//! ```
//!
//! Parsing is hand-rolled to keep the dependency set to the offline crates
//! justified in DESIGN.md.

use std::fmt;
use std::path::PathBuf;

use ta_telemetry::EventLine;

/// Parsed figure options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureOpts {
    /// Explicit network-size override.
    pub n: Option<usize>,
    /// Explicit runs override.
    pub runs: Option<usize>,
    /// Explicit rounds override.
    pub rounds: Option<u64>,
    /// Master seed.
    pub seed: u64,
    /// Output directory for data files.
    pub out_dir: PathBuf,
    /// Use paper-scale defaults.
    pub full: bool,
    /// Intra-run shard count override (`--shards`): forces every replica
    /// through the sharded engine with this many shards. `None` lets the
    /// runner trade across-run vs. intra-run parallelism itself. Never
    /// affects results — the sharded engine is byte-identical to the
    /// serial one.
    pub shards: Option<usize>,
    /// Pin intra-run shard workers to cores (`--pin`, exported as
    /// `TA_PIN=1`). Wall-clock only; results are identical either way.
    pub pin: bool,
}

impl Default for FigureOpts {
    fn default() -> Self {
        FigureOpts {
            n: None,
            runs: None,
            rounds: None,
            seed: 1,
            out_dir: PathBuf::from("results"),
            full: false,
            shards: None,
            pin: false,
        }
    }
}

/// Error parsing figure options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOptsError(String);

impl fmt::Display for ParseOptsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (see --help)", self.0)
    }
}

impl ParseOptsError {
    /// True when this "error" is actually a `--help` request carrying
    /// the usage text: binaries print [`USAGE`] to stdout and exit 0.
    #[must_use]
    pub fn is_help(&self) -> bool {
        self.0 == USAGE
    }
}

impl std::error::Error for ParseOptsError {}

/// Prints a structured failure diagnostic to stderr, in the same
/// `event=<bin> ok=false detail=...` grammar the live runtime emits,
/// so harness logs stay machine-greppable end to end.
pub fn fail_event(bin: &str, detail: impl fmt::Display) {
    eprintln!(
        "{}",
        EventLine::new(bin)
            .kv("ok", false)
            .kv("detail", detail)
            .finish()
    );
}

/// The usage string printed by `--help`.
pub const USAGE: &str = "options:\n  --n <nodes>     network size override\n  --runs <k>      runs per configuration\n  --rounds <k>    proactive rounds (paper: 1000)\n  --seed <s>      master seed (default 1)\n  --out <dir>     output directory (default: results)\n  --shards <s>    intra-run shards per replica (default: auto; results\n                  are identical for every value)\n  --pin           pin intra-run shard workers to cores (wall-clock only)\n  --full          paper-scale defaults\n  --help          this text";

impl FigureOpts {
    /// Parses options from an argument iterator (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ParseOptsError`] on unknown flags or malformed values;
    /// `--help` also surfaces as an error carrying the usage text so
    /// binaries can print and exit.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ParseOptsError> {
        let mut opts = FigureOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value_for = |flag: &str| {
                it.next()
                    .ok_or_else(|| ParseOptsError(format!("{flag} needs a value")))
            };
            match arg.as_str() {
                "--n" => {
                    let v = value_for("--n")?;
                    opts.n = Some(
                        v.parse()
                            .map_err(|_| ParseOptsError(format!("bad --n value `{v}`")))?,
                    );
                }
                "--runs" => {
                    let v = value_for("--runs")?;
                    opts.runs = Some(
                        v.parse()
                            .map_err(|_| ParseOptsError(format!("bad --runs value `{v}`")))?,
                    );
                }
                "--rounds" => {
                    let v = value_for("--rounds")?;
                    opts.rounds = Some(
                        v.parse()
                            .map_err(|_| ParseOptsError(format!("bad --rounds value `{v}`")))?,
                    );
                }
                "--seed" => {
                    let v = value_for("--seed")?;
                    opts.seed = v
                        .parse()
                        .map_err(|_| ParseOptsError(format!("bad --seed value `{v}`")))?;
                }
                "--out" => {
                    opts.out_dir = PathBuf::from(value_for("--out")?);
                }
                "--shards" => {
                    let v = value_for("--shards")?;
                    let s: usize = v
                        .parse()
                        .map_err(|_| ParseOptsError(format!("bad --shards value `{v}`")))?;
                    if s == 0 {
                        return Err(ParseOptsError("--shards must be at least 1".into()));
                    }
                    opts.shards = Some(s);
                }
                "--pin" => opts.pin = true,
                "--full" => opts.full = true,
                "--help" | "-h" => return Err(ParseOptsError(USAGE.to_string())),
                other => {
                    return Err(ParseOptsError(format!("unknown option `{other}`")));
                }
            }
        }
        Ok(opts)
    }

    /// Exports the parallelism knobs to the environment the runner reads
    /// (`TA_SHARDS`, `TA_PIN`): figure binaries call this once after parsing, so the
    /// whole figure pipeline — which threads specs through
    /// `run_grid_prepared` without plumbing options — sees the choice.
    pub fn export_parallelism(&self) {
        if let Some(s) = self.shards {
            std::env::set_var("TA_SHARDS", s.to_string());
        }
        if self.pin {
            std::env::set_var("TA_PIN", "1");
        }
    }

    /// Effective network size: explicit override, else paper scale under
    /// `--full`, else the quick default.
    pub fn effective_n(&self, quick: usize, paper: usize) -> usize {
        self.n.unwrap_or(if self.full { paper } else { quick })
    }

    /// Effective rounds (paper: 1000).
    pub fn effective_rounds(&self, quick: u64) -> u64 {
        self.rounds.unwrap_or(if self.full { 1000 } else { quick })
    }

    /// Effective runs (paper: 10).
    pub fn effective_runs(&self, quick: usize) -> usize {
        self.runs.unwrap_or(if self.full { 10 } else { quick })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<FigureOpts, ParseOptsError> {
        FigureOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o, FigureOpts::default());
        assert_eq!(o.effective_n(1000, 5000), 1000);
        assert_eq!(o.effective_rounds(250), 250);
        assert_eq!(o.effective_runs(3), 3);
    }

    #[test]
    fn full_switches_to_paper_scale() {
        let o = parse(&["--full"]).unwrap();
        assert_eq!(o.effective_n(1000, 5000), 5000);
        assert_eq!(o.effective_rounds(250), 1000);
        assert_eq!(o.effective_runs(3), 10);
    }

    #[test]
    fn explicit_overrides_beat_full() {
        let o = parse(&["--full", "--n", "42", "--rounds", "7", "--runs", "2"]).unwrap();
        assert_eq!(o.effective_n(1000, 5000), 42);
        assert_eq!(o.effective_rounds(250), 7);
        assert_eq!(o.effective_runs(3), 2);
    }

    #[test]
    fn seed_and_out() {
        let o = parse(&["--seed", "99", "--out", "/tmp/x"]).unwrap();
        assert_eq!(o.seed, 99);
        assert_eq!(o.out_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--n"]).is_err());
        assert!(parse(&["--n", "abc"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        let help = parse(&["--help"]).unwrap_err();
        assert!(help.to_string().contains("--rounds"));
        assert!(help.to_string().contains("--shards"));
    }

    #[test]
    fn shards_parse_and_validate() {
        assert_eq!(parse(&["--shards", "4"]).unwrap().shards, Some(4));
        assert_eq!(parse(&[]).unwrap().shards, None);
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--shards", "x"]).is_err());
    }

    #[test]
    fn pin_parses_and_is_in_usage() {
        assert!(parse(&["--pin"]).unwrap().pin);
        assert!(!parse(&[]).unwrap().pin);
        assert!(USAGE.contains("--pin"));
    }

    #[test]
    fn help_is_distinguishable_from_real_errors() {
        assert!(parse(&["--help"]).unwrap_err().is_help());
        assert!(parse(&["-h"]).unwrap_err().is_help());
        assert!(!parse(&["--bogus"]).unwrap_err().is_help());
        assert!(!parse(&["--n", "abc"]).unwrap_err().is_help());
    }
}
