//! Experiment specifications.
//!
//! An [`ExperimentSpec`] is the declarative description of one curve in one
//! panel of the paper: application, strategy, topology, churn model,
//! network size, horizon, and replication. The [runner](crate::runner)
//! turns it into an averaged time series.

use serde::{Deserialize, Serialize};
use ta_apps::protocol::ReplyPolicy;
use ta_sim::config::TickPhase;
use ta_sim::paper;
use ta_sim::time::SimDuration;
use token_account::StrategySpec;

/// Which of the paper's three applications to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Gossip learning (Section 2.2, metric eq. 6 — higher is better).
    GossipLearning,
    /// Push gossip (Section 2.3, metric eq. 7 — lower is better).
    PushGossip,
    /// Chaotic power iteration (Section 2.4, angle metric — lower is
    /// better).
    ChaoticIteration,
}

impl AppKind {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::GossipLearning => "gossip-learning",
            AppKind::PushGossip => "push-gossip",
            AppKind::ChaoticIteration => "chaotic-iteration",
        }
    }

    /// Whether larger metric values mean better performance.
    pub fn higher_is_better(self) -> bool {
        matches!(self, AppKind::GossipLearning)
    }
}

/// The overlay topology of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Fixed random k-out digraph (paper: k = 20 for gossip learning and
    /// push gossip).
    KOut {
        /// Out-degree.
        k: usize,
    },
    /// Watts–Strogatz ring with rewiring (paper: k = 4, p = 0.01 for
    /// chaotic iteration).
    WattsStrogatz {
        /// Ring degree (nearest neighbours).
        k: usize,
        /// Rewiring probability.
        p: f64,
    },
}

/// The availability scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// Failure-free: all nodes online throughout (Figure 2/4/5).
    None,
    /// The synthetic smartphone trace calibrated to Figure 1 (Figure 3).
    SmartphoneTrace,
}

/// A full experiment description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Application under test.
    pub app: AppKind,
    /// Token account strategy.
    pub strategy: StrategySpec,
    /// Overlay topology.
    pub topology: TopologyKind,
    /// Availability scenario.
    pub churn: ChurnKind,
    /// Network size.
    pub n: usize,
    /// Independent runs to average (paper: 10).
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
    /// Round length Δ.
    pub delta: SimDuration,
    /// Message transfer time.
    pub transfer: SimDuration,
    /// Simulated horizon.
    pub duration: SimDuration,
    /// Metric sampling period.
    pub sample_period: SimDuration,
    /// Message drop probability (fault-injection extension; paper: 0).
    pub drop_probability: f64,
    /// Record the average token balance (Figure 5).
    pub record_tokens: bool,
    /// Round phasing (paper: unsynchronized; ablation option).
    pub tick_phase: TickPhase,
    /// Reactive addressing (paper: random peer; push–pull extension).
    pub reply_policy: ReplyPolicy,
    /// Whether injections trigger the reactive function (used for the
    /// purely reactive reference, which reacts to any state change).
    pub react_to_injections: bool,
}

impl ExperimentSpec {
    /// A spec with the paper's defaults for the given application: 20-out
    /// overlay (WS 4/0.01 for chaotic), failure-free, Δ = 172.8 s, transfer
    /// 1.728 s, two-day horizon, sampling every Δ.
    pub fn paper_defaults(app: AppKind, strategy: StrategySpec, n: usize) -> Self {
        let topology = match app {
            AppKind::ChaoticIteration => TopologyKind::WattsStrogatz { k: 4, p: 0.01 },
            _ => TopologyKind::KOut {
                k: paper::OUT_DEGREE,
            },
        };
        ExperimentSpec {
            app,
            strategy,
            topology,
            churn: ChurnKind::None,
            n,
            runs: 10,
            seed: 1,
            delta: paper::DELTA,
            transfer: paper::TRANSFER_TIME,
            duration: paper::TWO_DAYS,
            sample_period: paper::DELTA,
            drop_probability: 0.0,
            record_tokens: false,
            tick_phase: TickPhase::default(),
            reply_policy: ReplyPolicy::default(),
            react_to_injections: false,
        }
    }

    /// Shortens the experiment to `rounds` proactive rounds (scaled-down
    /// reproductions; the paper runs 1000).
    pub fn with_rounds(mut self, rounds: u64) -> Self {
        self.duration = self.delta * rounds;
        self
    }

    /// Sets the number of independent runs.
    pub fn with_runs(mut self, runs: usize) -> Self {
        self.runs = runs;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches to the smartphone-trace churn scenario.
    pub fn with_smartphone_churn(mut self) -> Self {
        self.churn = ChurnKind::SmartphoneTrace;
        self
    }

    /// Enables token-balance recording (Figure 5).
    pub fn with_token_recording(mut self) -> Self {
        self.record_tokens = true;
        self
    }

    /// Sets the fault-injection drop probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p;
        self
    }

    /// Sets the round phasing (ablation: synchronized vs. unsynchronized).
    pub fn with_tick_phase(mut self, phase: TickPhase) -> Self {
        self.tick_phase = phase;
        self
    }

    /// Sets the reactive addressing policy (push–pull extension).
    pub fn with_reply_policy(mut self, policy: ReplyPolicy) -> Self {
        self.reply_policy = policy;
        self
    }

    /// Makes injections trigger the reactive function (purely reactive
    /// reference semantics; see `TokenProtocol::with_injection_reaction`).
    pub fn with_injection_reaction(mut self) -> Self {
        self.react_to_injections = true;
        self
    }

    /// A one-line label for tables: `app / strategy`.
    pub fn label(&self) -> String {
        format!("{} / {}", self.app.name(), self.strategy.label())
    }

    /// Update injection period (push gossip only): Δ/10 as in the paper.
    pub fn injection_period(&self) -> Option<SimDuration> {
        match self.app {
            AppKind::PushGossip => Some(self.delta / 10),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let spec =
            ExperimentSpec::paper_defaults(AppKind::GossipLearning, StrategySpec::Proactive, 5000);
        assert_eq!(spec.delta, paper::DELTA);
        assert_eq!(spec.transfer, paper::TRANSFER_TIME);
        assert_eq!(spec.duration, paper::TWO_DAYS);
        assert_eq!(spec.runs, 10);
        assert_eq!(spec.topology, TopologyKind::KOut { k: 20 });
        assert_eq!(spec.churn, ChurnKind::None);
        assert_eq!(spec.injection_period(), None);
    }

    #[test]
    fn chaotic_uses_watts_strogatz() {
        let spec = ExperimentSpec::paper_defaults(
            AppKind::ChaoticIteration,
            StrategySpec::Simple { c: 10 },
            5000,
        );
        assert_eq!(spec.topology, TopologyKind::WattsStrogatz { k: 4, p: 0.01 });
    }

    #[test]
    fn push_gossip_injects_ten_per_round() {
        let spec =
            ExperimentSpec::paper_defaults(AppKind::PushGossip, StrategySpec::Proactive, 100);
        assert_eq!(
            spec.injection_period(),
            Some(paper::UPDATE_INJECTION_PERIOD)
        );
    }

    #[test]
    fn with_rounds_scales_duration() {
        let spec =
            ExperimentSpec::paper_defaults(AppKind::GossipLearning, StrategySpec::Proactive, 100)
                .with_rounds(250);
        assert_eq!(spec.duration, paper::DELTA * 250);
    }

    #[test]
    fn builder_style_setters() {
        let spec = ExperimentSpec::paper_defaults(
            AppKind::PushGossip,
            StrategySpec::Simple { c: 20 },
            100,
        )
        .with_runs(3)
        .with_seed(9)
        .with_smartphone_churn()
        .with_token_recording()
        .with_drop_probability(0.25);
        assert_eq!(spec.runs, 3);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.churn, ChurnKind::SmartphoneTrace);
        assert!(spec.record_tokens);
        assert_eq!(spec.drop_probability, 0.25);
        assert!(spec.label().contains("push-gossip"));
        assert!(spec.label().contains("simple(C=20)"));
    }
}
