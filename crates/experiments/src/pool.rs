//! Bounded worker pool for embarrassingly parallel job grids.
//!
//! The paper's experiment procedure multiplies three axes — figure panels ×
//! parameter cells × independent replicas — into hundreds of simulations.
//! Earlier revisions spawned one OS thread per replica of the *current*
//! spec, which both oversubscribed the machine (replicas × panels threads at
//! peak) and serialized across cells. This module instead runs any number of
//! independent jobs on a fixed-size pool: `min(available_parallelism,
//! jobs)` workers pull indices from a shared atomic injector until the grid
//! is drained, so a whole sweep saturates every core exactly once.
//!
//! Jobs are identified by index; results are returned in index order, so
//! output is deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maximum workers the pool will use: `available_parallelism`, clamped by
/// the `TA_THREADS` environment variable when set (useful on shared CI).
pub fn max_workers() -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    match std::env::var("TA_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => hw,
        },
        Err(_) => hw,
    }
}

/// Explicit intra-run shard count from the `TA_SHARDS` environment
/// variable (the `--shards` CLI knob exports it), or `None` to let the
/// runner trade across-run against intra-run parallelism itself.
///
/// Shard count never affects results — the sharded engine is
/// byte-identical to the serial one for every `TA_SHARDS` — so this knob
/// is purely about wall-clock scheduling.
pub fn shard_override() -> Option<usize> {
    match std::env::var("TA_SHARDS") {
        Ok(v) => v.trim().parse::<usize>().ok().filter(|&n| n >= 1),
        Err(_) => None,
    }
}

/// Runs `jobs` independent closures `f(0..jobs)` on a bounded pool and
/// returns their results in job order.
///
/// Workers claim indices from a shared atomic counter (a minimal injector
/// queue): no job is ever run twice, no worker idles while work remains,
/// and at most [`max_workers`] OS threads exist at any instant.
///
/// # Panics
///
/// Propagates the panic of any job after the scope joins.
pub fn run_indexed<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = max_workers().min(jobs);
    if workers <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(jobs));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = f(i);
                collected
                    .lock()
                    .expect("a worker panicked while holding the result lock")
                    .push((i, result));
            });
        }
    });
    let mut results = collected.into_inner().expect("all workers joined cleanly");
    debug_assert_eq!(results.len(), jobs);
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_job_order() {
        let out = run_indexed(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u32> = run_indexed(0, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        const JOBS: usize = 257;
        let counters: Vec<AtomicUsize> = (0..JOBS).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_indexed(JOBS, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "job {i} ran a wrong number of times"
            );
        }
    }

    #[test]
    fn pool_is_bounded_by_max_workers() {
        use std::sync::atomic::AtomicIsize;
        let live = AtomicIsize::new(0);
        let peak = AtomicIsize::new(0);
        let _ = run_indexed(64, |i| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_micros(200));
            live.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert!(peak.load(Ordering::SeqCst) <= max_workers() as isize);
    }

    #[test]
    #[should_panic(expected = "job 3 exploded")]
    fn job_panics_propagate() {
        let _ = run_indexed(8, |i| {
            if i == 3 {
                panic!("job 3 exploded");
            }
            i
        });
    }
}
