//! Regenerates the paper's `fig3` artifact. See `--help` for options.

use std::process::ExitCode;

use ta_experiments::cli::FigureOpts;
use ta_experiments::figures::fig3;

fn main() -> ExitCode {
    let opts = match FigureOpts::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    opts.export_parallelism();
    match fig3::run(&opts) {
        Ok(report) => {
            report.print();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fig3 failed: {e}");
            ExitCode::FAILURE
        }
    }
}
