//! Runs the protocol design-choice ablations. See `--help` for options.

use std::process::ExitCode;

use ta_experiments::cli::FigureOpts;
use ta_experiments::figures::ablation;

fn main() -> ExitCode {
    let opts = match FigureOpts::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    opts.export_parallelism();
    match ablation::run(&opts) {
        Ok(report) => {
            report.print();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ablation failed: {e}");
            ExitCode::FAILURE
        }
    }
}
