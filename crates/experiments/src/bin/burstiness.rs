//! Measures the per-round traffic shape of every strategy family vs. the
//! purely reactive flood (the Section 3.4 burstiness guarantee). See
//! `--help` for options.

use std::process::ExitCode;

use ta_experiments::cli::{self, FigureOpts};
use ta_experiments::figures::burstiness;

fn main() -> ExitCode {
    let opts = match FigureOpts::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) if e.is_help() => {
            println!("{}", cli::USAGE);
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            cli::fail_event("burstiness", e);
            return ExitCode::FAILURE;
        }
    };
    opts.export_parallelism();
    match burstiness::run(&opts) {
        Ok(report) => {
            report.print();
            ExitCode::SUCCESS
        }
        Err(e) => {
            cli::fail_event("burstiness", e);
            ExitCode::FAILURE
        }
    }
}
