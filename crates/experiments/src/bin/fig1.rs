//! Regenerates the paper's `fig1` artifact. See `--help` for options.

use std::process::ExitCode;

use ta_experiments::cli::FigureOpts;
use ta_experiments::figures::fig1;

fn main() -> ExitCode {
    let opts = match FigureOpts::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    opts.export_parallelism();
    match fig1::run(&opts) {
        Ok(report) => {
            report.print();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fig1 failed: {e}");
            ExitCode::FAILURE
        }
    }
}
