//! Regenerates every artifact of the paper's evaluation in sequence:
//! Figures 1-5, the Section 4.2 parameter sweep, the fault-injection
//! extension, and the design-choice ablations. See `--help` for shared
//! options.

use std::process::ExitCode;

use ta_experiments::cli::{self, FigureOpts};
use ta_experiments::figures;

fn main() -> ExitCode {
    let opts = match FigureOpts::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) if e.is_help() => {
            println!("{}", cli::USAGE);
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            cli::fail_event("all", e);
            return ExitCode::FAILURE;
        }
    };
    opts.export_parallelism();
    type Step = fn(&FigureOpts) -> Result<ta_experiments::Report, figures::FigureError>;
    let mut failed = false;
    match figures::fig1::run(&opts) {
        Ok(report) => report.print(),
        Err(e) => {
            cli::fail_event("fig1", e);
            failed = true;
        }
    }
    let steps: [(&str, Step); 8] = [
        ("fig2", figures::fig2::run),
        ("fig3", figures::fig3::run),
        ("fig4", figures::fig4::run),
        ("fig5", figures::fig5::run),
        ("sweep", figures::sweep::run),
        ("faults", figures::faults::run),
        ("ablation", figures::ablation::run),
        ("burstiness", figures::burstiness::run),
    ];
    for (name, step) in steps {
        println!();
        match step(&opts) {
            Ok(report) => report.print(),
            Err(e) => {
                cli::fail_event(name, e);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
