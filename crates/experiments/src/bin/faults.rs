//! Regenerates the paper's `faults` artifact. See `--help` for options.

use std::process::ExitCode;

use ta_experiments::cli::FigureOpts;
use ta_experiments::figures::faults;

fn main() -> ExitCode {
    let opts = match FigureOpts::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    opts.export_parallelism();
    match faults::run(&opts) {
        Ok(report) => {
            report.print();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("faults failed: {e}");
            ExitCode::FAILURE
        }
    }
}
