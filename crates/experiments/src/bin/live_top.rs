//! `live-top`: a rate view over a running `live --obs-listen` server.
//!
//! ```text
//! cargo run --release -p ta-experiments --bin live_top -- \
//!     --addr 127.0.0.1:9900 --every 500
//! ```
//!
//! Subscribes with `WATCH <ms>`, diffs consecutive `ta-stats/v2`
//! snapshots into rates (decisions/sec, reactive-held ratio, journal
//! bytes/sec, admit/fsync p99), and renders a compact refreshing table.
//! `--once` prints a single header + row after one interval and exits —
//! the CI-friendly probe mode. Exits non-zero when the server is
//! unreachable or speaks the wrong schema.

use std::process::ExitCode;
use std::time::Duration;

use ta_experiments::scope::{render_header, render_row, Rates, ScopeClient, Stats};

const USAGE: &str = "options:
  --addr <host:port>  observability server to connect to (required)
  --every <ms>        watch interval in milliseconds (default 500)
  --once              print one header + one rate row, then exit
  --help              this text";

#[derive(Debug, PartialEq)]
struct Opts {
    addr: String,
    every: Duration,
    once: bool,
}

/// Parses options; `Ok(None)` means `--help` was requested.
fn parse_opts<I: IntoIterator<Item = String>>(args: I) -> Result<Option<Opts>, String> {
    let mut addr: Option<String> = None;
    let mut every = Duration::from_millis(500);
    let mut once = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--every" => {
                let v = value("--every")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --every `{v}`"))?;
                if ms == 0 {
                    return Err("--every must be at least 1 ms".into());
                }
                every = Duration::from_millis(ms);
            }
            "--once" => once = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    let addr = addr.ok_or("--addr is required (see --help)")?;
    Ok(Some(Opts { addr, every, once }))
}

fn run(opts: &Opts) -> Result<(), String> {
    let mut client =
        ScopeClient::connect(&opts.addr).map_err(|e| format!("connect {}: {e}", opts.addr))?;
    client.watch(opts.every)?;
    let mut prev: Option<Stats> = None;
    let mut rows = 0u64;
    println!("{}", render_header());
    loop {
        let line = client.next_line()?;
        if line.is_empty() {
            // EOF: the server finalized (run over) or went away. Having
            // rendered at least one rate row is a success.
            return if rows > 0 {
                Ok(())
            } else {
                Err("stream ended before two snapshots arrived".into())
            };
        }
        let cur = Stats::parse(&line)?;
        if let Some(p) = prev.as_ref() {
            if let Some(rates) = Rates::between(p, &cur) {
                println!("{}", render_row(&cur, &rates));
                rows += 1;
                if opts.once {
                    return Ok(());
                }
            }
        }
        prev = Some(cur);
    }
}

fn main() -> ExitCode {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("live-top: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        parse_opts(args.iter().map(|s| s.to_string())).map(|o| o.expect("not a --help parse"))
    }

    #[test]
    fn flags_parse_and_validate() {
        let o = parse(&["--addr", "127.0.0.1:9900"]).unwrap();
        assert_eq!(o.addr, "127.0.0.1:9900");
        assert_eq!(o.every, Duration::from_millis(500));
        assert!(!o.once);
        let o = parse(&["--addr", "h:1", "--every", "200", "--once"]).unwrap();
        assert_eq!(o.every, Duration::from_millis(200));
        assert!(o.once);
        assert!(parse(&[]).is_err());
        assert!(parse(&["--addr", "h:1", "--every", "0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(USAGE.contains("--once"));
        assert_eq!(
            parse_opts(["--help".to_string()]).map(|o| o.is_none()),
            Ok(true)
        );
    }
}
