//! `live-top`: a rate view over a running `live --obs-listen` server.
//!
//! ```text
//! cargo run --release -p ta-experiments --bin live_top -- \
//!     --addr 127.0.0.1:9900 --every 500
//! ```
//!
//! Subscribes with `WATCH <ms>`, diffs consecutive `ta-stats/v2`
//! snapshots into rates (decisions/sec, reactive-held ratio, journal
//! bytes/sec, admit/fsync p99), and renders a compact refreshing table.
//! `--once` prints a single header + row after one interval and exits —
//! the CI-friendly probe mode, failing fast when the server is
//! unreachable or speaks the wrong schema.
//!
//! Without `--once` the watch is **resilient**: a server that is not up
//! yet, restarts, or drops the connection is retried with capped
//! exponential backoff (250 ms doubling to 5 s), and the budget resets
//! after every session that rendered at least one row. A clean finalize
//! after a healthy session still exits 0.

use std::process::ExitCode;
use std::time::Duration;

use ta_experiments::scope::{render_header, render_row, Rates, ScopeClient, Stats};

const USAGE: &str = "options:
  --addr <host:port>  observability server to connect to (required)
  --every <ms>        watch interval in milliseconds (default 500)
  --once              print one header + one rate row, then exit
  --help              this text";

#[derive(Debug, PartialEq)]
struct Opts {
    addr: String,
    every: Duration,
    once: bool,
}

/// Parses options; `Ok(None)` means `--help` was requested.
fn parse_opts<I: IntoIterator<Item = String>>(args: I) -> Result<Option<Opts>, String> {
    let mut addr: Option<String> = None;
    let mut every = Duration::from_millis(500);
    let mut once = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--every" => {
                let v = value("--every")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --every `{v}`"))?;
                if ms == 0 {
                    return Err("--every must be at least 1 ms".into());
                }
                every = Duration::from_millis(ms);
            }
            "--once" => once = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    let addr = addr.ok_or("--addr is required (see --help)")?;
    Ok(Some(Opts { addr, every, once }))
}

/// First reconnect delay; doubles per failed session up to
/// [`BACKOFF_CAP`].
const BACKOFF_INITIAL: Duration = Duration::from_millis(250);
/// Reconnect delay ceiling.
const BACKOFF_CAP: Duration = Duration::from_secs(5);
/// Consecutive failed sessions before giving up for good.
const MAX_ATTEMPTS: u32 = 8;

/// The next reconnect delay: double, capped.
fn next_backoff(d: Duration) -> Duration {
    d.saturating_mul(2).min(BACKOFF_CAP)
}

/// One watch session: connect, subscribe, render rows until the stream
/// ends. Returns how many rate rows were rendered alongside the outcome
/// (`Ok` = the stream ended cleanly, `Err` = connect/stream/parse
/// failure).
fn run_session(opts: &Opts) -> (u64, Result<(), String>) {
    let mut rows = 0u64;
    let outcome = (|| {
        let mut client =
            ScopeClient::connect(&opts.addr).map_err(|e| format!("connect {}: {e}", opts.addr))?;
        client.watch(opts.every)?;
        let mut prev: Option<Stats> = None;
        println!("{}", render_header());
        loop {
            let line = client.next_line()?;
            if line.is_empty() {
                // EOF: the server finalized (run over) or went away.
                return Ok(());
            }
            let cur = Stats::parse(&line)?;
            if let Some(p) = prev.as_ref() {
                if let Some(rates) = Rates::between(p, &cur) {
                    println!("{}", render_row(&cur, &rates));
                    rows += 1;
                    if opts.once {
                        return Ok(());
                    }
                }
            }
            prev = Some(cur);
        }
    })();
    (rows, outcome)
}

/// The resilient watch: retries failed sessions with capped exponential
/// backoff, forgiving the spent budget after every session that
/// rendered at least one row.
fn run_resilient(opts: &Opts) -> Result<(), String> {
    let mut backoff = BACKOFF_INITIAL;
    let mut failures = 0u32;
    loop {
        let (rows, outcome) = run_session(opts);
        if rows > 0 {
            backoff = BACKOFF_INITIAL;
            failures = 0;
        }
        let err = match outcome {
            // A clean end after a healthy session: the run is over.
            Ok(()) if rows > 0 => return Ok(()),
            Ok(()) => "stream ended before two snapshots arrived".to_string(),
            Err(e) => e,
        };
        failures += 1;
        if failures >= MAX_ATTEMPTS {
            return Err(format!("giving up after {failures} attempts: {err}"));
        }
        eprintln!("live-top: {err}; reconnecting in {}ms", backoff.as_millis());
        std::thread::sleep(backoff);
        backoff = next_backoff(backoff);
    }
}

fn main() -> ExitCode {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // --once stays fail-fast (the CI probe mode); the interactive watch
    // reconnects through server restarts.
    let outcome = if opts.once {
        match run_session(&opts) {
            (rows, Ok(())) if rows > 0 => Ok(()),
            (_, Ok(())) => Err("stream ended before two snapshots arrived".to_string()),
            (_, Err(e)) => Err(e),
        }
    } else {
        run_resilient(&opts)
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("live-top: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        parse_opts(args.iter().map(|s| s.to_string())).map(|o| o.expect("not a --help parse"))
    }

    #[test]
    fn flags_parse_and_validate() {
        let o = parse(&["--addr", "127.0.0.1:9900"]).unwrap();
        assert_eq!(o.addr, "127.0.0.1:9900");
        assert_eq!(o.every, Duration::from_millis(500));
        assert!(!o.once);
        let o = parse(&["--addr", "h:1", "--every", "200", "--once"]).unwrap();
        assert_eq!(o.every, Duration::from_millis(200));
        assert!(o.once);
        assert!(parse(&[]).is_err());
        assert!(parse(&["--addr", "h:1", "--every", "0"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(USAGE.contains("--once"));
        assert_eq!(
            parse_opts(["--help".to_string()]).map(|o| o.is_none()),
            Ok(true)
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut d = BACKOFF_INITIAL;
        let mut seen = vec![d];
        for _ in 0..6 {
            d = next_backoff(d);
            seen.push(d);
        }
        assert_eq!(seen[0], Duration::from_millis(250));
        assert_eq!(seen[1], Duration::from_millis(500));
        assert_eq!(seen[2], Duration::from_millis(1000));
        assert!(seen.iter().all(|d| *d <= BACKOFF_CAP));
        assert_eq!(*seen.last().unwrap(), BACKOFF_CAP);
        assert_eq!(next_backoff(BACKOFF_CAP), BACKOFF_CAP);
    }
}
