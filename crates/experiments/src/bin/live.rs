//! The `live` binary: drive the concurrent wall-clock admission runtime.
//!
//! ```text
//! cargo run --release -p ta-experiments --bin live -- \
//!     --workers 2 --clients 10000 --duration-secs 10
//! ```
//!
//! Runs the `ta-live` load generator with the requested strategy and
//! arrival mix, prints a throughput/latency/counter summary, and **exits
//! non-zero if the token-conservation books do not close exactly**
//! (`tokens_banked − reactive_sent == Σ balances`) — the invariant CI's
//! smoke run gates on. `--crosscheck` additionally replays a small
//! virtual-clock trace against the discrete-event engine first and fails
//! on any counter mismatch.
//!
//! **Durable mode** (`--journal-dir`): every balance delta is published
//! through the CRC-framed grant/spend journal and the accounts are
//! checkpointed with epoch-fenced copy-on-write snapshots
//! (`--snapshot-every`). A directory that already holds a manifest is
//! recovered and resumed, so a killed run continues its books.
//! `--recover` verifies a directory and exits without running load,
//! with **distinct exit codes** CI can gate on:
//!
//! | exit | meaning |
//! |------|---------|
//! | 0    | clean: journal tail intact, books conserve exactly |
//! | 3    | conservation mismatch — recovered books do not close |
//! | 4    | torn tail / corruption — a damaged suffix was discarded |
//! | 5    | journal failed persistently under `--on-journal-fail exit` |
//! | 1    | anything else (I/O, bad flags, conservation after a run) |
//!
//! **Self-healing** (`--on-journal-fail`): every run carries a health
//! board — the journal writer, granter, trace bus, and stats pump
//! heartbeat on it, a supervisor marks stale components Degraded and
//! restarts a stalled granter, and the writer retries transient IO
//! errors with bounded backoff before enacting the chosen policy
//! (`degrade` keeps admitting with durability suspended, `halt` closes
//! admissions, `exit` additionally exits 5).

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ta_live::harness::{live_vs_sim_spec, OracleWorkload};
use ta_live::health::{HealthBoard, OnJournalFail};
use ta_live::loadgen::{
    run_loadgen_durable_supervised_spec, run_loadgen_supervised_spec, ArrivalMode, BurstMix,
    LoadGenConfig, LoadGenReport,
};
use ta_live::obs::{ObsServer, StatsPump, TraceBus};
use ta_live::persist::{
    recover, FaultPlan, PersistConfig, Persistence, RecoveredState, RecoveryError, MANIFEST_FILE,
};
use ta_live::telem::c as tc;
use ta_live::LiveTelemetry;
use ta_telemetry::EventLine;
use token_account::StrategySpec;

/// Exit code: recovery found books that do not conserve.
const EXIT_CONSERVATION: u8 = 3;
/// Exit code: recovery had to discard a torn/corrupt suffix.
const EXIT_TRUNCATION: u8 = 4;
/// Exit code: the journal failed persistently and the policy was
/// `--on-journal-fail exit`.
const EXIT_JOURNAL_FAIL: u8 = 5;

const USAGE: &str = "options:
  --workers <k>        worker threads (default 2)
  --clients <n>        virtual clients (default 100000)
  --duration-secs <s>  wall-clock run length (default 10)
  --strategy <spec>    proactive | reactive:<k> | simple:<C> |
                       generalized:<A>,<C> | randomized:<A>,<C>
                       (default randomized:5,10)
  --mode <m>           closed | open (default closed)
  --rate <r>           open-loop requests/client/sec (default 10)
  --burst <p>,<k>      burst mix: probability p, size k (default off)
  --useful-prob <p>    probability a request is useful (default 0.8)
  --shards <s>         account shards (default 64)
  --round-ms <ms>      granter round length Δ; 0 disables (default 1000)
  --seed <s>           master seed (default 1)
  --crosscheck         first validate exact live-vs-sim counter equality
  --journal-dir <dir>  durable mode: grant/spend journal + snapshots in
                       <dir>; an existing domain is recovered + resumed
  --snapshot-every <s> checkpoint the accounts every s seconds
  --commit-ms <ms>     journal group-commit interval (default 20)
  --no-fsync           skip fsync on journal commits (tests only)
  --fault <list>       inject faults, comma-separated (overrides the
                       TA_FAULT env var): kill_writer_mid_frame,
                       drop_fsync, crash_mid_snapshot, poison_books,
                       torn_tail, corrupt_crc, corrupt_snapshot,
                       io_error_n:<k> (k transient write errors),
                       enospc_after:<bytes> (disk full past a budget),
                       slow_io_ms:<ms>, writer_hang, granter_stall
  --on-journal-fail <p> policy when the journal writer fails past its
                       retry budget: degrade (default; keep admitting,
                       durability suspended, writer restarts when the
                       disk recovers), halt (close admissions, finish
                       cleanly), exit (like halt, then exit 5)
  --recover            recover + verify --journal-dir, then exit:
                       0 clean, 3 conservation mismatch, 4 torn tail
  --stats-every <ms>   emit one schema-versioned JSON stats line
                       (ta-stats/v2) every <ms> milliseconds
  --trace-out <path>   drain sampled decision-trace records to <path>
                       as JSONL (implies --trace-sample 1 unless set)
  --trace-sample <n>   sample every n-th admission decision into the
                       trace ring; 0 = counters only, no tracing
  --obs-listen <addr>  serve the observability line protocol on <addr>
                       (e.g. 127.0.0.1:9900): STATS one-shot, WATCH <ms>
                       pushed stats, TRACE <n> sampled decision records
  --help               this text";

#[derive(Debug)]
struct Opts {
    cfg: LoadGenConfig,
    strategy: StrategySpec,
    crosscheck: bool,
    journal_dir: Option<PathBuf>,
    snapshot_every: Option<Duration>,
    commit: Duration,
    fsync: bool,
    fault: Option<FaultPlan>,
    on_journal_fail: OnJournalFail,
    recover_only: bool,
    stats_every: Option<Duration>,
    trace_out: Option<PathBuf>,
    trace_sample: Option<u32>,
    obs_listen: Option<String>,
}

impl Opts {
    /// Telemetry is built when any introspection knob was given.
    fn telemetry_on(&self) -> bool {
        self.stats_every.is_some()
            || self.trace_out.is_some()
            || self.trace_sample.is_some()
            || self.obs_listen.is_some()
    }

    /// Effective sample interval: an explicit `--trace-sample` wins;
    /// `--trace-out` alone traces every decision; stats alone trace
    /// nothing (counters only).
    fn sample_interval(&self) -> u32 {
        self.trace_sample
            .unwrap_or(u32::from(self.trace_out.is_some()))
    }
}

fn parse_strategy(s: &str) -> Result<StrategySpec, String> {
    let (name, params) = match s.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (s, None),
    };
    let nums = |p: Option<&str>, want: usize| -> Result<Vec<u64>, String> {
        let p = p.ok_or_else(|| format!("strategy `{name}` needs {want} parameter(s)"))?;
        let vals: Result<Vec<u64>, _> = p.split(',').map(|v| v.trim().parse()).collect();
        let vals = vals.map_err(|_| format!("bad strategy parameters `{p}`"))?;
        if vals.len() != want {
            return Err(format!("strategy `{name}` needs {want} parameter(s)"));
        }
        Ok(vals)
    };
    match name {
        "proactive" => Ok(StrategySpec::Proactive),
        "reactive" => Ok(StrategySpec::Reactive {
            k: nums(params, 1)?[0],
        }),
        "simple" => Ok(StrategySpec::Simple {
            c: nums(params, 1)?[0],
        }),
        "generalized" => {
            let v = nums(params, 2)?;
            Ok(StrategySpec::Generalized { a: v[0], c: v[1] })
        }
        "randomized" => {
            let v = nums(params, 2)?;
            Ok(StrategySpec::Randomized { a: v[0], c: v[1] })
        }
        other => Err(format!("unknown strategy `{other}`")),
    }
}

/// Parses options; `Ok(None)` means `--help` was requested.
fn parse_opts<I: IntoIterator<Item = String>>(args: I) -> Result<Option<Opts>, String> {
    let mut cfg = LoadGenConfig {
        clients: 100_000,
        workers: 2,
        account_shards: 64,
        duration: Duration::from_secs(10),
        mode: ArrivalMode::Closed,
        useful_probability: 0.8,
        burst: None,
        round_period: Some(Duration::from_millis(1000)),
        seed: 1,
    };
    let mut strategy = StrategySpec::Randomized { a: 5, c: 10 };
    let mut crosscheck = false;
    let mut rate = 10.0f64;
    let mut open = false;
    let mut journal_dir: Option<PathBuf> = None;
    let mut snapshot_every: Option<Duration> = None;
    let mut commit = Duration::from_millis(20);
    let mut fsync = true;
    let mut fault: Option<FaultPlan> = None;
    let mut on_journal_fail = OnJournalFail::default();
    let mut recover_only = false;
    let mut stats_every: Option<Duration> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_sample: Option<u32> = None;
    let mut obs_listen: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--workers" => {
                let v = value("--workers")?;
                cfg.workers = v.parse().map_err(|_| format!("bad --workers `{v}`"))?;
                if cfg.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--clients" => {
                let v = value("--clients")?;
                cfg.clients = v.parse().map_err(|_| format!("bad --clients `{v}`"))?;
                if cfg.clients == 0 {
                    return Err("--clients must be at least 1".into());
                }
            }
            "--duration-secs" => {
                let v = value("--duration-secs")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --duration-secs `{v}`"))?;
                cfg.duration = Duration::from_secs_f64(secs.max(0.0));
            }
            "--strategy" => strategy = parse_strategy(&value("--strategy")?)?,
            "--mode" => match value("--mode")?.as_str() {
                "closed" => open = false,
                "open" => open = true,
                other => return Err(format!("unknown mode `{other}`")),
            },
            "--rate" => {
                let v = value("--rate")?;
                rate = v.parse().map_err(|_| format!("bad --rate `{v}`"))?;
            }
            "--burst" => {
                let v = value("--burst")?;
                let (p, k) = v
                    .split_once(',')
                    .ok_or_else(|| format!("bad --burst `{v}` (want p,k)"))?;
                cfg.burst = Some(BurstMix {
                    probability: p.trim().parse().map_err(|_| format!("bad burst p `{p}`"))?,
                    size: k.trim().parse().map_err(|_| format!("bad burst k `{k}`"))?,
                });
            }
            "--useful-prob" => {
                let v = value("--useful-prob")?;
                cfg.useful_probability =
                    v.parse().map_err(|_| format!("bad --useful-prob `{v}`"))?;
            }
            "--shards" => {
                let v = value("--shards")?;
                cfg.account_shards = v.parse().map_err(|_| format!("bad --shards `{v}`"))?;
                if cfg.account_shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--round-ms" => {
                let v = value("--round-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --round-ms `{v}`"))?;
                cfg.round_period = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--seed" => {
                let v = value("--seed")?;
                cfg.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
            }
            "--crosscheck" => crosscheck = true,
            "--journal-dir" => journal_dir = Some(PathBuf::from(value("--journal-dir")?)),
            "--snapshot-every" => {
                let v = value("--snapshot-every")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --snapshot-every `{v}`"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--snapshot-every must be positive".into());
                }
                snapshot_every = Some(Duration::from_secs_f64(secs));
            }
            "--commit-ms" => {
                let v = value("--commit-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --commit-ms `{v}`"))?;
                commit = Duration::from_millis(ms);
            }
            "--no-fsync" => fsync = false,
            "--fault" => fault = Some(FaultPlan::parse(&value("--fault")?)?),
            "--on-journal-fail" => {
                on_journal_fail = OnJournalFail::parse(&value("--on-journal-fail")?)?;
            }
            "--recover" => recover_only = true,
            "--stats-every" => {
                let v = value("--stats-every")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --stats-every `{v}`"))?;
                if ms == 0 {
                    return Err("--stats-every must be at least 1 ms".into());
                }
                stats_every = Some(Duration::from_millis(ms));
            }
            "--trace-out" => trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--trace-sample" => {
                let v = value("--trace-sample")?;
                trace_sample = Some(v.parse().map_err(|_| format!("bad --trace-sample `{v}`"))?);
            }
            "--obs-listen" => {
                let v = value("--obs-listen")?;
                if !v.contains(':') {
                    return Err(format!("bad --obs-listen `{v}` (want host:port)"));
                }
                obs_listen = Some(v);
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    if open {
        cfg.mode = ArrivalMode::Open {
            rate_per_client: rate,
        };
    }
    if recover_only && journal_dir.is_none() {
        return Err("--recover needs --journal-dir".into());
    }
    Ok(Some(Opts {
        cfg,
        strategy,
        crosscheck,
        journal_dir,
        snapshot_every,
        commit,
        fsync,
        fault,
        on_journal_fail,
        recover_only,
        stats_every,
        trace_out,
        trace_sample,
        obs_listen,
    }))
}

/// Prints a diagnosis line to stderr (failures and damage reports go to
/// stderr; the happy path uses [`EventLine::emit`] on stdout).
fn fail_line(line: EventLine) {
    eprintln!("{}", line.finish());
}

/// Recovers + verifies a journal directory and maps the outcome onto
/// the gateable exit codes (`0` clean, `3` conservation, `4` torn
/// tail), printing a one-line diagnosis for each non-zero case.
fn report_recovery(dir: &std::path::Path) -> ExitCode {
    match recover(dir) {
        Ok(state) => {
            for t in &state.truncations {
                fail_line(EventLine::new("recovery_truncation").kv("detail", t));
            }
            EventLine::new("recovered")
                .kv("clients", state.clients)
                .kv("shards", state.shards)
                .kv("balances_sum", state.balances_sum())
                .kv("granted", state.granted_total())
                .kv("burned", state.burned_total())
                .kv("replayed", state.replayed)
                .kv(
                    "snapshot",
                    match state.snapshot_id {
                        Some(id) => format!("{id:#x}"),
                        None => "none".to_string(),
                    },
                )
                .emit();
            if state.truncations.is_empty() {
                EventLine::new("recovery")
                    .kv("ok", true)
                    .kv("detail", "journal tail intact, books conserve exactly")
                    .emit();
                ExitCode::SUCCESS
            } else {
                fail_line(
                    EventLine::new("recovery")
                        .kv("ok", false)
                        .kv("reason", "truncated")
                        .kv("discarded", state.truncations.len())
                        .kv("detail", "surviving prefix is verified and consistent"),
                );
                ExitCode::from(EXIT_TRUNCATION)
            }
        }
        Err(RecoveryError::Conservation { detail }) => {
            fail_line(
                EventLine::new("recovery")
                    .kv("ok", false)
                    .kv("reason", "conservation")
                    .kv("detail", detail),
            );
            ExitCode::from(EXIT_CONSERVATION)
        }
        Err(e) => {
            fail_line(
                EventLine::new("recovery")
                    .kv("ok", false)
                    .kv("reason", "error")
                    .kv("detail", e),
            );
            ExitCode::FAILURE
        }
    }
}

/// Opens (or recovers + resumes) the durability domain under `dir` and
/// runs the load generator with the journal attached.
fn run_durable(
    opts: &Opts,
    dir: &std::path::Path,
    faults: FaultPlan,
    telem: Option<&LiveTelemetry>,
    board: &Arc<HealthBoard>,
) -> Result<LoadGenReport, ExitCode> {
    let mut pcfg = PersistConfig::new(dir);
    pcfg.group_commit = opts.commit;
    pcfg.fsync = opts.fsync;
    pcfg.faults = faults;

    let mut cfg = opts.cfg.clone();
    let recovered: Option<RecoveredState>;
    let persistence = if dir.join(MANIFEST_FILE).exists() {
        let state = match recover(dir) {
            Ok(s) => s,
            Err(RecoveryError::Conservation { detail }) => {
                fail_line(
                    EventLine::new("recovery")
                        .kv("ok", false)
                        .kv("reason", "conservation")
                        .kv("detail", detail),
                );
                return Err(ExitCode::from(EXIT_CONSERVATION));
            }
            Err(e) => {
                fail_line(
                    EventLine::new("recovery")
                        .kv("ok", false)
                        .kv("reason", "error")
                        .kv("detail", e),
                );
                return Err(ExitCode::FAILURE);
            }
        };
        for t in &state.truncations {
            fail_line(EventLine::new("recovery_truncation").kv("detail", t));
        }
        if state.clients != cfg.clients {
            fail_line(
                EventLine::new("recovery")
                    .kv("ok", false)
                    .kv("reason", "geometry")
                    .kv("flag_clients", cfg.clients)
                    .kv("manifest_clients", state.clients),
            );
            return Err(ExitCode::FAILURE);
        }
        cfg.account_shards = state.shards;
        EventLine::new("resumed")
            .kv("balances_sum", state.balances_sum())
            .kv("replayed", state.replayed)
            .kv("truncations", state.truncations.len())
            .emit();
        let p = Persistence::resume(&pcfg, &state).map_err(|e| {
            fail_line(
                EventLine::new("journal")
                    .kv("ok", false)
                    .kv("reason", "resume")
                    .kv("detail", e),
            );
            ExitCode::FAILURE
        })?;
        recovered = Some(state);
        p
    } else {
        // The manifest records the *effective* geometry, so mirror the
        // runtime's shard clamp before writing it.
        cfg.account_shards = cfg.account_shards.clamp(1, cfg.clients);
        recovered = None;
        Persistence::open(&pcfg, cfg.clients, cfg.account_shards).map_err(|e| {
            fail_line(
                EventLine::new("journal")
                    .kv("ok", false)
                    .kv("reason", "open")
                    .kv("detail", e),
            );
            ExitCode::FAILURE
        })?
    };

    let run = run_loadgen_durable_supervised_spec(
        opts.strategy,
        &cfg,
        &persistence,
        opts.snapshot_every,
        recovered.as_ref(),
        telem,
        board,
    );
    let (report, d) = run.map_err(|e| {
        eprintln!("invalid strategy: {e}");
        ExitCode::FAILURE
    })?;
    EventLine::new("durable")
        .kv("snapshots", d.snapshots)
        .kv("snapshot_failures", d.snapshot_failures)
        .emit();
    match persistence.shutdown() {
        Ok(s) => EventLine::new("journal")
            .kv("ok", true)
            .kv("records", s.records)
            .kv("frames", s.frames)
            .kv("bytes", s.bytes)
            .kv("rotations", s.segments)
            .kv("fsyncs", s.syncs)
            .emit(),
        // Expected when a writer fault killed the journal thread.
        Err(e) => fail_line(
            EventLine::new("journal")
                .kv("ok", false)
                .kv("reason", "writer_died")
                .kv("detail", e),
        ),
    }
    if faults.wants_post_mortem() {
        match faults.apply_post_mortem(dir) {
            Ok(wounds) => {
                for w in wounds {
                    EventLine::new("fault").kv("applied", w).emit();
                }
            }
            Err(e) => {
                fail_line(EventLine::new("fault").kv("ok", false).kv("detail", e));
                return Err(ExitCode::FAILURE);
            }
        }
    }
    Ok(report)
}

fn main() -> ExitCode {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // The fault plan: --fault wins over the TA_FAULT env var.
    let faults = match opts.fault {
        Some(f) => f,
        None => match FaultPlan::from_env() {
            Ok(f) => f,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        },
    };

    if opts.recover_only {
        let dir = opts.journal_dir.as_deref().expect("checked in parse_opts");
        return report_recovery(dir);
    }

    if opts.crosscheck {
        // Exact gate before spending wall-clock time: the live decision
        // path must reproduce the discrete-event engine bit for bit under
        // the virtual clock.
        let workload = OracleWorkload::quick(50, opts.cfg.seed);
        match live_vs_sim_spec(opts.strategy, &workload, opts.cfg.workers.max(1), 8) {
            Ok(cv) if cv.exact_match() => {
                EventLine::new("crosscheck")
                    .kv("ok", true)
                    .kv("rounds", cv.sim.counters.rounds)
                    .kv("requests", cv.sim.counters.requests)
                    .emit();
            }
            Ok(cv) => {
                fail_line(
                    EventLine::new("crosscheck")
                        .kv("ok", false)
                        .kv("sim", format!("{:?}", cv.sim))
                        .kv("live", format!("{:?}", cv.live)),
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("invalid strategy: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "live: strategy {}, {} clients, {} workers, {} account shards, {:?} for {:.1}s",
        opts.strategy.label(),
        opts.cfg.clients,
        opts.cfg.workers,
        opts.cfg.account_shards,
        opts.cfg.mode,
        opts.cfg.duration.as_secs_f64(),
    );
    // Optional introspection: counters + stats lines + trace collector.
    let telem = opts.telemetry_on().then(|| {
        LiveTelemetry::new(
            opts.cfg.workers,
            opts.sample_interval(),
            LiveTelemetry::DEFAULT_RING_CAPACITY,
        )
    });
    let t0 = Instant::now();

    // Every run carries a health board: components heartbeat on it, the
    // supervisor enforces the --on-journal-fail policy, and stats lines
    // grow a `health` section.
    let board = HealthBoard::new(opts.on_journal_fail);
    if faults.granter_stall {
        board.arm_granter_stall();
    }

    // Stats pump: the single producer of ta-stats/v2 lines, feeding
    // stdout (--stats-every) and WATCH subscribers from one snapshot
    // stream, so `seq` stays one monotone sequence across sinks.
    let pump = match telem.as_ref() {
        Some(t) if opts.stats_every.is_some() || opts.obs_listen.is_some() => {
            let p = StatsPump::start(Arc::clone(t), t0, opts.stats_every);
            p.attach_health(Arc::clone(&board));
            Some(p)
        }
        _ => None,
    };

    // Trace bus: exclusive owner of the per-worker rings; drains them
    // into the --trace-out JSONL file and fans records out to TRACE
    // subscribers. Built whenever tracing is armed or the server could
    // arm it at runtime.
    let bus = match telem.as_ref() {
        Some(t) if t.gate().get() > 0 || opts.obs_listen.is_some() => {
            let b = TraceBus::start(t, opts.trace_out.clone());
            b.attach_health(Arc::clone(&board));
            Some(b)
        }
        _ => None,
    };

    let server = match (
        &opts.obs_listen,
        telem.as_ref(),
        pump.as_ref(),
        bus.as_ref(),
    ) {
        (Some(addr), Some(t), Some(p), Some(b)) => {
            match ObsServer::spawn(addr, t, Arc::clone(p), Arc::clone(b)) {
                Ok(s) => {
                    EventLine::new("obs").kv("listen", s.addr()).emit();
                    Some(s)
                }
                Err(e) => {
                    fail_line(EventLine::new("obs").kv("ok", false).kv("detail", e));
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => None,
    };

    let report = if let Some(dir) = opts.journal_dir.clone() {
        match run_durable(&opts, &dir, faults, telem.as_deref(), &board) {
            Ok(r) => r,
            Err(code) => return code,
        }
    } else {
        match run_loadgen_supervised_spec(opts.strategy, &opts.cfg, telem.as_deref(), &board) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("invalid strategy: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    // The run has returned (workers joined, all telemetry flushed):
    // finalize the stats stream (one last identical line to stdout and
    // every WATCH subscriber), close the trace books with an EOS trailer
    // per TRACE subscriber, then retire the server.
    if let Some(p) = pump.as_ref() {
        p.finalize();
    }
    if let Some(b) = bus.as_ref() {
        let snap = telem.as_ref().expect("bus implies telemetry").snapshot();
        match b.finish(&snap) {
            Ok(lines) => EventLine::new("trace")
                .kv("lines", lines)
                .kv("sampled", snap.counter(tc::TRACE_SAMPLED))
                .kv("dropped", snap.counter(tc::TRACE_DROPPED))
                .kv(
                    "out",
                    opts.trace_out
                        .as_ref()
                        .map_or("-".to_string(), |p| p.display().to_string()),
                )
                .emit(),
            Err(e) => {
                fail_line(EventLine::new("trace").kv("ok", false).kv("detail", e));
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(s) = server {
        s.shutdown();
    }

    let c = &report.counters;
    println!(
        "throughput: {:.0} decisions/sec total, {:.0}/sec/worker ({} decisions in {:.2}s)",
        report.decisions_per_sec(),
        report.decisions_per_sec_per_worker(),
        c.requests,
        report.wall.as_secs_f64(),
    );
    let h = &report.histogram;
    println!(
        "decision latency: p50 {}ns  p90 {}ns  p99 {}ns  p99.9 {}ns  max {}ns  mean {:.0}ns",
        h.percentile(0.5),
        h.percentile(0.9),
        h.percentile(0.99),
        h.percentile(0.999),
        h.max(),
        h.mean(),
    );
    println!(
        "counters: rounds {} (proactive {}, banked {}), requests {} \
         (reactive {}, held {}), balances_sum {}",
        c.rounds,
        c.proactive_sent,
        c.tokens_banked,
        c.requests,
        c.reactive_sent,
        c.reactive_held,
        report.balances_sum,
    );

    // The health ledger: one machine-greppable line closing the
    // self-healing books (CI asserts these against the fault plan).
    if let Some(t) = telem.as_ref() {
        let snap = t.snapshot();
        EventLine::new("health")
            .kv("policy", opts.on_journal_fail)
            .kv("degradations", snap.counter(tc::HEALTH_DEGRADATIONS))
            .kv("io_retries", snap.counter(tc::JOURNAL_IO_RETRIES))
            .kv("io_errors", snap.counter(tc::JOURNAL_IO_ERRORS))
            .kv("dropped_records", snap.counter(tc::JOURNAL_DROPPED_RECORDS))
            .kv("writer_restarts", snap.counter(tc::JOURNAL_WRITER_RESTARTS))
            .kv("granter_restarts", snap.counter(tc::GRANTER_RESTARTS))
            .kv("faults_injected", snap.counter(tc::FAULTS_INJECTED))
            .kv(
                "durability",
                if board.durability_suspended() {
                    "suspended"
                } else {
                    "ok"
                },
            )
            .emit();
    }

    let conservation = EventLine::new("conservation")
        .kv("ok", report.conserves())
        .kv("tokens_banked", c.tokens_banked)
        .kv("reactive_sent", c.reactive_sent)
        .kv("balances_sum", report.balances_sum)
        .kv("initial", report.initial_balances_sum);
    if report.conserves() {
        conservation.emit();
        if board.abort_requested() {
            // The books closed, but the journal died under the `exit`
            // policy: make that visible as a distinct exit code.
            fail_line(
                EventLine::new("journal_policy")
                    .kv("policy", opts.on_journal_fail)
                    .kv("exit", EXIT_JOURNAL_FAIL),
            );
            return ExitCode::from(EXIT_JOURNAL_FAIL);
        }
        ExitCode::SUCCESS
    } else {
        fail_line(conservation);
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        parse_opts(args.iter().map(|s| s.to_string())).map(|o| o.expect("not a --help parse"))
    }

    #[test]
    fn defaults_and_overrides() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.cfg.workers, 2);
        assert_eq!(o.cfg.mode, ArrivalMode::Closed);
        assert!(!o.crosscheck);
        let o = parse(&[
            "--workers",
            "4",
            "--clients",
            "500",
            "--duration-secs",
            "0.5",
            "--mode",
            "open",
            "--rate",
            "3.5",
            "--burst",
            "0.1,8",
            "--shards",
            "16",
            "--round-ms",
            "0",
            "--seed",
            "9",
            "--crosscheck",
        ])
        .unwrap();
        assert_eq!(o.cfg.workers, 4);
        assert_eq!(o.cfg.clients, 500);
        assert_eq!(
            o.cfg.mode,
            ArrivalMode::Open {
                rate_per_client: 3.5
            }
        );
        assert_eq!(
            o.cfg.burst,
            Some(BurstMix {
                probability: 0.1,
                size: 8
            })
        );
        assert_eq!(o.cfg.account_shards, 16);
        assert_eq!(o.cfg.round_period, None);
        assert_eq!(o.cfg.seed, 9);
        assert!(o.crosscheck);
        assert_eq!(o.journal_dir, None);
        assert!(o.fsync);
        assert!(!o.recover_only);
    }

    #[test]
    fn durability_flags_parse() {
        let o = parse(&[
            "--journal-dir",
            "/tmp/ta-journal",
            "--snapshot-every",
            "0.25",
            "--commit-ms",
            "5",
            "--no-fsync",
            "--fault",
            "torn_tail,crash_mid_snapshot",
        ])
        .unwrap();
        assert_eq!(o.journal_dir, Some(PathBuf::from("/tmp/ta-journal")));
        assert_eq!(o.snapshot_every, Some(Duration::from_millis(250)));
        assert_eq!(o.commit, Duration::from_millis(5));
        assert!(!o.fsync);
        let f = o.fault.unwrap();
        assert!(f.torn_tail && f.crash_mid_snapshot);
        assert!(!f.poison_books);

        let o = parse(&["--recover", "--journal-dir", "d"]).unwrap();
        assert!(o.recover_only);
        // Distinct, documented exit codes for the two recovery outcomes.
        assert_ne!(EXIT_CONSERVATION, EXIT_TRUNCATION);
        assert!(USAGE.contains("--recover"));
        assert!(USAGE.contains("--journal-dir"));
    }

    #[test]
    fn telemetry_flags_parse() {
        // Off by default: no registry, no threads, untouched hot path.
        let o = parse(&[]).unwrap();
        assert!(!o.telemetry_on());
        assert_eq!(o.sample_interval(), 0);

        let o = parse(&["--stats-every", "200"]).unwrap();
        assert!(o.telemetry_on());
        assert_eq!(o.stats_every, Some(Duration::from_millis(200)));
        // Stats alone: counters only, no tracing.
        assert_eq!(o.sample_interval(), 0);

        // --trace-out alone traces every decision.
        let o = parse(&["--trace-out", "/tmp/trace.jsonl"]).unwrap();
        assert!(o.telemetry_on());
        assert_eq!(o.trace_out, Some(PathBuf::from("/tmp/trace.jsonl")));
        assert_eq!(o.sample_interval(), 1);

        // An explicit sample interval wins; 0 means counters only.
        let o = parse(&["--trace-out", "t", "--trace-sample", "64"]).unwrap();
        assert_eq!(o.sample_interval(), 64);
        let o = parse(&["--trace-sample", "0"]).unwrap();
        assert!(o.telemetry_on());
        assert_eq!(o.sample_interval(), 0);

        // --obs-listen alone turns telemetry on (the server needs the
        // registry), and the address must look like host:port.
        let o = parse(&["--obs-listen", "127.0.0.1:9900"]).unwrap();
        assert!(o.telemetry_on());
        assert_eq!(o.obs_listen, Some("127.0.0.1:9900".to_string()));
        assert_eq!(o.sample_interval(), 0);
        assert!(parse(&["--obs-listen", "9900"]).is_err());
        assert!(parse(&["--obs-listen"]).is_err());

        assert!(parse(&["--stats-every", "0"]).is_err());
        assert!(parse(&["--stats-every", "nope"]).is_err());
        assert!(parse(&["--trace-sample", "-1"]).is_err());
        assert!(USAGE.contains("--stats-every"));
        assert!(USAGE.contains("--trace-out"));
        assert!(USAGE.contains("--trace-sample"));
        assert!(USAGE.contains("--obs-listen"));
    }

    #[test]
    fn on_journal_fail_and_transient_faults_parse() {
        // Degrade is the default policy.
        let o = parse(&[]).unwrap();
        assert_eq!(o.on_journal_fail, OnJournalFail::Degrade);
        for (flag, want) in [
            ("degrade", OnJournalFail::Degrade),
            ("halt", OnJournalFail::Halt),
            ("exit", OnJournalFail::Exit),
        ] {
            let o = parse(&["--on-journal-fail", flag]).unwrap();
            assert_eq!(o.on_journal_fail, want);
        }
        assert!(parse(&["--on-journal-fail", "panic"]).is_err());
        assert!(parse(&["--on-journal-fail"]).is_err());

        let o = parse(&[
            "--fault",
            "io_error_n:3,enospc_after:4096,slow_io_ms:2,writer_hang,granter_stall",
        ])
        .unwrap();
        let f = o.fault.unwrap();
        assert_eq!(f.io_error_n, 3);
        assert_eq!(f.enospc_after, 4096);
        assert_eq!(f.slow_io_ms, 2);
        assert!(f.writer_hang && f.granter_stall);
        assert!(parse(&["--fault", "io_error_n"]).is_err());
        assert!(parse(&["--fault", "enospc_after:zero"]).is_err());

        assert!(USAGE.contains("--on-journal-fail"));
        assert!(USAGE.contains("io_error_n"));
        assert!(USAGE.contains("granter_stall"));
        // The new exit code stays distinct from the recovery codes.
        assert_ne!(EXIT_JOURNAL_FAIL, EXIT_CONSERVATION);
        assert_ne!(EXIT_JOURNAL_FAIL, EXIT_TRUNCATION);
    }

    #[test]
    fn durability_flag_errors() {
        // --recover without a directory to recover is an error.
        assert!(parse(&["--recover"]).is_err());
        assert!(parse(&["--snapshot-every", "0"]).is_err());
        assert!(parse(&["--snapshot-every", "nope"]).is_err());
        assert!(parse(&["--fault", "bogus_mode"]).is_err());
        assert!(parse(&["--commit-ms", "-1"]).is_err());
    }

    #[test]
    fn strategy_specs_parse() {
        assert_eq!(parse_strategy("proactive"), Ok(StrategySpec::Proactive));
        assert_eq!(
            parse_strategy("reactive:2"),
            Ok(StrategySpec::Reactive { k: 2 })
        );
        assert_eq!(
            parse_strategy("simple:10"),
            Ok(StrategySpec::Simple { c: 10 })
        );
        assert_eq!(
            parse_strategy("generalized:5,10"),
            Ok(StrategySpec::Generalized { a: 5, c: 10 })
        );
        assert_eq!(
            parse_strategy("randomized:5,10"),
            Ok(StrategySpec::Randomized { a: 5, c: 10 })
        );
        assert!(parse_strategy("bogus").is_err());
        assert!(parse_strategy("simple").is_err());
        assert!(parse_strategy("generalized:5").is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--workers"]).is_err());
        assert!(parse(&["--workers", "0"]).is_err());
        assert!(parse(&["--mode", "sideways"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        // --help is not an error: the binary prints usage and exits 0.
        assert_eq!(
            parse_opts(["--help".to_string()]).map(|o| o.is_none()),
            Ok(true)
        );
        assert!(USAGE.contains("--duration-secs"));
    }
}
