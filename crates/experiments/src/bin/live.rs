//! The `live` binary: drive the concurrent wall-clock admission runtime.
//!
//! ```text
//! cargo run --release -p ta-experiments --bin live -- \
//!     --workers 2 --clients 10000 --duration-secs 10
//! ```
//!
//! Runs the `ta-live` load generator with the requested strategy and
//! arrival mix, prints a throughput/latency/counter summary, and **exits
//! non-zero if the token-conservation books do not close exactly**
//! (`tokens_banked − reactive_sent == Σ balances`) — the invariant CI's
//! smoke run gates on. `--crosscheck` additionally replays a small
//! virtual-clock trace against the discrete-event engine first and fails
//! on any counter mismatch.

use std::process::ExitCode;
use std::time::Duration;

use ta_live::harness::{live_vs_sim_spec, OracleWorkload};
use ta_live::loadgen::{run_loadgen_spec, ArrivalMode, BurstMix, LoadGenConfig};
use token_account::StrategySpec;

const USAGE: &str = "options:
  --workers <k>        worker threads (default 2)
  --clients <n>        virtual clients (default 100000)
  --duration-secs <s>  wall-clock run length (default 10)
  --strategy <spec>    proactive | reactive:<k> | simple:<C> |
                       generalized:<A>,<C> | randomized:<A>,<C>
                       (default randomized:5,10)
  --mode <m>           closed | open (default closed)
  --rate <r>           open-loop requests/client/sec (default 10)
  --burst <p>,<k>      burst mix: probability p, size k (default off)
  --useful-prob <p>    probability a request is useful (default 0.8)
  --shards <s>         account shards (default 64)
  --round-ms <ms>      granter round length Δ; 0 disables (default 1000)
  --seed <s>           master seed (default 1)
  --crosscheck         first validate exact live-vs-sim counter equality
  --help               this text";

#[derive(Debug)]
struct Opts {
    cfg: LoadGenConfig,
    strategy: StrategySpec,
    crosscheck: bool,
}

fn parse_strategy(s: &str) -> Result<StrategySpec, String> {
    let (name, params) = match s.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (s, None),
    };
    let nums = |p: Option<&str>, want: usize| -> Result<Vec<u64>, String> {
        let p = p.ok_or_else(|| format!("strategy `{name}` needs {want} parameter(s)"))?;
        let vals: Result<Vec<u64>, _> = p.split(',').map(|v| v.trim().parse()).collect();
        let vals = vals.map_err(|_| format!("bad strategy parameters `{p}`"))?;
        if vals.len() != want {
            return Err(format!("strategy `{name}` needs {want} parameter(s)"));
        }
        Ok(vals)
    };
    match name {
        "proactive" => Ok(StrategySpec::Proactive),
        "reactive" => Ok(StrategySpec::Reactive {
            k: nums(params, 1)?[0],
        }),
        "simple" => Ok(StrategySpec::Simple {
            c: nums(params, 1)?[0],
        }),
        "generalized" => {
            let v = nums(params, 2)?;
            Ok(StrategySpec::Generalized { a: v[0], c: v[1] })
        }
        "randomized" => {
            let v = nums(params, 2)?;
            Ok(StrategySpec::Randomized { a: v[0], c: v[1] })
        }
        other => Err(format!("unknown strategy `{other}`")),
    }
}

/// Parses options; `Ok(None)` means `--help` was requested.
fn parse_opts<I: IntoIterator<Item = String>>(args: I) -> Result<Option<Opts>, String> {
    let mut cfg = LoadGenConfig {
        clients: 100_000,
        workers: 2,
        account_shards: 64,
        duration: Duration::from_secs(10),
        mode: ArrivalMode::Closed,
        useful_probability: 0.8,
        burst: None,
        round_period: Some(Duration::from_millis(1000)),
        seed: 1,
    };
    let mut strategy = StrategySpec::Randomized { a: 5, c: 10 };
    let mut crosscheck = false;
    let mut rate = 10.0f64;
    let mut open = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--workers" => {
                let v = value("--workers")?;
                cfg.workers = v.parse().map_err(|_| format!("bad --workers `{v}`"))?;
                if cfg.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--clients" => {
                let v = value("--clients")?;
                cfg.clients = v.parse().map_err(|_| format!("bad --clients `{v}`"))?;
                if cfg.clients == 0 {
                    return Err("--clients must be at least 1".into());
                }
            }
            "--duration-secs" => {
                let v = value("--duration-secs")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --duration-secs `{v}`"))?;
                cfg.duration = Duration::from_secs_f64(secs.max(0.0));
            }
            "--strategy" => strategy = parse_strategy(&value("--strategy")?)?,
            "--mode" => match value("--mode")?.as_str() {
                "closed" => open = false,
                "open" => open = true,
                other => return Err(format!("unknown mode `{other}`")),
            },
            "--rate" => {
                let v = value("--rate")?;
                rate = v.parse().map_err(|_| format!("bad --rate `{v}`"))?;
            }
            "--burst" => {
                let v = value("--burst")?;
                let (p, k) = v
                    .split_once(',')
                    .ok_or_else(|| format!("bad --burst `{v}` (want p,k)"))?;
                cfg.burst = Some(BurstMix {
                    probability: p.trim().parse().map_err(|_| format!("bad burst p `{p}`"))?,
                    size: k.trim().parse().map_err(|_| format!("bad burst k `{k}`"))?,
                });
            }
            "--useful-prob" => {
                let v = value("--useful-prob")?;
                cfg.useful_probability =
                    v.parse().map_err(|_| format!("bad --useful-prob `{v}`"))?;
            }
            "--shards" => {
                let v = value("--shards")?;
                cfg.account_shards = v.parse().map_err(|_| format!("bad --shards `{v}`"))?;
                if cfg.account_shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--round-ms" => {
                let v = value("--round-ms")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --round-ms `{v}`"))?;
                cfg.round_period = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--seed" => {
                let v = value("--seed")?;
                cfg.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
            }
            "--crosscheck" => crosscheck = true,
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    if open {
        cfg.mode = ArrivalMode::Open {
            rate_per_client: rate,
        };
    }
    Ok(Some(Opts {
        cfg,
        strategy,
        crosscheck,
    }))
}

fn main() -> ExitCode {
    let opts = match parse_opts(std::env::args().skip(1)) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if opts.crosscheck {
        // Exact gate before spending wall-clock time: the live decision
        // path must reproduce the discrete-event engine bit for bit under
        // the virtual clock.
        let workload = OracleWorkload::quick(50, opts.cfg.seed);
        match live_vs_sim_spec(opts.strategy, &workload, opts.cfg.workers.max(1), 8) {
            Ok(cv) if cv.exact_match() => {
                println!(
                    "crosscheck ok: live == sim exactly ({} rounds, {} requests)",
                    cv.sim.counters.rounds, cv.sim.counters.requests
                );
            }
            Ok(cv) => {
                eprintln!("crosscheck FAILED: sim {:?} != live {:?}", cv.sim, cv.live);
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("invalid strategy: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "live: strategy {}, {} clients, {} workers, {} account shards, {:?} for {:.1}s",
        opts.strategy.label(),
        opts.cfg.clients,
        opts.cfg.workers,
        opts.cfg.account_shards,
        opts.cfg.mode,
        opts.cfg.duration.as_secs_f64(),
    );
    let report = match run_loadgen_spec(opts.strategy, &opts.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("invalid strategy: {e}");
            return ExitCode::FAILURE;
        }
    };

    let c = &report.counters;
    println!(
        "throughput: {:.0} decisions/sec total, {:.0}/sec/worker ({} decisions in {:.2}s)",
        report.decisions_per_sec(),
        report.decisions_per_sec_per_worker(),
        c.requests,
        report.wall.as_secs_f64(),
    );
    let h = &report.histogram;
    println!(
        "decision latency: p50 {}ns  p90 {}ns  p99 {}ns  p99.9 {}ns  max {}ns  mean {:.0}ns",
        h.percentile(0.5),
        h.percentile(0.9),
        h.percentile(0.99),
        h.percentile(0.999),
        h.max(),
        h.mean(),
    );
    println!(
        "counters: rounds {} (proactive {}, banked {}), requests {} \
         (reactive {}, held {}), balances_sum {}",
        c.rounds,
        c.proactive_sent,
        c.tokens_banked,
        c.requests,
        c.reactive_sent,
        c.reactive_held,
        report.balances_sum,
    );

    if report.conserves() {
        println!(
            "conservation ok: tokens_banked ({}) - reactive_sent ({}) == balances_sum ({})",
            c.tokens_banked, c.reactive_sent, report.balances_sum
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "conservation FAILED: tokens_banked ({}) - reactive_sent ({}) != balances_sum ({})",
            c.tokens_banked, c.reactive_sent, report.balances_sum
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Opts, String> {
        parse_opts(args.iter().map(|s| s.to_string())).map(|o| o.expect("not a --help parse"))
    }

    #[test]
    fn defaults_and_overrides() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.cfg.workers, 2);
        assert_eq!(o.cfg.mode, ArrivalMode::Closed);
        assert!(!o.crosscheck);
        let o = parse(&[
            "--workers",
            "4",
            "--clients",
            "500",
            "--duration-secs",
            "0.5",
            "--mode",
            "open",
            "--rate",
            "3.5",
            "--burst",
            "0.1,8",
            "--shards",
            "16",
            "--round-ms",
            "0",
            "--seed",
            "9",
            "--crosscheck",
        ])
        .unwrap();
        assert_eq!(o.cfg.workers, 4);
        assert_eq!(o.cfg.clients, 500);
        assert_eq!(
            o.cfg.mode,
            ArrivalMode::Open {
                rate_per_client: 3.5
            }
        );
        assert_eq!(
            o.cfg.burst,
            Some(BurstMix {
                probability: 0.1,
                size: 8
            })
        );
        assert_eq!(o.cfg.account_shards, 16);
        assert_eq!(o.cfg.round_period, None);
        assert_eq!(o.cfg.seed, 9);
        assert!(o.crosscheck);
    }

    #[test]
    fn strategy_specs_parse() {
        assert_eq!(parse_strategy("proactive"), Ok(StrategySpec::Proactive));
        assert_eq!(
            parse_strategy("reactive:2"),
            Ok(StrategySpec::Reactive { k: 2 })
        );
        assert_eq!(
            parse_strategy("simple:10"),
            Ok(StrategySpec::Simple { c: 10 })
        );
        assert_eq!(
            parse_strategy("generalized:5,10"),
            Ok(StrategySpec::Generalized { a: 5, c: 10 })
        );
        assert_eq!(
            parse_strategy("randomized:5,10"),
            Ok(StrategySpec::Randomized { a: 5, c: 10 })
        );
        assert!(parse_strategy("bogus").is_err());
        assert!(parse_strategy("simple").is_err());
        assert!(parse_strategy("generalized:5").is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--workers"]).is_err());
        assert!(parse(&["--workers", "0"]).is_err());
        assert!(parse(&["--mode", "sideways"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        // --help is not an error: the binary prints usage and exits 0.
        assert_eq!(
            parse_opts(["--help".to_string()]).map(|o| o.is_none()),
            Ok(true)
        );
        assert!(USAGE.contains("--duration-secs"));
    }
}
