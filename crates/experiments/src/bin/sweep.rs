//! Regenerates the paper's `sweep` artifact. See `--help` for options.

use std::process::ExitCode;

use ta_experiments::cli::FigureOpts;
use ta_experiments::figures::sweep;

fn main() -> ExitCode {
    let opts = match FigureOpts::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    opts.export_parallelism();
    match sweep::run(&opts) {
        Ok(report) => {
            report.print();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sweep failed: {e}");
            ExitCode::FAILURE
        }
    }
}
