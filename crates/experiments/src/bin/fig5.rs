//! Regenerates the paper's `fig5` artifact. See `--help` for options.

use std::process::ExitCode;

use ta_experiments::cli::{self, FigureOpts};
use ta_experiments::figures::fig5;

fn main() -> ExitCode {
    let opts = match FigureOpts::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(e) if e.is_help() => {
            println!("{}", cli::USAGE);
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            cli::fail_event("fig5", e);
            return ExitCode::FAILURE;
        }
    };
    opts.export_parallelism();
    match fig5::run(&opts) {
        Ok(report) => {
            report.print();
            ExitCode::SUCCESS
        }
        Err(e) => {
            cli::fail_event("fig5", e);
            ExitCode::FAILURE
        }
    }
}
