//! Figure reports: tables plus the data files that regenerate the plot.

use std::path::PathBuf;

use ta_metrics::Table;

/// The output of one figure module.
#[derive(Debug)]
pub struct Report {
    /// Figure identifier (e.g. `"fig2"`).
    pub name: String,
    /// What the figure shows.
    pub description: String,
    /// Titled summary tables (printed to stdout).
    pub tables: Vec<(String, Table)>,
    /// Data files written (gnuplot-ready `.dat`).
    pub files: Vec<PathBuf>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        Report {
            name: name.into(),
            description: description.into(),
            tables: Vec::new(),
            files: Vec::new(),
        }
    }

    /// Adds a titled table.
    pub fn table(&mut self, title: impl Into<String>, table: Table) {
        self.tables.push((title.into(), table));
    }

    /// Records a written data file.
    pub fn file(&mut self, path: PathBuf) {
        self.files.push(path);
    }

    /// Renders the whole report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {}\n", self.name, self.description));
        for (title, table) in &self.tables {
            out.push('\n');
            out.push_str(&format!("-- {title}\n"));
            out.push_str(&table.render());
        }
        if !self.files.is_empty() {
            out.push_str("\ndata files:\n");
            for f in &self.files {
                out.push_str(&format!("  {}\n", f.display()));
            }
        }
        out
    }

    /// Prints the report to stdout, followed by the `profile` block of
    /// every run executed since the last print (present only under
    /// `TA_PROFILE=1`; see [`crate::runner::take_profile`]).
    pub fn print(&self) {
        print!("{}", self.render());
        let profile = crate::runner::take_profile();
        if !profile.is_empty() {
            print!("\n-- profile\n{}", profile.render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sections() {
        let mut r = Report::new("figX", "demo");
        let mut t = Table::new(vec!["k".into(), "v".into()]);
        t.row_display(["a", "1"]);
        r.table("panel", t);
        r.file(PathBuf::from("results/x.dat"));
        let text = r.render();
        assert!(text.contains("== figX — demo"));
        assert!(text.contains("-- panel"));
        assert!(text.contains("results/x.dat"));
    }
}
