//! Synthetic smartphone availability traces.
//!
//! The paper replays a proprietary trace collected by STUNner (ref. 8): 40,658
//! two-day segments of 1,191 users, with a user counted online only when on
//! a charger with ≥ 1 Mbit/s connectivity for at least a minute. That trace
//! is not redistributable, so this module generates a statistically
//! equivalent availability process calibrated to the published Figure 1:
//!
//! * a clear **diurnal pattern** — more phones online during the night
//!   (GMT), because they sit on chargers, with *lower* churn at night;
//! * about **30 % of users permanently offline** over the two-day window;
//! * hourly login/logout proportions of a few percent of the population.
//!
//! The generator is an inhomogeneous two-state Markov process per node,
//! simulated exactly by thinning. Rates are chosen so the instantaneous
//! equilibrium online fraction among churning users tracks the diurnal
//! target `q(t)`, while the total transition rate tracks the churn target
//! `r(t)`:
//!
//! ```text
//! α(t) = r(t)·q(t)        (offline → online)
//! β(t) = r(t)·(1 − q(t))  (online → offline)
//! ```
//!
//! The token account protocols only observe *who is online when*, which is
//! exactly the process reproduced here; per-user identity of the original
//! trace is irrelevant to the algorithms (see DESIGN.md, "Substitutions").

use serde::{Deserialize, Serialize};
use ta_sim::rng::Xoshiro256pp;
use ta_sim::time::{SimDuration, SimTime};

use crate::schedule::{AvailabilitySchedule, Segment};

/// Parameters of the synthetic smartphone availability model.
///
/// The defaults reproduce the shape of the paper's Figure 1. All rates are
/// per hour; phases are hours into the (GMT) day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmartphoneTraceModel {
    /// Fraction of users that never come online in the window (paper: ~30 %).
    pub permanently_offline: f64,
    /// Mean of the diurnal conditional online probability `q(t)` among
    /// churning users.
    pub online_mean: f64,
    /// Amplitude of the diurnal oscillation of `q(t)`.
    pub online_amplitude: f64,
    /// Hour of day (GMT) at which `q(t)` peaks (night: phones on chargers).
    pub online_peak_hour: f64,
    /// Mean total transition rate `r(t)` (events/hour/user).
    pub churn_rate_mean: f64,
    /// Amplitude of the diurnal oscillation of `r(t)`.
    pub churn_rate_amplitude: f64,
    /// Hour of day at which churn peaks (daytime: phones hopping chargers).
    pub churn_peak_hour: f64,
}

impl Default for SmartphoneTraceModel {
    fn default() -> Self {
        SmartphoneTraceModel {
            permanently_offline: 0.30,
            online_mean: 0.52,
            online_amplitude: 0.13,
            online_peak_hour: 3.0,
            churn_rate_mean: 0.22,
            churn_rate_amplitude: 0.08,
            churn_peak_hour: 17.0,
        }
    }
}

impl SmartphoneTraceModel {
    /// Conditional online probability among churning users at time `t`.
    pub fn online_target(&self, t: SimTime) -> f64 {
        let hours = t.as_hours_f64();
        let phase = (hours - self.online_peak_hour) / 24.0 * std::f64::consts::TAU;
        (self.online_mean + self.online_amplitude * phase.cos()).clamp(0.01, 0.99)
    }

    /// Total transition rate (per hour) at time `t`.
    pub fn churn_rate(&self, t: SimTime) -> f64 {
        let hours = t.as_hours_f64();
        let phase = (hours - self.churn_peak_hour) / 24.0 * std::f64::consts::TAU;
        (self.churn_rate_mean + self.churn_rate_amplitude * phase.cos()).max(1e-6)
    }

    /// Upper bound on the transition rate, for thinning.
    fn max_rate(&self) -> f64 {
        self.churn_rate_mean + self.churn_rate_amplitude.abs()
    }

    /// Generates one node's two-day (or `horizon`-long) segment.
    pub fn generate_segment(&self, horizon: SimDuration, rng: &mut Xoshiro256pp) -> Segment {
        if rng.chance(self.permanently_offline) {
            return Segment::constant(false);
        }
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + horizon;
        let mut online = rng.chance(self.online_target(SimTime::ZERO));
        let initial = online;
        let mut transitions = Vec::new();
        let rate_bound = self.max_rate();
        loop {
            // Exponential(rate_bound) inter-candidate time, in hours.
            let u = rng.next_f64().max(f64::MIN_POSITIVE);
            let wait_hours = -u.ln() / rate_bound;
            let wait = SimDuration::from_secs_f64(wait_hours * 3600.0);
            if wait.is_zero() {
                // Sub-microsecond wait: skip to keep transitions strictly
                // increasing (probability ~0 under default rates).
                continue;
            }
            t += wait;
            if t > end {
                break;
            }
            let r = self.churn_rate(t);
            let q = self.online_target(t);
            // Rate of leaving the current state.
            let leave = if online { r * (1.0 - q) } else { r * q };
            if rng.chance(leave / rate_bound) {
                online = !online;
                transitions.push((t, online));
            }
        }
        Segment {
            initial_online: initial,
            transitions,
        }
    }

    /// Generates a full-network schedule of `n` independent segments.
    ///
    /// Each node draws from its own RNG stream of `seed`, so the schedule
    /// for node `i` is stable regardless of `n`.
    pub fn generate(&self, n: usize, horizon: SimDuration, seed: u64) -> AvailabilitySchedule {
        let segments = (0..n)
            .map(|i| {
                let mut rng = Xoshiro256pp::stream(seed, 0xc4u64 ^ (i as u64) << 8);
                self.generate_segment(horizon, &mut rng)
            })
            .collect();
        AvailabilitySchedule::new(segments).expect("generator yields valid segments")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_sim::paper;

    fn two_day_schedule(n: usize) -> AvailabilitySchedule {
        SmartphoneTraceModel::default().generate(n, paper::TWO_DAYS, 99)
    }

    #[test]
    fn permanently_offline_fraction_matches_target() {
        let sched = two_day_schedule(4000);
        let f = sched.never_online_fraction();
        // 30% target ± sampling noise; churning users that never flip online
        // add a little. Figure 1 shows ~30%.
        assert!((0.25..0.40).contains(&f), "never-online fraction {f}");
    }

    #[test]
    fn online_fraction_is_in_figure_1_band() {
        let sched = two_day_schedule(4000);
        for h in [6u64, 12, 18, 24, 30, 36, 42] {
            let f = sched.online_fraction_at(SimTime::from_secs(h * 3600));
            assert!((0.20..0.55).contains(&f), "hour {h}: online {f}");
        }
    }

    #[test]
    fn diurnal_pattern_peaks_at_night() {
        let sched = two_day_schedule(6000);
        // Night (03:00) vs afternoon (15:00) on both days.
        let night = (sched.online_fraction_at(SimTime::from_secs(3 * 3600))
            + sched.online_fraction_at(SimTime::from_secs(27 * 3600)))
            / 2.0;
        let day = (sched.online_fraction_at(SimTime::from_secs(15 * 3600))
            + sched.online_fraction_at(SimTime::from_secs(39 * 3600)))
            / 2.0;
        assert!(
            night > day + 0.03,
            "expected night ({night}) > day ({day}) availability"
        );
    }

    #[test]
    fn has_been_online_saturates_below_one() {
        let sched = two_day_schedule(3000);
        let early = sched.has_been_online_fraction_at(SimTime::from_secs(3600));
        let late = sched.has_been_online_fraction_at(SimTime::from_secs(47 * 3600));
        assert!(early < late);
        // ~30% never online ⇒ saturation around 0.7.
        assert!((0.60..0.80).contains(&late), "saturation {late}");
    }

    #[test]
    fn generation_is_deterministic_and_stream_stable() {
        let model = SmartphoneTraceModel::default();
        let a = model.generate(100, paper::TWO_DAYS, 7);
        let b = model.generate(100, paper::TWO_DAYS, 7);
        assert_eq!(a, b);
        // Node i's segment does not depend on n.
        let big = model.generate(200, paper::TWO_DAYS, 7);
        assert_eq!(a.segments()[..100], big.segments()[..100]);
        // Different seed differs.
        let c = model.generate(100, paper::TWO_DAYS, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn targets_are_valid_probabilities_and_rates() {
        let model = SmartphoneTraceModel::default();
        for h in 0..48 {
            let t = SimTime::from_secs(h * 3600);
            let q = model.online_target(t);
            assert!((0.0..=1.0).contains(&q));
            assert!(model.churn_rate(t) > 0.0);
        }
    }

    #[test]
    fn churn_rate_produces_realistic_session_counts() {
        let sched = two_day_schedule(1000);
        // Mean transitions per churning user over 48 h at rate ~0.22/h with
        // thinning acceptance < 1: somewhere in single digits.
        let total: usize = sched.segments().iter().map(|s| s.transitions.len()).sum();
        let churning = sched
            .segments()
            .iter()
            .filter(|s| s.is_ever_online() || !s.transitions.is_empty())
            .count();
        let mean = total as f64 / churning.max(1) as f64;
        assert!((1.0..12.0).contains(&mean), "mean transitions {mean}");
    }
}
