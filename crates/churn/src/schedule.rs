//! Per-node availability schedules.
//!
//! An [`AvailabilitySchedule`] holds, for every node, its initial
//! online/offline state and an alternating, strictly increasing list of
//! transition times. It implements [`ta_sim::AvailabilityModel`] so the
//! engine can replay it, and offers point queries used by the metric and
//! statistics code.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use ta_sim::engine::AvailabilityModel;
use ta_sim::{NodeId, SimTime};

/// One node's availability over the simulated horizon.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Online at time zero?
    pub initial_online: bool,
    /// Alternating transitions `(time, goes_online)`, strictly increasing in
    /// time, each flipping the previous state.
    pub transitions: Vec<(SimTime, bool)>,
}

impl Segment {
    /// A segment that never changes state.
    pub fn constant(online: bool) -> Self {
        Segment {
            initial_online: online,
            transitions: Vec::new(),
        }
    }

    /// Whether this segment is online at `t`.
    pub fn is_online_at(&self, t: SimTime) -> bool {
        // Transitions are sorted; find the last one at or before `t`.
        match self.transitions.partition_point(|&(time, _)| time <= t) {
            0 => self.initial_online,
            k => self.transitions[k - 1].1,
        }
    }

    /// Whether this segment has been online at any point in `[0, t]`.
    pub fn has_been_online_by(&self, t: SimTime) -> bool {
        if self.initial_online {
            return true;
        }
        self.transitions
            .iter()
            .take_while(|&&(time, _)| time <= t)
            .any(|&(_, up)| up)
    }

    /// Whether this segment is ever online over the whole horizon.
    pub fn is_ever_online(&self) -> bool {
        self.initial_online || self.transitions.iter().any(|&(_, up)| up)
    }

    /// Total time spent online within `[0, horizon]`.
    pub fn online_time(&self, horizon: SimTime) -> ta_sim::SimDuration {
        let mut acc = ta_sim::SimDuration::ZERO;
        let mut state = self.initial_online;
        let mut since = SimTime::ZERO;
        for &(time, up) in &self.transitions {
            if time > horizon {
                break;
            }
            if state {
                acc += time - since;
            }
            state = up;
            since = time;
        }
        if state && horizon > since {
            acc += horizon - since;
        }
        acc
    }

    fn validate(&self) -> Result<(), InvalidScheduleError> {
        let mut state = self.initial_online;
        let mut last: Option<SimTime> = None;
        for &(time, up) in &self.transitions {
            if let Some(prev) = last {
                if time <= prev {
                    return Err(InvalidScheduleError::NonMonotonicTime { at: time });
                }
            }
            if up == state {
                return Err(InvalidScheduleError::NonAlternating { at: time });
            }
            state = up;
            last = Some(time);
        }
        Ok(())
    }
}

/// Error constructing an [`AvailabilitySchedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvalidScheduleError {
    /// Transition times must strictly increase.
    NonMonotonicTime {
        /// Offending transition time.
        at: SimTime,
    },
    /// Consecutive transitions must flip the state.
    NonAlternating {
        /// Offending transition time.
        at: SimTime,
    },
    /// The schedule holds no segments.
    Empty,
}

impl fmt::Display for InvalidScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidScheduleError::NonMonotonicTime { at } => {
                write!(f, "transition times must strictly increase (at {at})")
            }
            InvalidScheduleError::NonAlternating { at } => {
                write!(f, "transitions must alternate online/offline (at {at})")
            }
            InvalidScheduleError::Empty => write!(f, "schedule holds no segments"),
        }
    }
}

impl Error for InvalidScheduleError {}

/// Availability of a whole network: one [`Segment`] per node.
///
/// ```
/// use ta_churn::schedule::{AvailabilitySchedule, Segment};
/// use ta_sim::SimTime;
///
/// let mut seg = Segment::constant(false);
/// seg.transitions.push((SimTime::from_secs(60), true));
/// let sched = AvailabilitySchedule::new(vec![Segment::constant(true), seg])?;
/// assert_eq!(sched.online_count_at(SimTime::from_secs(0)), 1);
/// assert_eq!(sched.online_count_at(SimTime::from_secs(120)), 2);
/// # Ok::<(), ta_churn::schedule::InvalidScheduleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AvailabilitySchedule {
    segments: Vec<Segment>,
}

impl AvailabilitySchedule {
    /// Wraps validated segments.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidScheduleError`] if `segments` is empty or any
    /// segment has non-monotonic or non-alternating transitions.
    pub fn new(segments: Vec<Segment>) -> Result<Self, InvalidScheduleError> {
        if segments.is_empty() {
            return Err(InvalidScheduleError::Empty);
        }
        for seg in &segments {
            seg.validate()?;
        }
        Ok(AvailabilitySchedule { segments })
    }

    /// A failure-free schedule: `n` nodes online throughout.
    pub fn always_on(n: usize) -> Self {
        AvailabilitySchedule {
            segments: vec![Segment::constant(true); n],
        }
    }

    /// Number of nodes covered.
    pub fn n(&self) -> usize {
        self.segments.len()
    }

    /// The segment of `node`.
    pub fn segment(&self, node: NodeId) -> &Segment {
        &self.segments[node.index()]
    }

    /// The segments, in node order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of nodes online at `t`.
    pub fn online_count_at(&self, t: SimTime) -> usize {
        self.segments.iter().filter(|s| s.is_online_at(t)).count()
    }

    /// Fraction of nodes online at `t`.
    pub fn online_fraction_at(&self, t: SimTime) -> f64 {
        self.online_count_at(t) as f64 / self.n() as f64
    }

    /// Fraction of nodes that have been online at least once by `t`.
    pub fn has_been_online_fraction_at(&self, t: SimTime) -> f64 {
        let c = self
            .segments
            .iter()
            .filter(|s| s.has_been_online_by(t))
            .count();
        c as f64 / self.n() as f64
    }

    /// Fraction of nodes that never come online over the whole horizon.
    pub fn never_online_fraction(&self) -> f64 {
        let c = self.segments.iter().filter(|s| !s.is_ever_online()).count();
        c as f64 / self.n() as f64
    }

    /// Consumes the schedule, returning its segments.
    pub fn into_segments(self) -> Vec<Segment> {
        self.segments
    }
}

impl AvailabilityModel for AvailabilitySchedule {
    fn initially_online(&self, node: NodeId) -> bool {
        self.segments[node.index()].initial_online
    }

    fn for_each_transition(&self, node: NodeId, f: &mut dyn FnMut(SimTime, bool)) {
        // Stream the stored slice directly: engine setup at large N used to
        // clone one Vec per node through the `transitions` wrapper.
        for &(time, up) in &self.segments[node.index()].transitions {
            f(time, up);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_sim::SimDuration;

    fn seg(initial: bool, times: &[(u64, bool)]) -> Segment {
        Segment {
            initial_online: initial,
            transitions: times
                .iter()
                .map(|&(s, up)| (SimTime::from_secs(s), up))
                .collect(),
        }
    }

    #[test]
    fn point_queries_follow_transitions() {
        let s = seg(false, &[(10, true), (20, false), (30, true)]);
        assert!(!s.is_online_at(SimTime::from_secs(5)));
        assert!(s.is_online_at(SimTime::from_secs(10)));
        assert!(s.is_online_at(SimTime::from_secs(15)));
        assert!(!s.is_online_at(SimTime::from_secs(25)));
        assert!(s.is_online_at(SimTime::from_secs(35)));
    }

    #[test]
    fn has_been_online_is_monotone() {
        let s = seg(false, &[(10, true), (20, false)]);
        assert!(!s.has_been_online_by(SimTime::from_secs(9)));
        assert!(s.has_been_online_by(SimTime::from_secs(10)));
        assert!(s.has_been_online_by(SimTime::from_secs(100)));
    }

    #[test]
    fn ever_online_detects_permanently_offline() {
        assert!(!seg(false, &[]).is_ever_online());
        assert!(seg(true, &[]).is_ever_online());
        assert!(seg(false, &[(5, true)]).is_ever_online());
    }

    #[test]
    fn online_time_accumulates_intervals() {
        let s = seg(true, &[(10, false), (30, true), (40, false)]);
        // Online [0,10) and [30,40) within horizon 100 ⇒ 20 s.
        assert_eq!(
            s.online_time(SimTime::from_secs(100)),
            SimDuration::from_secs(20)
        );
        // Horizon inside an online stretch: [0,10) + [30,35) = 15 s.
        assert_eq!(
            s.online_time(SimTime::from_secs(35)),
            SimDuration::from_secs(15)
        );
    }

    #[test]
    fn validation_rejects_non_monotonic() {
        let bad = seg(false, &[(10, true), (10, false)]);
        assert!(matches!(
            AvailabilitySchedule::new(vec![bad]).unwrap_err(),
            InvalidScheduleError::NonMonotonicTime { .. }
        ));
    }

    #[test]
    fn validation_rejects_non_alternating() {
        let bad = seg(false, &[(10, false)]);
        assert!(matches!(
            AvailabilitySchedule::new(vec![bad]).unwrap_err(),
            InvalidScheduleError::NonAlternating { .. }
        ));
    }

    #[test]
    fn validation_rejects_empty() {
        assert_eq!(
            AvailabilitySchedule::new(vec![]).unwrap_err(),
            InvalidScheduleError::Empty
        );
    }

    #[test]
    fn network_level_fractions() {
        let sched = AvailabilitySchedule::new(vec![
            seg(true, &[]),
            seg(false, &[(10, true)]),
            seg(false, &[]),
            seg(true, &[(5, false)]),
        ])
        .unwrap();
        assert_eq!(sched.online_count_at(SimTime::ZERO), 2);
        assert_eq!(sched.online_count_at(SimTime::from_secs(7)), 1);
        assert_eq!(sched.online_count_at(SimTime::from_secs(12)), 2);
        assert!((sched.online_fraction_at(SimTime::from_secs(12)) - 0.5).abs() < 1e-12);
        assert!((sched.never_online_fraction() - 0.25).abs() < 1e-12);
        assert!((sched.has_been_online_fraction_at(SimTime::from_secs(12)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn always_on_matches_model_trait() {
        let sched = AvailabilitySchedule::always_on(3);
        assert_eq!(sched.n(), 3);
        assert!(sched.initially_online(NodeId::new(2)));
        assert!(sched.transitions(NodeId::new(2)).is_empty());
        assert_eq!(sched.never_online_fraction(), 0.0);
    }
}
