//! Text serialization of availability traces.
//!
//! A line-oriented format so the real STUNner trace (or any other
//! availability data) can be converted offline and dropped into the
//! experiments in place of the synthetic model:
//!
//! ```text
//! # ta-trace v1            (comment/blank lines ignored)
//! 1                         (node 0: online at t=0, no transitions)
//! 0 60.5:1 7200:0           (node 1: offline, up at 60.5 s, down at 7200 s)
//! ```
//!
//! Times are fractional seconds from the window start; `1` means the node
//! goes (or starts) online.

use std::error::Error;
use std::fmt;

use ta_sim::SimTime;

use crate::schedule::{AvailabilitySchedule, InvalidScheduleError, Segment};

/// Error parsing a trace document.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseTraceError {
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// Parsed segments violated schedule invariants.
    Invalid(InvalidScheduleError),
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Malformed { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
            ParseTraceError::Invalid(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTraceError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InvalidScheduleError> for ParseTraceError {
    fn from(e: InvalidScheduleError) -> Self {
        ParseTraceError::Invalid(e)
    }
}

fn parse_state(token: &str, line: usize) -> Result<bool, ParseTraceError> {
    match token {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(ParseTraceError::Malformed {
            line,
            reason: format!("expected 0 or 1, got `{other}`"),
        }),
    }
}

/// Parses a trace document into an [`AvailabilitySchedule`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] on syntax errors or schedule invariant
/// violations (non-monotonic or non-alternating transitions).
pub fn parse_trace(text: &str) -> Result<AvailabilitySchedule, ParseTraceError> {
    let mut segments = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let initial = parse_state(
            tokens
                .next()
                .expect("split of non-empty line yields a token"),
            line_no,
        )?;
        let mut transitions = Vec::new();
        for token in tokens {
            let (time_str, state_str) =
                token
                    .split_once(':')
                    .ok_or_else(|| ParseTraceError::Malformed {
                        line: line_no,
                        reason: format!("expected `seconds:state`, got `{token}`"),
                    })?;
            let secs: f64 = time_str.parse().map_err(|_| ParseTraceError::Malformed {
                line: line_no,
                reason: format!("bad time `{time_str}`"),
            })?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(ParseTraceError::Malformed {
                    line: line_no,
                    reason: format!("time {secs} out of range"),
                });
            }
            let state = parse_state(state_str, line_no)?;
            transitions.push((SimTime::from_secs_f64(secs), state));
        }
        segments.push(Segment {
            initial_online: initial,
            transitions,
        });
    }
    Ok(AvailabilitySchedule::new(segments)?)
}

/// Serializes a schedule to the trace text format (inverse of
/// [`parse_trace`]).
pub fn write_trace(schedule: &AvailabilitySchedule) -> String {
    let mut out = String::from("# ta-trace v1\n");
    for seg in schedule.segments() {
        out.push(if seg.initial_online { '1' } else { '0' });
        for &(t, up) in &seg.transitions {
            out.push_str(&format!(" {}:{}", t.as_secs_f64(), u8::from(up)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SmartphoneTraceModel;
    use ta_sim::paper;

    #[test]
    fn parses_the_documented_example() {
        let text = "# ta-trace v1\n1\n0 60.5:1 7200:0\n";
        let sched = parse_trace(text).unwrap();
        assert_eq!(sched.n(), 2);
        assert!(sched.segments()[0].initial_online);
        assert!(sched.segments()[0].transitions.is_empty());
        let seg1 = &sched.segments()[1];
        assert!(!seg1.initial_online);
        assert_eq!(seg1.transitions.len(), 2);
        assert_eq!(seg1.transitions[0].0, SimTime::from_secs_f64(60.5));
        assert!(seg1.transitions[0].1);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let sched = parse_trace("\n# c\n\n1\n# d\n0\n").unwrap();
        assert_eq!(sched.n(), 2);
    }

    #[test]
    fn roundtrips_a_synthetic_trace() {
        let original = SmartphoneTraceModel::default().generate(50, paper::TWO_DAYS, 5);
        let text = write_trace(&original);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn rejects_bad_state_token() {
        let err = parse_trace("2\n").unwrap_err();
        assert!(matches!(err, ParseTraceError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_transition_syntax() {
        assert!(matches!(
            parse_trace("0 60,1\n").unwrap_err(),
            ParseTraceError::Malformed { .. }
        ));
        assert!(matches!(
            parse_trace("0 abc:1\n").unwrap_err(),
            ParseTraceError::Malformed { .. }
        ));
        assert!(matches!(
            parse_trace("0 -5:1\n").unwrap_err(),
            ParseTraceError::Malformed { .. }
        ));
    }

    #[test]
    fn rejects_non_alternating_trace() {
        let err = parse_trace("0 10:1 20:1\n").unwrap_err();
        assert!(matches!(err, ParseTraceError::Invalid(_)));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse_trace("1\n0 x:1\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }
}
