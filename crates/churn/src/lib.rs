//! # ta-churn — availability traces and the synthetic smartphone churn model
//!
//! Substrate crate of the token account reproduction. The paper evaluates
//! its protocols over a real smartphone availability trace (STUNner, ref. 8);
//! this crate provides:
//!
//! * [`schedule::AvailabilitySchedule`] — validated per-node availability,
//!   pluggable into the simulator via
//!   [`ta_sim::engine::AvailabilityModel`].
//! * [`synthetic::SmartphoneTraceModel`] — a diurnal two-state Markov model
//!   calibrated to the paper's Figure 1 (see DESIGN.md, "Substitutions").
//! * [`trace_io`] — a text format for loading real traces.
//! * [`stats::figure1_series`] — the Figure-1 statistics of any schedule.
//!
//! ```
//! use ta_churn::synthetic::SmartphoneTraceModel;
//! use ta_sim::paper;
//! use ta_sim::SimTime;
//!
//! let sched = SmartphoneTraceModel::default().generate(1_000, paper::TWO_DAYS, 42);
//! let noon = SimTime::from_secs(12 * 3600);
//! assert!(sched.online_fraction_at(noon) > 0.1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod schedule;
pub mod stats;
pub mod synthetic;
pub mod trace_io;

pub use schedule::{AvailabilitySchedule, Segment};
pub use stats::{figure1_series, ChurnBucket};
pub use synthetic::SmartphoneTraceModel;
