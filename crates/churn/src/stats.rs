//! Figure-1 statistics of an availability schedule.
//!
//! The paper's Figure 1 plots, over the 48-hour window: the proportion of
//! users online, the proportion that have been online at least once, and —
//! as bars per period — the proportion of users logging in and logging out.
//! [`figure1_series`] computes all four series from any
//! [`AvailabilitySchedule`], so the plot can be regenerated from either the
//! synthetic model or a real trace loaded from disk.

use serde::{Deserialize, Serialize};
use ta_sim::time::{SimDuration, SimTime};

use crate::schedule::AvailabilitySchedule;

/// One sampling bucket of the Figure-1 statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnBucket {
    /// Bucket start, in hours from the window start.
    pub hour: f64,
    /// Proportion of users online at the bucket start.
    pub online: f64,
    /// Proportion of users that have been online at least once by the
    /// bucket start.
    pub has_been_online: f64,
    /// Proportion of users that log in during the bucket.
    pub logins: f64,
    /// Proportion of users that log out during the bucket.
    pub logouts: f64,
}

/// Computes the Figure-1 series over `[0, horizon]` with the given bucket
/// width.
///
/// # Panics
///
/// Panics if `bucket` is zero.
pub fn figure1_series(
    schedule: &AvailabilitySchedule,
    horizon: SimDuration,
    bucket: SimDuration,
) -> Vec<ChurnBucket> {
    assert!(!bucket.is_zero(), "bucket width must be positive");
    let n = schedule.n() as f64;
    let buckets = horizon / bucket;
    let mut out = Vec::with_capacity(buckets as usize);
    for b in 0..buckets {
        let start = SimTime::ZERO + bucket * b;
        let end = start + bucket;
        let mut logins = 0u64;
        let mut logouts = 0u64;
        for seg in schedule.segments() {
            for &(t, up) in &seg.transitions {
                if t >= start && t < end {
                    if up {
                        logins += 1;
                    } else {
                        logouts += 1;
                    }
                }
            }
        }
        out.push(ChurnBucket {
            hour: start.as_hours_f64(),
            online: schedule.online_fraction_at(start),
            has_been_online: schedule.has_been_online_fraction_at(start),
            logins: logins as f64 / n,
            logouts: logouts as f64 / n,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Segment;
    use crate::synthetic::SmartphoneTraceModel;
    use ta_sim::paper;

    #[test]
    fn counts_logins_and_logouts_per_bucket() {
        let mut a = Segment::constant(false);
        a.transitions.push((SimTime::from_secs(30), true));
        a.transitions.push((SimTime::from_secs(90), false));
        let b = Segment::constant(true);
        let sched = AvailabilitySchedule::new(vec![a, b]).unwrap();
        let series = figure1_series(
            &sched,
            SimDuration::from_secs(120),
            SimDuration::from_secs(60),
        );
        assert_eq!(series.len(), 2);
        // Bucket 0: one login out of two users.
        assert!((series[0].logins - 0.5).abs() < 1e-12);
        assert_eq!(series[0].logouts, 0.0);
        // Bucket 1: one logout.
        assert_eq!(series[1].logins, 0.0);
        assert!((series[1].logouts - 0.5).abs() < 1e-12);
        // Online fractions at bucket starts: t=0 ⇒ 1/2; t=60 ⇒ 1 (a online).
        assert!((series[0].online - 0.5).abs() < 1e-12);
        assert!((series[1].online - 1.0).abs() < 1e-12);
    }

    #[test]
    fn has_been_online_is_monotone_across_buckets() {
        let sched = SmartphoneTraceModel::default().generate(500, paper::TWO_DAYS, 3);
        let series = figure1_series(&sched, paper::TWO_DAYS, SimDuration::from_hours(1));
        assert_eq!(series.len(), 48);
        for w in series.windows(2) {
            assert!(w[1].has_been_online >= w[0].has_been_online - 1e-12);
        }
    }

    #[test]
    fn synthetic_series_shows_figure_1_shape() {
        let sched = SmartphoneTraceModel::default().generate(3000, paper::TWO_DAYS, 11);
        let series = figure1_series(&sched, paper::TWO_DAYS, SimDuration::from_hours(1));
        // Login/logout proportions are small per hour (bars in Figure 1).
        for b in &series {
            assert!(b.logins < 0.2, "hour {}: logins {}", b.hour, b.logins);
            assert!(b.logouts < 0.2, "hour {}: logouts {}", b.hour, b.logouts);
        }
        // Saturation of has-been-online stays below 1 (permanently offline).
        let last = series.last().unwrap();
        assert!(last.has_been_online < 0.9);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_panics() {
        let sched = AvailabilitySchedule::always_on(1);
        figure1_series(&sched, SimDuration::from_secs(10), SimDuration::ZERO);
    }
}
