//! Property tests over availability schedules and the synthetic model.

use proptest::prelude::*;
use ta_churn::schedule::{AvailabilitySchedule, Segment};
use ta_churn::synthetic::SmartphoneTraceModel;
use ta_churn::trace_io::{parse_trace, write_trace};
use ta_sim::time::{SimDuration, SimTime};

/// Builds a valid alternating segment from a list of positive gaps.
fn segment_from_gaps(initial: bool, gaps: Vec<u64>) -> Segment {
    let mut transitions = Vec::new();
    let mut t = 0u64;
    let mut state = initial;
    for gap in gaps {
        t += gap.max(1);
        state = !state;
        transitions.push((SimTime::from_micros(t), state));
    }
    Segment {
        initial_online: initial,
        transitions,
    }
}

proptest! {
    /// `online_time` equals the integral of `is_online_at`, measured by a
    /// fine scan.
    #[test]
    fn online_time_matches_point_queries(
        initial in any::<bool>(),
        gaps in proptest::collection::vec(1u64..5_000_000u64, 0..12)
    ) {
        let seg = segment_from_gaps(initial, gaps);
        let horizon = SimTime::from_micros(30_000_000);
        let reported = seg.online_time(horizon);
        // Riemann sum at 10 ms resolution.
        let step = 10_000u64;
        let mut acc = 0u64;
        let mut t = 0u64;
        while t < horizon.as_micros() {
            if seg.is_online_at(SimTime::from_micros(t)) {
                acc += step;
            }
            t += step;
        }
        let diff = (acc as i64 - reported.as_micros() as i64).abs();
        // Each transition contributes at most one step of error.
        let tolerance = step as i64 * (seg.transitions.len() as i64 + 1);
        prop_assert!(diff <= tolerance, "diff {diff} > tolerance {tolerance}");
    }

    /// Segments built from gaps always validate, and round-trip through
    /// the trace text format.
    #[test]
    fn trace_io_roundtrip(
        initial in any::<bool>(),
        gaps in proptest::collection::vec(1u64..100_000_000u64, 0..10)
    ) {
        let seg = segment_from_gaps(initial, gaps);
        let sched = AvailabilitySchedule::new(vec![seg]).unwrap();
        let text = write_trace(&sched);
        let parsed = parse_trace(&text).unwrap();
        prop_assert_eq!(parsed, sched);
    }

    /// has_been_online is monotone in time for any segment.
    #[test]
    fn has_been_online_is_monotone(
        initial in any::<bool>(),
        gaps in proptest::collection::vec(1u64..2_000_000u64, 0..10)
    ) {
        let seg = segment_from_gaps(initial, gaps);
        let mut last = false;
        for ms in (0..20_000).step_by(500) {
            let now = seg.has_been_online_by(SimTime::from_micros(ms * 1000));
            prop_assert!(!last || now, "has_been_online regressed at {ms}ms");
            last = now;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The synthetic model respects arbitrary horizons: no transition
    /// beyond the end, states alternate, times strictly increase.
    #[test]
    fn synthetic_segments_stay_in_horizon(seed in 0u64..10_000, hours in 1u64..72) {
        let horizon = SimDuration::from_hours(hours);
        let sched = SmartphoneTraceModel::default().generate(30, horizon, seed);
        for seg in sched.segments() {
            let mut state = seg.initial_online;
            let mut last = None;
            for &(t, up) in &seg.transitions {
                prop_assert!(t <= SimTime::ZERO + horizon);
                prop_assert_ne!(up, state);
                if let Some(prev) = last {
                    prop_assert!(t > prev);
                }
                state = up;
                last = Some(t);
            }
        }
    }
}
