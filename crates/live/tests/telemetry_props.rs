//! Property tests: the decision trace is a faithful sub-sample of the
//! admission stream.
//!
//! At sample interval 1 with a ring large enough to never drop, the
//! drained trace records *are* the request stream: reconstructing
//! admit/deny totals from them must reproduce the exact
//! [`LiveCounters`] books the run reported — same request count, same
//! held count, and the same total reactive tokens sent. Anything less
//! means the trace path lies about what the runtime did, which would
//! poison every analysis built on `--trace-out`.

use std::time::Duration;

use proptest::prelude::*;

use ta_live::telem::c;
use ta_live::{run_loadgen_observed_spec, ArrivalMode, LiveTelemetry, LoadGenConfig};
use ta_telemetry::TraceRecord;
use token_account::StrategySpec;

fn cfg(clients: usize, workers: usize, shards: usize, seed: u64) -> LoadGenConfig {
    LoadGenConfig {
        clients,
        workers,
        account_shards: shards,
        duration: Duration::from_millis(30),
        mode: ArrivalMode::Closed,
        useful_probability: 0.8,
        burst: None,
        round_period: Some(Duration::from_millis(5)),
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Run a real multi-threaded observed load generation at sample
    /// interval 1 and reconstruct the admit/deny totals from the
    /// drained trace: they equal the run's own merged counters exactly.
    #[test]
    fn trace_reconstructs_admission_totals(
        clients in 64usize..512,
        workers in 1usize..5,
        shards_pow in 0u32..5,
        k in 1u64..5,
        seed in any::<u64>(),
    ) {
        let cfg = cfg(clients, workers, 1 << shards_pow, seed);
        // Large enough that a 30 ms closed-loop run can never wrap.
        let telem = LiveTelemetry::new(cfg.workers, 1, 1 << 20);
        let report =
            run_loadgen_observed_spec(StrategySpec::Reactive { k }, &cfg, &telem).unwrap();
        prop_assert!(report.conserves());

        let mut records: Vec<TraceRecord> = Vec::new();
        for mut cons in telem.take_consumers() {
            cons.drain(&mut records);
        }
        let snap = telem.snapshot();
        prop_assert_eq!(snap.counter(c::TRACE_DROPPED), 0);
        prop_assert_eq!(snap.counter(c::TRACE_SAMPLED), report.counters.requests);

        // Reconstruct the books from the trace alone.
        let held = records
            .iter()
            .filter(|r| r.verdict == TraceRecord::HELD)
            .count() as u64;
        let sent_requests = records
            .iter()
            .filter(|r| r.verdict == TraceRecord::SENT)
            .count() as u64;
        let sent_tokens: u64 = records
            .iter()
            .filter(|r| r.verdict == TraceRecord::SENT)
            .map(|r| u64::from(r.cost))
            .sum();

        let m = &report.counters;
        prop_assert_eq!(records.len() as u64, m.requests);
        prop_assert_eq!(held, m.reactive_held);
        prop_assert_eq!(sent_requests, m.requests - m.reactive_held);
        prop_assert_eq!(sent_tokens, m.reactive_sent);

        // Each record's client id is in range.
        for r in &records {
            prop_assert!((r.client as usize) < cfg.clients);
        }
    }

    /// Sampling 1-in-N never distorts accounting: sampled counters and
    /// drained records still close exactly (`drained + dropped ==
    /// sampled`), and sampled totals never exceed the full totals.
    #[test]
    fn sampled_trace_accounting_closes(
        n in prop_oneof![Just(2u32), Just(7), Just(64)],
        seed in any::<u64>(),
    ) {
        let cfg = cfg(256, 2, 8, seed);
        let telem = LiveTelemetry::new(cfg.workers, n, 1 << 12);
        let report =
            run_loadgen_observed_spec(StrategySpec::Simple { c: 8 }, &cfg, &telem).unwrap();
        prop_assert!(report.conserves());

        let mut records: Vec<TraceRecord> = Vec::new();
        for mut cons in telem.take_consumers() {
            cons.drain(&mut records);
        }
        let snap = telem.snapshot();
        prop_assert_eq!(
            records.len() as u64 + snap.counter(c::TRACE_DROPPED),
            snap.counter(c::TRACE_SAMPLED)
        );
        prop_assert!(snap.counter(c::TRACE_SAMPLED) <= report.counters.requests);
        prop_assert!(
            snap.counter(c::TRACE_SAMPLED_SENT) + snap.counter(c::TRACE_SAMPLED_HELD)
                == snap.counter(c::TRACE_SAMPLED)
        );
        // Exact every-Nth per worker: each worker samples
        // floor(requests_w / N) + (1 if requests_w % N >= 1 for the
        // first hit) — bounded above by requests / N + workers.
        prop_assert!(
            snap.counter(c::TRACE_SAMPLED)
                <= report.counters.requests / u64::from(n) + cfg.workers as u64
        );
    }
}
