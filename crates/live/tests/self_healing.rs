//! Self-healing acceptance tests: transient IO faults absorbed by the
//! retry envelope, and degraded-mode operation under a disk-full
//! outage.
//!
//! The two properties the supervision layer must deliver:
//!
//! * `io_error_n:<k>` faults are **fully absorbed**: every injected
//!   error is retried, nothing is dropped, and post-run recovery is
//!   bit-for-bit identical to a fault-free shutdown.
//! * Under `enospc_after:<bytes>` with the `degrade` policy the runtime
//!   **keeps admitting** while durability is suspended, the health
//!   board reports the writer Degraded→Failed→recovered, the writer
//!   restarts onto a fresh segment once space returns, and the
//!   recovered books still reconcile exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ta_live::persist::{recover, FaultPlan, PersistConfig, Persistence};
use ta_live::{
    run_loadgen_durable_supervised_spec, ArrivalMode, HealthBoard, HealthState, LiveTelemetry,
    LoadGenConfig, OnJournalFail,
};
use token_account::prelude::*;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ta-selfheal-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn loadgen_cfg(duration_ms: u64, seed: u64) -> LoadGenConfig {
    LoadGenConfig {
        clients: 400,
        workers: 2,
        account_shards: 4,
        duration: Duration::from_millis(duration_ms),
        mode: ArrivalMode::Closed,
        useful_probability: 0.8,
        burst: None,
        round_period: Some(Duration::from_millis(20)),
        seed,
    }
}

fn counter(telem: &LiveTelemetry, name: &str) -> u64 {
    telem.snapshot().counter_by_name(name).unwrap_or(0)
}

#[test]
fn io_error_faults_are_fully_absorbed_by_retry() {
    const K: u32 = 4;
    let dir = temp_dir("ioerr");
    let mut pcfg = PersistConfig::new(&dir);
    pcfg.group_commit = Duration::from_millis(2);
    pcfg.buffer_cap = 32;
    pcfg.faults = FaultPlan::parse(&format!("io_error_n:{K}")).unwrap();

    let telem = LiveTelemetry::new(2, 0, 16);
    let board = HealthBoard::new(OnJournalFail::Degrade);
    let cfg = loadgen_cfg(250, 17);
    let p = Persistence::open(&pcfg, cfg.clients, 4).unwrap();
    let (report, _) = run_loadgen_durable_supervised_spec(
        StrategySpec::Randomized { a: 2, c: 6 },
        &cfg,
        &p,
        None,
        None,
        Some(&telem),
        &board,
    )
    .unwrap();
    let stats = p.shutdown().expect("retries must absorb every error");

    assert!(report.conserves(), "live run broke conservation");
    assert!(stats.records > 0, "nothing was journalled");
    // Every injected error was retried; none escalated, none dropped.
    assert_eq!(counter(&telem, "faults_injected"), u64::from(K));
    assert_eq!(counter(&telem, "journal_io_errors"), u64::from(K));
    assert_eq!(counter(&telem, "journal_io_retries"), u64::from(K));
    assert_eq!(counter(&telem, "journal_dropped_records"), 0);
    assert_eq!(counter(&telem, "journal_writer_restarts"), 0);
    assert_eq!(
        board.state(ta_live::Component::JournalWriter),
        HealthState::Healthy,
        "the writer must clear its Degraded mark after recovering"
    );
    assert!(!board.durability_suspended());

    // Recovery is exact: zero lost records.
    let state = recover(&dir).unwrap();
    assert!(state.truncations.is_empty());
    assert_eq!(state.balances_sum(), report.balances_sum);
    assert_eq!(state.granted_total(), report.counters.tokens_banked);
    assert_eq!(state.burned_total(), report.counters.reactive_sent);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn enospc_degrade_keeps_admitting_and_restarts_the_writer() {
    let dir = temp_dir("enospc");
    let mut pcfg = PersistConfig::new(&dir);
    pcfg.group_commit = Duration::from_millis(2);
    pcfg.buffer_cap = 32;
    // Trip the outage early so the probe ladder (5 failed probes on
    // capped backoff, then space returns) fits inside the run.
    pcfg.faults = FaultPlan::parse("enospc_after:4000").unwrap();

    let telem = LiveTelemetry::new(2, 0, 16);
    let board = HealthBoard::new(OnJournalFail::Degrade);
    let cfg = loadgen_cfg(2_600, 29);
    let p = Persistence::open(&pcfg, cfg.clients, 4).unwrap();
    let (report, _) = run_loadgen_durable_supervised_spec(
        StrategySpec::Simple { c: 6 },
        &cfg,
        &p,
        None,
        None,
        Some(&telem),
        &board,
    )
    .unwrap();
    let stats = p.shutdown().unwrap();

    // The runtime kept admitting straight through the outage.
    assert!(report.conserves(), "degraded run broke conservation");
    assert!(
        report.counters.requests > 10_000,
        "admissions must continue under degrade: {} requests",
        report.counters.requests
    );
    // Durability was actually suspended (batches dropped and counted),
    // then the writer restarted onto a fresh segment when space
    // returned.
    assert!(counter(&telem, "journal_dropped_records") > 0);
    assert!(
        counter(&telem, "journal_writer_restarts") >= 1,
        "the writer never restarted"
    );
    assert!(counter(&telem, "health_degradations") >= 1);
    assert!(
        stats.segments >= 2,
        "a restart opens a fresh segment, saw {}",
        stats.segments
    );
    assert_eq!(
        board.state(ta_live::Component::JournalWriter),
        HealthState::Healthy,
        "the board must report the writer recovered"
    );
    assert!(!board.durability_suspended());
    assert!(board.admission_open());

    // The recovered books reconcile exactly even though a mid-run slice
    // of records was dropped: recovery folds what survived, and every
    // surviving record is a balanced delta.
    let state = recover(&dir).unwrap();
    assert_eq!(
        state.granted_total() as i64 - state.burned_total() as i64,
        state.balances_sum(),
        "recovered books must balance per the conservation law"
    );
    // Dropped records mean recovery can only lag the live run — it must
    // never invent tokens the run didn't see.
    assert!(state.granted_total() <= report.counters.tokens_banked);
    assert!(state.burned_total() <= report.counters.reactive_sent);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn halt_policy_closes_admissions_and_finishes_cleanly() {
    let dir = temp_dir("halt");
    let mut pcfg = PersistConfig::new(&dir);
    pcfg.group_commit = Duration::from_millis(2);
    pcfg.buffer_cap = 32;
    pcfg.faults = FaultPlan::parse("enospc_after:4000").unwrap();

    let telem = LiveTelemetry::new(2, 0, 16);
    let board = HealthBoard::new(OnJournalFail::Halt);
    let cfg = loadgen_cfg(1_200, 31);
    let p = Persistence::open(&pcfg, cfg.clients, 4).unwrap();
    let (report, _) = run_loadgen_durable_supervised_spec(
        StrategySpec::Simple { c: 6 },
        &cfg,
        &p,
        None,
        None,
        Some(&telem),
        &board,
    )
    .unwrap();
    let _ = p.shutdown();

    // Admissions closed at the failure point and never reopened; the
    // run still finished cleanly and conserves.
    assert!(report.conserves(), "halted run broke conservation");
    assert!(!board.admission_open(), "halt must close admissions");
    assert!(!board.abort_requested(), "halt is not exit");
    assert_eq!(
        counter(&telem, "journal_writer_restarts"),
        0,
        "halt must not restart the writer"
    );
    // What made it to disk before the halt still recovers consistently.
    let state = recover(&dir).unwrap();
    assert_eq!(
        state.granted_total() as i64 - state.burned_total() as i64,
        state.balances_sum()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
