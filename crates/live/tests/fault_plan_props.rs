//! Property-style tests for [`FaultPlan::parse`]: the grammar and its
//! `Display` form are exact inverses over the whole plan space, and
//! every malformed spec is rejected with the offending token named.
//!
//! No external property-testing crate — plans are generated from the
//! workspace's own `Xoshiro256pp`, so failures reproduce from the
//! printed seed.

use ta_live::persist::FaultPlan;
use ta_sim::rng::Xoshiro256pp;

/// Draws a random plan, exercising every field independently.
fn random_plan(rng: &mut Xoshiro256pp) -> FaultPlan {
    FaultPlan {
        kill_writer_mid_frame: rng.below(2) == 1,
        drop_fsync: rng.below(2) == 1,
        crash_mid_snapshot: rng.below(2) == 1,
        poison_books: rng.below(2) == 1,
        torn_tail: rng.below(2) == 1,
        corrupt_crc: rng.below(2) == 1,
        corrupt_snapshot: rng.below(2) == 1,
        io_error_n: if rng.below(2) == 1 {
            1 + rng.below(1_000) as u32
        } else {
            0
        },
        enospc_after: if rng.below(2) == 1 {
            1 + rng.below(1_000_000_000)
        } else {
            0
        },
        slow_io_ms: if rng.below(2) == 1 {
            1 + rng.below(10_000)
        } else {
            0
        },
        writer_hang: rng.below(2) == 1,
        granter_stall: rng.below(2) == 1,
    }
}

#[test]
fn display_then_parse_roundtrips_random_plans() {
    let mut rng = Xoshiro256pp::stream(2018, 1);
    for trial in 0..2_000 {
        let plan = random_plan(&mut rng);
        let spec = plan.to_string();
        if plan == FaultPlan::default() {
            assert_eq!(spec, "none", "trial {trial}");
            continue;
        }
        let back = FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("trial {trial}: `{spec}` failed to re-parse: {e}"));
        assert_eq!(back, plan, "trial {trial}: `{spec}` did not round-trip");
    }
}

#[test]
fn parse_is_insensitive_to_whitespace_and_token_order() {
    let mut rng = Xoshiro256pp::stream(2018, 2);
    for trial in 0..500 {
        let plan = random_plan(&mut rng);
        let spec = plan.to_string();
        if plan == FaultPlan::default() {
            continue;
        }
        // Shuffle the token list (Fisher–Yates on the rng) and sprinkle
        // whitespace; the parse must not care.
        let mut toks: Vec<&str> = spec.split(',').collect();
        for i in (1..toks.len()).rev() {
            toks.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let shuffled: Vec<String> = toks.iter().map(|t| format!(" {t} ")).collect();
        let messy = shuffled.join(",");
        let back = FaultPlan::parse(&messy)
            .unwrap_or_else(|e| panic!("trial {trial}: `{messy}` failed: {e}"));
        assert_eq!(back, plan, "trial {trial}: `{messy}` parsed differently");
    }
}

#[test]
fn unknown_modes_and_malformed_arguments_always_name_the_token() {
    let mut rng = Xoshiro256pp::stream(2018, 3);
    // Random garbage tokens never parse, and the error carries the
    // offending token in backticks so the CLI message is actionable.
    for trial in 0..500 {
        let len = 1 + rng.below(12) as usize;
        let tok: String = (0..len)
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect();
        if FaultPlan::MODES.contains(&tok.as_str()) {
            continue; // drew a real bare mode by chance
        }
        let err = FaultPlan::parse(&tok)
            .err()
            .unwrap_or_else(|| panic!("trial {trial}: `{tok}` parsed"));
        assert!(err.contains('`'), "trial {trial}: unquoted error `{err}`");
    }
    // Every parameterised mode rejects missing/zero/garbage arguments;
    // every bare mode rejects any argument at all.
    for mode in ["io_error_n", "enospc_after", "slow_io_ms"] {
        for bad in ["", "0", "-3", "xyz", "1.5"] {
            let spec = format!("{mode}:{bad}");
            assert!(FaultPlan::parse(&spec).is_err(), "`{spec}` parsed");
        }
        assert!(FaultPlan::parse(mode).is_err(), "bare `{mode}` parsed");
    }
    for mode in FaultPlan::MODES {
        if matches!(mode, "io_error_n" | "enospc_after" | "slow_io_ms") {
            continue;
        }
        assert!(FaultPlan::parse(mode).is_ok(), "bare `{mode}` rejected");
        let spec = format!("{mode}:1");
        assert!(FaultPlan::parse(&spec).is_err(), "`{spec}` parsed");
    }
}

#[test]
fn a_poisoned_token_anywhere_rejects_the_whole_list() {
    let mut rng = Xoshiro256pp::stream(2018, 4);
    for trial in 0..300 {
        let plan = random_plan(&mut rng);
        let spec = plan.to_string();
        if plan == FaultPlan::default() {
            continue;
        }
        let mut toks: Vec<String> = spec.split(',').map(str::to_string).collect();
        let at = rng.below(toks.len() as u64 + 1) as usize;
        toks.insert(at.min(toks.len()), "bogus_mode".to_string());
        let poisoned = toks.join(",");
        assert!(
            FaultPlan::parse(&poisoned).is_err(),
            "trial {trial}: `{poisoned}` parsed despite the bogus token"
        );
    }
}
