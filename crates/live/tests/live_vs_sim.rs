//! The acceptance gate of the live runtime: cross-validation against the
//! discrete-event simulator.
//!
//! Under the virtual clock the live runtime must reproduce the
//! simulator's aggregate send/burn/grant counters **exactly** — for
//! every strategy family the paper defines, every worker count, and
//! every account-shard count. Under real time, rates must agree within
//! tolerance while token conservation stays exact.

use ta_live::harness::{
    live_vs_sim_spec, replay_realtime, replay_trace, run_sim_oracle, OracleWorkload,
};
use ta_sim::SimDuration;
use token_account::prelude::*;

/// Every strategy variant the workspace ships.
fn all_specs() -> [StrategySpec; 5] {
    [
        StrategySpec::Proactive,
        StrategySpec::Reactive { k: 2 },
        StrategySpec::Simple { c: 6 },
        StrategySpec::Generalized { a: 3, c: 8 },
        StrategySpec::Randomized { a: 2, c: 6 },
    ]
}

#[test]
fn exact_counter_equality_for_every_strategy_variant() {
    let workload = OracleWorkload::quick(30, 42);
    for spec in all_specs() {
        let cv = live_vs_sim_spec(spec, &workload, 1, 4).unwrap();
        assert!(
            cv.exact_match(),
            "{spec:?}: sim {:?} != live {:?}",
            cv.sim,
            cv.live
        );
        // The workload must actually exercise the decision paths.
        assert!(cv.sim.counters.rounds > 0);
        assert!(cv.sim.counters.requests > 0);
        assert!(cv.sim.counters.conserves(cv.sim.balances_sum));
    }
}

#[test]
fn exact_equality_is_independent_of_workers_and_shards() {
    // Parallel replay must not perturb a single bit of the aggregate:
    // clients partition into disjoint blocks, so any interleaving of
    // workers yields the same per-client trajectories.
    let workload = OracleWorkload::quick(25, 7);
    let strategy = RandomizedTokenAccount::new(2, 6).unwrap();
    let (sim, trace) = run_sim_oracle(strategy, &workload);
    for workers in [1, 2, 3, 8] {
        for shards in [1, 2, 5, 32] {
            let live = replay_trace(strategy, &trace, workers, shards);
            assert_eq!(sim, live, "diverged at workers={workers} shards={shards}");
        }
    }
}

#[test]
fn exact_equality_under_debt_strategy() {
    // The purely reactive reference overdraws (force_spend): the live
    // atomic path must reproduce negative balance sums exactly too.
    let workload = OracleWorkload::quick(15, 5);
    let cv = live_vs_sim_spec(StrategySpec::Reactive { k: 3 }, &workload, 4, 4).unwrap();
    assert!(cv.exact_match());
    assert!(
        cv.live.balances_sum < 0,
        "debt workload should end in the red: {}",
        cv.live.balances_sum
    );
}

#[test]
fn realtime_replay_agrees_distributionally_and_conserves_exactly() {
    // Wall-clock mode: requests replay at scaled wall times while the
    // granter generates rounds live. Scheduling noise moves individual
    // decisions, so only rates are comparable — but the token books must
    // still close exactly, which is the property CI smoke gates on.
    let workload = OracleWorkload {
        clients: 200,
        delta: SimDuration::from_secs(10),
        injection_period: SimDuration::from_millis(50),
        duration: SimDuration::from_secs(300),
        useful_probability: 0.8,
        seed: 13,
    };
    let strategy = RandomizedTokenAccount::new(2, 6).unwrap();
    let (sim, trace) = run_sim_oracle(strategy, &workload);
    // 300 virtual seconds at 150x ≈ 2 wall seconds.
    let rt = replay_realtime(strategy, &trace, 2, 8, workload.delta, 150.0);
    assert!(
        rt.conserves(),
        "realtime books must close: {:?}",
        rt.counters
    );
    assert!(rt.counters.rounds > 0, "granter never fired");

    // Distributional agreement: proactive sends per round decision and
    // reactive sends per request, live vs sim, within a generous
    // tolerance (the live granter uses its own stream and wall-clock
    // phase, so only the rates are comparable).
    let ratio = |a: u64, b: u64| a as f64 / b.max(1) as f64;
    let sim_proactive = ratio(sim.counters.proactive_sent, sim.counters.rounds);
    let live_proactive = ratio(rt.counters.proactive_sent, rt.counters.rounds);
    assert!(
        (sim_proactive - live_proactive).abs() <= 0.15 + 0.5 * sim_proactive,
        "proactive rate diverged: sim {sim_proactive:.3} vs live {live_proactive:.3}"
    );
    let sim_reactive = ratio(sim.counters.reactive_sent, sim.counters.requests);
    let live_reactive = ratio(rt.counters.reactive_sent, rt.counters.requests);
    assert!(
        (sim_reactive - live_reactive).abs() <= 0.15 + 0.5 * sim_reactive,
        "reactive rate diverged: sim {sim_reactive:.3} vs live {live_reactive:.3}"
    );
    // Every request of the trace was replayed (requests are exact even
    // under real time; only their timing is approximate).
    assert_eq!(rt.counters.requests, sim.counters.requests);
}
