//! Concurrent account semantics under adversarial contention.
//!
//! Many threads hammer a *small* set of shared accounts — the worst case
//! for the CAS spend path — and the invariants the sequential
//! [`TokenAccount`](token_account::account::TokenAccount) guarantees must
//! survive verbatim:
//!
//! * **Non-negativity**: `ShardedAccounts` never admits a spend the
//!   sequential account would refuse — a conditional spend can never
//!   drive a balance below zero, no matter how grants and spends
//!   interleave.
//! * **Conservation**: granted − burned == final balances, exactly
//!   (the `balances_sum`-style invariant the protocol layer checks).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

use ta_live::counters::LiveCounters;
use ta_live::runtime::LiveRuntime;
use ta_sim::rng::Xoshiro256pp;
use token_account::prelude::*;

#[test]
fn contended_spends_never_overdraw_and_conserve() {
    // 8 clients, 8 threads: every account is contended by every thread
    // through the runtime's admit path, while one granter thread sweeps
    // rounds. A watcher polls balances for negativity the whole time.
    const CLIENTS: usize = 8;
    const THREADS: usize = 8;
    const DECISIONS_PER_THREAD: usize = 30_000;

    let runtime = LiveRuntime::new(GeneralizedTokenAccount::new(2, 10).unwrap(), CLIENTS, 4);
    let stop = AtomicBool::new(false);
    let start = Barrier::new(THREADS + 2);

    let (worker_counters, granter_counters) = std::thread::scope(|scope| {
        let watcher = {
            let runtime = &runtime;
            let stop = &stop;
            let start = &start;
            scope.spawn(move || {
                start.wait();
                let mut polls = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for c in 0..CLIENTS {
                        let b = runtime.accounts().account(c).balance();
                        assert!(b >= 0, "balance of client {c} went negative: {b}");
                    }
                    polls += 1;
                }
                polls
            })
        };
        let granter = {
            let runtime = &runtime;
            let stop = &stop;
            let start = &start;
            scope.spawn(move || {
                start.wait();
                let mut rng = Xoshiro256pp::stream(99, 0);
                let mut counters = LiveCounters::default();
                while !stop.load(Ordering::Acquire) {
                    for s in 0..runtime.accounts().shard_count() {
                        runtime.round_sweep(s, &mut rng, &mut counters, |_| {});
                    }
                }
                counters
            })
        };
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let runtime = &runtime;
                let start = &start;
                scope.spawn(move || {
                    start.wait();
                    let mut rng = Xoshiro256pp::stream(7, t as u64);
                    let mut counters = LiveCounters::default();
                    for i in 0..DECISIONS_PER_THREAD {
                        let client = (i + t) % CLIENTS;
                        let u = Usefulness::from_bool(rng.chance(0.9));
                        runtime.admit(client, u, &mut rng, &mut counters);
                    }
                    counters
                })
            })
            .collect();
        let mut merged = LiveCounters::default();
        for h in workers {
            merged.merge(&h.join().unwrap());
        }
        stop.store(true, Ordering::Release);
        let granter_counters = granter.join().unwrap();
        let polls = watcher.join().unwrap();
        assert!(polls > 0, "watcher must have observed the run");
        (merged, granter_counters)
    });

    let mut total = worker_counters;
    total.merge(&granter_counters);
    assert!(total.is_consistent());
    assert_eq!(
        total.requests as usize,
        THREADS * DECISIONS_PER_THREAD,
        "every decision must be accounted"
    );
    // Non-negativity after the dust settles.
    for c in 0..CLIENTS {
        assert!(runtime.accounts().account(c).balance() >= 0);
    }
    // The balances_sum-style conservation identity, exact under
    // contention: every banked token is on an account or was burned.
    assert!(
        total.conserves(runtime.balances_sum()),
        "books must close exactly: {total:?} vs balances {}",
        runtime.balances_sum()
    );
    // The workload really contended: spends happened on all accounts.
    assert!(total.reactive_sent > 0);
}

#[test]
fn concurrent_totals_match_a_sequential_replay_budget() {
    // Sequential upper bound: a run can never burn more tokens than were
    // banked (the sequential account's refusal rule, lifted to totals).
    // Hammer with pure spends plus interleaved grants and check the
    // global budget inequality the sequential semantics implies.
    const CLIENTS: usize = 4;
    let runtime = LiveRuntime::new(SimpleTokenAccount::new(100), CLIENTS, 2);
    let totals = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let runtime = &runtime;
                scope.spawn(move || {
                    let mut rng = Xoshiro256pp::stream(31, t as u64);
                    let mut counters = LiveCounters::default();
                    for i in 0..20_000usize {
                        let client = (i * 7 + t) % CLIENTS;
                        if rng.chance(0.5) {
                            runtime.round(client, &mut rng, &mut counters);
                        } else {
                            runtime.admit(client, Usefulness::Useful, &mut rng, &mut counters);
                        }
                    }
                    counters
                })
            })
            .collect();
        let mut merged = LiveCounters::default();
        for h in handles {
            merged.merge(&h.join().unwrap());
        }
        merged
    });
    assert!(
        totals.reactive_sent <= totals.tokens_banked,
        "burned more ({}) than was ever banked ({}) — a spend was \
         admitted that the sequential account would refuse",
        totals.reactive_sent,
        totals.tokens_banked
    );
    assert!(totals.conserves(runtime.balances_sum()));
    assert!(runtime.balances_sum() >= 0);
}
