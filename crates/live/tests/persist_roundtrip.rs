//! Durability round-trips: journalled runs → recovery must be exact.
//!
//! The driver here runs real concurrent traffic (workers calling
//! `admit_journaled`, a granter calling `round_sweep_journaled`, a
//! snapshotter freezing shards mid-burst) and then checks the strongest
//! possible property: after a clean shutdown, `recover` reproduces
//! every single client balance bit-for-bit; after a simulated crash or
//! an injected fault, recovery either equals the fold of the surviving
//! prefix (checked via the conservation books) or fails loudly.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use ta_live::persist::{recover, FaultPlan, PersistConfig, Persistence, RecoveryError};
use ta_live::{LiveCounters, LiveRuntime};
use ta_sim::rng::Xoshiro256pp;
use token_account::prelude::*;
use token_account::Usefulness;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ta-persist-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

static COUNTER: AtomicU64 = AtomicU64::new(0);

struct DriveOutcome {
    balances: Vec<i64>,
    counters: LiveCounters,
    persistence: Option<Persistence>,
}

/// Drives `workers` admit threads + one granter + one snapshotter over
/// a journalled runtime, returning the final per-client balances.
fn drive(
    dir: &Path,
    clients: usize,
    shards: usize,
    workers: usize,
    iters: usize,
    faults: FaultPlan,
    snapshots: usize,
) -> DriveOutcome {
    let mut cfg = PersistConfig::new(dir);
    cfg.group_commit = Duration::from_millis(2);
    cfg.buffer_cap = 32;
    cfg.faults = faults;
    let rt = LiveRuntime::new(RandomizedTokenAccount::new(2, 6).unwrap(), clients, shards);
    let shard_count = rt.accounts().shard_count();
    let p = Persistence::open(&cfg, clients, shard_count).unwrap();

    let counters = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let rt = &rt;
            let mut j = p.handle();
            handles.push(scope.spawn(move || {
                let mut rng = Xoshiro256pp::stream(99, 1 + w as u64);
                let mut c = LiveCounters::default();
                for i in 0..iters {
                    let client = rng.below(clients as u64) as usize;
                    let useful = Usefulness::from_bool(i % 4 != 0);
                    rt.admit_journaled(client, useful, &mut rng, &mut c, &mut j);
                }
                c
            }));
        }
        let granter = {
            let rt = &rt;
            let mut j = p.handle();
            scope.spawn(move || {
                let mut rng = Xoshiro256pp::stream(99, u64::MAX);
                let mut c = LiveCounters::default();
                for _ in 0..8 {
                    for s in 0..rt.accounts().shard_count() {
                        rt.round_sweep_journaled(s, &mut rng, &mut c, |_| {}, &mut j);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                c
            })
        };
        let snapper = {
            let rt = &rt;
            let p = &p;
            scope.spawn(move || {
                for _ in 0..snapshots {
                    std::thread::sleep(Duration::from_millis(3));
                    let _ = p.snapshot(rt.accounts());
                }
            })
        };
        let mut total = LiveCounters::default();
        for h in handles {
            total.merge(&h.join().unwrap());
        }
        total.merge(&granter.join().unwrap());
        snapper.join().unwrap();
        total
    });

    DriveOutcome {
        balances: (0..clients)
            .map(|c| rt.accounts().account(c).balance())
            .collect(),
        counters,
        persistence: Some(p),
    }
}

#[test]
fn clean_shutdown_recovers_every_balance_exactly() {
    for (workers, shards) in [(1, 1), (1, 4), (4, 4), (4, 16)] {
        let dir = temp_dir("clean");
        let mut out = drive(&dir, 200, shards, workers, 4_000, FaultPlan::default(), 3);
        let stats = out.persistence.take().unwrap().shutdown().unwrap();
        assert!(stats.records > 0, "nothing was journalled");

        let state = recover(&dir).unwrap();
        assert_eq!(
            state.balances, out.balances,
            "workers={workers} shards={shards}: balances diverged"
        );
        assert!(
            state.truncations.is_empty(),
            "clean shutdown must not truncate"
        );
        // The books equal the live counters: every banked token was a
        // +1 grant record, every reactive send a negative delta.
        assert_eq!(state.granted_total(), out.counters.tokens_banked);
        assert_eq!(state.burned_total(), out.counters.reactive_sent);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn resume_after_recovery_continues_the_books() {
    let dir = temp_dir("resume");
    let mut out = drive(&dir, 100, 4, 2, 2_000, FaultPlan::default(), 2);
    out.persistence.take().unwrap().shutdown().unwrap();

    let state = recover(&dir).unwrap();
    let cfg = PersistConfig::new(&dir);
    let p = Persistence::resume(&cfg, &state).unwrap();
    let rt = LiveRuntime::from_recovered(SimpleTokenAccount::new(5), &state);
    assert_eq!(rt.balances_sum(), state.balances_sum());

    // Drive a little more traffic on the resumed domain.
    let mut j = p.handle();
    let mut rng = Xoshiro256pp::stream(7, 1);
    let mut c = LiveCounters::default();
    for s in 0..rt.accounts().shard_count() {
        rt.round_sweep_journaled(s, &mut rng, &mut c, |_| {}, &mut j);
    }
    for i in 0..500 {
        rt.admit_journaled(i % 100, Usefulness::Useful, &mut rng, &mut c, &mut j);
    }
    drop(j);
    p.shutdown().unwrap();

    let state2 = recover(&dir).unwrap();
    let want: Vec<i64> = (0..100)
        .map(|cl| rt.accounts().account(cl).balance())
        .collect();
    assert_eq!(state2.balances, want, "second-generation balances diverged");
    assert!(state2.truncations.is_empty());
    // Sequence numbers must not have collided: the second generation's
    // books extend the first's.
    assert_eq!(
        state2.granted_total(),
        state.granted_total() + c.tokens_banked
    );
    assert_eq!(
        state2.burned_total(),
        state.burned_total() + c.reactive_sent
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn simulated_crash_recovers_surviving_prefix() {
    let dir = temp_dir("crash");
    let mut out = drive(&dir, 150, 4, 2, 3_000, FaultPlan::default(), 2);
    // Kill the writer: pending (unwritten) batches are discarded.
    out.persistence.take().unwrap().simulate_crash();

    let state = recover(&dir).unwrap();
    // The fold of the surviving prefix conserves by construction; what
    // recovery must guarantee is that it *verified* that and that the
    // books never exceed what the live run produced.
    assert_eq!(
        state.granted_total() as i64 - state.burned_total() as i64,
        state.balances_sum()
    );
    assert!(state.granted_total() <= out.counters.tokens_banked);
    assert!(state.burned_total() <= out.counters.reactive_sent);
    for (c, (&rec, &live)) in state.balances.iter().zip(&out.balances).enumerate() {
        // Per-client balances may lag the live state (lost tail) but a
        // recovered balance never *invents* tokens the run didn't see.
        assert!(
            rec <= live + state.burned_total() as i64,
            "client {c}: recovered {rec} vs live {live}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn writer_killed_mid_frame_leaves_recoverable_torn_tail() {
    let dir = temp_dir("midframe");
    let faults = FaultPlan {
        kill_writer_mid_frame: true,
        ..FaultPlan::default()
    };
    let mut out = drive(&dir, 100, 4, 2, 4_000, faults, 0);
    // The writer died on its own; shutdown just reaps it.
    let _ = out.persistence.take().unwrap().shutdown();

    let state = recover(&dir).unwrap();
    assert!(
        state
            .truncations
            .iter()
            .any(|t| t.to_string().contains("torn tail")),
        "expected a torn-tail truncation, got {:?}",
        state.truncations
    );
    assert_eq!(
        state.granted_total() as i64 - state.burned_total() as i64,
        state.balances_sum()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mid_snapshot_crash_falls_back() {
    let dir = temp_dir("midsnap");
    let faults = FaultPlan {
        crash_mid_snapshot: true,
        ..FaultPlan::default()
    };
    let mut out = drive(&dir, 100, 4, 2, 2_000, faults, 3);
    out.persistence.take().unwrap().shutdown().unwrap();

    let state = recover(&dir).unwrap();
    // The partial tmp is reported, never loaded.
    assert!(
        state
            .truncations
            .iter()
            .any(|t| t.to_string().contains("tmp")),
        "expected an abandoned-tmp report, got {:?}",
        state.truncations
    );
    assert_eq!(state.snapshot_id, None, "no snapshot ever completed");
    assert_eq!(
        state.balances, out.balances,
        "journal-only recovery must be exact"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn poisoned_books_fail_loudly() {
    let dir = temp_dir("poison");
    let faults = FaultPlan {
        poison_books: true,
        ..FaultPlan::default()
    };
    let mut out = drive(&dir, 100, 4, 2, 2_000, faults, 2);
    out.persistence.take().unwrap().shutdown().unwrap();

    match recover(&dir) {
        Err(RecoveryError::Conservation { detail }) => {
            assert!(
                detail.contains("shard"),
                "diagnosis names the shard: {detail}"
            );
        }
        other => panic!("poisoned books must trip the conservation gate, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn post_mortem_mutilations_recover_or_fall_back() {
    // torn_tail and corrupt_crc on the newest segment: the prefix
    // survives and conserves. corrupt_snapshot: recovery falls back to
    // an older snapshot (or zero) and still conserves.
    for mode in ["torn_tail", "corrupt_crc", "corrupt_snapshot"] {
        let dir = temp_dir(mode);
        let mut out = drive(&dir, 120, 4, 2, 3_000, FaultPlan::default(), 2);
        out.persistence.take().unwrap().shutdown().unwrap();

        let plan = FaultPlan::parse(mode).unwrap();
        let wounds = plan.apply_post_mortem(&dir).unwrap();
        assert!(!wounds.is_empty(), "{mode}: nothing was mutilated");

        let state = recover(&dir).unwrap_or_else(|e| panic!("{mode}: recovery refused: {e}"));
        assert_eq!(
            state.granted_total() as i64 - state.burned_total() as i64,
            state.balances_sum(),
            "{mode}: recovered books must balance"
        );
        assert!(
            !state.truncations.is_empty(),
            "{mode}: the wound must be reported"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn retention_keeps_two_snapshots_and_retires_segments() {
    let dir = temp_dir("retain");
    let mut out = drive(&dir, 100, 4, 2, 3_000, FaultPlan::default(), 5);
    out.persistence.take().unwrap().shutdown().unwrap();

    let snaps = ta_live::persist::snapshot::list_snapshot_files(&dir).unwrap();
    assert!(
        snaps.len() <= 2,
        "retention must keep at most two snapshots, found {}",
        snaps.len()
    );
    if snaps.len() == 2 {
        // Segments below the older snapshot's first_segment are gone.
        let older = ta_live::persist::snapshot::load(&snaps[0].1).unwrap();
        let segs = ta_live::persist::journal::list_segments(&dir).unwrap();
        assert!(
            segs.iter().all(|&(id, _)| id >= older.first_segment),
            "covered segments must be retired"
        );
    }
    let state = recover(&dir).unwrap();
    assert_eq!(state.balances, out.balances, "retention broke recovery");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn durable_loadgen_runs_and_recovers() {
    use ta_live::{run_loadgen_durable, ArrivalMode, LoadGenConfig};

    let dir = temp_dir("loadgen");
    let cfg = LoadGenConfig {
        clients: 2_000,
        workers: 2,
        account_shards: 8,
        duration: Duration::from_millis(150),
        mode: ArrivalMode::Closed,
        useful_probability: 0.8,
        burst: None,
        round_period: Some(Duration::from_millis(20)),
        seed: 11,
    };
    let mut pcfg = PersistConfig::new(&dir);
    pcfg.group_commit = Duration::from_millis(5);
    let p = Persistence::open(&pcfg, cfg.clients, 8).unwrap();
    let (report, durable) = run_loadgen_durable(
        RandomizedTokenAccount::new(2, 6).unwrap(),
        &cfg,
        &p,
        Some(Duration::from_millis(30)),
        None,
    );
    let stats = p.shutdown().unwrap();
    assert!(
        report.conserves(),
        "durable run broke conservation: {:?}",
        report.counters
    );
    assert!(report.counters.requests > 0);
    assert!(stats.records > 0);
    assert!(durable.snapshots >= 1, "snapshotter never ran");

    let state = recover(&dir).unwrap();
    assert!(state.truncations.is_empty());
    assert_eq!(state.balances_sum(), report.balances_sum);
    assert_eq!(state.granted_total(), report.counters.tokens_banked);
    assert_eq!(state.burned_total(), report.counters.reactive_sent);

    // Resume the same domain and keep going: conservation must hold
    // across the generation boundary.
    let p2 = Persistence::resume(&pcfg, &state).unwrap();
    let (report2, _) = run_loadgen_durable(
        RandomizedTokenAccount::new(2, 6).unwrap(),
        &cfg,
        &p2,
        None,
        Some(&state),
    );
    p2.shutdown().unwrap();
    assert_eq!(report2.initial_balances_sum, state.balances_sum());
    assert!(report2.conserves(), "resumed run broke conservation");
    let state2 = recover(&dir).unwrap();
    assert_eq!(state2.balances_sum(), report2.balances_sum);
    std::fs::remove_dir_all(&dir).unwrap();
}
