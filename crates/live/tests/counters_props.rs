//! Property tests: counter and histogram merging must equal serial
//! recording for *arbitrary* partitions of the event stream.
//!
//! Recovery compares counters exactly (`granted_total ==
//! tokens_banked`), so the merge operations the report path relies on
//! must be exact sums — not approximately right — no matter how events
//! were interleaved across workers. These properties pin that down:
//! partition any event sequence across any number of streams, merge in
//! any order, and the result equals folding the whole sequence into one
//! accumulator.

use proptest::prelude::*;

use ta_live::{LatencyHistogram, LiveCounters};

/// One admission event, as the runtime counts them.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A round decision: proactive send (`true`) or banked token.
    Round(bool),
    /// A request decision: reactive burst of this size (0 = held).
    Request(u16),
}

fn apply(c: &mut LiveCounters, e: Ev) {
    match e {
        Ev::Round(true) => {
            c.rounds += 1;
            c.proactive_sent += 1;
        }
        Ev::Round(false) => {
            c.rounds += 1;
            c.tokens_banked += 1;
        }
        Ev::Request(0) => {
            c.requests += 1;
            c.reactive_held += 1;
        }
        Ev::Request(x) => {
            c.requests += 1;
            c.reactive_sent += x as u64;
        }
    }
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        any::<bool>().prop_map(Ev::Round),
        (0u16..32).prop_map(Ev::Request),
    ]
}

proptest! {
    /// Partition an event stream over up to 8 workers, merge the
    /// per-worker counters in an arbitrary order: every field equals
    /// the serial fold, and consistency/conservation are preserved.
    #[test]
    fn counters_merge_equals_serial_sum(
        events in proptest::collection::vec((ev_strategy(), 0usize..8), 0..400),
        order in any::<u64>(),
    ) {
        let mut serial = LiveCounters::default();
        let mut streams = vec![LiveCounters::default(); 8];
        for &(e, s) in &events {
            apply(&mut serial, e);
            apply(&mut streams[s], e);
        }
        // Merge in a pseudo-shuffled order derived from `order`.
        let mut idx: Vec<usize> = (0..streams.len()).collect();
        let mut x = order;
        for i in (1..idx.len()).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            idx.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let mut merged = LiveCounters::default();
        for i in idx {
            merged.merge(&streams[i]);
        }
        prop_assert_eq!(merged, serial);
        prop_assert!(merged.is_consistent());
        // Conservation transports through the merge: the books close
        // against the sum the serial fold implies.
        let implied = serial.tokens_banked as i64 - serial.reactive_sent as i64;
        prop_assert!(merged.conserves(implied));
        prop_assert_eq!(merged.total_sent(), serial.total_sent());
    }

    /// Histogram merging over an arbitrary partition equals recording
    /// everything into one histogram: count, max, mean, and every
    /// percentile agree exactly.
    #[test]
    fn histogram_merge_equals_serial_recording(
        samples in proptest::collection::vec((0u64..1 << 40, 0usize..6), 0..400),
        qs in proptest::collection::vec(0.0f64..1.001, 1..8),
    ) {
        let mut whole = LatencyHistogram::new();
        let mut parts = vec![LatencyHistogram::new(); 6];
        for &(v, p) in &samples {
            whole.record(v);
            parts[p].record(v);
        }
        let mut merged = LatencyHistogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.max(), whole.max());
        // Same integer sum and count → bit-identical mean.
        prop_assert_eq!(merged.mean().to_bits(), whole.mean().to_bits());
        for &q in &qs {
            prop_assert_eq!(merged.percentile(q), whole.percentile(q));
        }
    }
}

/// The same property exercised with *real* concurrent recording: each
/// thread owns its accumulator (exactly the load-generator topology),
/// and the post-join merge equals the serial fold of all events.
#[test]
fn concurrent_recording_merges_to_serial_sum() {
    let events_of = |t: u64| -> Vec<(Ev, u64)> {
        let mut x = t.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..20_000)
            .map(|i| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                let ev = match x % 4 {
                    0 => Ev::Round(x & 16 != 0),
                    1 => Ev::Request(0),
                    _ => Ev::Request((x % 9 + 1) as u16),
                };
                (ev, x % (1 << 30))
            })
            .collect()
    };

    let joined: Vec<(LiveCounters, LatencyHistogram)> = std::thread::scope(|scope| {
        (0..4u64)
            .map(|t| {
                scope.spawn(move || {
                    let mut c = LiveCounters::default();
                    let mut h = LatencyHistogram::new();
                    for (e, sample) in events_of(t) {
                        apply(&mut c, e);
                        h.record(sample);
                    }
                    (c, h)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });

    let mut merged_c = LiveCounters::default();
    let mut merged_h = LatencyHistogram::new();
    for (c, h) in &joined {
        merged_c.merge(c);
        merged_h.merge(h);
    }

    let mut serial_c = LiveCounters::default();
    let mut serial_h = LatencyHistogram::new();
    for t in 0..4 {
        for (e, sample) in events_of(t) {
            apply(&mut serial_c, e);
            serial_h.record(sample);
        }
    }

    assert_eq!(merged_c, serial_c);
    assert!(merged_c.is_consistent());
    assert_eq!(merged_h.count(), serial_h.count());
    assert_eq!(merged_h.max(), serial_h.max());
    assert_eq!(merged_h.mean().to_bits(), serial_h.mean().to_bits());
    for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
        assert_eq!(merged_h.percentile(q), serial_h.percentile(q));
    }
}
