//! Restart path: snapshot + journal tail → verified account state.
//!
//! [`recover`] never serves a silently-wrong state. Its contract:
//!
//! 1. **Pick a base.** Load the newest CRC-valid snapshot, falling back
//!    past torn, corrupt, or partially-written files (each skip is
//!    reported as a [`Truncation`]). No valid snapshot → start from
//!    zero balances with zero watermarks.
//! 2. **Replay the tail.** Scan every journal segment in id order;
//!    apply each record whose `seq` is at or above its shard's snapshot
//!    watermark (deltas on distinct sequence numbers commute, so order
//!    within a shard is irrelevant; duplicates cannot exist because the
//!    sequence is stamped once per record). The first torn or corrupt
//!    frame ends the usable journal: later frames — even valid ones —
//!    are dropped and reported, because the gap makes their prefix
//!    unknowable.
//! 3. **Verify conservation.** For every shard the recovered books must
//!    balance exactly: `granted − burned == Σ balances`, and the same
//!    globally. A mismatch is [`RecoveryError::Conservation`] — the
//!    caller must refuse to serve.
//!
//! The recovered state is exactly the fold of the surviving record
//! prefix — the acceptance oracle the crash tests check against.

use std::fmt;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

use super::journal::{self, FrameError};
use super::{read_manifest, snapshot, Manifest};

/// One event where recovery discarded data it could not trust.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Truncation {
    /// The file involved.
    pub file: PathBuf,
    /// What was wrong.
    pub reason: TruncationReason,
}

/// Why a file (or its tail) was discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TruncationReason {
    /// A journal segment ended inside a frame; `kept` bytes survive.
    TornTail {
        /// Usable prefix length in bytes.
        kept: u64,
    },
    /// A journal frame failed its CRC (or had a bad magic); the rest of
    /// the journal is dropped.
    CorruptFrame {
        /// Usable prefix length in bytes.
        kept: u64,
    },
    /// A later journal segment was ignored because an earlier one was
    /// cut short.
    UnreachableSegment,
    /// A snapshot file failed to load and was skipped.
    BadSnapshot {
        /// The loader's diagnosis.
        error: String,
    },
    /// A leftover `.tmp` file from an interrupted atomic write.
    AbandonedTmp,
}

impl fmt::Display for Truncation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = self.file.file_name().unwrap_or_default().to_string_lossy();
        match &self.reason {
            TruncationReason::TornTail { kept } => {
                write!(f, "{name}: torn tail, kept {kept} bytes")
            }
            TruncationReason::CorruptFrame { kept } => {
                write!(f, "{name}: corrupt frame, kept {kept} bytes")
            }
            TruncationReason::UnreachableSegment => {
                write!(f, "{name}: unreachable past an earlier truncation")
            }
            TruncationReason::BadSnapshot { error } => write!(f, "{name}: {error}"),
            TruncationReason::AbandonedTmp => write!(f, "{name}: abandoned tmp file"),
        }
    }
}

/// A fully-verified recovered state, ready for
/// [`Persistence::resume`](super::Persistence::resume) and
/// [`LiveRuntime`](crate::runtime::LiveRuntime) reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredState {
    /// Client count (from the manifest).
    pub clients: usize,
    /// Shard count (from the manifest).
    pub shards: usize,
    /// All balances, in client order.
    pub balances: Vec<i64>,
    /// Per-shard cumulative granted tokens.
    pub granted: Vec<u64>,
    /// Per-shard cumulative burned tokens.
    pub burned: Vec<u64>,
    /// Per-shard next sequence number (for resuming the journal).
    pub next_seq: Vec<u64>,
    /// Snapshot the state was based on (`None` = journal-only).
    pub snapshot_id: Option<u64>,
    /// Journal records replayed on top of the snapshot.
    pub replayed: u64,
    /// Data recovery had to discard (torn tails, corrupt frames, bad
    /// snapshots). Empty after a clean shutdown.
    pub truncations: Vec<Truncation>,
}

impl RecoveredState {
    /// Sum of all recovered balances.
    pub fn balances_sum(&self) -> i64 {
        self.balances.iter().sum()
    }

    /// Total granted across shards.
    pub fn granted_total(&self) -> u64 {
        self.granted.iter().sum()
    }

    /// Total burned across shards.
    pub fn burned_total(&self) -> u64 {
        self.burned.iter().sum()
    }
}

/// Why recovery refused to produce a state.
#[derive(Debug)]
pub enum RecoveryError {
    /// The recovered books do not balance: serving them would violate
    /// token conservation.
    Conservation {
        /// Human-readable diagnosis (which shard, expected vs got).
        detail: String,
    },
    /// The directory is not a recoverable domain (missing/corrupt
    /// manifest) or another I/O failure.
    Io(io::Error),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Conservation { detail } => {
                write!(f, "conservation mismatch: {detail}")
            }
            RecoveryError::Io(e) => write!(f, "recovery i/o: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// Recovers the durability domain in `dir`.
///
/// # Errors
///
/// [`RecoveryError::Conservation`] if the recovered books do not
/// balance (the caller must not serve); [`RecoveryError::Io`] if the
/// manifest is missing/corrupt or the filesystem fails. Torn tails and
/// corrupt files are *not* errors — they are truncations, reported in
/// [`RecoveredState::truncations`].
pub fn recover(dir: &Path) -> Result<RecoveredState, RecoveryError> {
    let manifest = read_manifest(dir)?;
    let mut truncations = Vec::new();

    // Leftover tmp files are evidence of an interrupted atomic write;
    // report (and ignore) them.
    for entry in std::fs::read_dir(dir).map_err(RecoveryError::Io)? {
        let entry = entry.map_err(RecoveryError::Io)?;
        if entry.file_name().to_string_lossy().ends_with(".tmp") {
            truncations.push(Truncation {
                file: entry.path(),
                reason: TruncationReason::AbandonedTmp,
            });
        }
    }

    let base = pick_base(dir, &manifest, &mut truncations)?;
    let (snapshot_id, mut balances, mut granted, mut burned, watermarks) = base;
    let mut next_seq = watermarks.clone();

    // Replay every surviving record with seq >= its shard's watermark.
    let geometry = ShardGeometry::new(manifest.clients, manifest.shards);
    let mut replayed = 0u64;
    let mut dead = false;
    for (_, path) in journal::list_segments(dir)? {
        if dead {
            truncations.push(Truncation {
                file: path,
                reason: TruncationReason::UnreachableSegment,
            });
            continue;
        }
        let mut bytes = Vec::new();
        std::fs::File::open(&path)?.read_to_end(&mut bytes)?;
        let scan = journal::scan_segment(&bytes);
        for frame in &scan.frames {
            let s = frame.shard as usize;
            if s >= manifest.shards {
                // A frame for a shard the manifest doesn't know cannot
                // be applied; treat like corruption.
                truncations.push(Truncation {
                    file: path.clone(),
                    reason: TruncationReason::CorruptFrame {
                        kept: scan.valid_len as u64,
                    },
                });
                dead = true;
                break;
            }
            match &frame.payload {
                journal::FramePayload::Deltas(recs) => {
                    for r in recs {
                        if r.seq < watermarks[s] {
                            continue; // already inside the snapshot
                        }
                        let c = r.client as usize;
                        assert!(
                            geometry.shard_of(c) == s && c < manifest.clients,
                            "journal record for client {c} outside shard {s}"
                        );
                        balances[c] += r.delta as i64;
                        if r.delta >= 0 {
                            granted[s] += r.delta as u64;
                        } else {
                            burned[s] += r.delta.unsigned_abs() as u64;
                        }
                        next_seq[s] = next_seq[s].max(r.seq + 1);
                        replayed += 1;
                    }
                }
                journal::FramePayload::Ranges(recs) => {
                    let shard_range = geometry.shard_range(s);
                    for r in recs {
                        if r.seq < watermarks[s] {
                            continue;
                        }
                        let lo = r.lo as usize;
                        let hi = lo + r.len as usize;
                        assert!(
                            lo >= shard_range.start && hi <= shard_range.end,
                            "range grant [{lo}, {hi}) outside shard {s}"
                        );
                        for b in &mut balances[lo..hi] {
                            *b += 1;
                        }
                        granted[s] += u64::from(r.len);
                        next_seq[s] = next_seq[s].max(r.seq + 1);
                        replayed += 1;
                    }
                }
            }
        }
        if dead {
            continue; // a bad shard id already condemned this segment
        }
        if let Some(err) = scan.error {
            truncations.push(Truncation {
                file: path,
                reason: match err {
                    FrameError::Torn => TruncationReason::TornTail {
                        kept: scan.valid_len as u64,
                    },
                    FrameError::BadMagic | FrameError::BadCrc => TruncationReason::CorruptFrame {
                        kept: scan.valid_len as u64,
                    },
                },
            });
            dead = true;
        }
    }

    // Conservation: per shard and globally, granted − burned must equal
    // the sum of balances. This must hold by construction of the fold —
    // if it doesn't, the files lied (bit rot, poisoned books) and the
    // state must not be served.
    for s in 0..manifest.shards {
        let range = geometry.shard_range(s);
        let sum: i64 = balances[range].iter().sum();
        let books = granted[s] as i64 - burned[s] as i64;
        if books != sum {
            return Err(RecoveryError::Conservation {
                detail: format!(
                    "shard {s}: granted {} − burned {} = {books} but balances sum to {sum}",
                    granted[s], burned[s]
                ),
            });
        }
    }

    Ok(RecoveredState {
        clients: manifest.clients,
        shards: manifest.shards,
        balances,
        granted,
        burned,
        next_seq,
        snapshot_id,
        replayed,
        truncations,
    })
}

type Base = (Option<u64>, Vec<i64>, Vec<u64>, Vec<u64>, Vec<u64>);

/// Loads the newest valid snapshot (recording a truncation per skipped
/// file) or falls back to the zero state.
fn pick_base(
    dir: &Path,
    manifest: &Manifest,
    truncations: &mut Vec<Truncation>,
) -> Result<Base, RecoveryError> {
    let mut files = snapshot::list_snapshot_files(dir)?;
    while let Some((_, path)) = files.pop() {
        match snapshot::load(&path) {
            Ok(snap) => {
                if snap.clients as usize != manifest.clients || snap.shards.len() != manifest.shards
                {
                    truncations.push(Truncation {
                        file: path,
                        reason: TruncationReason::BadSnapshot {
                            error: "geometry disagrees with manifest".into(),
                        },
                    });
                    continue;
                }
                let mut balances = Vec::with_capacity(manifest.clients);
                let mut granted = Vec::with_capacity(manifest.shards);
                let mut burned = Vec::with_capacity(manifest.shards);
                let mut watermarks = Vec::with_capacity(manifest.shards);
                for sh in &snap.shards {
                    balances.extend_from_slice(&sh.balances);
                    granted.push(sh.granted);
                    burned.push(sh.burned);
                    watermarks.push(sh.watermark);
                }
                return Ok((Some(snap.id), balances, granted, burned, watermarks));
            }
            Err(e) => {
                truncations.push(Truncation {
                    file: path,
                    reason: TruncationReason::BadSnapshot {
                        error: e.to_string(),
                    },
                });
            }
        }
    }
    Ok((
        None,
        vec![0; manifest.clients],
        vec![0; manifest.shards],
        vec![0; manifest.shards],
        vec![0; manifest.shards],
    ))
}

/// The client→shard partition rule of
/// [`ShardedAccounts`](crate::accounts::ShardedAccounts), reproduced
/// from `(clients, shards)` alone so recovery needs no live map.
struct ShardGeometry {
    block: usize,
    n: usize,
    shards: usize,
}

impl ShardGeometry {
    fn new(n: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, n.max(1));
        ShardGeometry {
            block: n.div_ceil(shards).max(1),
            n,
            shards,
        }
    }

    fn shard_of(&self, client: usize) -> usize {
        client / self.block
    }

    fn shard_range(&self, s: usize) -> std::ops::Range<usize> {
        let lo = (s * self.block).min(self.n);
        let hi = ((s + 1) * self.block).min(self.n);
        debug_assert!(s < self.shards);
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::super::{write_manifest, Manifest};
    use super::*;
    use crate::accounts::ShardedAccounts;

    #[test]
    fn geometry_matches_sharded_accounts() {
        for (n, shards) in [
            (10usize, 4usize),
            (10, 1),
            (1, 8),
            (7, 7),
            (64, 3),
            (100, 16),
        ] {
            let a = ShardedAccounts::new(n, shards);
            let g = ShardGeometry::new(n, shards);
            assert_eq!(g.shards, a.shard_count());
            for s in 0..a.shard_count() {
                // Trailing over-partitioned shards are empty in both
                // views but anchor at different (irrelevant) offsets.
                let (got, want) = (g.shard_range(s), a.shard_range(s));
                if want.is_empty() {
                    assert!(got.is_empty(), "({n},{shards}) shard {s}");
                } else {
                    assert_eq!(got, want, "({n},{shards}) shard {s}");
                }
            }
            for c in 0..n {
                assert_eq!(g.shard_of(c), a.shard_of(c));
            }
        }
    }

    #[test]
    fn empty_domain_recovers_to_zero() {
        let dir = std::env::temp_dir().join(format!("ta-rec-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        write_manifest(
            &dir,
            &Manifest {
                clients: 5,
                shards: 2,
            },
        )
        .unwrap();
        let state = recover(&dir).unwrap();
        assert_eq!(state.balances, vec![0; 5]);
        assert_eq!(state.replayed, 0);
        assert_eq!(state.snapshot_id, None);
        assert!(state.truncations.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_io_error() {
        let dir = std::env::temp_dir().join(format!("ta-rec-noman-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(recover(&dir), Err(RecoveryError::Io(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
