//! Fault injection for the durability subsystem.
//!
//! A [`FaultPlan`] is parsed from a comma-separated list (the `TA_FAULT`
//! environment variable or the `live` bin's `--fault` flag) and has two
//! kinds of members:
//!
//! * **In-process faults** consulted while the domain runs:
//!   `kill_writer_mid_frame` (the writer makes a half-written frame
//!   durable and dies), `drop_fsync` (commits skip fsync),
//!   `crash_mid_snapshot` (the snapshotter writes half a tmp file and
//!   gives up), `poison_books` (snapshots carry CRC-valid but
//!   off-by-one grant books — the fault that must trip the conservation
//!   gate, because no torn tail can).
//! * **Post-mortem mutilations** applied to the directory after the
//!   process is gone, simulating sector loss the page cache hid:
//!   `torn_tail` (cut bytes off the newest segment), `corrupt_crc`
//!   (flip a byte inside it), `corrupt_snapshot` (flip a byte in the
//!   newest snapshot).
//!
//! Every mode must leave recovery either exact (fold of the surviving
//! prefix) or loudly failing — the fault sweep in CI checks both.

use std::fmt;
use std::io;
use std::path::Path;

use super::{journal, snapshot};

/// Which faults to inject. Parsed with [`FaultPlan::parse`];
/// `FaultPlan::default()` injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Writer syncs a half-written frame and exits after two committed
    /// frames.
    pub kill_writer_mid_frame: bool,
    /// Journal commits skip fsync.
    pub drop_fsync: bool,
    /// The snapshotter dies halfway through the tmp write; no further
    /// snapshots are taken.
    pub crash_mid_snapshot: bool,
    /// Snapshots are written with grant books off by one (CRC-valid).
    pub poison_books: bool,
    /// Post-mortem: cut bytes off the newest journal segment.
    pub torn_tail: bool,
    /// Post-mortem: flip a byte inside the newest journal segment.
    pub corrupt_crc: bool,
    /// Post-mortem: flip a byte inside the newest snapshot file.
    pub corrupt_snapshot: bool,
}

impl FaultPlan {
    /// All recognised mode names.
    pub const MODES: [&'static str; 7] = [
        "kill_writer_mid_frame",
        "drop_fsync",
        "crash_mid_snapshot",
        "poison_books",
        "torn_tail",
        "corrupt_crc",
        "corrupt_snapshot",
    ];

    /// Parses a comma-separated mode list ("" → no faults).
    ///
    /// # Errors
    ///
    /// Returns the offending token for anything not in [`Self::MODES`].
    pub fn parse(list: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for tok in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match tok {
                "kill_writer_mid_frame" => plan.kill_writer_mid_frame = true,
                "drop_fsync" => plan.drop_fsync = true,
                "crash_mid_snapshot" => plan.crash_mid_snapshot = true,
                "poison_books" => plan.poison_books = true,
                "torn_tail" => plan.torn_tail = true,
                "corrupt_crc" => plan.corrupt_crc = true,
                "corrupt_snapshot" => plan.corrupt_snapshot = true,
                other => return Err(format!("unknown fault mode `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Parses the `TA_FAULT` environment variable (unset → no faults).
    ///
    /// # Errors
    ///
    /// Same as [`Self::parse`].
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("TA_FAULT") {
            Ok(list) => Self::parse(&list),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// True if any post-mortem mutilation is requested.
    pub fn wants_post_mortem(&self) -> bool {
        self.torn_tail || self.corrupt_crc || self.corrupt_snapshot
    }

    /// Applies the post-mortem mutilations to a dead domain directory,
    /// returning a description of each wound inflicted.
    ///
    /// # Errors
    ///
    /// Any I/O error while mutilating.
    pub fn apply_post_mortem(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut wounds = Vec::new();
        if self.torn_tail {
            if let Some((id, path, len)) = newest_nonempty_segment(dir)? {
                // Frames are ≥ 16 bytes, so shaving 5 always tears the
                // final frame rather than landing on a boundary.
                let cut = len.saturating_sub(5);
                let f = std::fs::OpenOptions::new().write(true).open(&path)?;
                f.set_len(cut)?;
                f.sync_data()?;
                wounds.push(format!(
                    "torn_tail: segment {id:08x} cut {len} → {cut} bytes"
                ));
            }
        }
        if self.corrupt_crc {
            if let Some((id, path, len)) = newest_nonempty_segment(dir)? {
                flip_byte(&path, len / 2)?;
                wounds.push(format!(
                    "corrupt_crc: segment {id:08x} byte {} flipped",
                    len / 2
                ));
            }
        }
        if self.corrupt_snapshot {
            let mut snaps = snapshot::list_snapshot_files(dir)?;
            if let Some((id, path)) = snaps.pop() {
                let len = std::fs::metadata(&path)?.len();
                if len > 0 {
                    flip_byte(&path, len / 2)?;
                    wounds.push(format!(
                        "corrupt_snapshot: snapshot {id:08x} byte {} flipped",
                        len / 2
                    ));
                }
            }
        }
        Ok(wounds)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut put = |f: &mut fmt::Formatter<'_>, on: bool, name: &str| -> fmt::Result {
            if on {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
            Ok(())
        };
        put(f, self.kill_writer_mid_frame, "kill_writer_mid_frame")?;
        put(f, self.drop_fsync, "drop_fsync")?;
        put(f, self.crash_mid_snapshot, "crash_mid_snapshot")?;
        put(f, self.poison_books, "poison_books")?;
        put(f, self.torn_tail, "torn_tail")?;
        put(f, self.corrupt_crc, "corrupt_crc")?;
        put(f, self.corrupt_snapshot, "corrupt_snapshot")?;
        if first {
            write!(f, "none")?;
        }
        Ok(())
    }
}

fn newest_nonempty_segment(dir: &Path) -> io::Result<Option<(u64, std::path::PathBuf, u64)>> {
    for (id, path) in journal::list_segments(dir)?.into_iter().rev() {
        let len = std::fs::metadata(&path)?.len();
        if len > 0 {
            return Ok(Some((id, path, len)));
        }
    }
    Ok(None)
}

fn flip_byte(path: &Path, offset: u64) -> io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    let i = (offset as usize).min(bytes.len().saturating_sub(1));
    bytes[i] ^= 0x55;
    std::fs::write(path, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_all_modes() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        let all = FaultPlan::MODES.join(",");
        let plan = FaultPlan::parse(&all).unwrap();
        assert!(plan.kill_writer_mid_frame && plan.drop_fsync && plan.crash_mid_snapshot);
        assert!(plan.poison_books && plan.torn_tail && plan.corrupt_crc && plan.corrupt_snapshot);
        assert_eq!(plan.to_string(), all);
        assert_eq!(FaultPlan::default().to_string(), "none");
        assert!(FaultPlan::parse("torn_tail, bogus").is_err());
        assert_eq!(
            FaultPlan::parse(" torn_tail , corrupt_crc ").unwrap(),
            FaultPlan {
                torn_tail: true,
                corrupt_crc: true,
                ..FaultPlan::default()
            }
        );
    }
}
