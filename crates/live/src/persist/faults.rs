//! Fault injection for the durability subsystem.
//!
//! A [`FaultPlan`] is parsed from a comma-separated list (the `TA_FAULT`
//! environment variable or the `live` bin's `--fault` flag) and has
//! three kinds of members:
//!
//! * **In-process faults** consulted while the domain runs:
//!   `kill_writer_mid_frame` (the writer makes a half-written frame
//!   durable and dies), `drop_fsync` (commits skip fsync),
//!   `crash_mid_snapshot` (the snapshotter writes half a tmp file and
//!   gives up), `poison_books` (snapshots carry CRC-valid but
//!   off-by-one grant books — the fault that must trip the conservation
//!   gate, because no torn tail can).
//! * **Transient faults** fed to the journal writer's IO shim (the
//!   self-healing path): `io_error_n:<k>` (the next `k` writes fail
//!   with a retryable `EINTR`-style error), `enospc_after:<bytes>` (the
//!   disk "fills" after that many journal bytes and stays full for a
//!   fixed number of attempts before space returns), `slow_io_ms:<d>`
//!   (every write stalls `d` ms), `writer_hang` (the writer sleeps once
//!   long enough to miss its heartbeat deadline), `granter_stall` (the
//!   granter does the same). All are deterministic in attempt counts,
//!   so CI can assert health-counter/injection agreement.
//! * **Post-mortem mutilations** applied to the directory after the
//!   process is gone, simulating sector loss the page cache hid:
//!   `torn_tail` (cut bytes off the newest segment), `corrupt_crc`
//!   (flip a byte inside it), `corrupt_snapshot` (flip a byte in the
//!   newest snapshot).
//!
//! Every mode must leave recovery either exact (fold of the surviving
//! records) or loudly failing — the fault sweep in CI checks both.

use std::fmt;
use std::io;
use std::path::Path;

use super::{journal, snapshot};

/// Which faults to inject. Parsed with [`FaultPlan::parse`];
/// `FaultPlan::default()` injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Writer syncs a half-written frame and exits after two committed
    /// frames.
    pub kill_writer_mid_frame: bool,
    /// Journal commits skip fsync.
    pub drop_fsync: bool,
    /// The snapshotter dies halfway through the tmp write; no further
    /// snapshots are taken.
    pub crash_mid_snapshot: bool,
    /// Snapshots are written with grant books off by one (CRC-valid).
    pub poison_books: bool,
    /// Post-mortem: cut bytes off the newest journal segment.
    pub torn_tail: bool,
    /// Post-mortem: flip a byte inside the newest journal segment.
    pub corrupt_crc: bool,
    /// Post-mortem: flip a byte inside the newest snapshot file.
    pub corrupt_snapshot: bool,
    /// Transient: the next `k` journal writes fail with a retryable
    /// error (`io_error_n:<k>`; 0 = off).
    pub io_error_n: u32,
    /// Transient: journal writes fail with `StorageFull` once this many
    /// bytes have been written (`enospc_after:<bytes>`; 0 = off). The
    /// outage lasts a fixed number of failed attempts, then space
    /// "returns" for good.
    pub enospc_after: u64,
    /// Transient: every journal write stalls this many milliseconds
    /// (`slow_io_ms:<d>`; 0 = off).
    pub slow_io_ms: u64,
    /// Transient: the journal writer sleeps once, long enough to miss
    /// its heartbeat deadline, then resumes.
    pub writer_hang: bool,
    /// Transient: the granter sleeps once past its round deadline, long
    /// enough for the watchdog to restart it.
    pub granter_stall: bool,
}

impl FaultPlan {
    /// All recognised mode names (parameterised modes are listed
    /// without their `:<arg>` suffix).
    pub const MODES: [&'static str; 12] = [
        "kill_writer_mid_frame",
        "drop_fsync",
        "crash_mid_snapshot",
        "poison_books",
        "torn_tail",
        "corrupt_crc",
        "corrupt_snapshot",
        "io_error_n",
        "enospc_after",
        "slow_io_ms",
        "writer_hang",
        "granter_stall",
    ];

    /// Parses a comma-separated mode list ("" → no faults).
    /// Parameterised modes take a `:<number>` argument
    /// (`io_error_n:3`, `enospc_after:30000`, `slow_io_ms:2`).
    ///
    /// # Errors
    ///
    /// Returns the offending token for anything not in [`Self::MODES`],
    /// for a parameterised mode with a missing/zero/malformed argument,
    /// and for an argument on a mode that takes none.
    pub fn parse(list: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for tok in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (name, arg) = match tok.split_once(':') {
                Some((name, arg)) => (name.trim(), Some(arg.trim())),
                None => (tok, None),
            };
            fn numeric<T: std::str::FromStr + PartialEq + Default>(
                name: &str,
                arg: Option<&str>,
            ) -> Result<T, String> {
                let arg =
                    arg.ok_or_else(|| format!("fault mode `{name}` needs a `:<n>` argument"))?;
                match arg.parse::<T>() {
                    Ok(v) if v != T::default() => Ok(v),
                    _ => Err(format!("bad fault argument `{arg}` for `{name}`")),
                }
            }
            if arg.is_some() && !matches!(name, "io_error_n" | "enospc_after" | "slow_io_ms") {
                return Err(format!("fault mode `{name}` takes no argument"));
            }
            match name {
                "kill_writer_mid_frame" => plan.kill_writer_mid_frame = true,
                "drop_fsync" => plan.drop_fsync = true,
                "crash_mid_snapshot" => plan.crash_mid_snapshot = true,
                "poison_books" => plan.poison_books = true,
                "torn_tail" => plan.torn_tail = true,
                "corrupt_crc" => plan.corrupt_crc = true,
                "corrupt_snapshot" => plan.corrupt_snapshot = true,
                "io_error_n" => plan.io_error_n = numeric(name, arg)?,
                "enospc_after" => plan.enospc_after = numeric(name, arg)?,
                "slow_io_ms" => plan.slow_io_ms = numeric(name, arg)?,
                "writer_hang" => plan.writer_hang = true,
                "granter_stall" => plan.granter_stall = true,
                other => return Err(format!("unknown fault mode `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Parses the `TA_FAULT` environment variable (unset → no faults).
    ///
    /// # Errors
    ///
    /// Same as [`Self::parse`].
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("TA_FAULT") {
            Ok(list) => Self::parse(&list),
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// True if any post-mortem mutilation is requested.
    pub fn wants_post_mortem(&self) -> bool {
        self.torn_tail || self.corrupt_crc || self.corrupt_snapshot
    }

    /// Applies the post-mortem mutilations to a dead domain directory,
    /// returning a description of each wound inflicted.
    ///
    /// # Errors
    ///
    /// Any I/O error while mutilating.
    pub fn apply_post_mortem(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut wounds = Vec::new();
        if self.torn_tail {
            if let Some((id, path, len)) = newest_nonempty_segment(dir)? {
                // Frames are ≥ 16 bytes, so shaving 5 always tears the
                // final frame rather than landing on a boundary.
                let cut = len.saturating_sub(5);
                let f = std::fs::OpenOptions::new().write(true).open(&path)?;
                f.set_len(cut)?;
                f.sync_data()?;
                wounds.push(format!(
                    "torn_tail: segment {id:08x} cut {len} → {cut} bytes"
                ));
            }
        }
        if self.corrupt_crc {
            if let Some((id, path, len)) = newest_nonempty_segment(dir)? {
                flip_byte(&path, len / 2)?;
                wounds.push(format!(
                    "corrupt_crc: segment {id:08x} byte {} flipped",
                    len / 2
                ));
            }
        }
        if self.corrupt_snapshot {
            let mut snaps = snapshot::list_snapshot_files(dir)?;
            if let Some((id, path)) = snaps.pop() {
                let len = std::fs::metadata(&path)?.len();
                if len > 0 {
                    flip_byte(&path, len / 2)?;
                    wounds.push(format!(
                        "corrupt_snapshot: snapshot {id:08x} byte {} flipped",
                        len / 2
                    ));
                }
            }
        }
        Ok(wounds)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut put = |f: &mut fmt::Formatter<'_>, on: bool, name: &str| -> fmt::Result {
            if on {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
            Ok(())
        };
        put(f, self.kill_writer_mid_frame, "kill_writer_mid_frame")?;
        put(f, self.drop_fsync, "drop_fsync")?;
        put(f, self.crash_mid_snapshot, "crash_mid_snapshot")?;
        put(f, self.poison_books, "poison_books")?;
        put(f, self.torn_tail, "torn_tail")?;
        put(f, self.corrupt_crc, "corrupt_crc")?;
        put(f, self.corrupt_snapshot, "corrupt_snapshot")?;
        let mut put_arg = |f: &mut fmt::Formatter<'_>, value: u64, name: &str| -> fmt::Result {
            if value != 0 {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{name}:{value}")?;
                first = false;
            }
            Ok(())
        };
        put_arg(f, u64::from(self.io_error_n), "io_error_n")?;
        put_arg(f, self.enospc_after, "enospc_after")?;
        put_arg(f, self.slow_io_ms, "slow_io_ms")?;
        let mut put = |f: &mut fmt::Formatter<'_>, on: bool, name: &str| -> fmt::Result {
            if on {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
            Ok(())
        };
        put(f, self.writer_hang, "writer_hang")?;
        put(f, self.granter_stall, "granter_stall")?;
        if first {
            write!(f, "none")?;
        }
        Ok(())
    }
}

fn newest_nonempty_segment(dir: &Path) -> io::Result<Option<(u64, std::path::PathBuf, u64)>> {
    for (id, path) in journal::list_segments(dir)?.into_iter().rev() {
        let len = std::fs::metadata(&path)?.len();
        if len > 0 {
            return Ok(Some((id, path, len)));
        }
    }
    Ok(None)
}

fn flip_byte(path: &Path, offset: u64) -> io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    let i = (offset as usize).min(bytes.len().saturating_sub(1));
    bytes[i] ^= 0x55;
    std::fs::write(path, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_all_modes() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        let all = "kill_writer_mid_frame,drop_fsync,crash_mid_snapshot,poison_books,torn_tail,\
                   corrupt_crc,corrupt_snapshot,io_error_n:3,enospc_after:30000,slow_io_ms:2,\
                   writer_hang,granter_stall";
        let plan = FaultPlan::parse(all).unwrap();
        assert!(plan.kill_writer_mid_frame && plan.drop_fsync && plan.crash_mid_snapshot);
        assert!(plan.poison_books && plan.torn_tail && plan.corrupt_crc && plan.corrupt_snapshot);
        assert_eq!(plan.io_error_n, 3);
        assert_eq!(plan.enospc_after, 30_000);
        assert_eq!(plan.slow_io_ms, 2);
        assert!(plan.writer_hang && plan.granter_stall);
        assert_eq!(plan.to_string(), all);
        assert_eq!(FaultPlan::default().to_string(), "none");
        assert!(FaultPlan::parse("torn_tail, bogus").is_err());
        assert_eq!(
            FaultPlan::parse(" torn_tail , corrupt_crc ").unwrap(),
            FaultPlan {
                torn_tail: true,
                corrupt_crc: true,
                ..FaultPlan::default()
            }
        );
    }

    #[test]
    fn parameterised_modes_validate_their_arguments() {
        // Missing, zero, and malformed arguments are all rejected with
        // the offending token in the message.
        for bad in [
            "io_error_n",
            "io_error_n:",
            "io_error_n:0",
            "io_error_n:-1",
            "io_error_n:many",
            "enospc_after:0x10",
            "slow_io_ms:1.5",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains('`'), "{bad}: {err}");
        }
        // Arguments on argument-less modes are rejected too.
        assert!(FaultPlan::parse("writer_hang:5").is_err());
        assert!(FaultPlan::parse("torn_tail:1").is_err());
        // Whitespace around the colon is tolerated.
        let plan = FaultPlan::parse(" io_error_n : 7 ").unwrap();
        assert_eq!(plan.io_error_n, 7);
        assert_eq!(plan.to_string(), "io_error_n:7");
    }
}
