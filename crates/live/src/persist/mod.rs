//! Durability for the live runtime: journal, snapshots, recovery, faults.
//!
//! A process holding millions of in-RAM [`AtomicTokenAccount`] balances
//! must be able to die and restart without violating the
//! token-conservation invariant CI gates on. This module tree is that
//! durability story:
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`journal`] | append-only CRC-framed grant/spend journal: per-producer bounded buffers, a dedicated group-commit writer thread |
//! | [`snapshot`] | copy-on-write snapshots of the account shards under per-shard epoch fences, atomic-rename files, segment retirement |
//! | [`recovery`] | restart path: latest valid snapshot + per-shard journal-tail replay + exact conservation verification |
//! | [`faults`] | fault-injection plan (`TA_FAULT`): torn tails, CRC corruption, dropped fsyncs, writer/snapshot crashes, poisoned books |
//!
//! **Shape of the guarantee.** Every balance-changing decision publishes
//! one signed delta record `(client, delta, seq)` tagged with a
//! per-shard monotonic sequence number. The admit hot path never takes a
//! lock or a syscall: records go into producer-local bounded buffers
//! that are handed to the writer thread over a channel, and the
//! sequence stamp is one `fetch_add`. A snapshot walks shards one at a
//! time: it fences exactly one shard (admits and sweeps on all other
//! shards keep running; producers touching the fenced shard spin for
//! the microseconds the balance copy takes), waits for in-flight
//! operations to drain via per-producer epoch cells, and reads the
//! shard's balances plus its sequence watermark `W` — the copy then
//! contains *exactly* the deltas with `seq < W`. Recovery loads the
//! newest CRC-valid snapshot (falling back past torn or corrupt files),
//! replays every surviving journal record with `seq >= W` for its
//! shard, and refuses to serve unless `granted − burned == Σ balances`
//! holds per shard and globally.
//!
//! After a kill, records still sitting in producer-local buffers or in
//! the writer's un-synced batch are lost; the recovered state is the
//! exact fold of the records that survived on disk — a legal state of
//! the system, never a silently-wrong one.
//!
//! [`AtomicTokenAccount`]: token_account::atomic::AtomicTokenAccount

pub mod faults;
pub mod journal;
pub mod recovery;
pub mod snapshot;

pub use faults::FaultPlan;
pub use journal::{DeltaRec, JournalHandle, JournalStats};
pub use recovery::{recover, RecoveredState, RecoveryError, Truncation, TruncationReason};
pub use snapshot::SnapshotInfo;

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use journal::WriterMsg;
use ta_telemetry::Handle as TelemetryHandle;

/// Configuration of one durability domain (one journal directory).
#[derive(Debug, Clone, PartialEq)]
pub struct PersistConfig {
    /// Directory holding the manifest, journal segments, and snapshots.
    pub dir: PathBuf,
    /// Group-commit interval: the writer batches frames and issues one
    /// write + fsync per interval (and on shutdown/rotation).
    pub group_commit: Duration,
    /// Whether the writer fsyncs at commit points. Disabling trades
    /// durability of the tail for speed; recovery semantics are
    /// unchanged (the surviving prefix is still recovered exactly).
    pub fsync: bool,
    /// Producer-local records buffered per shard before the buffer is
    /// handed to the writer (bounds hot-path memory and loss window).
    pub buffer_cap: usize,
    /// Injected faults (none in production).
    pub faults: FaultPlan,
}

impl PersistConfig {
    /// Defaults: 20 ms group commit, fsync on, 4096-record buffers.
    pub fn new<P: Into<PathBuf>>(dir: P) -> Self {
        PersistConfig {
            dir: dir.into(),
            group_commit: Duration::from_millis(20),
            fsync: true,
            buffer_cap: 4096,
            faults: FaultPlan::default(),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — frames,
/// snapshots, and the manifest all carry one.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Per-shard persistence state, one cache line each: the monotonic
/// record sequence, the cumulative grant/burn books, and the snapshot
/// fence flag.
#[repr(align(64))]
#[derive(Debug)]
pub(crate) struct ShardState {
    /// Next record sequence number (stamped via `fetch_add`).
    pub(crate) seq: AtomicU64,
    /// Cumulative tokens granted to this shard's accounts (sum of
    /// positive deltas), maintained by producers inside the fence.
    pub(crate) granted: AtomicU64,
    /// Cumulative tokens burned (sum of |negative deltas|).
    pub(crate) burned: AtomicU64,
    /// Raised by the snapshotter while this shard's balances are copied.
    pub(crate) fenced: AtomicBool,
}

impl ShardState {
    fn new(seq: u64, granted: u64, burned: u64) -> Self {
        ShardState {
            seq: AtomicU64::new(seq),
            granted: AtomicU64::new(granted),
            burned: AtomicU64::new(burned),
            fenced: AtomicBool::new(false),
        }
    }
}

/// One producer's epoch cell: odd while the producer is inside a
/// fenced operation (decision + record publication), even otherwise.
/// The snapshotter waits for every cell to read even after raising a
/// shard fence; the cell lives on its own cache line and is written
/// only by its owner, so the hot path pays an uncontended RMW.
#[repr(align(64))]
#[derive(Debug, Default)]
pub(crate) struct EpochCell {
    epoch: AtomicU64,
}

impl EpochCell {
    /// Enters an operation (full fence: the subsequent shard-fence load
    /// cannot be reordered before the epoch becomes visible).
    #[inline]
    pub(crate) fn set_busy(&self) {
        self.epoch.swap(1, Ordering::SeqCst);
    }

    /// Leaves the operation, publishing all its effects.
    #[inline]
    pub(crate) fn set_idle(&self) {
        self.epoch.store(0, Ordering::Release);
    }

    fn is_idle(&self) -> bool {
        self.epoch.load(Ordering::Acquire) == 0
    }
}

/// State shared between producers (journal handles), the snapshotter,
/// and the runtime: per-shard fences plus the producer registry.
#[derive(Debug)]
pub struct PersistShared {
    pub(crate) shards: Box<[ShardState]>,
    pub(crate) epochs: Mutex<Vec<Arc<EpochCell>>>,
    pub(crate) buffer_cap: usize,
    /// Number of shard fences currently raised. Bulk producers (which
    /// hold their epoch across a run of operations touching arbitrary
    /// shards) check this single counter instead of every per-shard
    /// fence when re-entering.
    pub(crate) snap_pending: AtomicUsize,
    /// Telemetry handle for the persistence lane, set at most once per
    /// domain (see [`Persistence::attach_telemetry`]). Producers, the
    /// writer, and the snapshotter all publish through it; its cells
    /// tolerate the multi-writer `fetch_add`s because every touch is on
    /// a cold path (per batch / commit / freeze, never per record).
    pub(crate) telem: OnceLock<TelemetryHandle>,
    /// Health board for the supervised runtime, set at most once per
    /// domain (see [`Persistence::attach_health`]). With a board
    /// attached, the journal writer heartbeats, retries transient IO
    /// errors, and enacts the journal failure policy instead of dying;
    /// without one it propagates the first error exactly as before.
    pub(crate) health: OnceLock<Arc<crate::health::HealthBoard>>,
}

impl PersistShared {
    /// Number of shards in this domain.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Waits until every registered producer has left its current
    /// operation. Callers must have raised the relevant fence first so
    /// no new operation can enter the frozen shard.
    fn quiesce(&self) {
        let cells: Vec<Arc<EpochCell>> = self.epochs.lock().expect("epoch registry").clone();
        for cell in cells {
            while !cell.is_idle() {
                std::hint::spin_loop();
            }
        }
    }
}

const MANIFEST_MAGIC: u32 = 0x5441_4D46; // "TAMF"
const MANIFEST_VERSION: u32 = 1;

/// The manifest file name inside a journal directory.
pub const MANIFEST_FILE: &str = "manifest.tam";

/// Fixed geometry of a durability domain, written once at
/// [`Persistence::open`] and required by recovery (the journal frames
/// carry shard ids, not totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Number of client accounts.
    pub clients: usize,
    /// Number of account shards.
    pub shards: usize,
}

/// Writes `bytes` to `path` atomically: tmp file, fsync, rename, then
/// directory fsync — the `atomic_write_json` idiom of SNIPPETS.md
/// Snippet 1, binary flavour.
pub(crate) fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_dir(path.parent().unwrap_or(Path::new(".")))
}

pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Fsyncs a directory so renames/creates within it are durable
/// (no-op off Unix).
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Writes the domain manifest.
pub(crate) fn write_manifest(dir: &Path, m: &Manifest) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(20);
    bytes.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
    bytes.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(m.clients as u64).to_le_bytes());
    bytes.extend_from_slice(&(m.shards as u32).to_le_bytes());
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    atomic_write(&dir.join(MANIFEST_FILE), &bytes)
}

/// Reads and validates the domain manifest.
pub fn read_manifest(dir: &Path) -> io::Result<Manifest> {
    let mut bytes = Vec::new();
    File::open(dir.join(MANIFEST_FILE))?.read_to_end(&mut bytes)?;
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {what}"));
    if bytes.len() != 24 {
        return Err(bad("wrong length"));
    }
    let crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    if crc != crc32(&bytes[..20]) {
        return Err(bad("bad crc"));
    }
    if u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != MANIFEST_MAGIC {
        return Err(bad("bad magic"));
    }
    if u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != MANIFEST_VERSION {
        return Err(bad("unsupported version"));
    }
    Ok(Manifest {
        clients: u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize,
        shards: u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize,
    })
}

/// Metadata of one snapshot retained on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SnapMeta {
    pub(crate) id: u64,
    /// Journal segment that was active when this snapshot started; every
    /// record the snapshot does *not* cover lives in this segment or a
    /// later one.
    pub(crate) first_segment: u64,
}

/// One open durability domain: the writer thread, the shared fences,
/// and the snapshot machinery. Build with [`Persistence::open`] (fresh
/// directory) or [`Persistence::resume`] (after [`recover`]); producers
/// get a [`JournalHandle`] each via [`Persistence::handle`].
#[derive(Debug)]
pub struct Persistence {
    shared: Arc<PersistShared>,
    tx: Sender<WriterMsg>,
    writer: Option<JoinHandle<io::Result<JournalStats>>>,
    cfg: PersistConfig,
    manifest: Manifest,
    active_segment: Arc<AtomicU64>,
    next_snapshot_id: AtomicU64,
    snapshots: Mutex<Vec<SnapMeta>>,
    /// Set once a `crash_mid_snapshot` fault fired; later snapshots are
    /// refused so the partial tmp file stays the newest snapshot state.
    snapshot_poisoned: AtomicBool,
}

impl Persistence {
    /// Opens a *fresh* durability domain: creates the directory, writes
    /// the manifest, and starts the writer on segment 0.
    ///
    /// # Errors
    ///
    /// Fails if the directory already contains a manifest (an existing
    /// domain must go through [`recover`] + [`Persistence::resume`], so
    /// sequence watermarks cannot collide), or on any I/O error.
    pub fn open(cfg: &PersistConfig, clients: usize, shards: usize) -> io::Result<Self> {
        std::fs::create_dir_all(&cfg.dir)?;
        if cfg.dir.join(MANIFEST_FILE).exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "journal directory already holds a domain: recover + resume instead",
            ));
        }
        let manifest = Manifest { clients, shards };
        write_manifest(&cfg.dir, &manifest)?;
        let states = (0..shards.max(1))
            .map(|_| ShardState::new(0, 0, 0))
            .collect();
        Self::build(cfg, manifest, states, 0, 0, Vec::new())
    }

    /// Re-opens a domain from a recovered state: fences resume at the
    /// recovered per-shard sequence/books, the writer starts a fresh
    /// segment after the highest existing one, and snapshot ids continue
    /// past the newest file on disk.
    ///
    /// # Errors
    ///
    /// Fails if the manifest is missing or disagrees with the recovered
    /// geometry, or on any I/O error.
    pub fn resume(cfg: &PersistConfig, state: &RecoveredState) -> io::Result<Self> {
        let manifest = read_manifest(&cfg.dir)?;
        if manifest.clients != state.clients || manifest.shards != state.shards {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "recovered state does not match the on-disk manifest",
            ));
        }
        let states = (0..state.shards.max(1))
            .map(|s| ShardState::new(state.next_seq[s], state.granted[s], state.burned[s]))
            .collect();
        let next_segment = journal::list_segments(&cfg.dir)?
            .last()
            .map(|&(id, _)| id + 1)
            .unwrap_or(0);
        let snaps = snapshot::list_metas(&cfg.dir);
        let next_snapshot = snaps.last().map(|m| m.id + 1).unwrap_or(0);
        Self::build(cfg, manifest, states, next_segment, next_snapshot, snaps)
    }

    fn build(
        cfg: &PersistConfig,
        manifest: Manifest,
        states: Box<[ShardState]>,
        first_segment: u64,
        next_snapshot: u64,
        snaps: Vec<SnapMeta>,
    ) -> io::Result<Self> {
        let shared = Arc::new(PersistShared {
            shards: states,
            epochs: Mutex::new(Vec::new()),
            buffer_cap: cfg.buffer_cap.max(1),
            snap_pending: AtomicUsize::new(0),
            telem: OnceLock::new(),
            health: OnceLock::new(),
        });
        let (tx, rx) = channel();
        let active_segment = Arc::new(AtomicU64::new(first_segment));
        let writer = journal::spawn_writer(
            cfg.clone(),
            rx,
            first_segment,
            Arc::clone(&active_segment),
            Arc::clone(&shared),
        )?;
        Ok(Persistence {
            shared,
            tx,
            writer: Some(writer),
            cfg: cfg.clone(),
            manifest,
            active_segment,
            next_snapshot_id: AtomicU64::new(next_snapshot),
            snapshots: Mutex::new(snaps),
            snapshot_poisoned: AtomicBool::new(false),
        })
    }

    /// The domain geometry.
    pub fn manifest(&self) -> Manifest {
        self.manifest
    }

    /// The shared fence state (attachable to runtimes and handles).
    pub fn shared(&self) -> &Arc<PersistShared> {
        &self.shared
    }

    /// Creates a journal handle for one producer thread (a loadgen
    /// worker, the granter, or a test driver).
    pub fn handle(&self) -> JournalHandle {
        JournalHandle::new(Arc::clone(&self.shared), self.tx.clone())
    }

    /// Attaches a telemetry lane handle to this domain: the journal
    /// writer starts reporting frame/flush/fsync counters, producers
    /// report batch hand-offs and queue depth, and snapshots report
    /// freeze durations — all against [`crate::telem`]'s catalog.
    /// Subsequent calls are ignored (the first handle wins).
    pub fn attach_telemetry(&self, handle: TelemetryHandle) {
        let _ = self.shared.telem.set(handle);
    }

    /// Attaches a health board to this domain, arming the journal
    /// writer's self-healing path: heartbeats, retry/backoff on
    /// transient IO errors, and the configured `--on-journal-fail`
    /// policy on persistent failure (instead of thread death).
    /// Subsequent calls are ignored (the first board wins).
    pub fn attach_health(&self, board: Arc<crate::health::HealthBoard>) {
        let _ = self.shared.health.set(board);
    }

    /// Takes one copy-on-write snapshot of `accounts` (which must be the
    /// account map the journal records describe): shards are frozen one
    /// at a time, the file is written via atomic rename, old snapshots
    /// beyond the newest two are deleted, and journal segments covered
    /// by *both* retained snapshots are retired.
    ///
    /// # Errors
    ///
    /// Any I/O error; also an injected `crash_mid_snapshot` fault, which
    /// leaves a partial tmp file behind (recovery must fall back).
    ///
    /// # Panics
    ///
    /// Panics if `accounts` disagrees with the domain geometry.
    pub fn snapshot(
        &self,
        accounts: &crate::accounts::ShardedAccounts,
    ) -> io::Result<SnapshotInfo> {
        snapshot::take(self, accounts)
    }

    /// Asks the writer to flush and fsync everything received so far,
    /// blocking until done (tests and orderly checkpoints).
    ///
    /// # Errors
    ///
    /// Fails if the writer is gone (crashed or killed by a fault).
    pub fn sync(&self) -> io::Result<()> {
        let (ack, done) = channel();
        self.tx
            .send(WriterMsg::Sync(ack))
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "journal writer is gone"))?;
        done.recv()
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "journal writer died"))?
    }

    /// Shuts the domain down cleanly: final write + fsync, then joins
    /// the writer and returns its lifetime stats.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors (a writer killed by an injected
    /// fault reports its stats anyway).
    pub fn shutdown(mut self) -> io::Result<JournalStats> {
        let _ = self.tx.send(WriterMsg::Shutdown);
        match self.writer.take() {
            Some(w) => w.join().expect("journal writer panicked"),
            None => Ok(JournalStats::default()),
        }
    }

    /// Simulates a crash: the writer discards everything not yet written
    /// to the OS and exits immediately — no final write, no fsync. What
    /// recovery finds afterwards is exactly what a kill would have left.
    pub fn simulate_crash(mut self) {
        let _ = self.tx.send(WriterMsg::Crash);
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
    }

    pub(crate) fn cfg(&self) -> &PersistConfig {
        &self.cfg
    }

    pub(crate) fn active_segment(&self) -> &Arc<AtomicU64> {
        &self.active_segment
    }

    pub(crate) fn next_snapshot_id(&self) -> &AtomicU64 {
        &self.next_snapshot_id
    }

    pub(crate) fn snapshots(&self) -> &Mutex<Vec<SnapMeta>> {
        &self.snapshots
    }

    pub(crate) fn snapshot_poisoned(&self) -> &AtomicBool {
        &self.snapshot_poisoned
    }

    pub(crate) fn writer_tx(&self) -> &Sender<WriterMsg> {
        &self.tx
    }

    /// Freezes shard `s`: raises the fence, waits for every in-flight
    /// producer operation to drain, and returns the consistent
    /// `(watermark, granted, burned)` triple. The caller must copy the
    /// balances *before* calling [`Self::unfreeze_shard`].
    pub(crate) fn freeze_shard(&self, s: usize) -> (u64, u64, u64) {
        let st = &self.shared.shards[s];
        self.shared.snap_pending.fetch_add(1, Ordering::SeqCst);
        st.fenced.store(true, Ordering::SeqCst);
        self.shared.quiesce();
        (
            st.seq.load(Ordering::Relaxed),
            st.granted.load(Ordering::Relaxed),
            st.burned.load(Ordering::Relaxed),
        )
    }

    /// Lifts the fence of shard `s`.
    pub(crate) fn unfreeze_shard(&self, s: usize) {
        self.shared.shards[s].fenced.store(false, Ordering::SeqCst);
        self.shared.snap_pending.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Drop for Persistence {
    fn drop(&mut self) {
        // Best-effort clean shutdown if the caller forgot.
        let _ = self.tx.send(WriterMsg::Shutdown);
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn manifest_roundtrips_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("ta-persist-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = Manifest {
            clients: 12_345,
            shards: 16,
        };
        write_manifest(&dir, &m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), m);
        // Flip one byte: the CRC must catch it.
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_manifest(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_refuses_an_existing_domain() {
        let dir = std::env::temp_dir().join(format!("ta-persist-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = PersistConfig::new(&dir);
        let p = Persistence::open(&cfg, 100, 4).unwrap();
        p.shutdown().unwrap();
        assert_eq!(
            Persistence::open(&cfg, 100, 4).unwrap_err().kind(),
            io::ErrorKind::AlreadyExists
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
