//! Copy-on-write snapshots of [`ShardedAccounts`].
//!
//! ## On-disk format
//!
//! Snapshot files are `snapshot-<id:08x>.tas`, written to a `.tmp`
//! sibling, fsynced, renamed into place, and the directory fsynced —
//! the `atomic_write_json` idiom of SNIPPETS.md Snippet 1, binary
//! flavour. Layout (little-endian):
//!
//! ```text
//! magic u32 | version u32 | id u64 | first_segment u64
//! clients u64 | shards u32 | pad u32
//! per shard: watermark u64 | granted u64 | burned u64 | count u64
//!            | count × balance i64
//! crc32 u32   (over everything before it)
//! ```
//!
//! `first_segment` is the journal segment that was active when the
//! snapshot *started*: every record the snapshot does not already
//! contain lives in that segment or a later one, which is what makes
//! segment retirement safe.
//!
//! ## Consistency
//!
//! [`take`] freezes shards **one at a time**: it raises the shard's
//! fence, waits for every producer's epoch cell to read idle, then
//! reads the watermark `W`, the grant/burn books, and the balances.
//! Because producers stamp sequence numbers and apply balance deltas
//! strictly inside their epoch (enter → stamp+apply → exit), quiescence
//! means the copy reflects *exactly* the deltas with `seq < W` — the
//! replay cutoff recovery uses. All other shards keep admitting
//! throughout; the journal keeps running even for the fenced shard's
//! writer-side batches.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::mpsc::channel;

use super::journal::WriterMsg;
use super::{atomic_write, crc32, sync_dir, tmp_path, Persistence, SnapMeta};
use crate::accounts::ShardedAccounts;

/// Snapshot magic: "TASN".
pub const SNAPSHOT_MAGIC: u32 = 0x5441_534E;
const SNAPSHOT_VERSION: u32 = 1;

/// Path of snapshot `id` inside `dir`.
pub fn snapshot_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("snapshot-{id:08x}.tas"))
}

/// Lists snapshot files in `dir`, sorted by id (no validation).
pub fn list_snapshot_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(hex) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".tas"))
        {
            if let Ok(id) = u64::from_str_radix(hex, 16) {
                out.push((id, entry.path()));
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// One shard's slice of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnap {
    /// Sequence watermark: the snapshot contains exactly the deltas
    /// with `seq < watermark`; replay applies records with
    /// `seq >= watermark`.
    pub watermark: u64,
    /// Cumulative granted tokens at the watermark.
    pub granted: u64,
    /// Cumulative burned tokens at the watermark.
    pub burned: u64,
    /// The shard's balances, in client order.
    pub balances: Vec<i64>,
}

/// A decoded snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotData {
    /// Snapshot id (monotonic per domain).
    pub id: u64,
    /// Journal segment active when the snapshot started.
    pub first_segment: u64,
    /// Total client count (must match the manifest).
    pub clients: u64,
    /// Per-shard state.
    pub shards: Vec<ShardSnap>,
}

/// Summary of one completed snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Snapshot id.
    pub id: u64,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Journal segments deleted during retirement.
    pub retired_segments: u64,
}

pub(crate) fn encode(
    id: u64,
    first_segment: u64,
    clients: u64,
    shards: &[ShardSnap],
    poison_books: bool,
) -> Vec<u8> {
    let payload: usize = shards.iter().map(|s| 32 + 8 * s.balances.len()).sum();
    let mut out = Vec::with_capacity(36 + payload);
    out.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&first_segment.to_le_bytes());
    out.extend_from_slice(&clients.to_le_bytes());
    out.extend_from_slice(&(shards.len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    for (i, s) in shards.iter().enumerate() {
        out.extend_from_slice(&s.watermark.to_le_bytes());
        // `poison_books` writes a CRC-valid snapshot whose books are off
        // by one token on shard 0 — the fault that proves the
        // conservation gate actually fires.
        let granted = if poison_books && i == 0 {
            s.granted + 1
        } else {
            s.granted
        };
        out.extend_from_slice(&granted.to_le_bytes());
        out.extend_from_slice(&s.burned.to_le_bytes());
        out.extend_from_slice(&(s.balances.len() as u64).to_le_bytes());
        for &b in &s.balances {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Loads and validates one snapshot file.
///
/// # Errors
///
/// Any I/O error, plus `InvalidData` for truncation, bad magic,
/// version, CRC, or internal inconsistencies — the recovery path treats
/// all of these as "fall back to an older snapshot".
pub fn load(path: &Path) -> io::Result<SnapshotData> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {what}"));
    if bytes.len() < 40 {
        return Err(bad("truncated header"));
    }
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc != crc32(&bytes[..bytes.len() - 4]) {
        return Err(bad("bad crc"));
    }
    if u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != SNAPSHOT_MAGIC {
        return Err(bad("bad magic"));
    }
    if u32::from_le_bytes(bytes[4..8].try_into().unwrap()) != SNAPSHOT_VERSION {
        return Err(bad("unsupported version"));
    }
    let id = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let first_segment = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let clients = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let shard_count = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
    let mut pos = 40usize;
    let end = bytes.len() - 4;
    let mut shards = Vec::with_capacity(shard_count);
    let mut total = 0u64;
    for _ in 0..shard_count {
        if end - pos < 32 {
            return Err(bad("truncated shard header"));
        }
        let watermark = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        let granted = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
        let burned = u64::from_le_bytes(bytes[pos + 16..pos + 24].try_into().unwrap());
        let count = u64::from_le_bytes(bytes[pos + 24..pos + 32].try_into().unwrap()) as usize;
        pos += 32;
        if end - pos < 8 * count {
            return Err(bad("truncated balances"));
        }
        let mut balances = Vec::with_capacity(count);
        for i in 0..count {
            balances.push(i64::from_le_bytes(
                bytes[pos + 8 * i..pos + 8 * i + 8].try_into().unwrap(),
            ));
        }
        pos += 8 * count;
        total += count as u64;
        shards.push(ShardSnap {
            watermark,
            granted,
            burned,
            balances,
        });
    }
    if pos != end || total != clients {
        return Err(bad("inconsistent geometry"));
    }
    Ok(SnapshotData {
        id,
        first_segment,
        clients,
        shards,
    })
}

/// Metadata of every *valid* snapshot in `dir` (invalid files are
/// skipped — recovery decides what invalidity means).
pub(crate) fn list_metas(dir: &Path) -> Vec<SnapMeta> {
    let mut out = Vec::new();
    if let Ok(files) = list_snapshot_files(dir) {
        for (_, path) in files {
            if let Ok(snap) = load(&path) {
                out.push(SnapMeta {
                    id: snap.id,
                    first_segment: snap.first_segment,
                });
            }
        }
    }
    out.sort_unstable_by_key(|m| m.id);
    out
}

/// Takes one snapshot (see [`Persistence::snapshot`]).
pub(crate) fn take(p: &Persistence, accounts: &ShardedAccounts) -> io::Result<SnapshotInfo> {
    let manifest = p.manifest();
    assert_eq!(
        accounts.len(),
        manifest.clients,
        "snapshot: client count mismatch"
    );
    assert_eq!(
        accounts.shard_count(),
        manifest.shards,
        "snapshot: shard count mismatch"
    );
    if p.snapshot_poisoned().load(Ordering::SeqCst) {
        return Err(io::Error::other(
            "snapshotting disabled after an injected mid-snapshot crash",
        ));
    }

    let id = p.next_snapshot_id().fetch_add(1, Ordering::SeqCst);
    // Read *before* freezing anything: every record not yet covered by
    // the copies below is in this segment or a later one.
    let first_segment = p.active_segment().load(Ordering::SeqCst);

    let mut shards = Vec::with_capacity(manifest.shards);
    for s in 0..manifest.shards {
        let t0 = std::time::Instant::now();
        let (watermark, granted, burned) = p.freeze_shard(s);
        let balances: Vec<i64> = accounts
            .shard_accounts(s)
            .iter()
            .map(|a| a.balance())
            .collect();
        p.unfreeze_shard(s);
        if let Some(h) = p.shared().telem.get() {
            h.incr(crate::telem::c::SNAPSHOT_FREEZES);
            h.add(
                crate::telem::c::SNAPSHOT_FREEZE_NS,
                t0.elapsed().as_nanos() as u64,
            );
        }
        shards.push(ShardSnap {
            watermark,
            granted,
            burned,
            balances,
        });
    }

    let bytes = encode(
        id,
        first_segment,
        manifest.clients as u64,
        &shards,
        p.cfg().faults.poison_books,
    );
    let path = snapshot_path(&p.cfg().dir, id);

    if p.cfg().faults.crash_mid_snapshot {
        // Die half-way through the tmp write: no rename, and no further
        // snapshots — recovery must fall back past the partial file.
        let tmp = tmp_path(&path);
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes[..bytes.len() / 2])?;
        f.sync_data()?;
        p.snapshot_poisoned().store(true, Ordering::SeqCst);
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            "fault: crash_mid_snapshot",
        ));
    }

    atomic_write(&path, &bytes)?;

    // Retention: keep the newest two snapshots; retire segments older
    // than the *older* retained snapshot's first segment, so even if the
    // newest snapshot file is later corrupted, the previous snapshot
    // plus the surviving segments still reconstruct the full state.
    let (delete_below, drop_snaps) = {
        let mut snaps = p.snapshots().lock().expect("snapshot registry");
        snaps.push(SnapMeta { id, first_segment });
        snaps.sort_unstable_by_key(|m| m.id);
        let keep_from = snaps.len().saturating_sub(2);
        let dropped: Vec<SnapMeta> = snaps.drain(..keep_from).collect();
        let delete_below = if snaps.len() == 2 {
            snaps[0].first_segment
        } else {
            0
        };
        (delete_below, dropped)
    };
    for m in &drop_snaps {
        let _ = fs::remove_file(snapshot_path(&p.cfg().dir, m.id));
    }
    if !drop_snaps.is_empty() {
        sync_dir(&p.cfg().dir)?;
    }

    // Rotate the journal onto a fresh segment and retire fully-covered
    // ones. Counting retired segments from the listing delta keeps the
    // writer protocol simple.
    let before = super::journal::list_segments(&p.cfg().dir)?.len() as u64;
    let (ack, done) = channel();
    p.writer_tx()
        .send(WriterMsg::Rotate { delete_below, ack })
        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "journal writer is gone"))?;
    done.recv()
        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "journal writer died"))??;
    let after = super::journal::list_segments(&p.cfg().dir)?.len() as u64;
    // The rotate added one segment; anything else that vanished was
    // retirement.
    let retired_segments = (before + 1).saturating_sub(after);

    Ok(SnapshotInfo {
        id,
        bytes: bytes.len() as u64,
        retired_segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotData {
        SnapshotData {
            id: 7,
            first_segment: 3,
            clients: 5,
            shards: vec![
                ShardSnap {
                    watermark: 100,
                    granted: 120,
                    burned: 20,
                    balances: vec![10, 20, 70],
                },
                ShardSnap {
                    watermark: 40,
                    granted: 9,
                    burned: 2,
                    balances: vec![3, -1],
                },
            ],
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let dir = std::env::temp_dir().join(format!("ta-snap-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let want = sample();
        let bytes = encode(
            want.id,
            want.first_segment,
            want.clients,
            &want.shards,
            false,
        );
        let path = snapshot_path(&dir, want.id);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(load(&path).unwrap(), want);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_truncated_snapshots_are_rejected() {
        let dir = std::env::temp_dir().join(format!("ta-snap-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let want = sample();
        let bytes = encode(
            want.id,
            want.first_segment,
            want.clients,
            &want.shards,
            false,
        );
        let path = snapshot_path(&dir, 1);
        // Truncations at every length must fail (never half-load).
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(load(&path).is_err(), "cut at {cut}");
        }
        // Any single flipped byte must fail the CRC.
        for i in (0..bytes.len()).step_by(13) {
            let mut b = bytes.clone();
            b[i] ^= 0x10;
            std::fs::write(&path, &b).unwrap();
            assert!(load(&path).is_err(), "flip at {i}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_books_still_crc_valid() {
        let dir = std::env::temp_dir().join(format!("ta-snap-poison-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let want = sample();
        let bytes = encode(
            want.id,
            want.first_segment,
            want.clients,
            &want.shards,
            true,
        );
        let path = snapshot_path(&dir, 2);
        std::fs::write(&path, &bytes).unwrap();
        let got = load(&path).unwrap();
        assert_eq!(got.shards[0].granted, want.shards[0].granted + 1);
        assert_eq!(got.shards[1], want.shards[1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
