//! Append-only CRC-framed grant/spend journal.
//!
//! ## On-disk format
//!
//! A journal is a directory of segment files `journal-<id:08x>.taj`
//! (rotated at snapshot boundaries). A segment is a sequence of frames
//! of two kinds, all little-endian:
//!
//! ```text
//! delta frame ("TAJF") — reactive burns, 8 B records:
//! +--------+--------+--------+----------+==================+--------+
//! | magic  | shard  | count  | base_seq | count × record   |  crc32 |
//! |  u32   |  u32   |  u32   |   u64    |                  |  u32   |
//! +--------+--------+--------+----------+==================+--------+
//!                             | seq_off u16 | delta i16 | client u32 |
//!
//! range frame ("TAJR") — run-length granter sweeps, 16 B records:
//! +--------+--------+--------+=================+--------+
//! | magic  | shard  | count  | count × record  |  crc32 |
//! |  u32   |  u32   |  u32   |                 |  u32   |
//! +--------+--------+--------+=================+--------+
//!                            | seq u64 | lo u32 | len u32 |
//! ```
//!
//! A delta record's sequence is `base_seq + seq_off`; a range record
//! means `+1` token to every client in `[lo, lo + len)` under one
//! sequence number. The CRC covers `shard..payload` (everything
//! between the magic and the CRC itself). A torn write — a frame cut
//! off mid-record or a frame whose CRC fails — marks the end of the
//! usable journal: readers keep everything before it and drop
//! everything after.
//!
//! ## Write path
//!
//! Producers buffer [`DeltaRec`]s locally per shard (no lock, no
//! syscall) and hand full buffers to a dedicated writer thread over a
//! channel. The writer encodes frames into a pending byte buffer and
//! commits (one `write` + optional `fsync`) once per group-commit
//! interval. Records in producer buffers or in an uncommitted batch at
//! kill time are lost; recovery restores the exact surviving prefix.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::faults::FaultPlan;
use super::{crc32, EpochCell, PersistConfig, PersistShared};
use crate::health::{Component, HealthState, OnJournalFail};
use crate::telem::{c, g, h as th};

/// One journalled balance change: `delta` tokens (positive = grant,
/// negative = reactive spend) applied to `client`, stamped with the
/// owning shard's monotonic sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRec {
    /// Per-shard monotonic sequence (dense from 0 in a fresh domain).
    pub seq: u64,
    /// Client account id.
    pub client: u32,
    /// Signed token delta.
    pub delta: i32,
}

/// One journalled *range grant*: `+1` token to every client in
/// `[lo, lo + len)`, as one record. The granter's round sweep banks a
/// token into almost every account of a shard each round; run-length
/// encoding that dense stream keeps the journal ~3 orders of magnitude
/// smaller than per-client `+1` deltas (and the writer thread idle
/// instead of saturating a core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeRec {
    /// Per-shard monotonic sequence (one per range record).
    pub seq: u64,
    /// First client of the granted run.
    pub lo: u32,
    /// Number of consecutive clients granted `+1`.
    pub len: u32,
}

/// Delta-frame magic: "TAJF".
pub const FRAME_MAGIC: u32 = 0x5441_4A46;
/// Range-frame magic: "TAJR".
pub const RANGE_MAGIC: u32 = 0x5441_4A52;
/// Bytes per compact delta record (`seq_off u16 | delta i16 | client
/// u32`; the full `u64` base sequence lives once in the frame header).
pub const DELTA_REC_BYTES: usize = 8;
/// Bytes per range record (`seq u64 | lo u32 | len u32`).
pub const RANGE_REC_BYTES: usize = 16;
/// Delta-frame overhead (magic + shard + count + base_seq + crc).
pub const DELTA_FRAME_OVERHEAD: usize = 24;
/// Range-frame overhead (magic + shard + count + crc).
pub const RANGE_FRAME_OVERHEAD: usize = 16;

/// Appends encoded delta frames for `shard` to `out`, returning how
/// many frames were written (≥ 1). Records are packed to 8 bytes: the
/// header carries the first record's sequence in full, each record only
/// its `u16` offset from it. The producer flushes its buffer before
/// that window or an `i16` delta would overflow, so one batch is one
/// frame in practice — but no input may kill the writer from the encode
/// path, so a record past the offset window forces a frame split and a
/// delta wider than `i16` is split across wire records under the same
/// sequence (the recovery fold sums them back). Reactive burns dominate
/// journal volume at full load; halving their wire size halves the
/// writer's `write(2)` traffic, which profiling shows is where journal
/// overhead actually lives.
pub fn encode_frame(shard: u32, recs: &[DeltaRec], out: &mut Vec<u8>) -> usize {
    let mut frames = 0usize;
    let mut i = 0usize;
    loop {
        let base = recs.get(i).map_or(0, |r| r.seq);
        let start = out.len();
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&shard.to_le_bytes());
        let count_pos = out.len();
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&base.to_le_bytes());
        let mut count = 0u32;
        while let Some(r) = recs.get(i) {
            let off = match r.seq.checked_sub(base).and_then(|d| u16::try_from(d).ok()) {
                Some(off) => off,
                None => break, // outside this frame's window: split
            };
            let mut rem = r.delta;
            loop {
                let chunk = rem.clamp(i32::from(i16::MIN), i32::from(i16::MAX));
                out.extend_from_slice(&off.to_le_bytes());
                out.extend_from_slice(&(chunk as i16).to_le_bytes());
                out.extend_from_slice(&r.client.to_le_bytes());
                count += 1;
                rem -= chunk;
                if rem == 0 {
                    break;
                }
            }
            i += 1;
        }
        out[count_pos..count_pos + 4].copy_from_slice(&count.to_le_bytes());
        let crc = crc32(&out[start + 4..]);
        out.extend_from_slice(&crc.to_le_bytes());
        frames += 1;
        if i >= recs.len() {
            return frames;
        }
    }
}

/// Appends one encoded range frame for `shard` to `out`. Range records
/// keep the full 16-byte layout: there are ~3 orders of magnitude fewer
/// of them than delta records, so compacting them buys nothing.
pub fn encode_range_frame(shard: u32, recs: &[RangeRec], out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&RANGE_MAGIC.to_le_bytes());
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&(recs.len() as u32).to_le_bytes());
    for r in recs {
        out.extend_from_slice(&r.seq.to_le_bytes());
        out.extend_from_slice(&r.lo.to_le_bytes());
        out.extend_from_slice(&r.len.to_le_bytes());
    }
    let crc = crc32(&out[start + 4..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// The records a frame carries, by frame kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramePayload {
    /// Per-client signed deltas ("TAJF").
    Deltas(Vec<DeltaRec>),
    /// Run-length `+1` grants ("TAJR").
    Ranges(Vec<RangeRec>),
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFrame {
    /// Shard every record in this frame belongs to.
    pub shard: u32,
    /// The decoded records.
    pub payload: FramePayload,
}

/// Why a segment scan stopped before the end of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The file ends inside a frame (torn tail).
    Torn,
    /// A frame starts with the wrong magic.
    BadMagic,
    /// A frame's CRC does not match its contents.
    BadCrc,
}

/// Result of scanning one segment: the complete valid frames, the byte
/// length they occupy, and the reason the scan stopped early (if it
/// did — `None` means the file ended exactly on a frame boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// Valid frames, in file order.
    pub frames: Vec<ParsedFrame>,
    /// Bytes of `frames` (the usable prefix length).
    pub valid_len: usize,
    /// Set if bytes remain past the usable prefix.
    pub error: Option<FrameError>,
}

/// Scans raw segment bytes into frames, stopping at the first torn or
/// corrupt frame.
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let error = loop {
        if pos == bytes.len() {
            break None;
        }
        if bytes.len() - pos < 12 {
            break Some(FrameError::Torn);
        }
        let magic = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if magic != FRAME_MAGIC && magic != RANGE_MAGIC {
            break Some(FrameError::BadMagic);
        }
        let shard = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let count = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().unwrap()) as usize;
        let frame_len = if magic == FRAME_MAGIC {
            DELTA_FRAME_OVERHEAD + count * DELTA_REC_BYTES
        } else {
            RANGE_FRAME_OVERHEAD + count * RANGE_REC_BYTES
        };
        if bytes.len() - pos < frame_len {
            break Some(FrameError::Torn);
        }
        let payload_end = pos + frame_len - 4;
        let crc = u32::from_le_bytes(bytes[payload_end..payload_end + 4].try_into().unwrap());
        if crc != crc32(&bytes[pos + 4..payload_end]) {
            break Some(FrameError::BadCrc);
        }
        let payload = if magic == FRAME_MAGIC {
            let base = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().unwrap());
            let mut rp = pos + 20;
            let mut recs = Vec::with_capacity(count);
            for _ in 0..count {
                let off = u16::from_le_bytes(bytes[rp..rp + 2].try_into().unwrap());
                let delta = i16::from_le_bytes(bytes[rp + 2..rp + 4].try_into().unwrap());
                let client = u32::from_le_bytes(bytes[rp + 4..rp + 8].try_into().unwrap());
                recs.push(DeltaRec {
                    seq: base + u64::from(off),
                    client,
                    delta: i32::from(delta),
                });
                rp += DELTA_REC_BYTES;
            }
            FramePayload::Deltas(recs)
        } else {
            let mut rp = pos + 12;
            let mut recs = Vec::with_capacity(count);
            for _ in 0..count {
                recs.push(RangeRec {
                    seq: u64::from_le_bytes(bytes[rp..rp + 8].try_into().unwrap()),
                    lo: u32::from_le_bytes(bytes[rp + 8..rp + 12].try_into().unwrap()),
                    len: u32::from_le_bytes(bytes[rp + 12..rp + 16].try_into().unwrap()),
                });
                rp += RANGE_REC_BYTES;
            }
            FramePayload::Ranges(recs)
        };
        frames.push(ParsedFrame { shard, payload });
        pos += frame_len;
    };
    SegmentScan {
        frames,
        valid_len: pos,
        error,
    }
}

/// Path of journal segment `id` inside `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("journal-{id:08x}.taj"))
}

/// Lists journal segments in `dir`, sorted by id.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(hex) = name
            .strip_prefix("journal-")
            .and_then(|rest| rest.strip_suffix(".taj"))
        {
            if let Ok(id) = u64::from_str_radix(hex, 16) {
                out.push((id, entry.path()));
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Lifetime statistics of one journal writer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records written to the OS.
    pub records: u64,
    /// Frames written.
    pub frames: u64,
    /// Bytes written.
    pub bytes: u64,
    /// fsync calls issued.
    pub syncs: u64,
    /// Segment files written to (≥ 1 once anything was journalled).
    pub segments: u64,
}

/// Messages from producers / the snapshotter to the writer thread.
#[derive(Debug)]
pub(crate) enum WriterMsg {
    /// A producer's shard buffer of per-client deltas. `sent_ns` is the
    /// enqueue timestamp ([`ta_telemetry::mono_ns`]); the writer turns it
    /// into the enqueue→commit wait histogram at group-commit time.
    Batch {
        shard: u32,
        recs: Vec<DeltaRec>,
        sent_ns: u64,
    },
    /// A producer's shard buffer of run-length grants (same `sent_ns`
    /// contract as [`WriterMsg::Batch`]).
    BatchRange {
        shard: u32,
        recs: Vec<RangeRec>,
        sent_ns: u64,
    },
    /// Commit, close the current segment, open the next one, and delete
    /// segments with id below `delete_below`.
    Rotate {
        delete_below: u64,
        ack: Sender<io::Result<()>>,
    },
    /// Commit + fsync everything received so far, then ack.
    Sync(Sender<io::Result<()>>),
    /// Final commit + fsync, then exit with stats.
    Shutdown,
    /// Drop all pending bytes and exit immediately (simulated kill).
    Crash,
}

/// Spawns the journal writer on segment `first_segment`, mirroring the
/// currently-open segment id into `active_segment`.
pub(crate) fn spawn_writer(
    cfg: PersistConfig,
    rx: Receiver<WriterMsg>,
    first_segment: u64,
    active_segment: Arc<AtomicU64>,
    shared: Arc<PersistShared>,
) -> io::Result<JoinHandle<io::Result<JournalStats>>> {
    let file = open_segment(&cfg.dir, first_segment)?;
    std::thread::Builder::new()
        .name("ta-journal".into())
        .spawn(move || writer_loop(cfg, rx, file, first_segment, active_segment, shared))
}

fn open_segment(dir: &Path, id: u64) -> io::Result<File> {
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(segment_path(dir, id))
}

/// How many times a retryable IO error is retried before the writer
/// escalates to its failure policy.
const MAX_IO_RETRIES: u32 = 10;
/// How many consecutive failed attempts an injected `enospc_after`
/// outage lasts before space "returns" for good (write attempts and
/// restart probes both count), keeping chaos runs deterministic in
/// attempts rather than wall time.
const ENOSPC_OUTAGE_ATTEMPTS: u32 = 6;
/// How long the injected `writer_hang` fault stalls the writer — past
/// the supervisor's heartbeat deadline, so the hang is visible as a
/// Degraded→Healthy cycle.
const WRITER_HANG: Duration = Duration::from_millis(800);
/// Restart-probe backoff bounds while the writer is draining.
const PROBE_INITIAL: Duration = Duration::from_millis(50);
const PROBE_MAX: Duration = Duration::from_millis(500);

/// Deterministic transient-fault injection in front of the writer's
/// `write(2)` calls (see [`FaultPlan`]'s transient modes). `injected`
/// counts every perturbation; the writer publishes it as the
/// `faults_injected` counter so CI can assert injection/health-counter
/// agreement.
#[derive(Debug)]
struct IoShim {
    io_errors_left: u32,
    enospc_at: u64,
    enospc_tripped: bool,
    enospc_fails_left: u32,
    slow_ms: u64,
    hang_pending: bool,
    bytes: u64,
    injected: u64,
}

impl IoShim {
    fn new(faults: &FaultPlan) -> Self {
        IoShim {
            io_errors_left: faults.io_error_n,
            enospc_at: if faults.enospc_after == 0 {
                u64::MAX
            } else {
                faults.enospc_after
            },
            enospc_tripped: false,
            enospc_fails_left: ENOSPC_OUTAGE_ATTEMPTS,
            slow_ms: faults.slow_io_ms,
            hang_pending: faults.writer_hang,
            bytes: 0,
            injected: 0,
        }
    }

    /// Consults the shim before a write of `len` bytes (0 = a restart
    /// probe). `Err` means the fault fired instead of the write.
    fn check(&mut self, len: usize) -> io::Result<()> {
        if self.hang_pending {
            self.hang_pending = false;
            self.injected += 1;
            std::thread::sleep(WRITER_HANG);
        }
        if self.slow_ms > 0 && len > 0 {
            self.injected += 1;
            std::thread::sleep(Duration::from_millis(self.slow_ms));
        }
        if self.io_errors_left > 0 {
            self.io_errors_left -= 1;
            self.injected += 1;
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient io error",
            ));
        }
        if self.enospc_at != u64::MAX
            && (self.enospc_tripped || self.bytes + len as u64 > self.enospc_at)
        {
            self.enospc_tripped = true;
            if self.enospc_fails_left > 0 {
                self.enospc_fails_left -= 1;
                self.injected += 1;
                return Err(io::Error::other("injected disk full (ENOSPC)"));
            }
            // The outage is over: space returns for good.
            self.enospc_at = u64::MAX;
            self.enospc_tripped = false;
        }
        self.bytes += len as u64;
        Ok(())
    }
}

/// True for error kinds worth retrying with backoff (transient by
/// nature); everything else escalates straight to the failure policy.
fn retryable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Bounded exponential backoff with multiplicative jitter: 1 ms
/// doubling to a 100 ms cap, plus up to 25% from a cheap LCG so
/// concurrent retriers don't thunder in phase.
fn backoff_delay(attempt: u32, seed: &mut u64) -> Duration {
    let base_us = (1u64 << attempt.saturating_sub(1).min(20)).min(100) * 1000;
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let jitter_us = (*seed >> 33) % (base_us / 4 + 1);
    Duration::from_micros(base_us + jitter_us)
}

struct Writer {
    cfg: PersistConfig,
    file: File,
    segment: u64,
    pending: Vec<u8>,
    /// Enqueue timestamps of batches encoded into `pending` but not yet
    /// committed; drained into the enqueue→commit histogram at commit.
    pending_sent: Vec<u64>,
    /// Logical records encoded into `pending` but not yet committed
    /// (what gets counted as dropped if the writer fails here).
    pending_records: u64,
    stats: JournalStats,
    committed_frames: u64,
    shared: Arc<PersistShared>,
    shim: IoShim,
    /// Degraded drain mode: durability suspended, batches dropped and
    /// counted, periodic probes for disk recovery.
    draining: bool,
    probe_at: Option<Instant>,
    probe_backoff: Duration,
    jitter_seed: u64,
}

impl Writer {
    /// Writes and (configurably) fsyncs the pending buffer.
    fn commit(&mut self) -> io::Result<()> {
        if !self.pending.is_empty() {
            self.shim_check(self.pending.len())?;
            match self.shared.telem.get() {
                Some(h) => {
                    let t0 = Instant::now();
                    self.file.write_all(&self.pending)?;
                    h.add(c::JOURNAL_FLUSH_NS, t0.elapsed().as_nanos() as u64);
                    h.incr(c::JOURNAL_FLUSHES);
                }
                None => self.file.write_all(&self.pending)?,
            }
            self.stats.bytes += self.pending.len() as u64;
            self.pending.clear();
            self.pending_records = 0;
        }
        if self.cfg.fsync && !self.cfg.faults.drop_fsync {
            self.fsync()?;
        }
        // The group-commit wait per batch: enqueue to durable write. The
        // list drains even without telemetry so it cannot grow unbounded.
        if let Some(h) = self.shared.telem.get() {
            let now = ta_telemetry::mono_ns();
            for sent in &self.pending_sent {
                h.hist_record(th::JOURNAL_COMMIT_NS, now.saturating_sub(*sent));
            }
        }
        self.pending_sent.clear();
        Ok(())
    }

    /// One timed, counted `sync_data` (durability points only).
    fn fsync(&mut self) -> io::Result<()> {
        match self.shared.telem.get() {
            Some(h) => {
                let t0 = Instant::now();
                self.file.sync_data()?;
                let elapsed = t0.elapsed().as_nanos() as u64;
                h.add(c::JOURNAL_FSYNC_NS, elapsed);
                h.incr(c::JOURNAL_FSYNCS);
                h.hist_record(th::FSYNC_NS, elapsed);
            }
            None => self.file.sync_data()?,
        }
        self.stats.syncs += 1;
        Ok(())
    }

    /// Runs the fault shim in front of a write of `len` bytes,
    /// publishing any perturbations it injected.
    fn shim_check(&mut self, len: usize) -> io::Result<()> {
        let before = self.shim.injected;
        let res = self.shim.check(len);
        let delta = self.shim.injected - before;
        if delta > 0 {
            if let Some(h) = self.shared.telem.get() {
                h.add(c::FAULTS_INJECTED, delta);
            }
        }
        res
    }

    /// Commits with the self-healing envelope: retryable IO errors are
    /// retried with bounded exponential backoff + jitter; persistent
    /// failure escalates to the health board's journal policy and flips
    /// the writer into drain mode instead of killing the thread. With
    /// no board attached (tests, bench harnesses) the first error
    /// propagates exactly as it always did.
    fn commit_guarded(&mut self) -> io::Result<()> {
        if self.draining {
            self.drop_pending();
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            let err = match self.commit() {
                Ok(()) => {
                    if attempt > 0 {
                        // Recovered within the retry budget: clear the
                        // Degraded mark the retry loop set.
                        if let Some(board) = self.shared.health.get() {
                            if board.state(Component::JournalWriter) == HealthState::Degraded {
                                board.set_state(Component::JournalWriter, HealthState::Healthy);
                            }
                        }
                    }
                    return Ok(());
                }
                Err(e) => e,
            };
            if let Some(h) = self.shared.telem.get() {
                h.incr(c::JOURNAL_IO_ERRORS);
            }
            let Some(board) = self.shared.health.get() else {
                return Err(err);
            };
            board.beat(Component::JournalWriter);
            if retryable(err.kind()) && attempt < MAX_IO_RETRIES {
                attempt += 1;
                if let Some(h) = self.shared.telem.get() {
                    h.incr(c::JOURNAL_IO_RETRIES);
                }
                if board.state(Component::JournalWriter) == HealthState::Healthy {
                    board.set_state(Component::JournalWriter, HealthState::Degraded);
                }
                std::thread::sleep(backoff_delay(attempt, &mut self.jitter_seed));
                continue;
            }
            self.enter_drain();
            return Ok(());
        }
    }

    /// Escalation: enact the journal failure policy and switch to drain
    /// mode (drop-and-count batches, probe for disk recovery).
    fn enter_drain(&mut self) {
        if let Some(board) = self.shared.health.get() {
            board.journal_failed();
        }
        self.drop_pending();
        self.draining = true;
        self.probe_backoff = PROBE_INITIAL;
        self.probe_at = Some(Instant::now() + self.probe_backoff);
    }

    /// Drops the uncommitted pending buffer, counting its records.
    fn drop_pending(&mut self) {
        if self.pending_records > 0 {
            if let Some(h) = self.shared.telem.get() {
                h.add(c::JOURNAL_DROPPED_RECORDS, self.pending_records);
            }
        }
        self.pending.clear();
        self.pending_sent.clear();
        self.pending_records = 0;
    }

    /// Drain-mode handling of one incoming batch: consume it, count its
    /// records as dropped, and keep the queue-depth gauge balanced.
    fn drop_batch(&mut self, records: u64) {
        if let Some(h) = self.shared.telem.get() {
            h.add(c::JOURNAL_DROPPED_RECORDS, records);
            h.gauge_add(g::JOURNAL_QUEUE_DEPTH, -1);
        }
    }

    /// While draining under the degrade policy: probe the disk with
    /// capped backoff; on success restart onto a fresh segment and
    /// resume durability.
    fn maybe_probe(&mut self, active_segment: &AtomicU64) {
        if !self.draining {
            return;
        }
        let due = self.probe_at.is_some_and(|at| Instant::now() >= at);
        if !due {
            return;
        }
        let Some(board) = self.shared.health.get().cloned() else {
            self.probe_at = None;
            return;
        };
        if board.policy() != OnJournalFail::Degrade {
            // halt/exit: the run is winding down; no restart.
            self.probe_at = None;
            return;
        }
        board.beat(Component::JournalWriter);
        let probe = self.shim_check(0).and_then(|()| {
            let file = open_segment(&self.cfg.dir, self.segment + 1)?;
            super::sync_dir(&self.cfg.dir)?;
            Ok(file)
        });
        match probe {
            Ok(file) => {
                self.segment += 1;
                self.file = file;
                self.stats.segments += 1;
                active_segment.store(self.segment, Ordering::SeqCst);
                self.draining = false;
                self.probe_at = None;
                board.journal_recovered();
                if let Some(h) = self.shared.telem.get() {
                    h.incr(c::JOURNAL_WRITER_RESTARTS);
                }
            }
            Err(_) => {
                self.probe_backoff = (self.probe_backoff * 2).min(PROBE_MAX);
                self.probe_at = Some(Instant::now() + self.probe_backoff);
            }
        }
    }

    /// Frame-level accounting after encoding one batch (`frames` frames
    /// — more than one when the encoder had to split) into `pending`.
    fn note_frame(&mut self, range: bool, encoded: usize, frames: u64) {
        if let Some(h) = self.shared.telem.get() {
            if range {
                h.add(c::JOURNAL_FRAMES_RANGE, frames);
                h.add(c::JOURNAL_BYTES_RANGE, encoded as u64);
            } else {
                h.add(c::JOURNAL_FRAMES_DELTA, frames);
                h.add(c::JOURNAL_BYTES_DELTA, encoded as u64);
            }
            h.gauge_add(g::JOURNAL_QUEUE_DEPTH, -1);
        }
    }

    /// The `kill_writer_mid_frame` fault: after at least two committed
    /// frames, write the pending bytes plus *half* of the next frame,
    /// make the torn tail durable, and die.
    fn die_mid_frame(&mut self, frame: &[u8]) -> io::Result<JournalStats> {
        self.file.write_all(&self.pending)?;
        self.file.write_all(&frame[..frame.len() / 2])?;
        self.file.sync_data()?;
        self.pending.clear();
        Ok(self.stats)
    }

    fn rotate(&mut self, delete_below: u64) -> io::Result<()> {
        self.commit_guarded()?;
        if self.draining {
            return Err(io::Error::other("journal degraded: durability suspended"));
        }
        self.segment += 1;
        self.file = open_segment(&self.cfg.dir, self.segment)?;
        for (id, path) in list_segments(&self.cfg.dir)? {
            if id < delete_below {
                fs::remove_file(path)?;
            }
        }
        super::sync_dir(&self.cfg.dir)
    }
}

fn writer_loop(
    cfg: PersistConfig,
    rx: Receiver<WriterMsg>,
    file: File,
    first_segment: u64,
    active_segment: Arc<AtomicU64>,
    shared: Arc<PersistShared>,
) -> io::Result<JournalStats> {
    let group = cfg.group_commit.max(Duration::from_micros(100));
    let shim = IoShim::new(&cfg.faults);
    let jitter_seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0x9E37_79B9, |d| d.subsec_nanos() as u64)
        | 1;
    let mut w = Writer {
        cfg,
        file,
        segment: first_segment,
        pending: Vec::with_capacity(64 * 1024),
        pending_sent: Vec::new(),
        pending_records: 0,
        stats: JournalStats {
            segments: 1,
            ..JournalStats::default()
        },
        committed_frames: 0,
        shared,
        shim,
        draining: false,
        probe_at: None,
        probe_backoff: PROBE_INITIAL,
        jitter_seed,
    };
    let mut deadline = Instant::now() + group;
    loop {
        if let Some(board) = w.shared.health.get() {
            board.beat(Component::JournalWriter);
        }
        let timeout = deadline.saturating_duration_since(Instant::now());
        // Block for the first message, then drain greedily with
        // try_recv: a burst of producer flushes costs one wakeup, not
        // one park/unpark round trip per send. Draining batches does
        // NOT commit — bytes accumulate in `pending` until the group
        // deadline (or an explicit Sync/Rotate/Shutdown).
        let mut msg = match rx.recv_timeout(timeout.min(group)) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => {
                w.commit_guarded()?;
                w.maybe_probe(&active_segment);
                deadline = Instant::now() + group;
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => {
                w.commit_guarded()?;
                return Ok(w.stats);
            }
        };
        loop {
            match msg {
                WriterMsg::Batch {
                    shard,
                    recs,
                    sent_ns,
                } => {
                    if w.draining {
                        w.drop_batch(recs.len() as u64);
                    } else {
                        if w.cfg.faults.kill_writer_mid_frame && w.committed_frames >= 2 {
                            let mut frame = Vec::new();
                            encode_frame(shard, &recs, &mut frame);
                            return w.die_mid_frame(&frame);
                        }
                        let before = w.pending.len();
                        let frames = encode_frame(shard, &recs, &mut w.pending) as u64;
                        w.note_frame(false, w.pending.len() - before, frames);
                        w.pending_sent.push(sent_ns);
                        w.pending_records += recs.len() as u64;
                        w.stats.frames += frames;
                        w.stats.records += recs.len() as u64;
                        w.committed_frames += frames;
                    }
                }
                WriterMsg::BatchRange {
                    shard,
                    recs,
                    sent_ns,
                } => {
                    if w.draining {
                        w.drop_batch(recs.len() as u64);
                    } else {
                        if w.cfg.faults.kill_writer_mid_frame && w.committed_frames >= 2 {
                            let mut frame = Vec::new();
                            encode_range_frame(shard, &recs, &mut frame);
                            return w.die_mid_frame(&frame);
                        }
                        let before = w.pending.len();
                        encode_range_frame(shard, &recs, &mut w.pending);
                        w.note_frame(true, w.pending.len() - before, 1);
                        w.pending_sent.push(sent_ns);
                        w.pending_records += recs.len() as u64;
                        w.stats.frames += 1;
                        w.stats.records += recs.len() as u64;
                        w.committed_frames += 1;
                    }
                }
                WriterMsg::Rotate { delete_below, ack } => {
                    if w.draining {
                        let _ =
                            ack.send(Err(io::Error::other("journal degraded: rotation refused")));
                    } else {
                        let res = w.rotate(delete_below);
                        let ok = res.is_ok();
                        match (ok, w.shared.health.get()) {
                            (true, _) => {
                                let _ = ack.send(res);
                                w.stats.segments += 1;
                                active_segment.store(w.segment, Ordering::SeqCst);
                                deadline = Instant::now() + group;
                            }
                            (false, Some(_)) => {
                                // Supervised: survive the failed rotation
                                // in drain mode (commit_guarded may have
                                // already escalated; this is idempotent).
                                w.enter_drain();
                                let _ = ack.send(res);
                            }
                            (false, None) => {
                                let _ = ack.send(res);
                                return Ok(w.stats);
                            }
                        }
                    }
                }
                WriterMsg::Sync(ack) => {
                    if w.draining {
                        let _ = ack.send(Err(io::Error::other("journal degraded: sync refused")));
                    } else {
                        let mut res = w.commit_guarded();
                        if res.is_ok() && w.draining {
                            res = Err(io::Error::other("journal degraded: sync refused"));
                        }
                        if res.is_ok() && !w.cfg.fsync && !w.cfg.faults.drop_fsync {
                            // `sync` promises durability even when periodic
                            // fsync is off.
                            res = w.fsync();
                        }
                        let _ = ack.send(res);
                        deadline = Instant::now() + group;
                    }
                }
                WriterMsg::Shutdown => {
                    w.commit_guarded()?;
                    if !w.draining && !w.cfg.fsync && !w.cfg.faults.drop_fsync {
                        if let Err(e) = w.fsync() {
                            if w.shared.health.get().is_none() {
                                return Err(e);
                            }
                            w.enter_drain();
                        }
                    }
                    return Ok(w.stats);
                }
                WriterMsg::Crash => {
                    // Pending bytes die with us: no write, no fsync.
                    return Ok(w.stats);
                }
            }
            // A saturated channel must not starve the group-commit
            // deadline: commit mid-drain once it passes. Beat here too —
            // a saturated channel must not starve the heartbeat either.
            if Instant::now() >= deadline {
                if let Some(board) = w.shared.health.get() {
                    board.beat(Component::JournalWriter);
                }
                w.commit_guarded()?;
                deadline = Instant::now() + group;
            }
            match rx.try_recv() {
                Ok(m) => msg = m,
                Err(_) => break,
            }
        }
        w.maybe_probe(&active_segment);
    }
}

/// One producer's handle to the journal: per-shard bounded buffers, an
/// epoch cell for snapshot fencing, and a channel to the writer.
///
/// The owning thread brackets every balance-changing operation with
/// [`enter`](Self::enter) / [`exit`](Self::exit) and publishes each
/// delta with [`record`](Self::record) *between* applying it to the
/// account and exiting. Handles flush on drop.
#[derive(Debug)]
pub struct JournalHandle {
    shared: Arc<PersistShared>,
    tx: Sender<WriterMsg>,
    cell: Arc<EpochCell>,
    bufs: Vec<Vec<DeltaRec>>,
    range_bufs: Vec<Vec<RangeRec>>,
    cap: usize,
    records: u64,
    depth: u32,
}

impl JournalHandle {
    pub(crate) fn new(shared: Arc<PersistShared>, tx: Sender<WriterMsg>) -> Self {
        let cell = Arc::new(EpochCell::default());
        shared
            .epochs
            .lock()
            .expect("epoch registry")
            .push(Arc::clone(&cell));
        let shards = shared.shards.len();
        let cap = shared.buffer_cap;
        JournalHandle {
            shared,
            tx,
            cell,
            bufs: (0..shards).map(|_| Vec::with_capacity(cap)).collect(),
            range_bufs: (0..shards).map(|_| Vec::new()).collect(),
            cap,
            records: 0,
            depth: 0,
        }
    }

    /// Enters a journalled operation on `shard`: spins while the shard
    /// is fenced by the snapshotter (microseconds — the time to copy
    /// one shard's balances), otherwise one uncontended atomic RMW.
    ///
    /// Nestable: inside an outer [`enter_bulk`](Self::enter_bulk) (or
    /// an outer `enter` of the *same* shard) the call is a plain
    /// counter increment — the bulk entry already verified no snapshot
    /// was in flight anywhere, and the producer has been visibly busy
    /// since, so no fence can have completed its quiesce against us.
    /// Nesting under a plain `enter` of a *different* shard is not
    /// allowed: that outer entry only checked its own shard's fence.
    #[inline]
    pub fn enter(&mut self, shard: usize) {
        if self.depth > 0 {
            self.depth += 1;
            return;
        }
        let fence = &self.shared.shards[shard].fenced;
        loop {
            self.cell.set_busy();
            if !fence.load(Ordering::SeqCst) {
                self.depth = 1;
                return;
            }
            // The snapshotter is copying this shard: step aside so it
            // can observe us idle, and wait the fence out.
            self.cell.set_idle();
            while fence.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
    }

    /// Enters a *bulk* epoch: the producer stays busy across a run of
    /// operations that may touch any shard, amortizing the two
    /// sequentially-consistent fence operations over the whole run.
    /// Checks the domain-wide pending-snapshot counter (instead of one
    /// shard's fence), so a bulk producer never starts a run while any
    /// snapshot is waiting. Callers must [`exit`](Self::exit) before
    /// blocking or sleeping and keep runs short (the snapshotter waits
    /// out the whole run).
    #[inline]
    pub fn enter_bulk(&mut self) {
        if self.depth > 0 {
            self.depth += 1;
            return;
        }
        let pending = &self.shared.snap_pending;
        loop {
            self.cell.set_busy();
            if pending.load(Ordering::SeqCst) == 0 {
                self.depth = 1;
                return;
            }
            self.cell.set_idle();
            while pending.load(Ordering::Relaxed) != 0 {
                std::hint::spin_loop();
            }
        }
    }

    /// Queue accounting for one batch handed to the writer (per ~cap
    /// records, not per record — the telemetry check is one cold load).
    #[inline]
    fn note_batch(&self) {
        if let Some(h) = self.shared.telem.get() {
            h.incr(c::JOURNAL_BATCHES);
            h.gauge_add(g::JOURNAL_QUEUE_DEPTH, 1);
        }
    }

    /// Leaves the current operation; the outermost exit publishes all
    /// its effects to the snapshotter.
    #[inline]
    pub fn exit(&mut self) {
        debug_assert!(self.depth > 0, "exit without matching enter");
        self.depth -= 1;
        if self.depth == 0 {
            self.cell.set_idle();
        }
    }

    /// Publishes one applied delta. Must be called between
    /// [`enter`](Self::enter)`(shard)` and [`exit`](Self::exit), after
    /// the balance change it describes. Deltas wider than an `i16` are
    /// split across records (token burns are bounded by small strategy
    /// balances, so this never fires in practice — but the compact wire
    /// format must not be able to lie).
    #[inline]
    pub fn record(&mut self, shard: usize, client: u32, delta: i32) {
        let mut rem = delta;
        loop {
            let chunk = rem.clamp(i32::from(i16::MIN), i32::from(i16::MAX));
            self.record_chunk(shard, client, chunk);
            rem -= chunk;
            if rem == 0 {
                return;
            }
        }
    }

    #[inline]
    fn record_chunk(&mut self, shard: usize, client: u32, delta: i32) {
        let st = &self.shared.shards[shard];
        let seq = st.seq.fetch_add(1, Ordering::Relaxed);
        if delta >= 0 {
            st.granted.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            st.burned
                .fetch_add(delta.unsigned_abs() as u64, Ordering::Relaxed);
        }
        let buf = &mut self.bufs[shard];
        // Flush early if this record cannot share the buffered frame's
        // base sequence (the wire offset is a u16; other producers on
        // the shard may have consumed the window in between).
        if buf
            .first()
            .is_some_and(|f| seq - f.seq > u64::from(u16::MAX))
        {
            let recs = std::mem::replace(buf, Vec::with_capacity(self.cap));
            let _ = self.tx.send(WriterMsg::Batch {
                shard: shard as u32,
                recs,
                sent_ns: ta_telemetry::mono_ns(),
            });
            self.note_batch();
        }
        let buf = &mut self.bufs[shard];
        buf.push(DeltaRec { seq, client, delta });
        self.records += 1;
        if buf.len() >= self.cap {
            let recs = std::mem::replace(buf, Vec::with_capacity(self.cap));
            let _ = self.tx.send(WriterMsg::Batch {
                shard: shard as u32,
                recs,
                sent_ns: ta_telemetry::mono_ns(),
            });
            self.note_batch();
        }
    }

    /// Publishes one applied run-length grant: `+1` to every client in
    /// `[lo, lo + len)`. Same fencing contract as
    /// [`record`](Self::record); one sequence number per range.
    #[inline]
    pub fn record_range(&mut self, shard: usize, lo: u32, len: u32) {
        if len == 0 {
            return;
        }
        let st = &self.shared.shards[shard];
        let seq = st.seq.fetch_add(1, Ordering::Relaxed);
        st.granted.fetch_add(u64::from(len), Ordering::Relaxed);
        let buf = &mut self.range_bufs[shard];
        buf.push(RangeRec { seq, lo, len });
        self.records += 1;
        if buf.len() >= self.cap {
            let recs = std::mem::replace(buf, Vec::with_capacity(self.cap));
            let _ = self.tx.send(WriterMsg::BatchRange {
                shard: shard as u32,
                recs,
                sent_ns: ta_telemetry::mono_ns(),
            });
            self.note_batch();
        }
    }

    /// Hands every non-empty buffer to the writer.
    pub fn flush(&mut self) {
        let mut sent = 0u64;
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let recs = std::mem::replace(buf, Vec::with_capacity(self.cap));
                let _ = self.tx.send(WriterMsg::Batch {
                    shard: shard as u32,
                    recs,
                    sent_ns: ta_telemetry::mono_ns(),
                });
                sent += 1;
            }
        }
        for (shard, buf) in self.range_bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let recs = std::mem::take(buf);
                let _ = self.tx.send(WriterMsg::BatchRange {
                    shard: shard as u32,
                    recs,
                    sent_ns: ta_telemetry::mono_ns(),
                });
                sent += 1;
            }
        }
        if sent > 0 {
            if let Some(h) = self.shared.telem.get() {
                h.add(c::JOURNAL_BATCHES, sent);
                h.gauge_add(g::JOURNAL_QUEUE_DEPTH, sent as i64);
            }
        }
    }

    /// Records published through this handle.
    pub fn records_published(&self) -> u64 {
        self.records
    }
}

impl Drop for JournalHandle {
    fn drop(&mut self) {
        self.flush();
        let mut cells = self.shared.epochs.lock().expect("epoch registry");
        cells.retain(|c| !Arc::ptr_eq(c, &self.cell));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: u64) -> Vec<DeltaRec> {
        (0..n)
            .map(|i| DeltaRec {
                seq: i,
                client: (i % 7) as u32,
                delta: if i % 3 == 0 {
                    -(i as i32 % 5)
                } else {
                    i as i32 % 11
                },
            })
            .collect()
    }

    #[test]
    fn frames_roundtrip() {
        let mut bytes = Vec::new();
        encode_frame(3, &recs(10), &mut bytes);
        encode_frame(0, &recs(1), &mut bytes);
        encode_frame(7, &[], &mut bytes);
        let ranges = vec![
            RangeRec {
                seq: 41,
                lo: 128,
                len: 1000,
            },
            RangeRec {
                seq: 42,
                lo: 1200,
                len: 1,
            },
        ];
        encode_range_frame(5, &ranges, &mut bytes);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.error, None);
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.frames.len(), 4);
        assert_eq!(scan.frames[0].shard, 3);
        assert_eq!(scan.frames[0].payload, FramePayload::Deltas(recs(10)));
        assert_eq!(scan.frames[1].payload, FramePayload::Deltas(recs(1)));
        assert_eq!(scan.frames[2].payload, FramePayload::Deltas(Vec::new()));
        assert_eq!(scan.frames[3].shard, 5);
        assert_eq!(scan.frames[3].payload, FramePayload::Ranges(ranges));
    }

    #[test]
    fn encode_splits_frames_instead_of_panicking() {
        // A sequence window wider than u16 forces a frame split.
        let wide = vec![
            DeltaRec {
                seq: 100,
                client: 1,
                delta: 5,
            },
            DeltaRec {
                seq: 100 + u64::from(u16::MAX),
                client: 2,
                delta: -3,
            },
            DeltaRec {
                seq: 100 + u64::from(u16::MAX) + 1,
                client: 3,
                delta: 7,
            },
        ];
        let mut bytes = Vec::new();
        assert_eq!(encode_frame(4, &wide, &mut bytes), 2);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.error, None);
        assert_eq!(scan.frames.len(), 2);
        let all: Vec<DeltaRec> = scan
            .frames
            .iter()
            .flat_map(|f| match &f.payload {
                FramePayload::Deltas(r) => r.clone(),
                FramePayload::Ranges(_) => unreachable!(),
            })
            .collect();
        assert_eq!(all, wide);

        // A delta wider than i16 splits across wire records under the
        // same sequence; the fold recovers the exact total.
        let fat = vec![DeltaRec {
            seq: 9,
            client: 5,
            delta: 100_000,
        }];
        let mut bytes = Vec::new();
        assert_eq!(encode_frame(0, &fat, &mut bytes), 1);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.error, None);
        match &scan.frames[0].payload {
            FramePayload::Deltas(r) => {
                assert!(r.len() > 1);
                assert!(r.iter().all(|x| x.seq == 9 && x.client == 5));
                assert_eq!(r.iter().map(|x| i64::from(x.delta)).sum::<i64>(), 100_000);
            }
            FramePayload::Ranges(_) => unreachable!(),
        }
        let neg = vec![DeltaRec {
            seq: 0,
            client: 1,
            delta: -40_000,
        }];
        let mut bytes = Vec::new();
        encode_frame(0, &neg, &mut bytes);
        match &scan_segment(&bytes).frames[0].payload {
            FramePayload::Deltas(r) => {
                assert_eq!(r.iter().map(|x| i64::from(x.delta)).sum::<i64>(), -40_000);
            }
            FramePayload::Ranges(_) => unreachable!(),
        }
    }

    #[test]
    fn io_shim_faults_are_deterministic_in_attempts() {
        let plan = FaultPlan::parse("io_error_n:2,enospc_after:100").unwrap();
        let mut shim = IoShim::new(&plan);
        // First two writes fail with a retryable kind.
        assert_eq!(
            shim.check(10).unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        assert_eq!(
            shim.check(10).unwrap_err().kind(),
            io::ErrorKind::Interrupted
        );
        // Then writes pass until the byte budget is exceeded…
        assert!(shim.check(60).is_ok());
        assert!(shim.check(40).is_ok());
        // …the first write past the budget trips the outage, after which
        // every attempt (even zero-length probes) fails until exactly
        // ENOSPC_OUTAGE_ATTEMPTS attempts have burned; then space returns.
        assert!(shim.check(10).is_err());
        for _ in 1..ENOSPC_OUTAGE_ATTEMPTS {
            assert!(shim.check(0).is_err());
        }
        assert!(shim.check(1_000_000).is_ok());
        assert_eq!(shim.injected, 2 + u64::from(ENOSPC_OUTAGE_ATTEMPTS));
    }

    #[test]
    fn backoff_is_bounded_and_grows() {
        let mut seed = 12345u64;
        let d1 = backoff_delay(1, &mut seed);
        assert!(d1 >= Duration::from_millis(1) && d1 < Duration::from_millis(2));
        for attempt in 1..=40 {
            let d = backoff_delay(attempt, &mut seed);
            assert!(d <= Duration::from_millis(125), "attempt {attempt}: {d:?}");
        }
    }

    #[test]
    fn torn_tail_keeps_prefix() {
        let mut bytes = Vec::new();
        encode_frame(1, &recs(4), &mut bytes);
        let prefix_len = bytes.len();
        encode_frame(2, &recs(6), &mut bytes);
        for cut in prefix_len + 1..bytes.len() {
            let scan = scan_segment(&bytes[..cut]);
            assert_eq!(scan.frames.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, prefix_len);
            assert_eq!(scan.error, Some(FrameError::Torn));
        }
    }

    #[test]
    fn corrupt_byte_stops_scan() {
        let mut bytes = Vec::new();
        encode_frame(1, &recs(4), &mut bytes);
        let prefix_len = bytes.len();
        encode_frame(2, &recs(6), &mut bytes);
        // Corrupt a payload byte of the second frame.
        bytes[prefix_len + 20] ^= 0xFF;
        let scan = scan_segment(&bytes);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.error, Some(FrameError::BadCrc));
        // Corrupt the second frame's magic instead.
        let mut bytes2 = Vec::new();
        encode_frame(1, &recs(4), &mut bytes2);
        encode_frame(2, &recs(6), &mut bytes2);
        bytes2[prefix_len] ^= 0xFF;
        assert_eq!(scan_segment(&bytes2).error, Some(FrameError::BadMagic));
    }

    #[test]
    fn segment_listing_sorts_by_id() {
        let dir = std::env::temp_dir().join(format!("ta-journal-list-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for id in [2u64, 0, 1, 0x1f] {
            std::fs::write(segment_path(&dir, id), b"").unwrap();
        }
        std::fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        let ids: Vec<u64> = list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 0x1f]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
