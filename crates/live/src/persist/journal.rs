//! Append-only CRC-framed grant/spend journal.
//!
//! ## On-disk format
//!
//! A journal is a directory of segment files `journal-<id:08x>.taj`
//! (rotated at snapshot boundaries). A segment is a sequence of frames
//! of two kinds, all little-endian:
//!
//! ```text
//! delta frame ("TAJF") — reactive burns, 8 B records:
//! +--------+--------+--------+----------+==================+--------+
//! | magic  | shard  | count  | base_seq | count × record   |  crc32 |
//! |  u32   |  u32   |  u32   |   u64    |                  |  u32   |
//! +--------+--------+--------+----------+==================+--------+
//!                             | seq_off u16 | delta i16 | client u32 |
//!
//! range frame ("TAJR") — run-length granter sweeps, 16 B records:
//! +--------+--------+--------+=================+--------+
//! | magic  | shard  | count  | count × record  |  crc32 |
//! |  u32   |  u32   |  u32   |                 |  u32   |
//! +--------+--------+--------+=================+--------+
//!                            | seq u64 | lo u32 | len u32 |
//! ```
//!
//! A delta record's sequence is `base_seq + seq_off`; a range record
//! means `+1` token to every client in `[lo, lo + len)` under one
//! sequence number. The CRC covers `shard..payload` (everything
//! between the magic and the CRC itself). A torn write — a frame cut
//! off mid-record or a frame whose CRC fails — marks the end of the
//! usable journal: readers keep everything before it and drop
//! everything after.
//!
//! ## Write path
//!
//! Producers buffer [`DeltaRec`]s locally per shard (no lock, no
//! syscall) and hand full buffers to a dedicated writer thread over a
//! channel. The writer encodes frames into a pending byte buffer and
//! commits (one `write` + optional `fsync`) once per group-commit
//! interval. Records in producer buffers or in an uncommitted batch at
//! kill time are lost; recovery restores the exact surviving prefix.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::{crc32, EpochCell, PersistConfig, PersistShared};
use crate::telem::{c, g, h as th};

/// One journalled balance change: `delta` tokens (positive = grant,
/// negative = reactive spend) applied to `client`, stamped with the
/// owning shard's monotonic sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaRec {
    /// Per-shard monotonic sequence (dense from 0 in a fresh domain).
    pub seq: u64,
    /// Client account id.
    pub client: u32,
    /// Signed token delta.
    pub delta: i32,
}

/// One journalled *range grant*: `+1` token to every client in
/// `[lo, lo + len)`, as one record. The granter's round sweep banks a
/// token into almost every account of a shard each round; run-length
/// encoding that dense stream keeps the journal ~3 orders of magnitude
/// smaller than per-client `+1` deltas (and the writer thread idle
/// instead of saturating a core).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeRec {
    /// Per-shard monotonic sequence (one per range record).
    pub seq: u64,
    /// First client of the granted run.
    pub lo: u32,
    /// Number of consecutive clients granted `+1`.
    pub len: u32,
}

/// Delta-frame magic: "TAJF".
pub const FRAME_MAGIC: u32 = 0x5441_4A46;
/// Range-frame magic: "TAJR".
pub const RANGE_MAGIC: u32 = 0x5441_4A52;
/// Bytes per compact delta record (`seq_off u16 | delta i16 | client
/// u32`; the full `u64` base sequence lives once in the frame header).
pub const DELTA_REC_BYTES: usize = 8;
/// Bytes per range record (`seq u64 | lo u32 | len u32`).
pub const RANGE_REC_BYTES: usize = 16;
/// Delta-frame overhead (magic + shard + count + base_seq + crc).
pub const DELTA_FRAME_OVERHEAD: usize = 24;
/// Range-frame overhead (magic + shard + count + crc).
pub const RANGE_FRAME_OVERHEAD: usize = 16;

/// Appends one encoded delta frame for `shard` to `out`. Records are
/// packed to 8 bytes: the header carries the first record's sequence
/// in full, each record only its `u16` offset from it — the producer
/// flushes its buffer before that window or an `i16` delta would
/// overflow, so the narrowing here is infallible by construction.
/// Reactive burns dominate journal volume at full load; halving their
/// wire size halves the writer's `write(2)` traffic, which profiling
/// shows is where journal overhead actually lives.
pub fn encode_frame(shard: u32, recs: &[DeltaRec], out: &mut Vec<u8>) {
    let base = recs.first().map_or(0, |r| r.seq);
    let start = out.len();
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&(recs.len() as u32).to_le_bytes());
    out.extend_from_slice(&base.to_le_bytes());
    for r in recs {
        let off = u16::try_from(r.seq - base).expect("seq window overflowed a frame");
        let delta = i16::try_from(r.delta).expect("delta overflowed a record");
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&delta.to_le_bytes());
        out.extend_from_slice(&r.client.to_le_bytes());
    }
    let crc = crc32(&out[start + 4..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Appends one encoded range frame for `shard` to `out`. Range records
/// keep the full 16-byte layout: there are ~3 orders of magnitude fewer
/// of them than delta records, so compacting them buys nothing.
pub fn encode_range_frame(shard: u32, recs: &[RangeRec], out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&RANGE_MAGIC.to_le_bytes());
    out.extend_from_slice(&shard.to_le_bytes());
    out.extend_from_slice(&(recs.len() as u32).to_le_bytes());
    for r in recs {
        out.extend_from_slice(&r.seq.to_le_bytes());
        out.extend_from_slice(&r.lo.to_le_bytes());
        out.extend_from_slice(&r.len.to_le_bytes());
    }
    let crc = crc32(&out[start + 4..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// The records a frame carries, by frame kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramePayload {
    /// Per-client signed deltas ("TAJF").
    Deltas(Vec<DeltaRec>),
    /// Run-length `+1` grants ("TAJR").
    Ranges(Vec<RangeRec>),
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFrame {
    /// Shard every record in this frame belongs to.
    pub shard: u32,
    /// The decoded records.
    pub payload: FramePayload,
}

/// Why a segment scan stopped before the end of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The file ends inside a frame (torn tail).
    Torn,
    /// A frame starts with the wrong magic.
    BadMagic,
    /// A frame's CRC does not match its contents.
    BadCrc,
}

/// Result of scanning one segment: the complete valid frames, the byte
/// length they occupy, and the reason the scan stopped early (if it
/// did — `None` means the file ended exactly on a frame boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// Valid frames, in file order.
    pub frames: Vec<ParsedFrame>,
    /// Bytes of `frames` (the usable prefix length).
    pub valid_len: usize,
    /// Set if bytes remain past the usable prefix.
    pub error: Option<FrameError>,
}

/// Scans raw segment bytes into frames, stopping at the first torn or
/// corrupt frame.
pub fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let error = loop {
        if pos == bytes.len() {
            break None;
        }
        if bytes.len() - pos < 12 {
            break Some(FrameError::Torn);
        }
        let magic = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if magic != FRAME_MAGIC && magic != RANGE_MAGIC {
            break Some(FrameError::BadMagic);
        }
        let shard = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let count = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().unwrap()) as usize;
        let frame_len = if magic == FRAME_MAGIC {
            DELTA_FRAME_OVERHEAD + count * DELTA_REC_BYTES
        } else {
            RANGE_FRAME_OVERHEAD + count * RANGE_REC_BYTES
        };
        if bytes.len() - pos < frame_len {
            break Some(FrameError::Torn);
        }
        let payload_end = pos + frame_len - 4;
        let crc = u32::from_le_bytes(bytes[payload_end..payload_end + 4].try_into().unwrap());
        if crc != crc32(&bytes[pos + 4..payload_end]) {
            break Some(FrameError::BadCrc);
        }
        let payload = if magic == FRAME_MAGIC {
            let base = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().unwrap());
            let mut rp = pos + 20;
            let mut recs = Vec::with_capacity(count);
            for _ in 0..count {
                let off = u16::from_le_bytes(bytes[rp..rp + 2].try_into().unwrap());
                let delta = i16::from_le_bytes(bytes[rp + 2..rp + 4].try_into().unwrap());
                let client = u32::from_le_bytes(bytes[rp + 4..rp + 8].try_into().unwrap());
                recs.push(DeltaRec {
                    seq: base + u64::from(off),
                    client,
                    delta: i32::from(delta),
                });
                rp += DELTA_REC_BYTES;
            }
            FramePayload::Deltas(recs)
        } else {
            let mut rp = pos + 12;
            let mut recs = Vec::with_capacity(count);
            for _ in 0..count {
                recs.push(RangeRec {
                    seq: u64::from_le_bytes(bytes[rp..rp + 8].try_into().unwrap()),
                    lo: u32::from_le_bytes(bytes[rp + 8..rp + 12].try_into().unwrap()),
                    len: u32::from_le_bytes(bytes[rp + 12..rp + 16].try_into().unwrap()),
                });
                rp += RANGE_REC_BYTES;
            }
            FramePayload::Ranges(recs)
        };
        frames.push(ParsedFrame { shard, payload });
        pos += frame_len;
    };
    SegmentScan {
        frames,
        valid_len: pos,
        error,
    }
}

/// Path of journal segment `id` inside `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("journal-{id:08x}.taj"))
}

/// Lists journal segments in `dir`, sorted by id.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(hex) = name
            .strip_prefix("journal-")
            .and_then(|rest| rest.strip_suffix(".taj"))
        {
            if let Ok(id) = u64::from_str_radix(hex, 16) {
                out.push((id, entry.path()));
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Lifetime statistics of one journal writer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records written to the OS.
    pub records: u64,
    /// Frames written.
    pub frames: u64,
    /// Bytes written.
    pub bytes: u64,
    /// fsync calls issued.
    pub syncs: u64,
    /// Segment files written to (≥ 1 once anything was journalled).
    pub segments: u64,
}

/// Messages from producers / the snapshotter to the writer thread.
#[derive(Debug)]
pub(crate) enum WriterMsg {
    /// A producer's shard buffer of per-client deltas. `sent_ns` is the
    /// enqueue timestamp ([`ta_telemetry::mono_ns`]); the writer turns it
    /// into the enqueue→commit wait histogram at group-commit time.
    Batch {
        shard: u32,
        recs: Vec<DeltaRec>,
        sent_ns: u64,
    },
    /// A producer's shard buffer of run-length grants (same `sent_ns`
    /// contract as [`WriterMsg::Batch`]).
    BatchRange {
        shard: u32,
        recs: Vec<RangeRec>,
        sent_ns: u64,
    },
    /// Commit, close the current segment, open the next one, and delete
    /// segments with id below `delete_below`.
    Rotate {
        delete_below: u64,
        ack: Sender<io::Result<()>>,
    },
    /// Commit + fsync everything received so far, then ack.
    Sync(Sender<io::Result<()>>),
    /// Final commit + fsync, then exit with stats.
    Shutdown,
    /// Drop all pending bytes and exit immediately (simulated kill).
    Crash,
}

/// Spawns the journal writer on segment `first_segment`, mirroring the
/// currently-open segment id into `active_segment`.
pub(crate) fn spawn_writer(
    cfg: PersistConfig,
    rx: Receiver<WriterMsg>,
    first_segment: u64,
    active_segment: Arc<AtomicU64>,
    shared: Arc<PersistShared>,
) -> io::Result<JoinHandle<io::Result<JournalStats>>> {
    let file = open_segment(&cfg.dir, first_segment)?;
    std::thread::Builder::new()
        .name("ta-journal".into())
        .spawn(move || writer_loop(cfg, rx, file, first_segment, active_segment, shared))
}

fn open_segment(dir: &Path, id: u64) -> io::Result<File> {
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(segment_path(dir, id))
}

struct Writer {
    cfg: PersistConfig,
    file: File,
    segment: u64,
    pending: Vec<u8>,
    /// Enqueue timestamps of batches encoded into `pending` but not yet
    /// committed; drained into the enqueue→commit histogram at commit.
    pending_sent: Vec<u64>,
    stats: JournalStats,
    committed_frames: u64,
    shared: Arc<PersistShared>,
}

impl Writer {
    /// Writes and (configurably) fsyncs the pending buffer.
    fn commit(&mut self) -> io::Result<()> {
        if !self.pending.is_empty() {
            match self.shared.telem.get() {
                Some(h) => {
                    let t0 = Instant::now();
                    self.file.write_all(&self.pending)?;
                    h.add(c::JOURNAL_FLUSH_NS, t0.elapsed().as_nanos() as u64);
                    h.incr(c::JOURNAL_FLUSHES);
                }
                None => self.file.write_all(&self.pending)?,
            }
            self.stats.bytes += self.pending.len() as u64;
            self.pending.clear();
        }
        if self.cfg.fsync && !self.cfg.faults.drop_fsync {
            self.fsync()?;
        }
        // The group-commit wait per batch: enqueue to durable write. The
        // list drains even without telemetry so it cannot grow unbounded.
        if let Some(h) = self.shared.telem.get() {
            let now = ta_telemetry::mono_ns();
            for sent in &self.pending_sent {
                h.hist_record(th::JOURNAL_COMMIT_NS, now.saturating_sub(*sent));
            }
        }
        self.pending_sent.clear();
        Ok(())
    }

    /// One timed, counted `sync_data` (durability points only).
    fn fsync(&mut self) -> io::Result<()> {
        match self.shared.telem.get() {
            Some(h) => {
                let t0 = Instant::now();
                self.file.sync_data()?;
                let elapsed = t0.elapsed().as_nanos() as u64;
                h.add(c::JOURNAL_FSYNC_NS, elapsed);
                h.incr(c::JOURNAL_FSYNCS);
                h.hist_record(th::FSYNC_NS, elapsed);
            }
            None => self.file.sync_data()?,
        }
        self.stats.syncs += 1;
        Ok(())
    }

    /// Frame-level accounting after encoding one frame into `pending`.
    fn note_frame(&mut self, range: bool, encoded: usize) {
        if let Some(h) = self.shared.telem.get() {
            if range {
                h.incr(c::JOURNAL_FRAMES_RANGE);
                h.add(c::JOURNAL_BYTES_RANGE, encoded as u64);
            } else {
                h.incr(c::JOURNAL_FRAMES_DELTA);
                h.add(c::JOURNAL_BYTES_DELTA, encoded as u64);
            }
            h.gauge_add(g::JOURNAL_QUEUE_DEPTH, -1);
        }
    }

    /// The `kill_writer_mid_frame` fault: after at least two committed
    /// frames, write the pending bytes plus *half* of the next frame,
    /// make the torn tail durable, and die.
    fn die_mid_frame(&mut self, frame: &[u8]) -> io::Result<JournalStats> {
        self.file.write_all(&self.pending)?;
        self.file.write_all(&frame[..frame.len() / 2])?;
        self.file.sync_data()?;
        self.pending.clear();
        Ok(self.stats)
    }

    fn rotate(&mut self, delete_below: u64) -> io::Result<()> {
        self.commit()?;
        self.segment += 1;
        self.file = open_segment(&self.cfg.dir, self.segment)?;
        for (id, path) in list_segments(&self.cfg.dir)? {
            if id < delete_below {
                fs::remove_file(path)?;
            }
        }
        super::sync_dir(&self.cfg.dir)
    }
}

fn writer_loop(
    cfg: PersistConfig,
    rx: Receiver<WriterMsg>,
    file: File,
    first_segment: u64,
    active_segment: Arc<AtomicU64>,
    shared: Arc<PersistShared>,
) -> io::Result<JournalStats> {
    let group = cfg.group_commit.max(Duration::from_micros(100));
    let mut w = Writer {
        cfg,
        file,
        segment: first_segment,
        pending: Vec::with_capacity(64 * 1024),
        pending_sent: Vec::new(),
        stats: JournalStats {
            segments: 1,
            ..JournalStats::default()
        },
        committed_frames: 0,
        shared,
    };
    let mut deadline = Instant::now() + group;
    loop {
        let timeout = deadline.saturating_duration_since(Instant::now());
        // Block for the first message, then drain greedily with
        // try_recv: a burst of producer flushes costs one wakeup, not
        // one park/unpark round trip per send. Draining batches does
        // NOT commit — bytes accumulate in `pending` until the group
        // deadline (or an explicit Sync/Rotate/Shutdown).
        let mut msg = match rx.recv_timeout(timeout) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => {
                w.commit()?;
                deadline = Instant::now() + group;
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => {
                w.commit()?;
                return Ok(w.stats);
            }
        };
        loop {
            match msg {
                WriterMsg::Batch {
                    shard,
                    recs,
                    sent_ns,
                } => {
                    if w.cfg.faults.kill_writer_mid_frame && w.committed_frames >= 2 {
                        let mut frame = Vec::new();
                        encode_frame(shard, &recs, &mut frame);
                        return w.die_mid_frame(&frame);
                    }
                    let before = w.pending.len();
                    encode_frame(shard, &recs, &mut w.pending);
                    w.note_frame(false, w.pending.len() - before);
                    w.pending_sent.push(sent_ns);
                    w.stats.frames += 1;
                    w.stats.records += recs.len() as u64;
                    w.committed_frames += 1;
                }
                WriterMsg::BatchRange {
                    shard,
                    recs,
                    sent_ns,
                } => {
                    if w.cfg.faults.kill_writer_mid_frame && w.committed_frames >= 2 {
                        let mut frame = Vec::new();
                        encode_range_frame(shard, &recs, &mut frame);
                        return w.die_mid_frame(&frame);
                    }
                    let before = w.pending.len();
                    encode_range_frame(shard, &recs, &mut w.pending);
                    w.note_frame(true, w.pending.len() - before);
                    w.pending_sent.push(sent_ns);
                    w.stats.frames += 1;
                    w.stats.records += recs.len() as u64;
                    w.committed_frames += 1;
                }
                WriterMsg::Rotate { delete_below, ack } => {
                    let res = w.rotate(delete_below);
                    let ok = res.is_ok();
                    let _ = ack.send(res);
                    if !ok {
                        return Ok(w.stats);
                    }
                    w.stats.segments += 1;
                    active_segment.store(w.segment, Ordering::SeqCst);
                    deadline = Instant::now() + group;
                }
                WriterMsg::Sync(ack) => {
                    let mut res = w.commit();
                    if res.is_ok() && !w.cfg.fsync && !w.cfg.faults.drop_fsync {
                        // `sync` promises durability even when periodic
                        // fsync is off.
                        res = w.fsync();
                    }
                    let _ = ack.send(res);
                    deadline = Instant::now() + group;
                }
                WriterMsg::Shutdown => {
                    w.commit()?;
                    if !w.cfg.fsync && !w.cfg.faults.drop_fsync {
                        w.fsync()?;
                    }
                    return Ok(w.stats);
                }
                WriterMsg::Crash => {
                    // Pending bytes die with us: no write, no fsync.
                    return Ok(w.stats);
                }
            }
            // A saturated channel must not starve the group-commit
            // deadline: commit mid-drain once it passes.
            if Instant::now() >= deadline {
                w.commit()?;
                deadline = Instant::now() + group;
            }
            match rx.try_recv() {
                Ok(m) => msg = m,
                Err(_) => break,
            }
        }
    }
}

/// One producer's handle to the journal: per-shard bounded buffers, an
/// epoch cell for snapshot fencing, and a channel to the writer.
///
/// The owning thread brackets every balance-changing operation with
/// [`enter`](Self::enter) / [`exit`](Self::exit) and publishes each
/// delta with [`record`](Self::record) *between* applying it to the
/// account and exiting. Handles flush on drop.
#[derive(Debug)]
pub struct JournalHandle {
    shared: Arc<PersistShared>,
    tx: Sender<WriterMsg>,
    cell: Arc<EpochCell>,
    bufs: Vec<Vec<DeltaRec>>,
    range_bufs: Vec<Vec<RangeRec>>,
    cap: usize,
    records: u64,
    depth: u32,
}

impl JournalHandle {
    pub(crate) fn new(shared: Arc<PersistShared>, tx: Sender<WriterMsg>) -> Self {
        let cell = Arc::new(EpochCell::default());
        shared
            .epochs
            .lock()
            .expect("epoch registry")
            .push(Arc::clone(&cell));
        let shards = shared.shards.len();
        let cap = shared.buffer_cap;
        JournalHandle {
            shared,
            tx,
            cell,
            bufs: (0..shards).map(|_| Vec::with_capacity(cap)).collect(),
            range_bufs: (0..shards).map(|_| Vec::new()).collect(),
            cap,
            records: 0,
            depth: 0,
        }
    }

    /// Enters a journalled operation on `shard`: spins while the shard
    /// is fenced by the snapshotter (microseconds — the time to copy
    /// one shard's balances), otherwise one uncontended atomic RMW.
    ///
    /// Nestable: inside an outer [`enter_bulk`](Self::enter_bulk) (or
    /// an outer `enter` of the *same* shard) the call is a plain
    /// counter increment — the bulk entry already verified no snapshot
    /// was in flight anywhere, and the producer has been visibly busy
    /// since, so no fence can have completed its quiesce against us.
    /// Nesting under a plain `enter` of a *different* shard is not
    /// allowed: that outer entry only checked its own shard's fence.
    #[inline]
    pub fn enter(&mut self, shard: usize) {
        if self.depth > 0 {
            self.depth += 1;
            return;
        }
        let fence = &self.shared.shards[shard].fenced;
        loop {
            self.cell.set_busy();
            if !fence.load(Ordering::SeqCst) {
                self.depth = 1;
                return;
            }
            // The snapshotter is copying this shard: step aside so it
            // can observe us idle, and wait the fence out.
            self.cell.set_idle();
            while fence.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        }
    }

    /// Enters a *bulk* epoch: the producer stays busy across a run of
    /// operations that may touch any shard, amortizing the two
    /// sequentially-consistent fence operations over the whole run.
    /// Checks the domain-wide pending-snapshot counter (instead of one
    /// shard's fence), so a bulk producer never starts a run while any
    /// snapshot is waiting. Callers must [`exit`](Self::exit) before
    /// blocking or sleeping and keep runs short (the snapshotter waits
    /// out the whole run).
    #[inline]
    pub fn enter_bulk(&mut self) {
        if self.depth > 0 {
            self.depth += 1;
            return;
        }
        let pending = &self.shared.snap_pending;
        loop {
            self.cell.set_busy();
            if pending.load(Ordering::SeqCst) == 0 {
                self.depth = 1;
                return;
            }
            self.cell.set_idle();
            while pending.load(Ordering::Relaxed) != 0 {
                std::hint::spin_loop();
            }
        }
    }

    /// Queue accounting for one batch handed to the writer (per ~cap
    /// records, not per record — the telemetry check is one cold load).
    #[inline]
    fn note_batch(&self) {
        if let Some(h) = self.shared.telem.get() {
            h.incr(c::JOURNAL_BATCHES);
            h.gauge_add(g::JOURNAL_QUEUE_DEPTH, 1);
        }
    }

    /// Leaves the current operation; the outermost exit publishes all
    /// its effects to the snapshotter.
    #[inline]
    pub fn exit(&mut self) {
        debug_assert!(self.depth > 0, "exit without matching enter");
        self.depth -= 1;
        if self.depth == 0 {
            self.cell.set_idle();
        }
    }

    /// Publishes one applied delta. Must be called between
    /// [`enter`](Self::enter)`(shard)` and [`exit`](Self::exit), after
    /// the balance change it describes. Deltas wider than an `i16` are
    /// split across records (token burns are bounded by small strategy
    /// balances, so this never fires in practice — but the compact wire
    /// format must not be able to lie).
    #[inline]
    pub fn record(&mut self, shard: usize, client: u32, delta: i32) {
        let mut rem = delta;
        loop {
            let chunk = rem.clamp(i32::from(i16::MIN), i32::from(i16::MAX));
            self.record_chunk(shard, client, chunk);
            rem -= chunk;
            if rem == 0 {
                return;
            }
        }
    }

    #[inline]
    fn record_chunk(&mut self, shard: usize, client: u32, delta: i32) {
        let st = &self.shared.shards[shard];
        let seq = st.seq.fetch_add(1, Ordering::Relaxed);
        if delta >= 0 {
            st.granted.fetch_add(delta as u64, Ordering::Relaxed);
        } else {
            st.burned
                .fetch_add(delta.unsigned_abs() as u64, Ordering::Relaxed);
        }
        let buf = &mut self.bufs[shard];
        // Flush early if this record cannot share the buffered frame's
        // base sequence (the wire offset is a u16; other producers on
        // the shard may have consumed the window in between).
        if buf
            .first()
            .is_some_and(|f| seq - f.seq > u64::from(u16::MAX))
        {
            let recs = std::mem::replace(buf, Vec::with_capacity(self.cap));
            let _ = self.tx.send(WriterMsg::Batch {
                shard: shard as u32,
                recs,
                sent_ns: ta_telemetry::mono_ns(),
            });
            self.note_batch();
        }
        let buf = &mut self.bufs[shard];
        buf.push(DeltaRec { seq, client, delta });
        self.records += 1;
        if buf.len() >= self.cap {
            let recs = std::mem::replace(buf, Vec::with_capacity(self.cap));
            let _ = self.tx.send(WriterMsg::Batch {
                shard: shard as u32,
                recs,
                sent_ns: ta_telemetry::mono_ns(),
            });
            self.note_batch();
        }
    }

    /// Publishes one applied run-length grant: `+1` to every client in
    /// `[lo, lo + len)`. Same fencing contract as
    /// [`record`](Self::record); one sequence number per range.
    #[inline]
    pub fn record_range(&mut self, shard: usize, lo: u32, len: u32) {
        if len == 0 {
            return;
        }
        let st = &self.shared.shards[shard];
        let seq = st.seq.fetch_add(1, Ordering::Relaxed);
        st.granted.fetch_add(u64::from(len), Ordering::Relaxed);
        let buf = &mut self.range_bufs[shard];
        buf.push(RangeRec { seq, lo, len });
        self.records += 1;
        if buf.len() >= self.cap {
            let recs = std::mem::replace(buf, Vec::with_capacity(self.cap));
            let _ = self.tx.send(WriterMsg::BatchRange {
                shard: shard as u32,
                recs,
                sent_ns: ta_telemetry::mono_ns(),
            });
            self.note_batch();
        }
    }

    /// Hands every non-empty buffer to the writer.
    pub fn flush(&mut self) {
        let mut sent = 0u64;
        for (shard, buf) in self.bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let recs = std::mem::replace(buf, Vec::with_capacity(self.cap));
                let _ = self.tx.send(WriterMsg::Batch {
                    shard: shard as u32,
                    recs,
                    sent_ns: ta_telemetry::mono_ns(),
                });
                sent += 1;
            }
        }
        for (shard, buf) in self.range_bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                let recs = std::mem::take(buf);
                let _ = self.tx.send(WriterMsg::BatchRange {
                    shard: shard as u32,
                    recs,
                    sent_ns: ta_telemetry::mono_ns(),
                });
                sent += 1;
            }
        }
        if sent > 0 {
            if let Some(h) = self.shared.telem.get() {
                h.add(c::JOURNAL_BATCHES, sent);
                h.gauge_add(g::JOURNAL_QUEUE_DEPTH, sent as i64);
            }
        }
    }

    /// Records published through this handle.
    pub fn records_published(&self) -> u64 {
        self.records
    }
}

impl Drop for JournalHandle {
    fn drop(&mut self) {
        self.flush();
        let mut cells = self.shared.epochs.lock().expect("epoch registry");
        cells.retain(|c| !Arc::ptr_eq(c, &self.cell));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recs(n: u64) -> Vec<DeltaRec> {
        (0..n)
            .map(|i| DeltaRec {
                seq: i,
                client: (i % 7) as u32,
                delta: if i % 3 == 0 {
                    -(i as i32 % 5)
                } else {
                    i as i32 % 11
                },
            })
            .collect()
    }

    #[test]
    fn frames_roundtrip() {
        let mut bytes = Vec::new();
        encode_frame(3, &recs(10), &mut bytes);
        encode_frame(0, &recs(1), &mut bytes);
        encode_frame(7, &[], &mut bytes);
        let ranges = vec![
            RangeRec {
                seq: 41,
                lo: 128,
                len: 1000,
            },
            RangeRec {
                seq: 42,
                lo: 1200,
                len: 1,
            },
        ];
        encode_range_frame(5, &ranges, &mut bytes);
        let scan = scan_segment(&bytes);
        assert_eq!(scan.error, None);
        assert_eq!(scan.valid_len, bytes.len());
        assert_eq!(scan.frames.len(), 4);
        assert_eq!(scan.frames[0].shard, 3);
        assert_eq!(scan.frames[0].payload, FramePayload::Deltas(recs(10)));
        assert_eq!(scan.frames[1].payload, FramePayload::Deltas(recs(1)));
        assert_eq!(scan.frames[2].payload, FramePayload::Deltas(Vec::new()));
        assert_eq!(scan.frames[3].shard, 5);
        assert_eq!(scan.frames[3].payload, FramePayload::Ranges(ranges));
    }

    #[test]
    fn torn_tail_keeps_prefix() {
        let mut bytes = Vec::new();
        encode_frame(1, &recs(4), &mut bytes);
        let prefix_len = bytes.len();
        encode_frame(2, &recs(6), &mut bytes);
        for cut in prefix_len + 1..bytes.len() {
            let scan = scan_segment(&bytes[..cut]);
            assert_eq!(scan.frames.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, prefix_len);
            assert_eq!(scan.error, Some(FrameError::Torn));
        }
    }

    #[test]
    fn corrupt_byte_stops_scan() {
        let mut bytes = Vec::new();
        encode_frame(1, &recs(4), &mut bytes);
        let prefix_len = bytes.len();
        encode_frame(2, &recs(6), &mut bytes);
        // Corrupt a payload byte of the second frame.
        bytes[prefix_len + 20] ^= 0xFF;
        let scan = scan_segment(&bytes);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.error, Some(FrameError::BadCrc));
        // Corrupt the second frame's magic instead.
        let mut bytes2 = Vec::new();
        encode_frame(1, &recs(4), &mut bytes2);
        encode_frame(2, &recs(6), &mut bytes2);
        bytes2[prefix_len] ^= 0xFF;
        assert_eq!(scan_segment(&bytes2).error, Some(FrameError::BadMagic));
    }

    #[test]
    fn segment_listing_sorts_by_id() {
        let dir = std::env::temp_dir().join(format!("ta-journal-list-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for id in [2u64, 0, 1, 0x1f] {
            std::fs::write(segment_path(&dir, id), b"").unwrap();
        }
        std::fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        let ids: Vec<u64> = list_segments(&dir)
            .unwrap()
            .into_iter()
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 0x1f]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
