//! Admission counters and the token-conservation books.
//!
//! Every worker and the granter keep their own [`LiveCounters`] (plain
//! `u64`s, no atomics — the hot path never shares a counter cache line);
//! the harness merges them when the run stops. The merged counters close
//! the same books the simulator's `ProtocolResults::balances_sum` check
//! closes: with all accounts starting at zero,
//!
//! ```text
//! tokens_banked − reactive_sent == Σ final balances
//! ```
//!
//! exactly — under any thread interleaving — because a banked token is
//! one `fetch_add(1)`, a reactive send is one conditionally-successful
//! decrement, and the counters record precisely what the atomics did.

/// Counters of one admission stream (one worker, the granter, or a merged
/// run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveCounters {
    /// Round decisions made (granter sweep entries or replayed ticks).
    pub rounds: u64,
    /// Rounds that resolved to a proactive send (balance untouched).
    pub proactive_sent: u64,
    /// Rounds that banked their token (`a ← a + 1`).
    pub tokens_banked: u64,
    /// Message/request decisions made.
    pub requests: u64,
    /// Reactive messages sent — equivalently, tokens burned (each message
    /// of a burst costs one token).
    pub reactive_sent: u64,
    /// Requests that admitted nothing (empty account or unlucky draw).
    pub reactive_held: u64,
}

impl LiveCounters {
    /// Accumulates another stream's counters into this one — the single
    /// place that knows every field, so a counter added later cannot be
    /// silently dropped from merged reports.
    pub fn merge(&mut self, other: &LiveCounters) {
        self.rounds += other.rounds;
        self.proactive_sent += other.proactive_sent;
        self.tokens_banked += other.tokens_banked;
        self.requests += other.requests;
        self.reactive_sent += other.reactive_sent;
        self.reactive_held += other.reactive_held;
    }

    /// All messages that left the system.
    pub fn total_sent(&self) -> u64 {
        self.proactive_sent + self.reactive_sent
    }

    /// Closes the token books against the final account balances: every
    /// banked token is either still on an account or was burned by a
    /// reactive send. Holds exactly (not statistically) for accounts that
    /// started at zero; debt-allowing strategies drive `balances_sum`
    /// negative but the identity is unchanged.
    pub fn conserves(&self, balances_sum: i64) -> bool {
        self.tokens_banked as i64 - self.reactive_sent as i64 == balances_sum
    }

    /// Internal consistency: every round resolves one way, every request
    /// either sends or holds.
    pub fn is_consistent(&self) -> bool {
        self.rounds == self.proactive_sent + self.tokens_banked
            && self.requests >= self.reactive_held
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let a = LiveCounters {
            rounds: 1,
            proactive_sent: 2,
            tokens_banked: 3,
            requests: 4,
            reactive_sent: 5,
            reactive_held: 6,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(
            b,
            LiveCounters {
                rounds: 2,
                proactive_sent: 4,
                tokens_banked: 6,
                requests: 8,
                reactive_sent: 10,
                reactive_held: 12,
            }
        );
        assert_eq!(b.total_sent(), 14);
    }

    #[test]
    fn conservation_books() {
        let c = LiveCounters {
            tokens_banked: 10,
            reactive_sent: 4,
            ..LiveCounters::default()
        };
        assert!(c.conserves(6));
        assert!(!c.conserves(5));
        // Debt: more burned than banked, negative balance sum.
        let debt = LiveCounters {
            tokens_banked: 3,
            reactive_sent: 8,
            ..LiveCounters::default()
        };
        assert!(debt.conserves(-5));
    }

    #[test]
    fn consistency_check() {
        let ok = LiveCounters {
            rounds: 5,
            proactive_sent: 2,
            tokens_banked: 3,
            requests: 4,
            reactive_held: 1,
            ..LiveCounters::default()
        };
        assert!(ok.is_consistent());
        let bad = LiveCounters {
            rounds: 5,
            proactive_sent: 2,
            tokens_banked: 2,
            ..LiveCounters::default()
        };
        assert!(!bad.is_consistent());
    }
}
