//! Component supervision: health state machines, heartbeats, and the
//! journal-failure policy.
//!
//! The live runtime is a small federation of threads — journal writer,
//! granter, trace collector, stats pump — any of which can stall or die
//! while the rest keep serving. This module gives each one a tiny
//! observable state machine (Healthy → Degraded → Failed) on a shared
//! [`HealthBoard`]:
//!
//! * **Heartbeats.** Every supervised thread calls
//!   [`HealthBoard::beat`] from its main loop. A component that has
//!   never beaten is *unarmed* and is left alone — construction order
//!   and optional components need no special-casing.
//! * **The supervisor** (spawned inside the load generator's scope)
//!   sweeps the board a few times per heartbeat deadline: an armed
//!   component whose beat goes stale is marked Degraded; when beats
//!   resume it is marked Healthy again. The supervisor never touches
//!   Failed — that transition belongs to the component itself (today:
//!   the journal writer after its retry budget is exhausted), and so
//!   does the Failed → Healthy recovery edge.
//! * **Policy.** When the journal writer fails persistently it calls
//!   [`HealthBoard::journal_failed`], which enacts the operator-chosen
//!   [`OnJournalFail`] policy: `degrade` suspends durability and keeps
//!   admitting (dropped batches are counted, and recovery folds books
//!   from surviving records, so conservation is exact by construction);
//!   `halt` closes admissions so the run finishes cleanly; `exit`
//!   additionally requests a distinct process exit code.
//!
//! State changes shadow into registered telemetry (one gauge per
//! component, 0/1/2 = healthy/degraded/failed, plus degradation
//! counters) when a handle is attached, so health is visible in
//! `ta-stats/v2` lines, the obs plane, and `live-top`.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};

use ta_telemetry::{mono_ns, Handle as TelemetryHandle};

use crate::telem::{c, g};

/// A supervised runtime component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// The group-commit journal writer thread (`ta-journal`).
    JournalWriter = 0,
    /// The granter sweep thread (`ta-granter`).
    Granter = 1,
    /// The trace collector (`ta-trace`).
    TraceBus = 2,
    /// The stats pump (`ta-stats`).
    StatsPump = 3,
}

/// All supervised components, in gauge-slot order.
pub const COMPONENTS: [Component; 4] = [
    Component::JournalWriter,
    Component::Granter,
    Component::TraceBus,
    Component::StatsPump,
];

impl Component {
    /// Stable lowercase name (stats `health` section key).
    pub fn name(self) -> &'static str {
        match self {
            Component::JournalWriter => "journal_writer",
            Component::Granter => "granter",
            Component::TraceBus => "trace_bus",
            Component::StatsPump => "stats_pump",
        }
    }

    fn gauge(self) -> usize {
        match self {
            Component::JournalWriter => g::HEALTH_JOURNAL_WRITER,
            Component::Granter => g::HEALTH_GRANTER,
            Component::TraceBus => g::HEALTH_TRACE_BUS,
            Component::StatsPump => g::HEALTH_STATS_PUMP,
        }
    }
}

/// One component's condition. Ordered by severity; the numeric value is
/// what the per-component health gauge reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Beating on schedule, no failure outstanding.
    Healthy = 0,
    /// Missed its heartbeat deadline (or is retrying through errors);
    /// expected to recover on its own.
    Degraded = 1,
    /// Declared itself broken (e.g. the journal writer exhausted its
    /// retry budget); only the component clears this.
    Failed = 2,
}

impl HealthState {
    /// Stable lowercase name (stats `health` section value).
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Failed => "failed",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::Failed,
        }
    }
}

/// What the runtime does when the journal writer fails persistently
/// (`--on-journal-fail`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OnJournalFail {
    /// Keep admitting with durability suspended; drop-and-count journal
    /// batches; restart the writer onto a fresh segment when the disk
    /// recovers. Conservation on recovery stays exact because books are
    /// folded from the same surviving records as the balances.
    #[default]
    Degrade,
    /// Refuse new admissions but finish the run cleanly (workers drain
    /// and exit; reports and recovery still run).
    Halt,
    /// Like halt, but the process exits with a distinct code
    /// (`EXIT_JOURNAL_FAIL`) so harnesses can tell journal death from a
    /// clean run.
    Exit,
}

impl OnJournalFail {
    /// Parses a `--on-journal-fail` value.
    ///
    /// # Errors
    ///
    /// A human-readable message for anything but
    /// `degrade`/`halt`/`exit`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "degrade" => Ok(OnJournalFail::Degrade),
            "halt" => Ok(OnJournalFail::Halt),
            "exit" => Ok(OnJournalFail::Exit),
            other => Err(format!(
                "unknown --on-journal-fail policy `{other}` (expected degrade, halt, or exit)"
            )),
        }
    }
}

impl std::fmt::Display for OnJournalFail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OnJournalFail::Degrade => "degrade",
            OnJournalFail::Halt => "halt",
            OnJournalFail::Exit => "exit",
        })
    }
}

/// One component's cell on the board: current state plus the timestamp
/// of its last heartbeat (0 = never armed).
#[derive(Debug, Default)]
struct Cell {
    state: AtomicU8,
    beat_ns: AtomicU64,
}

/// The shared health board: per-component state machines, runtime-wide
/// degradation switches, and the journal failure policy.
///
/// Cheap to share (`Arc`), lock-free, and safe to poke from any thread.
/// All methods are idempotent — the writer may re-announce a failure it
/// already reported, the supervisor may re-confirm Healthy every sweep —
/// and telemetry deltas are emitted exactly once per actual transition.
#[derive(Debug)]
pub struct HealthBoard {
    cells: [Cell; 4],
    policy: OnJournalFail,
    admission_open: AtomicBool,
    durability_suspended: AtomicBool,
    abort_requested: AtomicBool,
    granter_stall_armed: AtomicBool,
    telem: OnceLock<TelemetryHandle>,
}

impl HealthBoard {
    /// A fresh board: every component Healthy, admissions open,
    /// durability on.
    pub fn new(policy: OnJournalFail) -> Arc<Self> {
        Arc::new(HealthBoard {
            cells: Default::default(),
            policy,
            admission_open: AtomicBool::new(true),
            durability_suspended: AtomicBool::new(false),
            abort_requested: AtomicBool::new(false),
            granter_stall_armed: AtomicBool::new(false),
            telem: OnceLock::new(),
        })
    }

    /// The configured journal failure policy.
    pub fn policy(&self) -> OnJournalFail {
        self.policy
    }

    /// Attaches a telemetry handle (control lane); health transitions
    /// shadow into gauges/counters from then on. First attach wins.
    pub fn attach_telemetry(&self, handle: TelemetryHandle) {
        let _ = self.telem.set(handle);
    }

    /// Records a heartbeat for `component`. Called from the component's
    /// main loop; the first call arms supervision for it.
    pub fn beat(&self, component: Component) {
        self.cells[component as usize]
            .beat_ns
            .store(mono_ns().max(1), Ordering::Release);
    }

    /// Nanosecond timestamp of the last heartbeat (0 = never armed).
    pub fn last_beat_ns(&self, component: Component) -> u64 {
        self.cells[component as usize]
            .beat_ns
            .load(Ordering::Acquire)
    }

    /// Current state of `component`.
    pub fn state(&self, component: Component) -> HealthState {
        HealthState::from_u8(self.cells[component as usize].state.load(Ordering::Acquire))
    }

    /// Moves `component` to `new`, shadowing the transition into
    /// telemetry. Returns the previous state. No-op when already there.
    pub fn set_state(&self, component: Component, new: HealthState) -> HealthState {
        let cell = &self.cells[component as usize];
        let old = HealthState::from_u8(cell.state.swap(new as u8, Ordering::AcqRel));
        if old != new {
            if let Some(t) = self.telem.get() {
                t.gauge_add(component.gauge(), new as i64 - old as i64);
                if new > old {
                    t.incr(c::HEALTH_DEGRADATIONS);
                }
            }
        }
        old
    }

    /// Supervisor edge: marks an armed component Degraded when its beat
    /// is stale, Healthy when beats resumed — never touching Failed,
    /// which the component owns. `now_ns`/`deadline_ns` are passed in so
    /// the sweep uses one clock read.
    pub fn supervise_beat(&self, component: Component, now_ns: u64, deadline_ns: u64) {
        let beat = self.last_beat_ns(component);
        if beat == 0 {
            return; // never armed
        }
        let stale = now_ns.saturating_sub(beat) > deadline_ns;
        match self.state(component) {
            HealthState::Healthy if stale => {
                self.set_state(component, HealthState::Degraded);
            }
            HealthState::Degraded if !stale => {
                self.set_state(component, HealthState::Healthy);
            }
            _ => {}
        }
    }

    /// Whether workers may admit new requests.
    pub fn admission_open(&self) -> bool {
        self.admission_open.load(Ordering::Acquire)
    }

    /// Whether durability is currently suspended (degrade policy after
    /// a persistent journal failure, until the writer restarts).
    pub fn durability_suspended(&self) -> bool {
        self.durability_suspended.load(Ordering::Acquire)
    }

    /// Whether the exit policy fired (the process should exit with
    /// `EXIT_JOURNAL_FAIL` after finishing cleanly).
    pub fn abort_requested(&self) -> bool {
        self.abort_requested.load(Ordering::Acquire)
    }

    /// The journal writer's escalation point: marks it Failed and
    /// enacts the configured policy. Idempotent.
    pub fn journal_failed(&self) {
        self.set_state(Component::JournalWriter, HealthState::Failed);
        match self.policy {
            OnJournalFail::Degrade => {
                if !self.durability_suspended.swap(true, Ordering::AcqRel) {
                    if let Some(t) = self.telem.get() {
                        t.gauge_add(g::DURABILITY_SUSPENDED, 1);
                    }
                }
            }
            OnJournalFail::Halt => {
                self.admission_open.store(false, Ordering::Release);
            }
            OnJournalFail::Exit => {
                self.admission_open.store(false, Ordering::Release);
                self.abort_requested.store(true, Ordering::Release);
            }
        }
    }

    /// The journal writer's recovery point: a fresh segment is open and
    /// committing again. Resumes durability and marks the writer
    /// Healthy. Idempotent.
    pub fn journal_recovered(&self) {
        if self.durability_suspended.swap(false, Ordering::AcqRel) {
            if let Some(t) = self.telem.get() {
                t.gauge_add(g::DURABILITY_SUSPENDED, -1);
            }
        }
        self.set_state(Component::JournalWriter, HealthState::Healthy);
    }

    /// Arms the one-shot `granter_stall` fault (consumed by the granter
    /// loop after its first sweep).
    pub fn arm_granter_stall(&self) {
        self.granter_stall_armed.store(true, Ordering::Release);
    }

    /// Consumes the `granter_stall` fault if armed (true exactly once).
    pub fn take_granter_stall(&self) -> bool {
        self.granter_stall_armed.swap(false, Ordering::AcqRel)
    }

    /// Counts a telemetry event on the attached handle, if any.
    pub(crate) fn count(&self, counter: usize) {
        if let Some(t) = self.telem.get() {
            t.incr(counter);
        }
    }

    /// Renders the `health` section of the stats line: a flat JSON
    /// object of stable strings (policy, per-component state, and the
    /// durability switch), e.g.
    /// `{"policy":"degrade","journal_writer":"healthy",...,"durability":"ok"}`.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"policy\":\"");
        out.push_str(&self.policy.to_string());
        out.push('"');
        for component in COMPONENTS {
            out.push_str(",\"");
            out.push_str(component.name());
            out.push_str("\":\"");
            out.push_str(self.state(component).name());
            out.push('"');
        }
        out.push_str(",\"durability\":\"");
        out.push_str(if self.durability_suspended() {
            "suspended"
        } else {
            "ok"
        });
        out.push_str("\"}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telem::LiveTelemetry;

    #[test]
    fn policy_parse_roundtrips_and_rejects_unknown() {
        for p in [
            OnJournalFail::Degrade,
            OnJournalFail::Halt,
            OnJournalFail::Exit,
        ] {
            assert_eq!(OnJournalFail::parse(&p.to_string()), Ok(p));
        }
        assert_eq!(OnJournalFail::default(), OnJournalFail::Degrade);
        let err = OnJournalFail::parse("panic").unwrap_err();
        assert!(err.contains("panic"), "{err}");
    }

    #[test]
    fn states_order_by_severity_and_name_stably() {
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Failed);
        assert_eq!(HealthState::Healthy.name(), "healthy");
        assert_eq!(HealthState::Failed.name(), "failed");
    }

    #[test]
    fn supervise_beat_flips_healthy_and_degraded_but_not_failed() {
        let board = HealthBoard::new(OnJournalFail::Degrade);
        // Unarmed components are left alone no matter how stale.
        board.supervise_beat(Component::Granter, 1_000_000_000, 1);
        assert_eq!(board.state(Component::Granter), HealthState::Healthy);

        board.beat(Component::Granter);
        let now = board.last_beat_ns(Component::Granter);
        board.supervise_beat(Component::Granter, now + 10, 100);
        assert_eq!(board.state(Component::Granter), HealthState::Healthy);
        board.supervise_beat(Component::Granter, now + 200, 100);
        assert_eq!(board.state(Component::Granter), HealthState::Degraded);
        // Beats resume → Healthy again.
        board.beat(Component::Granter);
        let now = board.last_beat_ns(Component::Granter);
        board.supervise_beat(Component::Granter, now + 1, 100);
        assert_eq!(board.state(Component::Granter), HealthState::Healthy);

        // Failed is owned by the component; the supervisor won't clear it.
        board.set_state(Component::JournalWriter, HealthState::Failed);
        board.beat(Component::JournalWriter);
        let now = board.last_beat_ns(Component::JournalWriter);
        board.supervise_beat(Component::JournalWriter, now + 1, 100);
        assert_eq!(board.state(Component::JournalWriter), HealthState::Failed);
    }

    #[test]
    fn journal_policies_enact_their_switches() {
        let degrade = HealthBoard::new(OnJournalFail::Degrade);
        degrade.journal_failed();
        assert!(degrade.admission_open());
        assert!(degrade.durability_suspended());
        assert!(!degrade.abort_requested());
        degrade.journal_recovered();
        assert!(!degrade.durability_suspended());
        assert_eq!(
            degrade.state(Component::JournalWriter),
            HealthState::Healthy
        );

        let halt = HealthBoard::new(OnJournalFail::Halt);
        halt.journal_failed();
        assert!(!halt.admission_open());
        assert!(!halt.abort_requested());

        let exit = HealthBoard::new(OnJournalFail::Exit);
        exit.journal_failed();
        assert!(!exit.admission_open());
        assert!(exit.abort_requested());
    }

    #[test]
    fn transitions_shadow_into_gauges_and_counters() {
        let telem = LiveTelemetry::new(1, 0, 0);
        let board = HealthBoard::new(OnJournalFail::Degrade);
        board.attach_telemetry(telem.control_handle());
        board.set_state(Component::Granter, HealthState::Degraded);
        board.set_state(Component::Granter, HealthState::Degraded); // no-op
        board.journal_failed(); // writer → Failed (2), durability gauge on
        let snap = telem.registry().snapshot();
        let gauge = |name: &str| {
            snap.gauges()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v)
                .unwrap()
        };
        let counter = |name: &str| {
            snap.counters()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v)
                .unwrap()
        };
        assert_eq!(gauge("health_granter"), 1);
        assert_eq!(gauge("health_journal_writer"), 2);
        assert_eq!(gauge("durability_suspended"), 1);
        assert_eq!(counter("health_degradations"), 2);
        board.journal_recovered();
        let snap = telem.registry().snapshot();
        assert_eq!(
            snap.gauges()
                .find(|(n, _)| *n == "health_journal_writer")
                .unwrap()
                .1,
            0
        );
    }

    #[test]
    fn granter_stall_is_one_shot() {
        let board = HealthBoard::new(OnJournalFail::Degrade);
        assert!(!board.take_granter_stall());
        board.arm_granter_stall();
        assert!(board.take_granter_stall());
        assert!(!board.take_granter_stall());
    }

    #[test]
    fn render_json_is_a_flat_string_object() {
        let board = HealthBoard::new(OnJournalFail::Halt);
        board.set_state(Component::StatsPump, HealthState::Degraded);
        let json = board.render_json();
        assert!(json.starts_with("{\"policy\":\"halt\""), "{json}");
        assert!(json.contains("\"journal_writer\":\"healthy\""), "{json}");
        assert!(json.contains("\"stats_pump\":\"degraded\""), "{json}");
        assert!(json.ends_with("\"durability\":\"ok\"}"), "{json}");
    }
}
