//! Live-runtime telemetry: the counter catalog, per-worker trace rings,
//! and the sampling gate.
//!
//! [`LiveTelemetry`] owns one `ta-telemetry` [`Registry`] with a lane
//! per worker plus three helper lanes (granter, journal writer,
//! control), and one SPSC [`TraceRing`](ta_telemetry::TraceRing) per
//! worker. Attaching it to a load-generator run is optional and — by
//! design — nearly free:
//!
//! * Workers accumulate into their existing thread-local
//!   [`LiveCounters`] exactly as before and publish *deltas* to their
//!   registry lane once per [`WorkerTelem::FLUSH_CHUNK`] decisions, so
//!   the hot path gains one decrement, one branch, and one sampler
//!   check per decision.
//! * Decision tracing is gated by a [`SampleGate`]: at `N = 0` the
//!   per-decision cost is a single relaxed load and a branch; at
//!   `N = k` every `k`-th decision reads the post-decision balance and
//!   pushes one 32-byte record into the worker's ring.
//! * The journal writer, snapshotter, and recovery path publish through
//!   a [`Handle`] stashed in the persistence domain (see
//!   [`crate::persist::Persistence::attach_telemetry`]); those paths
//!   are off the admission hot path entirely.
//!
//! The catalog below is the single source of truth for counter/gauge
//! slot indices; a unit test pins the constants to the name arrays.

use std::sync::{Arc, Mutex};

use ta_telemetry::{
    mono_ns, trace_ring, Handle, LatencyHistogram, Registry, SampleGate, Sampler, Snapshot,
    TraceConsumer, TraceProducer, TraceRecord,
};
use token_account::live::Decision;

use crate::counters::LiveCounters;

/// Counter slot indices, in [`COUNTERS`] order.
pub mod c {
    /// Admission decisions made by workers.
    pub const ADMIT_REQUESTS: usize = 0;
    /// Reactive messages sent (tokens burned).
    pub const ADMIT_REACTIVE_SENT: usize = 1;
    /// Requests that admitted nothing.
    pub const ADMIT_REACTIVE_HELD: usize = 2;
    /// Round decisions (granter sweep entries).
    pub const ROUND_ROUNDS: usize = 3;
    /// Rounds that resolved to a proactive send.
    pub const ROUND_PROACTIVE_SENT: usize = 4;
    /// Rounds that banked their token.
    pub const ROUND_TOKENS_BANKED: usize = 5;
    /// Whole-shard granter sweeps completed.
    pub const GRANTER_SWEEPS: usize = 6;
    /// Accounts walked by granter sweeps.
    pub const GRANTER_ACCOUNTS: usize = 7;
    /// Producer batches handed to the journal writer.
    pub const JOURNAL_BATCHES: usize = 8;
    /// Delta frames encoded by the writer.
    pub const JOURNAL_FRAMES_DELTA: usize = 9;
    /// Range frames encoded by the writer.
    pub const JOURNAL_FRAMES_RANGE: usize = 10;
    /// Bytes of encoded delta frames.
    pub const JOURNAL_BYTES_DELTA: usize = 11;
    /// Bytes of encoded range frames.
    pub const JOURNAL_BYTES_RANGE: usize = 12;
    /// Group commits that wrote pending bytes.
    pub const JOURNAL_FLUSHES: usize = 13;
    /// Wall nanoseconds spent in commit `write(2)` calls.
    pub const JOURNAL_FLUSH_NS: usize = 14;
    /// fsync calls issued by the writer.
    pub const JOURNAL_FSYNCS: usize = 15;
    /// Wall nanoseconds spent in fsync calls.
    pub const JOURNAL_FSYNC_NS: usize = 16;
    /// Shard freezes taken by the snapshotter.
    pub const SNAPSHOT_FREEZES: usize = 17;
    /// Wall nanoseconds shards spent frozen (fence raise → lift).
    pub const SNAPSHOT_FREEZE_NS: usize = 18;
    /// Journal records replayed during crash recovery.
    pub const RECOVERY_REPLAYED: usize = 19;
    /// Decisions sampled into trace rings (pushed + dropped).
    pub const TRACE_SAMPLED: usize = 20;
    /// Sampled decisions whose verdict was a reactive send.
    pub const TRACE_SAMPLED_SENT: usize = 21;
    /// Sampled decisions whose verdict was a hold.
    pub const TRACE_SAMPLED_HELD: usize = 22;
    /// Sampled records dropped because a ring was full.
    pub const TRACE_DROPPED: usize = 23;
    /// Connections accepted by the observability server.
    pub const OBS_CONNECTIONS: usize = 24;
    /// `STATS` one-shot requests served over the wire.
    pub const OBS_STATS_REQUESTS: usize = 25;
    /// Stats lines pushed to `WATCH` subscribers.
    pub const OBS_WATCH_LINES: usize = 26;
    /// Trace records streamed to `TRACE` subscribers.
    pub const OBS_TRACE_STREAMED: usize = 27;
    /// Stats lines dropped because a `WATCH` connection queue was full.
    pub const OBS_DROPPED_WATCH: usize = 28;
    /// Trace records dropped because a `TRACE` connection queue was full.
    pub const OBS_DROPPED_TRACE: usize = 29;
    /// Journal commit attempts retried after a retryable IO error.
    pub const JOURNAL_IO_RETRIES: usize = 30;
    /// IO errors observed by the journal writer (retryable or not).
    pub const JOURNAL_IO_ERRORS: usize = 31;
    /// Journal records dropped while durability was suspended.
    pub const JOURNAL_DROPPED_RECORDS: usize = 32;
    /// Journal writer restarts onto a fresh segment after a failure.
    pub const JOURNAL_WRITER_RESTARTS: usize = 33;
    /// Granter sweep threads restarted by the supervisor.
    pub const GRANTER_RESTARTS: usize = 34;
    /// Health state transitions toward a worse state (per component).
    pub const HEALTH_DEGRADATIONS: usize = 35;
    /// Transient faults injected by the IO shim (`FaultPlan`).
    pub const FAULTS_INJECTED: usize = 36;
}

/// Gauge slot indices, in [`GAUGES`] order.
pub mod g {
    /// Producer batches enqueued to the journal writer and not yet
    /// encoded (incremented by producers, decremented by the writer).
    pub const JOURNAL_QUEUE_DEPTH: usize = 0;
    /// Journal writer health (0 healthy, 1 degraded, 2 failed).
    pub const HEALTH_JOURNAL_WRITER: usize = 1;
    /// Granter health (0 healthy, 1 degraded, 2 failed).
    pub const HEALTH_GRANTER: usize = 2;
    /// Trace collector health (0 healthy, 1 degraded, 2 failed).
    pub const HEALTH_TRACE_BUS: usize = 3;
    /// Stats pump health (0 healthy, 1 degraded, 2 failed).
    pub const HEALTH_STATS_PUMP: usize = 4;
    /// 1 while durability is suspended (degrade policy), else 0.
    pub const DURABILITY_SUSPENDED: usize = 5;
}

/// The counter catalog (slot order is the [`c`] constants' order).
pub const COUNTERS: &[&str] = &[
    "admit_requests",
    "admit_reactive_sent",
    "admit_reactive_held",
    "round_rounds",
    "round_proactive_sent",
    "round_tokens_banked",
    "granter_sweeps",
    "granter_accounts",
    "journal_batches",
    "journal_frames_delta",
    "journal_frames_range",
    "journal_bytes_delta",
    "journal_bytes_range",
    "journal_flushes",
    "journal_flush_ns",
    "journal_fsyncs",
    "journal_fsync_ns",
    "snapshot_freezes",
    "snapshot_freeze_ns",
    "recovery_replayed",
    "trace_sampled",
    "trace_sampled_sent",
    "trace_sampled_held",
    "trace_dropped",
    "obs_connections",
    "obs_stats_requests",
    "obs_watch_lines",
    "obs_trace_streamed",
    "obs_dropped_watch",
    "obs_dropped_trace",
    "journal_io_retries",
    "journal_io_errors",
    "journal_dropped_records",
    "journal_writer_restarts",
    "granter_restarts",
    "health_degradations",
    "faults_injected",
];

/// The gauge catalog (slot order is the [`g`] constants' order).
pub const GAUGES: &[&str] = &[
    "journal_queue_depth",
    "health_journal_writer",
    "health_granter",
    "health_trace_bus",
    "health_stats_pump",
    "durability_suspended",
];

/// Histogram slot indices, in [`HISTS`] order. All values are wall
/// nanoseconds; together they attribute where a decision's time goes —
/// the admit call itself, the durability pipeline behind it
/// (enqueue→commit wait, fsync), and the granter's round cadence
/// (sweep duration, deadline punctuality).
pub mod h {
    /// Admission (`admit`/`admit_journaled`) call latency per decision.
    pub const ADMIT_NS: usize = 0;
    /// Journal batch enqueue→group-commit wait (send to durable write).
    pub const JOURNAL_COMMIT_NS: usize = 1;
    /// Individual fsync call duration (named `fsync_ns` on the wire; the
    /// counter catalog already owns `journal_fsync_ns` for the total).
    pub const FSYNC_NS: usize = 2;
    /// Whole-accounts granter sweep duration (all shards, one pass).
    pub const GRANTER_SWEEP_NS: usize = 3;
    /// Round-deadline punctuality jitter: how late past its deadline a
    /// sweep pass actually started.
    pub const ROUND_JITTER_NS: usize = 4;
}

/// The histogram catalog (slot order is the [`h`] constants' order).
pub const HISTS: &[&str] = &[
    "admit_ns",
    "journal_commit_ns",
    "fsync_ns",
    "granter_sweep_ns",
    "round_jitter_ns",
];

/// Helper lanes appended after the per-worker lanes.
const GRANTER_LANE: usize = 0;
const PERSIST_LANE: usize = 1;
const CONTROL_LANE: usize = 2;
const EXTRA_LANES: usize = 3;

/// Telemetry state for one live run (see the [module docs](self)).
/// Build once, share via `Arc`, attach to a run with the `_observed`
/// load-generator entry points.
#[derive(Debug)]
pub struct LiveTelemetry {
    registry: Arc<Registry>,
    gate: Arc<SampleGate>,
    workers: usize,
    producers: Mutex<Vec<Option<TraceProducer>>>,
    consumers: Mutex<Vec<Option<TraceConsumer>>>,
}

impl LiveTelemetry {
    /// Default per-worker trace-ring capacity (slots).
    pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

    /// Builds telemetry for `workers` worker lanes with the given trace
    /// sample interval (`0` = tracing off) and per-worker ring capacity.
    pub fn new(workers: usize, sample: u32, ring_capacity: usize) -> Arc<Self> {
        let workers = workers.max(1);
        let (producers, consumers) = (0..workers)
            .map(|_| {
                let (p, cons) = trace_ring(ring_capacity);
                (Some(p), Some(cons))
            })
            .unzip();
        Arc::new(LiveTelemetry {
            registry: Registry::with_hists(COUNTERS, GAUGES, HISTS, workers + EXTRA_LANES),
            gate: SampleGate::new(sample),
            workers,
            producers: Mutex::new(producers),
            consumers: Mutex::new(consumers),
        })
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// One epoch-consistent counter sweep.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// The shared trace sampling gate (runtime-adjustable).
    pub fn gate(&self) -> &Arc<SampleGate> {
        &self.gate
    }

    /// Worker lanes this telemetry was built for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The granter thread's lane handle.
    pub fn granter_handle(&self) -> Handle {
        self.registry.handle(self.workers + GRANTER_LANE)
    }

    /// The persistence lane handle (journal writer, snapshotter, and
    /// producer queue accounting — multi-writer, which the registry's
    /// relaxed `fetch_add` cells tolerate; these paths are rare).
    pub fn persist_handle(&self) -> Handle {
        self.registry.handle(self.workers + PERSIST_LANE)
    }

    /// The control lane handle (recovery notes, collector accounting).
    pub fn control_handle(&self) -> Handle {
        self.registry.handle(self.workers + CONTROL_LANE)
    }

    /// Records journal replay progress from a completed recovery.
    pub fn note_recovery_replayed(&self, records: u64) {
        self.control_handle().add(c::RECOVERY_REPLAYED, records);
    }

    /// Takes every remaining trace consumer (collector-thread side).
    /// Consumers already taken are skipped, so a collector and a final
    /// drain cannot double-own a ring.
    pub fn take_consumers(&self) -> Vec<TraceConsumer> {
        let mut slots = self.consumers.lock().expect("consumer registry");
        slots.iter_mut().filter_map(Option::take).collect()
    }

    /// Builds worker `w`'s per-thread telemetry state, taking ownership
    /// of its trace-ring producer.
    pub(crate) fn worker(&self, w: usize) -> WorkerTelem {
        let producer = self
            .producers
            .lock()
            .expect("producer registry")
            .get_mut(w)
            .and_then(Option::take);
        WorkerTelem {
            flush: LaneFlush::new(self.registry.handle(w.min(self.workers - 1))),
            sampler: Sampler::new(Arc::clone(&self.gate)),
            producer,
            sampled: 0,
            sampled_sent: 0,
            sampled_held: 0,
            last_dropped: 0,
            hist_last: LatencyHistogram::new(),
            left: WorkerTelem::FLUSH_CHUNK,
        }
    }
}

/// Publishes [`LiveCounters`] deltas to one registry lane: keeps the
/// last-published copy and adds the difference, so the thread's own
/// counters stay the plain non-atomic hot-path accumulators they always
/// were.
#[derive(Debug)]
pub(crate) struct LaneFlush {
    handle: Handle,
    last: LiveCounters,
}

impl LaneFlush {
    pub(crate) fn new(handle: Handle) -> Self {
        LaneFlush {
            handle,
            last: LiveCounters::default(),
        }
    }

    pub(crate) fn handle(&self) -> &Handle {
        &self.handle
    }

    /// Publishes everything `now` gained since the last flush.
    pub(crate) fn flush(&mut self, now: &LiveCounters) {
        let h = &self.handle;
        h.add(c::ADMIT_REQUESTS, now.requests - self.last.requests);
        h.add(
            c::ADMIT_REACTIVE_SENT,
            now.reactive_sent - self.last.reactive_sent,
        );
        h.add(
            c::ADMIT_REACTIVE_HELD,
            now.reactive_held - self.last.reactive_held,
        );
        h.add(c::ROUND_ROUNDS, now.rounds - self.last.rounds);
        h.add(
            c::ROUND_PROACTIVE_SENT,
            now.proactive_sent - self.last.proactive_sent,
        );
        h.add(
            c::ROUND_TOKENS_BANKED,
            now.tokens_banked - self.last.tokens_banked,
        );
        self.last = *now;
    }
}

/// One worker thread's telemetry state: its lane flusher, its sampler,
/// its last-published latency histogram copy, and (when tracing) its
/// ring producer.
#[derive(Debug)]
pub(crate) struct WorkerTelem {
    flush: LaneFlush,
    sampler: Sampler,
    producer: Option<TraceProducer>,
    sampled: u64,
    sampled_sent: u64,
    sampled_held: u64,
    last_dropped: u64,
    hist_last: LatencyHistogram,
    left: u32,
}

impl WorkerTelem {
    /// Decisions between counter-delta flushes. Matches the journal's
    /// epoch-fence chunk so both amortizations stride together.
    pub(crate) const FLUSH_CHUNK: u32 = 256;

    /// Per-decision hook: sample-maybe, then flush counter and
    /// latency-histogram deltas once per chunk. `hist` is the worker's
    /// own running admit-latency histogram (published as bucket deltas,
    /// so the per-decision record stays a plain array increment);
    /// `balance_after` is only evaluated for sampled decisions.
    #[inline]
    pub(crate) fn decision(
        &mut self,
        counters: &LiveCounters,
        hist: &LatencyHistogram,
        client: usize,
        decision: Decision,
        balance_after: impl FnOnce() -> i64,
    ) {
        if self.sampler.hit() {
            self.sample(client, decision, balance_after());
        }
        self.left -= 1;
        if self.left == 0 {
            self.flush_now(counters, hist);
            self.left = Self::FLUSH_CHUNK;
        }
    }

    #[cold]
    fn sample(&mut self, client: usize, decision: Decision, balance_after: i64) {
        let (verdict, cost) = match decision {
            Decision::ReactiveSend(x) => (TraceRecord::SENT, x as u32),
            _ => (TraceRecord::HELD, 0),
        };
        self.sampled += 1;
        if verdict == TraceRecord::SENT {
            self.sampled_sent += 1;
        } else {
            self.sampled_held += 1;
        }
        if let Some(p) = self.producer.as_mut() {
            p.push(TraceRecord {
                mono_ns: mono_ns(),
                balance_after,
                client: client as u32,
                cost,
                verdict,
            });
        }
    }

    fn flush_now(&mut self, counters: &LiveCounters, hist: &LatencyHistogram) {
        self.flush.flush(counters);
        let h = self.flush.handle();
        h.add(c::TRACE_SAMPLED, std::mem::take(&mut self.sampled));
        h.add(
            c::TRACE_SAMPLED_SENT,
            std::mem::take(&mut self.sampled_sent),
        );
        h.add(
            c::TRACE_SAMPLED_HELD,
            std::mem::take(&mut self.sampled_held),
        );
        h.hist_flush_delta(h::ADMIT_NS, hist, &mut self.hist_last);
        if let Some(p) = self.producer.as_ref() {
            let dropped = p.ring().dropped();
            h.add(c::TRACE_DROPPED, dropped - self.last_dropped);
            self.last_dropped = dropped;
        }
    }

    /// Final flush at worker exit: everything the chunk stride missed.
    pub(crate) fn finish(mut self, counters: &LiveCounters, hist: &LatencyHistogram) {
        self.flush_now(counters, hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_constants_match_names() {
        assert_eq!(COUNTERS[c::ADMIT_REQUESTS], "admit_requests");
        assert_eq!(COUNTERS[c::ADMIT_REACTIVE_SENT], "admit_reactive_sent");
        assert_eq!(COUNTERS[c::ADMIT_REACTIVE_HELD], "admit_reactive_held");
        assert_eq!(COUNTERS[c::ROUND_ROUNDS], "round_rounds");
        assert_eq!(COUNTERS[c::ROUND_PROACTIVE_SENT], "round_proactive_sent");
        assert_eq!(COUNTERS[c::ROUND_TOKENS_BANKED], "round_tokens_banked");
        assert_eq!(COUNTERS[c::GRANTER_SWEEPS], "granter_sweeps");
        assert_eq!(COUNTERS[c::GRANTER_ACCOUNTS], "granter_accounts");
        assert_eq!(COUNTERS[c::JOURNAL_BATCHES], "journal_batches");
        assert_eq!(COUNTERS[c::JOURNAL_FRAMES_DELTA], "journal_frames_delta");
        assert_eq!(COUNTERS[c::JOURNAL_FRAMES_RANGE], "journal_frames_range");
        assert_eq!(COUNTERS[c::JOURNAL_BYTES_DELTA], "journal_bytes_delta");
        assert_eq!(COUNTERS[c::JOURNAL_BYTES_RANGE], "journal_bytes_range");
        assert_eq!(COUNTERS[c::JOURNAL_FLUSHES], "journal_flushes");
        assert_eq!(COUNTERS[c::JOURNAL_FLUSH_NS], "journal_flush_ns");
        assert_eq!(COUNTERS[c::JOURNAL_FSYNCS], "journal_fsyncs");
        assert_eq!(COUNTERS[c::JOURNAL_FSYNC_NS], "journal_fsync_ns");
        assert_eq!(COUNTERS[c::SNAPSHOT_FREEZES], "snapshot_freezes");
        assert_eq!(COUNTERS[c::SNAPSHOT_FREEZE_NS], "snapshot_freeze_ns");
        assert_eq!(COUNTERS[c::RECOVERY_REPLAYED], "recovery_replayed");
        assert_eq!(COUNTERS[c::TRACE_SAMPLED], "trace_sampled");
        assert_eq!(COUNTERS[c::TRACE_SAMPLED_SENT], "trace_sampled_sent");
        assert_eq!(COUNTERS[c::TRACE_SAMPLED_HELD], "trace_sampled_held");
        assert_eq!(COUNTERS[c::TRACE_DROPPED], "trace_dropped");
        assert_eq!(COUNTERS[c::OBS_CONNECTIONS], "obs_connections");
        assert_eq!(COUNTERS[c::OBS_STATS_REQUESTS], "obs_stats_requests");
        assert_eq!(COUNTERS[c::OBS_WATCH_LINES], "obs_watch_lines");
        assert_eq!(COUNTERS[c::OBS_TRACE_STREAMED], "obs_trace_streamed");
        assert_eq!(COUNTERS[c::OBS_DROPPED_WATCH], "obs_dropped_watch");
        assert_eq!(COUNTERS[c::OBS_DROPPED_TRACE], "obs_dropped_trace");
        assert_eq!(COUNTERS[c::JOURNAL_IO_RETRIES], "journal_io_retries");
        assert_eq!(COUNTERS[c::JOURNAL_IO_ERRORS], "journal_io_errors");
        assert_eq!(
            COUNTERS[c::JOURNAL_DROPPED_RECORDS],
            "journal_dropped_records"
        );
        assert_eq!(
            COUNTERS[c::JOURNAL_WRITER_RESTARTS],
            "journal_writer_restarts"
        );
        assert_eq!(COUNTERS[c::GRANTER_RESTARTS], "granter_restarts");
        assert_eq!(COUNTERS[c::HEALTH_DEGRADATIONS], "health_degradations");
        assert_eq!(COUNTERS[c::FAULTS_INJECTED], "faults_injected");
        assert_eq!(COUNTERS.len(), 37);
        assert_eq!(GAUGES[g::JOURNAL_QUEUE_DEPTH], "journal_queue_depth");
        assert_eq!(GAUGES[g::HEALTH_JOURNAL_WRITER], "health_journal_writer");
        assert_eq!(GAUGES[g::HEALTH_GRANTER], "health_granter");
        assert_eq!(GAUGES[g::HEALTH_TRACE_BUS], "health_trace_bus");
        assert_eq!(GAUGES[g::HEALTH_STATS_PUMP], "health_stats_pump");
        assert_eq!(GAUGES[g::DURABILITY_SUSPENDED], "durability_suspended");
        assert_eq!(GAUGES.len(), 6);
        assert_eq!(HISTS[h::ADMIT_NS], "admit_ns");
        assert_eq!(HISTS[h::JOURNAL_COMMIT_NS], "journal_commit_ns");
        assert_eq!(HISTS[h::FSYNC_NS], "fsync_ns");
        assert_eq!(HISTS[h::GRANTER_SWEEP_NS], "granter_sweep_ns");
        assert_eq!(HISTS[h::ROUND_JITTER_NS], "round_jitter_ns");
        assert_eq!(HISTS.len(), 5);
    }

    #[test]
    fn lane_flush_publishes_exact_deltas() {
        let t = LiveTelemetry::new(2, 0, 16);
        let mut flush = LaneFlush::new(t.registry().handle(0));
        let mut counters = LiveCounters {
            requests: 10,
            reactive_sent: 4,
            reactive_held: 6,
            ..LiveCounters::default()
        };
        flush.flush(&counters);
        counters.requests += 5;
        counters.reactive_sent += 2;
        counters.reactive_held += 3;
        counters.rounds += 7;
        counters.tokens_banked += 7;
        flush.flush(&counters);
        let snap = t.snapshot();
        assert_eq!(snap.counter(c::ADMIT_REQUESTS), 15);
        assert_eq!(snap.counter(c::ADMIT_REACTIVE_SENT), 6);
        assert_eq!(snap.counter(c::ADMIT_REACTIVE_HELD), 9);
        assert_eq!(snap.counter(c::ROUND_ROUNDS), 7);
        assert_eq!(snap.counter(c::ROUND_TOKENS_BANKED), 7);
    }

    #[test]
    fn worker_telem_samples_and_counts_exactly() {
        let t = LiveTelemetry::new(1, 1, 1024);
        let mut wt = t.worker(0);
        let mut counters = LiveCounters::default();
        let mut hist = LatencyHistogram::new();
        for i in 0..600u64 {
            counters.requests += 1;
            hist.record(100 + i);
            let d = if i % 3 == 0 {
                counters.reactive_sent += 2;
                Decision::ReactiveSend(2)
            } else {
                counters.reactive_held += 1;
                Decision::Hold
            };
            wt.decision(&counters, &hist, i as usize, d, || 42 - i as i64);
        }
        wt.finish(&counters, &hist);
        let snap = t.snapshot();
        assert_eq!(snap.counter(c::ADMIT_REQUESTS), 600);
        let admit = snap.hist(h::ADMIT_NS);
        assert_eq!(admit.count(), 600);
        assert_eq!(admit.sum(), hist.sum());
        assert_eq!(admit.max(), hist.max());
        assert_eq!(snap.counter(c::TRACE_SAMPLED), 600);
        assert_eq!(snap.counter(c::TRACE_SAMPLED_SENT), 200);
        assert_eq!(snap.counter(c::TRACE_SAMPLED_HELD), 400);
        assert_eq!(snap.counter(c::TRACE_DROPPED), 0);
        let mut out = Vec::new();
        for mut cons in t.take_consumers() {
            cons.drain(&mut out);
        }
        assert_eq!(out.len(), 600);
        let sent: u64 = out
            .iter()
            .filter(|r| r.verdict == TraceRecord::SENT)
            .map(|r| u64::from(r.cost))
            .sum();
        assert_eq!(sent, counters.reactive_sent);
        assert_eq!(out[0].balance_after, 42);
    }

    #[test]
    fn consumers_are_taken_once() {
        let t = LiveTelemetry::new(3, 0, 16);
        assert_eq!(t.take_consumers().len(), 3);
        assert!(t.take_consumers().is_empty());
    }
}
