//! # ta-live — the concurrent wall-clock token-account runtime
//!
//! Everything else in this workspace executes the paper's algorithms
//! inside a discrete-event simulator. This crate is the *deployment*
//! layer: a multi-threaded runtime that serves token-account admission
//! decisions for millions of virtual clients at wall-clock speed, with
//! the simulator retained as its oracle.
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`accounts`] | [`ShardedAccounts`]: cache-line-aware shards of lock-free atomic accounts |
//! | [`runtime`] | [`LiveRuntime`]: the monomorphized admission hot path + granter sweeps |
//! | [`loadgen`] | closed/open-loop load generation, Poisson & bursty mixes, latency histograms |
//! | [`histogram`] | allocation-free HDR-style log-linear [`LatencyHistogram`] |
//! | [`counters`] | [`LiveCounters`] and the exact token-conservation books |
//! | [`harness`] | live-vs-sim cross-validation: trace recording, exact virtual-clock replay, wall-clock distributional replay |
//! | [`persist`] | durability: CRC-framed grant/spend journal, epoch-fenced copy-on-write snapshots, verified crash recovery, fault injection |
//! | [`health`] | component supervision: per-component health state machines (Healthy → Degraded → Failed) fed by heartbeats, the `--on-journal-fail` degraded-mode policy, watchdog-driven restarts |
//! | [`telem`] | optional runtime introspection: counter catalog, latency-histogram catalog, per-worker trace rings, sampling gate (`ta-telemetry`-backed) |
//! | [`obs`] | the networked observability plane: [`StatsPump`] (one `ta-stats/v2` producer, N sinks), [`TraceBus`] (trace fan-out with exact drop accounting), [`ObsServer`] (`STATS`/`WATCH`/`TRACE` line protocol over TCP) |
//!
//! The decision hot path is wait-free for grants (`fetch_add`) and
//! lock-free for spends (a CAS loop that can never overdraw), performs
//! no allocation, and is monomorphized over the concrete strategy via
//! [`token_account::StrategyVisitor`] — no boxing, no virtual calls.
//!
//! **Validation.** The [`harness`] runs the same *(strategy × arrival
//! trace)* through the discrete-event engine and the live runtime:
//! driven by the virtual clock, the aggregate send/burn/grant counters
//! agree **exactly** (for every strategy family, worker count, and shard
//! count); driven by the wall clock, rates agree within tolerance while
//! token conservation still holds exactly. See
//! `crates/live/tests/live_vs_sim.rs`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accounts;
pub mod counters;
pub mod harness;
pub mod health;
pub mod histogram;
pub mod loadgen;
pub mod obs;
pub mod persist;
pub mod runtime;
pub mod telem;

pub use accounts::ShardedAccounts;
pub use counters::LiveCounters;
pub use harness::{
    live_vs_sim, live_vs_sim_spec, replay_realtime, replay_trace, run_sim_oracle, ArrivalTrace,
    CrossValidation, OracleWorkload, TraceEvent, TraceKind,
};
pub use health::{Component, HealthBoard, HealthState, OnJournalFail};
pub use histogram::LatencyHistogram;
pub use loadgen::{
    run_loadgen, run_loadgen_durable, run_loadgen_durable_observed,
    run_loadgen_durable_observed_spec, run_loadgen_durable_spec,
    run_loadgen_durable_supervised_spec, run_loadgen_observed, run_loadgen_observed_spec,
    run_loadgen_spec, run_loadgen_supervised_spec, ArrivalMode, BurstMix, DurableStats,
    LoadGenConfig, LoadGenReport,
};
pub use obs::{ObsServer, StatsPump, TraceBus, TraceSub};
pub use persist::{
    recover, FaultPlan, JournalHandle, JournalStats, PersistConfig, Persistence, RecoveredState,
    RecoveryError,
};
pub use runtime::LiveRuntime;
pub use telem::LiveTelemetry;
