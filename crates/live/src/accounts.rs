//! Token accounts packed into cache-line-aware shards.
//!
//! [`ShardedAccounts`] holds one [`AtomicTokenAccount`] per virtual
//! client, partitioned into contiguous shards. The partitioning serves
//! two masters:
//!
//! * **The decision hot path** maps a client id to its account with two
//!   integer ops (divide by the shard block, index into the shard's
//!   slice) and then operates purely on that one `AtomicI64` — wait-free
//!   grants, lock-free conditional spends, no shared metadata touched.
//! * **The granter** applies the per-round Δ grant shard by shard: each
//!   shard is one contiguous allocation, so a sweep is a linear walk
//!   over packed 8-byte cells — the prefetcher's favourite food — and
//!   independent shards can be swept by different threads without ever
//!   writing to the same cache line (each shard header is 64-byte
//!   aligned and each shard's cells live in their own allocation).
//!
//! The layout is the live-runtime mirror of the sharded simulator's
//! contiguous node blocks (`ta_sim::shard::ShardPlan`): client `i` of a
//! run maps to the same block in both worlds, which keeps the
//! live-vs-sim cross-validation a pure index translation.

use std::ops::Range;

use token_account::atomic::AtomicTokenAccount;

/// One shard's accounts. The 64-byte alignment keeps neighbouring shard
/// *headers* (pointer + length) on distinct cache lines, so per-shard
/// sweeps never false-share metadata.
#[repr(align(64))]
#[derive(Debug)]
struct AccountShard {
    accounts: Box<[AtomicTokenAccount]>,
}

/// All client accounts, partitioned into contiguous cache-line-aware
/// shards.
///
/// ```
/// use ta_live::accounts::ShardedAccounts;
///
/// let accounts = ShardedAccounts::new(10, 4);
/// accounts.account(7).grant();
/// assert_eq!(accounts.account(7).balance(), 1);
/// assert_eq!(accounts.balances_sum(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedAccounts {
    shards: Vec<AccountShard>,
    /// Clients per shard (the last shard may be shorter).
    block: usize,
    n: usize,
}

impl ShardedAccounts {
    /// Creates `n` zero-balance accounts in `shards` contiguous blocks.
    ///
    /// `shards` is clamped to `[1, n]` (an empty map keeps one empty
    /// shard so indexing arithmetic stays total).
    pub fn new(n: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, n.max(1));
        // `max(1)` keeps the indexing arithmetic total for the empty map
        // (shard_of/account then take the out-of-bounds panic path
        // instead of dividing by zero).
        let block = n.div_ceil(shards).max(1);
        let shards = (0..shards)
            .map(|s| {
                let lo = s * block;
                let hi = ((s + 1) * block).min(n);
                AccountShard {
                    accounts: (lo..hi).map(|_| AtomicTokenAccount::new(0)).collect(),
                }
            })
            .collect();
        ShardedAccounts { shards, block, n }
    }

    /// Rebuilds a map from recovered balances, preserving the layout
    /// rule of [`new`](Self::new) (same `n` and `shards` → identical
    /// client→shard partition, so journal shard ids stay valid).
    pub fn from_balances(balances: &[i64], shards: usize) -> Self {
        let n = balances.len();
        let shards = shards.clamp(1, n.max(1));
        let block = n.div_ceil(shards).max(1);
        let shards = (0..shards)
            .map(|s| {
                let lo = s * block;
                let hi = ((s + 1) * block).min(n);
                AccountShard {
                    accounts: balances[lo..hi]
                        .iter()
                        .map(|&b| AtomicTokenAccount::new(b))
                        .collect(),
                }
            })
            .collect();
        ShardedAccounts { shards, block, n }
    }

    /// Number of accounts.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `client`.
    #[inline]
    pub fn shard_of(&self, client: usize) -> usize {
        client / self.block
    }

    /// The account of `client` — the decision hot path.
    ///
    /// # Panics
    ///
    /// Panics if `client >= len()`.
    #[inline]
    pub fn account(&self, client: usize) -> &AtomicTokenAccount {
        &self.shards[client / self.block].accounts[client % self.block]
    }

    /// The contiguous accounts of shard `s` (granter sweeps).
    #[inline]
    pub fn shard_accounts(&self, s: usize) -> &[AtomicTokenAccount] {
        &self.shards[s].accounts
    }

    /// Client-id range of shard `s`.
    #[inline]
    pub fn shard_range(&self, s: usize) -> Range<usize> {
        let lo = s * self.block;
        lo..(lo + self.shards[s].accounts.len())
    }

    /// Sum of all balances — one side of the token-conservation books
    /// (`tokens_banked − tokens_burned == balances_sum` when accounts
    /// start at zero).
    pub fn balances_sum(&self) -> i64 {
        self.shards
            .iter()
            .flat_map(|s| s.accounts.iter())
            .map(AtomicTokenAccount::balance)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_total() {
        for (n, shards) in [(10, 4), (10, 1), (1, 8), (7, 7), (64, 3)] {
            let a = ShardedAccounts::new(n, shards);
            assert_eq!(a.len(), n);
            assert!(a.shard_count() <= shards.max(1));
            let mut seen = 0;
            for s in 0..a.shard_count() {
                let range = a.shard_range(s);
                assert_eq!(range.start, seen, "shards must be contiguous");
                assert_eq!(range.len(), a.shard_accounts(s).len());
                for c in range.clone() {
                    assert_eq!(a.shard_of(c), s);
                    // The flat view and the shard view alias the same cell.
                    a.account(c).grant();
                    assert_eq!(a.shard_accounts(s)[c - range.start].balance(), 1);
                }
                seen = range.end;
            }
            assert_eq!(seen, n);
            assert_eq!(a.balances_sum(), n as i64);
        }
    }

    #[test]
    fn empty_map_is_harmless() {
        let a = ShardedAccounts::new(0, 4);
        assert!(a.is_empty());
        assert_eq!(a.balances_sum(), 0);
        assert_eq!(a.shard_count(), 1);
        assert!(a.shard_accounts(0).is_empty());
        // Indexing arithmetic stays total: no divide-by-zero.
        assert_eq!(a.shard_of(0), 0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn empty_map_account_lookup_panics_on_index_not_division() {
        let _ = ShardedAccounts::new(0, 4).account(0);
    }

    #[test]
    fn from_balances_preserves_layout_and_values() {
        let balances: Vec<i64> = (0..10).map(|i| i as i64 - 3).collect();
        let a = ShardedAccounts::from_balances(&balances, 4);
        let b = ShardedAccounts::new(10, 4);
        assert_eq!(a.shard_count(), b.shard_count());
        for s in 0..a.shard_count() {
            assert_eq!(a.shard_range(s), b.shard_range(s));
        }
        for (c, &want) in balances.iter().enumerate() {
            assert_eq!(a.account(c).balance(), want);
        }
        assert_eq!(a.balances_sum(), balances.iter().sum::<i64>());
    }

    #[test]
    fn shard_headers_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<AccountShard>(), 64);
    }
}
