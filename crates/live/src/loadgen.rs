//! Closed- and open-loop load generation against the live runtime.
//!
//! Each worker thread owns a contiguous block of virtual clients and an
//! independent xoshiro256++ stream, and drives admission decisions
//! against the shared [`LiveRuntime`]:
//!
//! * **Closed loop** — back-to-back decisions as fast as the runtime
//!   admits them: the throughput mode (`BENCH_live.json`'s ops/sec
//!   numbers come from here).
//! * **Open loop** — Poisson arrivals at a configured per-client rate
//!   (the worker samples exponential gaps for the merged process of its
//!   whole block, which is distributionally identical to independent
//!   per-client processes), optionally mixed with bursts: with
//!   probability `burst.probability` an arrival brings `burst.size`
//!   back-to-back requests to the same client — the adversarial pattern
//!   token accounts exist to absorb.
//!
//! A granter thread applies the per-round Δ grant in contiguous batches
//! per shard ([`LiveRuntime::round_sweep`]). Decision latencies go into
//! per-worker [`LatencyHistogram`]s (no allocation, no sharing); counters
//! are per-worker [`LiveCounters`] merged at the end, and the report
//! closes the token-conservation books exactly — under any interleaving —
//! via [`LiveCounters::conserves`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use token_account::spec::{StrategySpec, StrategyVisitor};
use token_account::{InvalidStrategyError, Strategy, Usefulness};

use ta_sim::rng::Xoshiro256pp;
use ta_telemetry::mono_ns;

use crate::counters::LiveCounters;
use crate::health::{Component, HealthBoard, COMPONENTS};
use crate::histogram::LatencyHistogram;
use crate::persist::{JournalHandle, Persistence, RecoveredState};
use crate::runtime::LiveRuntime;
use crate::telem::{c, h, LaneFlush, LiveTelemetry, WorkerTelem};

/// How request arrivals are paced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalMode {
    /// Back-to-back decisions (throughput measurement).
    Closed,
    /// Poisson arrivals at this expected rate per client per second.
    Open {
        /// Expected requests per client per second.
        rate_per_client: f64,
    },
}

/// Bursty-arrival mix: some arrivals bring a back-to-back run of
/// requests to one client.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstMix {
    /// Probability that an arrival is a burst.
    pub probability: f64,
    /// Requests per burst.
    pub size: u32,
}

/// Load-generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenConfig {
    /// Virtual clients (accounts). Tested up to 10M.
    pub clients: usize,
    /// Worker threads (each owns a contiguous client block).
    pub workers: usize,
    /// Account shards (granter batch granularity; see
    /// [`crate::accounts::ShardedAccounts`]).
    pub account_shards: usize,
    /// Wall-clock run length.
    pub duration: Duration,
    /// Arrival pacing.
    pub mode: ArrivalMode,
    /// Probability that a request is useful (`u = 1`).
    pub useful_probability: f64,
    /// Optional bursty mix on top of the base arrivals.
    pub burst: Option<BurstMix>,
    /// Round length Δ of the granter thread; `None` disables granting
    /// (pure drain benchmarks).
    pub round_period: Option<Duration>,
    /// Master seed for every worker/granter stream.
    pub seed: u64,
}

impl LoadGenConfig {
    /// A small closed-loop default: 2 workers × 10k clients for one
    /// second, Δ = 100 ms.
    pub fn quick() -> Self {
        LoadGenConfig {
            clients: 10_000,
            workers: 2,
            account_shards: 64,
            duration: Duration::from_secs(1),
            mode: ArrivalMode::Closed,
            useful_probability: 0.8,
            burst: None,
            round_period: Some(Duration::from_millis(100)),
            seed: 1,
        }
    }
}

/// The merged outcome of a load-generator run.
#[derive(Debug)]
pub struct LoadGenReport {
    /// Merged counters (workers + granter).
    pub counters: LiveCounters,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time actually spent.
    pub wall: Duration,
    /// Merged decision-latency histogram (nanoseconds).
    pub histogram: LatencyHistogram,
    /// Sum of the final account balances.
    pub balances_sum: i64,
    /// Sum of the balances the run *started* from (non-zero only for
    /// runs resumed from a recovered state).
    pub initial_balances_sum: i64,
}

impl LoadGenReport {
    /// Admission (request) decisions per second, all workers together.
    pub fn decisions_per_sec(&self) -> f64 {
        self.counters.requests as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Admission decisions per second per worker.
    pub fn decisions_per_sec_per_worker(&self) -> f64 {
        self.decisions_per_sec() / self.workers.max(1) as f64
    }

    /// Whether the token books close exactly
    /// (`tokens_banked − reactive_sent == balances_sum` net of any
    /// recovered starting balances).
    pub fn conserves(&self) -> bool {
        self.counters.is_consistent()
            && self
                .counters
                .conserves(self.balances_sum - self.initial_balances_sum)
    }
}

/// Runs the load generator with a concrete (monomorphized) strategy.
pub fn run_loadgen<S: Strategy>(strategy: S, cfg: &LoadGenConfig) -> LoadGenReport {
    let runtime = LiveRuntime::new(strategy, cfg.clients, cfg.account_shards);
    run_on_runtime(&runtime, cfg, None, None, None, None).0
}

/// [`run_loadgen`] with telemetry attached: workers publish counter
/// deltas to `telem`'s registry and sampled decisions to its trace
/// rings while the run is in flight.
pub fn run_loadgen_observed<S: Strategy>(
    strategy: S,
    cfg: &LoadGenConfig,
    telem: &LiveTelemetry,
) -> LoadGenReport {
    let runtime = LiveRuntime::new(strategy, cfg.clients, cfg.account_shards);
    run_on_runtime(&runtime, cfg, None, None, Some(telem), None).0
}

/// Outcome of the durability side of a [`run_loadgen_durable`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// Snapshots completed.
    pub snapshots: u64,
    /// Snapshot attempts that failed (I/O errors or injected faults).
    pub snapshot_failures: u64,
}

/// Runs the load generator with the journal attached: every worker and
/// the granter publish their balance deltas through per-thread
/// [`JournalHandle`]s, and (optionally) a snapshotter thread checkpoints
/// the accounts every `snapshot_every`.
///
/// `recovered` resumes from a verified [`RecoveredState`] (whose
/// geometry must match `cfg` and the `persistence` manifest); `None`
/// starts from zero balances. The caller keeps ownership of
/// `persistence` — call [`Persistence::shutdown`] (or
/// [`Persistence::sync`]) afterwards to make the tail durable.
pub fn run_loadgen_durable<S: Strategy>(
    strategy: S,
    cfg: &LoadGenConfig,
    persistence: &Persistence,
    snapshot_every: Option<Duration>,
    recovered: Option<&RecoveredState>,
) -> (LoadGenReport, DurableStats) {
    run_loadgen_durable_inner(
        strategy,
        cfg,
        persistence,
        snapshot_every,
        recovered,
        None,
        None,
    )
}

/// [`run_loadgen_durable`] with telemetry attached: additionally
/// instruments the journal writer, snapshot freezes, and (for resumed
/// runs) recovery replay progress.
pub fn run_loadgen_durable_observed<S: Strategy>(
    strategy: S,
    cfg: &LoadGenConfig,
    persistence: &Persistence,
    snapshot_every: Option<Duration>,
    recovered: Option<&RecoveredState>,
    telem: &LiveTelemetry,
) -> (LoadGenReport, DurableStats) {
    run_loadgen_durable_inner(
        strategy,
        cfg,
        persistence,
        snapshot_every,
        recovered,
        Some(telem),
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_loadgen_durable_inner<S: Strategy>(
    strategy: S,
    cfg: &LoadGenConfig,
    persistence: &Persistence,
    snapshot_every: Option<Duration>,
    recovered: Option<&RecoveredState>,
    telem: Option<&LiveTelemetry>,
    board: Option<&Arc<HealthBoard>>,
) -> (LoadGenReport, DurableStats) {
    let runtime = match recovered {
        Some(state) => {
            assert_eq!(
                state.clients, cfg.clients,
                "recovered client count mismatch"
            );
            LiveRuntime::from_recovered(strategy, state)
        }
        None => LiveRuntime::new(strategy, cfg.clients, cfg.account_shards),
    };
    let manifest = persistence.manifest();
    assert_eq!(
        manifest.clients,
        runtime.accounts().len(),
        "manifest client count mismatch"
    );
    assert_eq!(
        manifest.shards,
        runtime.accounts().shard_count(),
        "manifest shard count mismatch"
    );
    if let (Some(t), Some(state)) = (telem, recovered) {
        t.note_recovery_replayed(state.replayed);
    }
    run_on_runtime(
        &runtime,
        cfg,
        Some(persistence),
        snapshot_every,
        telem,
        board,
    )
}

/// The shared run loop: spawns the granter, the workers, (durable runs
/// only) the snapshotter, and (supervised runs only) the health
/// supervisor over a caller-built runtime.
fn run_on_runtime<S: Strategy>(
    runtime: &LiveRuntime<S>,
    cfg: &LoadGenConfig,
    persistence: Option<&Persistence>,
    snapshot_every: Option<Duration>,
    telem: Option<&LiveTelemetry>,
    board: Option<&Arc<HealthBoard>>,
) -> (LoadGenReport, DurableStats) {
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(cfg.clients >= 1, "need at least one client");
    if let (Some(p), Some(t)) = (persistence, telem) {
        p.attach_telemetry(t.persist_handle());
    }
    if let Some(b) = board {
        if let Some(p) = persistence {
            p.attach_health(Arc::clone(b));
        }
        if let Some(t) = telem {
            b.attach_telemetry(t.control_handle());
        }
    }
    let board = board.map(Arc::as_ref);
    let initial_balances_sum = runtime.balances_sum();
    let stop = AtomicBool::new(false);
    let granter_shared = GranterShared::default();
    let start = Instant::now();

    let (worker_outcomes, durable) = std::thread::scope(|scope| {
        let granter = cfg.round_period.map(|period| {
            spawn_granter(
                scope,
                runtime,
                cfg,
                period,
                start,
                &stop,
                &granter_shared,
                persistence,
                telem,
                board,
                0,
            )
        });

        let supervisor = board.map(|board| {
            let stop = &stop;
            let shared = &granter_shared;
            scope.spawn(move || {
                supervisor_loop(
                    scope,
                    runtime,
                    cfg,
                    start,
                    stop,
                    shared,
                    persistence,
                    telem,
                    board,
                );
            })
        });

        let snapper = match (persistence, snapshot_every) {
            (Some(p), Some(every)) => {
                let runtime = &runtime;
                let stop = &stop;
                Some(scope.spawn(move || {
                    let mut stats = DurableStats::default();
                    let mut next = every;
                    while !stop.load(Ordering::Acquire) {
                        let now = start.elapsed();
                        if now < next {
                            std::thread::sleep((next - now).min(Duration::from_millis(5)));
                            continue;
                        }
                        match p.snapshot(runtime.accounts()) {
                            Ok(_) => stats.snapshots += 1,
                            Err(_) => stats.snapshot_failures += 1,
                        }
                        next += every;
                    }
                    stats
                }))
            }
            _ => None,
        };

        let block = cfg.clients.div_ceil(cfg.workers);
        let handles: Vec<_> = (0..cfg.workers)
            .map(|w| {
                let runtime = &runtime;
                let journal = persistence.map(Persistence::handle);
                let wt = telem.map(|t| t.worker(w));
                let lo = (w * block).min(cfg.clients);
                let hi = ((w + 1) * block).min(cfg.clients);
                scope.spawn(move || worker_loop(runtime, cfg, w as u64, lo, hi, journal, wt, board))
            })
            .collect();
        let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::Release);
        if let Some(g) = granter {
            g.join().unwrap();
        }
        if let Some(s) = supervisor {
            s.join().unwrap();
        }
        let durable = snapper.map(|s| s.join().unwrap()).unwrap_or_default();
        (outcomes, durable)
    });
    let wall = start.elapsed();

    let mut counters = granter_shared.counters.into_inner().unwrap();
    let mut histogram = LatencyHistogram::new();
    for (c, h) in &worker_outcomes {
        counters.merge(c);
        histogram.merge(h);
    }
    (
        LoadGenReport {
            counters,
            workers: cfg.workers,
            wall,
            histogram,
            balances_sum: runtime.balances_sum(),
            initial_balances_sum,
        },
        durable,
    )
}

/// Stream id of generation-0 of the granter (distinct from every
/// worker's `1 + w`); replacement generation `g` uses
/// `GRANTER_STREAM - g` so it never replays randomness the superseded
/// instance already consumed.
const GRANTER_STREAM: u64 = u64::MAX;

/// How often the supervisor sweeps the health board.
const SUPERVISOR_SWEEP: Duration = Duration::from_millis(25);
/// Heartbeat staleness past which an armed component is marked Degraded.
const HEARTBEAT_DEADLINE_NS: u64 = 300_000_000;
/// Granter staleness past which the watchdog spawns a replacement.
const GRANTER_RESTART_NS: u64 = 450_000_000;
/// Restart budget and spacing: self-healing, not a restart storm.
const GRANTER_RESTART_MAX: u32 = 5;
const GRANTER_RESTART_COOLDOWN: Duration = Duration::from_millis(500);
/// How long the injected `granter_stall` fault plays dead — past the
/// watchdog threshold, so a restart is guaranteed.
const GRANTER_STALL: Duration = Duration::from_millis(900);

/// State shared by every granter generation and the supervisor.
#[derive(Debug, Default)]
struct GranterShared {
    /// Next unswept round index. A granter claims round `r` with a CAS
    /// `r → r+1` *before* sweeping, so even while a stalled generation
    /// and its replacement overlap, no round's grants are ever applied
    /// twice — conservation holds across restarts by construction.
    round_claim: AtomicU64,
    /// Current granter generation; the supervisor bumps it to supersede
    /// a stalled instance, which exits when it next observes the bump.
    generation: AtomicU64,
    /// Every generation merges its counters here on exit.
    counters: Mutex<LiveCounters>,
}

/// Spawns one granter generation onto the run's scope.
#[allow(clippy::too_many_arguments)]
fn spawn_granter<'scope, S: Strategy>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    runtime: &'scope LiveRuntime<S>,
    cfg: &'scope LoadGenConfig,
    period: Duration,
    start: Instant,
    stop: &'scope AtomicBool,
    shared: &'scope GranterShared,
    persistence: Option<&'scope Persistence>,
    telem: Option<&'scope LiveTelemetry>,
    board: Option<&'scope HealthBoard>,
    generation: u64,
) -> std::thread::ScopedJoinHandle<'scope, ()> {
    let journal = persistence.map(Persistence::handle);
    let flush = telem.map(|t| LaneFlush::new(t.granter_handle()));
    scope.spawn(move || {
        granter_loop(
            runtime, cfg, period, start, stop, shared, journal, flush, board, generation,
        );
    })
}

/// One granter generation: claims rounds off the shared counter and
/// sweeps them until stopped or superseded.
#[allow(clippy::too_many_arguments)]
fn granter_loop<S: Strategy>(
    runtime: &LiveRuntime<S>,
    cfg: &LoadGenConfig,
    period: Duration,
    start: Instant,
    stop: &AtomicBool,
    shared: &GranterShared,
    mut journal: Option<JournalHandle>,
    mut flush: Option<LaneFlush>,
    board: Option<&HealthBoard>,
    generation: u64,
) {
    let mut rng = Xoshiro256pp::stream(cfg.seed, GRANTER_STREAM - generation);
    let mut counters = LiveCounters::default();
    let period_ns = period.as_nanos().max(1) as u64;
    while !stop.load(Ordering::Acquire) && shared.generation.load(Ordering::Acquire) == generation {
        if let Some(b) = board {
            b.beat(Component::Granter);
        }
        let round = shared.round_claim.load(Ordering::Acquire);
        let due = Duration::from_nanos(period_ns.saturating_mul(round + 1));
        let now = start.elapsed();
        if now < due {
            // Sleep in small slices so a stop request is seen promptly
            // even with long rounds.
            std::thread::sleep((due - now).min(Duration::from_millis(5)));
            continue;
        }
        if shared
            .round_claim
            .compare_exchange(round, round + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            continue; // another generation already owns this round
        }
        let sweep_start = Instant::now();
        let mut swept = 0u64;
        for s in 0..runtime.accounts().shard_count() {
            // Proactive sends would leave through a transport here; the
            // load generator only accounts them.
            swept += match journal.as_mut() {
                Some(j) => runtime.round_sweep_journaled(s, &mut rng, &mut counters, |_| {}, j),
                None => runtime.round_sweep(s, &mut rng, &mut counters, |_| {}),
            };
            if let Some(b) = board {
                b.beat(Component::Granter);
            }
        }
        if let Some(f) = flush.as_mut() {
            // One delta publish per whole-accounts pass: the sweep loop
            // itself stays untouched. Jitter is how late past its
            // deadline this pass started; sweep duration is the
            // whole-accounts walk above.
            f.handle()
                .add(c::GRANTER_SWEEPS, runtime.accounts().shard_count() as u64);
            f.handle().add(c::GRANTER_ACCOUNTS, swept);
            f.handle()
                .hist_record(h::ROUND_JITTER_NS, (now - due).as_nanos() as u64);
            f.handle()
                .hist_record(h::GRANTER_SWEEP_NS, sweep_start.elapsed().as_nanos() as u64);
            f.flush(&counters);
        }
        if let Some(b) = board {
            if b.take_granter_stall() {
                // Injected fault: go dark past the watchdog deadline.
                // The supervisor spawns a fresh generation; this one
                // exits via the generation check on wake-up.
                std::thread::sleep(GRANTER_STALL);
            }
        }
    }
    if let Some(f) = flush.as_mut() {
        f.flush(&counters);
    }
    shared.counters.lock().unwrap().merge(&counters);
}

/// The health supervisor: sweeps the board a few times per heartbeat
/// deadline, and restarts the granter when its beat goes stale.
#[allow(clippy::too_many_arguments)]
fn supervisor_loop<'scope, S: Strategy>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    runtime: &'scope LiveRuntime<S>,
    cfg: &'scope LoadGenConfig,
    start: Instant,
    stop: &'scope AtomicBool,
    shared: &'scope GranterShared,
    persistence: Option<&'scope Persistence>,
    telem: Option<&'scope LiveTelemetry>,
    board: &'scope HealthBoard,
) {
    let mut replacements = Vec::new();
    let mut restarts = 0u32;
    let mut cooldown_until = Instant::now();
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(SUPERVISOR_SWEEP);
        let now_ns = mono_ns();
        for component in COMPONENTS {
            board.supervise_beat(component, now_ns, HEARTBEAT_DEADLINE_NS);
        }
        let beat = board.last_beat_ns(Component::Granter);
        if let Some(period) = cfg.round_period {
            if beat != 0
                && now_ns.saturating_sub(beat) > GRANTER_RESTART_NS
                && restarts < GRANTER_RESTART_MAX
                && Instant::now() >= cooldown_until
            {
                // Supersede the stalled generation: it exits (and merges
                // its counters) when it next wakes; the shared round
                // claim guarantees the overlap can't double-grant.
                let generation = shared.generation.fetch_add(1, Ordering::AcqRel) + 1;
                board.count(c::GRANTER_RESTARTS);
                replacements.push(spawn_granter(
                    scope,
                    runtime,
                    cfg,
                    period,
                    start,
                    stop,
                    shared,
                    persistence,
                    telem,
                    Some(board),
                    generation,
                ));
                restarts += 1;
                cooldown_until = Instant::now() + GRANTER_RESTART_COOLDOWN;
            }
        }
    }
    for r in replacements {
        let _ = r.join();
    }
}

/// One worker: drives its client block until the deadline.
#[allow(clippy::too_many_arguments)]
fn worker_loop<S: Strategy>(
    runtime: &LiveRuntime<S>,
    cfg: &LoadGenConfig,
    w: u64,
    lo: usize,
    hi: usize,
    mut journal: Option<JournalHandle>,
    mut telem: Option<WorkerTelem>,
    board: Option<&HealthBoard>,
) -> (LiveCounters, LatencyHistogram) {
    let mut rng = Xoshiro256pp::stream(cfg.seed, 1 + w);
    let mut counters = LiveCounters::default();
    let mut histogram = LatencyHistogram::new();
    let block = (hi - lo).max(1) as u64;
    let deadline = cfg.duration;
    let start = Instant::now();
    // Open loop: exponential gaps for the merged Poisson process of the
    // whole block.
    let rate = match cfg.mode {
        ArrivalMode::Closed => 0.0,
        ArrivalMode::Open { rate_per_client } => rate_per_client * block as f64,
    };
    let mut next_arrival = Duration::ZERO;
    // Durable runs hold the producer's epoch across a chunk of
    // admissions (re-opened every `ADMIT_FENCE_CHUNK` decisions, and
    // released around open-loop waits) so the two seq-cst fence
    // operations amortize over the chunk instead of taxing every
    // decision.
    const ADMIT_FENCE_CHUNK: u32 = 256;
    let mut chunk_left = 0u32;
    loop {
        let now = start.elapsed();
        if now >= deadline {
            break;
        }
        if let Some(b) = board {
            if !b.admission_open() {
                break; // halt/exit policy fired: refuse new admissions
            }
        }
        if let ArrivalMode::Open { .. } = cfg.mode {
            if rate <= 0.0 {
                break; // nothing will ever arrive
            }
            let gap = -(1.0 - rng.next_f64()).ln() / rate;
            next_arrival += Duration::from_secs_f64(gap);
            if next_arrival > now {
                let wait = next_arrival - now;
                if start.elapsed() + wait >= deadline {
                    break;
                }
                if let Some(j) = journal.as_mut() {
                    if chunk_left > 0 {
                        chunk_left = 0;
                        j.exit(); // never sleep inside the epoch
                    }
                }
                if wait > Duration::from_millis(2) {
                    std::thread::sleep(wait - Duration::from_millis(1));
                }
                while start.elapsed() < next_arrival {
                    std::hint::spin_loop();
                }
            }
        }
        if let Some(j) = journal.as_mut() {
            if chunk_left == 0 {
                j.enter_bulk();
                chunk_left = ADMIT_FENCE_CHUNK;
            } else if chunk_left == 1 {
                // Step out and straight back in: one idle window per
                // chunk for a waiting snapshotter to slip through.
                j.exit();
                j.enter_bulk();
                chunk_left = ADMIT_FENCE_CHUNK;
            }
            chunk_left -= 1;
        }
        let client = lo + rng.below(block) as usize;
        let requests = match cfg.burst {
            Some(b) if rng.chance(b.probability) => b.size.max(1),
            _ => 1,
        };
        for _ in 0..requests {
            let usefulness = Usefulness::from_bool(rng.chance(cfg.useful_probability));
            let t0 = Instant::now();
            let decision = match journal.as_mut() {
                Some(j) => runtime.admit_journaled(client, usefulness, &mut rng, &mut counters, j),
                None => runtime.admit(client, usefulness, &mut rng, &mut counters),
            };
            histogram.record(t0.elapsed().as_nanos() as u64);
            if let Some(t) = telem.as_mut() {
                t.decision(&counters, &histogram, client, decision, || {
                    runtime.accounts().account(client).balance()
                });
            }
        }
    }
    if let Some(j) = journal.as_mut() {
        if chunk_left > 0 {
            j.exit();
        }
    }
    if let Some(t) = telem {
        t.finish(&counters, &histogram);
    }
    (counters, histogram)
}

/// Monomorphizing bridge: builds the concrete strategy named by `spec`
/// and runs the load generator with it — the whole decision path compiles
/// with the strategy type known statically.
struct LoadGenVisitor<'a> {
    cfg: &'a LoadGenConfig,
    telem: Option<&'a LiveTelemetry>,
    board: Option<&'a Arc<HealthBoard>>,
}

impl StrategyVisitor for LoadGenVisitor<'_> {
    type Output = LoadGenReport;
    fn visit<S: Strategy + Clone + 'static>(self, strategy: S) -> LoadGenReport {
        let runtime = LiveRuntime::new(strategy, self.cfg.clients, self.cfg.account_shards);
        run_on_runtime(&runtime, self.cfg, None, None, self.telem, self.board).0
    }
}

/// Runs the load generator for a serializable [`StrategySpec`].
///
/// # Errors
///
/// Propagates [`InvalidStrategyError`] from the strategy constructor.
pub fn run_loadgen_spec(
    spec: StrategySpec,
    cfg: &LoadGenConfig,
) -> Result<LoadGenReport, InvalidStrategyError> {
    spec.dispatch(LoadGenVisitor {
        cfg,
        telem: None,
        board: None,
    })
}

/// [`run_loadgen_observed`] for a serializable [`StrategySpec`].
///
/// # Errors
///
/// Propagates [`InvalidStrategyError`] from the strategy constructor.
pub fn run_loadgen_observed_spec(
    spec: StrategySpec,
    cfg: &LoadGenConfig,
    telem: &LiveTelemetry,
) -> Result<LoadGenReport, InvalidStrategyError> {
    spec.dispatch(LoadGenVisitor {
        cfg,
        telem: Some(telem),
        board: None,
    })
}

/// [`run_loadgen_spec`] under supervision: spawns the health supervisor
/// alongside the run, wires granter/worker heartbeats and admission
/// gating through `board`, and (with `telem`) shadows health transitions
/// into the registry.
///
/// # Errors
///
/// Propagates [`InvalidStrategyError`] from the strategy constructor.
pub fn run_loadgen_supervised_spec(
    spec: StrategySpec,
    cfg: &LoadGenConfig,
    telem: Option<&LiveTelemetry>,
    board: &Arc<HealthBoard>,
) -> Result<LoadGenReport, InvalidStrategyError> {
    spec.dispatch(LoadGenVisitor {
        cfg,
        telem,
        board: Some(board),
    })
}

/// Monomorphizing bridge for [`run_loadgen_durable`].
struct DurableVisitor<'a> {
    cfg: &'a LoadGenConfig,
    persistence: &'a Persistence,
    snapshot_every: Option<Duration>,
    recovered: Option<&'a RecoveredState>,
    telem: Option<&'a LiveTelemetry>,
    board: Option<&'a Arc<HealthBoard>>,
}

impl StrategyVisitor for DurableVisitor<'_> {
    type Output = (LoadGenReport, DurableStats);
    fn visit<S: Strategy + Clone + 'static>(self, strategy: S) -> Self::Output {
        run_loadgen_durable_inner(
            strategy,
            self.cfg,
            self.persistence,
            self.snapshot_every,
            self.recovered,
            self.telem,
            self.board,
        )
    }
}

/// [`run_loadgen_durable`] for a serializable [`StrategySpec`].
///
/// # Errors
///
/// Propagates [`InvalidStrategyError`] from the strategy constructor.
pub fn run_loadgen_durable_spec(
    spec: StrategySpec,
    cfg: &LoadGenConfig,
    persistence: &Persistence,
    snapshot_every: Option<Duration>,
    recovered: Option<&RecoveredState>,
) -> Result<(LoadGenReport, DurableStats), InvalidStrategyError> {
    spec.dispatch(DurableVisitor {
        cfg,
        persistence,
        snapshot_every,
        recovered,
        telem: None,
        board: None,
    })
}

/// [`run_loadgen_durable_observed`] for a serializable [`StrategySpec`].
///
/// # Errors
///
/// Propagates [`InvalidStrategyError`] from the strategy constructor.
pub fn run_loadgen_durable_observed_spec(
    spec: StrategySpec,
    cfg: &LoadGenConfig,
    persistence: &Persistence,
    snapshot_every: Option<Duration>,
    recovered: Option<&RecoveredState>,
    telem: &LiveTelemetry,
) -> Result<(LoadGenReport, DurableStats), InvalidStrategyError> {
    spec.dispatch(DurableVisitor {
        cfg,
        persistence,
        snapshot_every,
        recovered,
        telem: Some(telem),
        board: None,
    })
}

/// [`run_loadgen_durable_spec`] under supervision: additionally attaches
/// the board to the journal writer — IO retry/backoff and the
/// `--on-journal-fail` policy activate — and arms the granter watchdog.
///
/// # Errors
///
/// Propagates [`InvalidStrategyError`] from the strategy constructor.
#[allow(clippy::too_many_arguments)]
pub fn run_loadgen_durable_supervised_spec(
    spec: StrategySpec,
    cfg: &LoadGenConfig,
    persistence: &Persistence,
    snapshot_every: Option<Duration>,
    recovered: Option<&RecoveredState>,
    telem: Option<&LiveTelemetry>,
    board: &Arc<HealthBoard>,
) -> Result<(LoadGenReport, DurableStats), InvalidStrategyError> {
    spec.dispatch(DurableVisitor {
        cfg,
        persistence,
        snapshot_every,
        recovered,
        telem,
        board: Some(board),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use token_account::prelude::*;

    fn tiny(mode: ArrivalMode) -> LoadGenConfig {
        LoadGenConfig {
            clients: 500,
            workers: 2,
            account_shards: 8,
            duration: Duration::from_millis(150),
            mode,
            useful_probability: 0.8,
            burst: Some(BurstMix {
                probability: 0.1,
                size: 4,
            }),
            round_period: Some(Duration::from_millis(20)),
            seed: 42,
        }
    }

    #[test]
    fn closed_loop_conserves_and_reports() {
        let report = run_loadgen(
            RandomizedTokenAccount::new(2, 6).unwrap(),
            &tiny(ArrivalMode::Closed),
        );
        assert!(
            report.conserves(),
            "books must close: {:?}",
            report.counters
        );
        assert!(report.counters.requests > 0);
        assert!(report.counters.rounds > 0, "granter must have swept");
        assert_eq!(report.histogram.count(), report.counters.requests);
        assert!(report.decisions_per_sec() > 0.0);
        assert!(report.decisions_per_sec_per_worker() <= report.decisions_per_sec());
    }

    #[test]
    fn open_loop_rate_is_roughly_respected() {
        let mut cfg = tiny(ArrivalMode::Open {
            rate_per_client: 200.0,
        });
        cfg.burst = None;
        cfg.duration = Duration::from_millis(300);
        let report = run_loadgen(SimpleTokenAccount::new(10), &cfg);
        assert!(report.conserves());
        // 500 clients × 200/s × 0.3 s = 30k expected arrivals; the loop
        // may lag on a loaded machine but must be in the right decade.
        assert!(
            report.counters.requests > 3_000,
            "open loop too slow: {} requests",
            report.counters.requests
        );
    }

    #[test]
    fn observed_run_registry_matches_merged_counters_exactly() {
        let cfg = tiny(ArrivalMode::Closed);
        let telem = LiveTelemetry::new(cfg.workers, 1, 1 << 16);
        let report = run_loadgen_observed(RandomizedTokenAccount::new(2, 6).unwrap(), &cfg, &telem);
        assert!(report.conserves());
        let snap = telem.snapshot();
        let m = &report.counters;
        assert_eq!(snap.counter(c::ADMIT_REQUESTS), m.requests);
        assert_eq!(snap.counter(c::ADMIT_REACTIVE_SENT), m.reactive_sent);
        assert_eq!(snap.counter(c::ADMIT_REACTIVE_HELD), m.reactive_held);
        assert_eq!(snap.counter(c::ROUND_ROUNDS), m.rounds);
        assert_eq!(snap.counter(c::ROUND_PROACTIVE_SENT), m.proactive_sent);
        assert_eq!(snap.counter(c::ROUND_TOKENS_BANKED), m.tokens_banked);
        assert_eq!(snap.counter(c::GRANTER_ACCOUNTS), m.rounds);
        // Sample interval 1: every decision sampled; ring accounting
        // closes against the sampled total.
        assert_eq!(snap.counter(c::TRACE_SAMPLED), m.requests);
        let mut out = Vec::new();
        for mut cons in telem.take_consumers() {
            cons.drain(&mut out);
        }
        assert_eq!(
            out.len() as u64 + snap.counter(c::TRACE_DROPPED),
            snap.counter(c::TRACE_SAMPLED)
        );
    }

    #[test]
    fn supervised_run_restarts_a_stalled_granter_and_conserves() {
        use crate::health::{HealthBoard, OnJournalFail};
        let mut cfg = tiny(ArrivalMode::Closed);
        // Long enough for: first sweep (~20ms) → injected 900ms stall →
        // watchdog restart (~450ms in) → replacement sweeps more rounds.
        cfg.duration = Duration::from_millis(1500);
        cfg.clients = 200;
        let telem = LiveTelemetry::new(cfg.workers, 0, 0);
        let board = HealthBoard::new(OnJournalFail::Degrade);
        board.arm_granter_stall();
        let report = run_loadgen_supervised_spec(
            StrategySpec::Randomized { a: 2, c: 6 },
            &cfg,
            Some(&telem),
            &board,
        )
        .unwrap();
        assert!(
            report.conserves(),
            "books must close across a granter restart: {:?}",
            report.counters
        );
        assert!(report.counters.rounds > 0, "granter must have swept");
        let snap = telem.snapshot();
        assert!(
            snap.counter(c::GRANTER_RESTARTS) >= 1,
            "watchdog must have restarted the stalled granter"
        );
        // The replacement beat again, so the supervisor walked the
        // granter back to Healthy before the run ended.
        assert_eq!(
            board.state(crate::health::Component::Granter),
            crate::health::HealthState::Healthy
        );
        // Registry totals still agree with the merged counters even
        // though two generations contributed.
        assert_eq!(snap.counter(c::ROUND_ROUNDS), report.counters.rounds);
        assert_eq!(
            snap.counter(c::ROUND_TOKENS_BANKED),
            report.counters.tokens_banked
        );
    }

    #[test]
    fn spec_dispatch_runs_every_family() {
        let mut cfg = tiny(ArrivalMode::Closed);
        cfg.duration = Duration::from_millis(40);
        for spec in [
            StrategySpec::Proactive,
            StrategySpec::Reactive { k: 2 },
            StrategySpec::Simple { c: 10 },
            StrategySpec::Generalized { a: 5, c: 10 },
            StrategySpec::Randomized { a: 5, c: 10 },
        ] {
            let report = run_loadgen_spec(spec, &cfg).unwrap();
            assert!(report.conserves(), "{spec:?} failed conservation");
        }
        assert!(run_loadgen_spec(StrategySpec::Reactive { k: 0 }, &cfg).is_err());
    }
}
