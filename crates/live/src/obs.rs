//! The networked observability plane: one stats producer, fan-out trace
//! streaming, and a line-protocol TCP server — all dependency-free.
//!
//! Three pieces, composable but separable:
//!
//! * [`StatsPump`] — the **single** producer of `ta-stats/v2` lines.
//!   One thread snapshots the registry and renders one shared line per
//!   tick-group, delivered to stdout (`--stats-every`) and to every
//!   `WATCH` subscriber whose interval is due. Because every line comes
//!   from one producer over one registry epoch counter, `seq` is a
//!   single strictly-monotone stream no matter how many sinks consume
//!   it. [`StatsPump::finalize`] emits one last identical line to
//!   stdout *and* every subscriber, so a scraper's final line can be
//!   compared byte-for-byte against the process's own final stats line.
//! * [`TraceBus`] — the collector thread that drains the per-worker
//!   SPSC trace rings, writes the optional `--trace-out` JSONL file,
//!   and broadcasts each record to `TRACE` subscribers. Per-subscriber
//!   queues are bounded and **drop-and-count** ([`c::OBS_DROPPED_TRACE`]);
//!   the hot path is never back-pressured by a slow reader. Every
//!   subscriber gets an end-of-stream trailer closing the books:
//!   `streamed + dropped + missed + ring_dropped == sampled`.
//! * [`ObsServer`] — a non-blocking `std::net` TCP listener speaking a
//!   newline-delimited protocol: `STATS` (one v2 line), `WATCH <ms>`
//!   (pushed lines on an interval), `TRACE <n>` (sampled decision
//!   records as JSONL, arming 1-in-`n` sampling if tracing was off).
//!
//! Queue overflow policy everywhere: the producer side uses `try_send`
//! on a bounded channel and counts the loss on the control lane — a
//! stalled TCP reader costs that reader data, never the admission path
//! throughput.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ta_telemetry::{stats_line, stats_line_with, Handle, Snapshot, TraceConsumer, TraceRecord};

use crate::health::{Component, HealthBoard};
use crate::telem::{c, LiveTelemetry};

/// Bounded stats lines queued per `WATCH` subscriber.
const WATCH_QUEUE: usize = 8;
/// Bounded trace records queued per `TRACE` subscriber.
const TRACE_QUEUE: usize = 1024;
/// How long finalize/EOS delivery retries before dropping the line.
const FINAL_PATIENCE: Duration = Duration::from_millis(500);

/// The single producer of stats lines (see the [module docs](self)).
#[derive(Debug)]
pub struct StatsPump {
    shared: Arc<PumpShared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

#[derive(Debug)]
struct PumpShared {
    telem: Arc<LiveTelemetry>,
    start: Instant,
    stop: AtomicBool,
    stdout_every: Option<Duration>,
    sinks: Mutex<Vec<WatchSink>>,
    control: Handle,
    health: OnceLock<Arc<HealthBoard>>,
}

#[derive(Debug)]
struct WatchSink {
    tx: SyncSender<Arc<String>>,
    every: Duration,
    next: Instant,
}

impl StatsPump {
    /// Starts the pump thread. `start` anchors `uptime_ms`;
    /// `stdout_every` is the `--stats-every` interval (`None` = no
    /// stdout emission, `WATCH` subscribers only).
    pub fn start(
        telem: Arc<LiveTelemetry>,
        start: Instant,
        stdout_every: Option<Duration>,
    ) -> Arc<Self> {
        let control = telem.control_handle();
        let shared = Arc::new(PumpShared {
            telem,
            start,
            stop: AtomicBool::new(false),
            stdout_every,
            sinks: Mutex::new(Vec::new()),
            control,
            health: OnceLock::new(),
        });
        let loop_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("ta-stats-pump".into())
            .spawn(move || pump_loop(&loop_shared))
            .expect("spawn stats pump");
        Arc::new(StatsPump {
            shared,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// Attaches a health board: the pump heartbeats as
    /// [`Component::StatsPump`] and every rendered line carries a
    /// `health` section. First attach wins.
    pub fn attach_health(&self, board: Arc<HealthBoard>) {
        let _ = self.shared.health.set(board);
    }

    /// Renders one stats line right now (the `STATS` one-shot). Shares
    /// the registry epoch with the pump's periodic lines, so `seq` stays
    /// one monotone stream across both paths.
    pub fn render_now(&self) -> String {
        render(&self.shared)
    }

    /// Subscribes a `WATCH` sink: one line pushed per `every` interval,
    /// bounded queue, drop-and-count on overflow.
    pub fn subscribe(&self, every: Duration) -> Receiver<Arc<String>> {
        let (tx, rx) = mpsc::sync_channel(WATCH_QUEUE);
        self.shared
            .sinks
            .lock()
            .expect("watch sinks")
            .push(WatchSink {
                tx,
                every: every.max(Duration::from_millis(1)),
                next: Instant::now(),
            });
        rx
    }

    /// Stops the pump and emits **one final line** — identical bytes —
    /// to stdout (when configured) and to every live subscriber, then
    /// disconnects them. Returns the line; it is the process's last
    /// word on its counters, so a scraper's final received line must
    /// equal it.
    pub fn finalize(&self) -> String {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.lock().expect("pump thread").take() {
            let _ = t.join();
        }
        let line = Arc::new(render(&self.shared));
        if self.shared.stdout_every.is_some() {
            println!("{line}");
        }
        let sinks = std::mem::take(&mut *self.shared.sinks.lock().expect("watch sinks"));
        for sink in &sinks {
            if send_patiently(&sink.tx, Arc::clone(&line), FINAL_PATIENCE) {
                self.shared.control.incr(c::OBS_WATCH_LINES);
            } else {
                self.shared.control.incr(c::OBS_DROPPED_WATCH);
            }
        }
        // Dropping `sinks` here disconnects every WATCH stream.
        line.as_ref().clone()
    }
}

fn render(shared: &PumpShared) -> String {
    let snap = shared.telem.snapshot();
    let uptime_ms = shared.start.elapsed().as_millis() as u64;
    match shared.health.get() {
        Some(board) => stats_line_with(&snap, uptime_ms, &[("health", board.render_json())]),
        None => stats_line(&snap, uptime_ms),
    }
}

fn pump_loop(shared: &PumpShared) {
    let mut stdout_next = shared.stdout_every.map(|e| Instant::now() + e);
    while !shared.stop.load(Ordering::Acquire) {
        if let Some(b) = shared.health.get() {
            b.beat(Component::StatsPump);
        }
        std::thread::sleep(Duration::from_millis(1));
        let now = Instant::now();
        let stdout_due = stdout_next.is_some_and(|n| now >= n);
        let mut sinks = shared.sinks.lock().expect("watch sinks");
        if !stdout_due && !sinks.iter().any(|s| now >= s.next) {
            continue;
        }
        // One snapshot, one line, every due sink: the tick-group shares
        // the exact bytes (and therefore the `seq`).
        let line = Arc::new(render(shared));
        if stdout_due {
            println!("{line}");
            stdout_next = Some(now + shared.stdout_every.expect("stdout interval"));
        }
        sinks.retain_mut(|s| {
            if now < s.next {
                return true;
            }
            s.next = now + s.every;
            match s.tx.try_send(Arc::clone(&line)) {
                Ok(()) => {
                    shared.control.incr(c::OBS_WATCH_LINES);
                    true
                }
                Err(TrySendError::Full(_)) => {
                    shared.control.incr(c::OBS_DROPPED_WATCH);
                    true
                }
                Err(TrySendError::Disconnected(_)) => false,
            }
        });
    }
}

/// Retries `try_send` until it lands or `patience` runs out. Used only
/// for final/EOS lines, off the hot path.
fn send_patiently(tx: &SyncSender<Arc<String>>, line: Arc<String>, patience: Duration) -> bool {
    let deadline = Instant::now() + patience;
    let mut line = line;
    loop {
        match tx.try_send(line) {
            Ok(()) => return true,
            Err(TrySendError::Disconnected(_)) => return false,
            Err(TrySendError::Full(l)) => {
                if Instant::now() >= deadline {
                    return false;
                }
                line = l;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// A `TRACE` subscription: the record stream plus how many records the
/// bus had already drained (and therefore this subscriber will never
/// see) at subscribe time.
#[derive(Debug)]
pub struct TraceSub {
    /// Sampled decision records as JSON lines; ends with the EOS trailer.
    pub rx: Receiver<Arc<String>>,
    /// Records drained before this subscription existed.
    pub missed_at_start: u64,
}

/// The trace collector + broadcaster (see the [module docs](self)).
#[derive(Debug)]
pub struct TraceBus {
    shared: Arc<BusShared>,
    thread: Mutex<Option<JoinHandle<io::Result<u64>>>>,
}

#[derive(Debug)]
struct BusShared {
    stop: AtomicBool,
    /// Records drained from the rings so far. Written under the `subs`
    /// lock *before* the batch is broadcast, so `missed_at_start` and
    /// the delivered stream partition the drained records exactly.
    drained: AtomicU64,
    subs: Mutex<Vec<BusSink>>,
    control: Handle,
    health: OnceLock<Arc<HealthBoard>>,
}

#[derive(Debug)]
struct BusSink {
    tx: SyncSender<Arc<String>>,
    streamed: u64,
    dropped: u64,
    missed: u64,
    live: bool,
}

impl TraceBus {
    /// Takes exclusive ownership of the telemetry's trace rings and
    /// starts the collector thread; `out` adds a JSONL file sink.
    pub fn start(telem: &LiveTelemetry, out: Option<PathBuf>) -> Arc<Self> {
        let consumers = telem.take_consumers();
        let shared = Arc::new(BusShared {
            stop: AtomicBool::new(false),
            drained: AtomicU64::new(0),
            subs: Mutex::new(Vec::new()),
            control: telem.control_handle(),
            health: OnceLock::new(),
        });
        let loop_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("ta-trace-bus".into())
            .spawn(move || bus_loop(&loop_shared, consumers, out))
            .expect("spawn trace bus");
        Arc::new(TraceBus {
            shared,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// Attaches a health board: the collector heartbeats as
    /// [`Component::TraceBus`] on every drain sweep. First attach wins.
    pub fn attach_health(&self, board: Arc<HealthBoard>) {
        let _ = self.shared.health.set(board);
    }

    /// Subscribes a `TRACE` sink (bounded queue, drop-and-count).
    pub fn subscribe(&self) -> TraceSub {
        let (tx, rx) = mpsc::sync_channel(TRACE_QUEUE);
        let mut subs = self.shared.subs.lock().expect("trace subs");
        let missed = self.shared.drained.load(Ordering::Acquire);
        subs.push(BusSink {
            tx,
            streamed: 0,
            dropped: 0,
            missed,
            live: true,
        });
        TraceSub {
            rx,
            missed_at_start: missed,
        }
    }

    /// Stops the collector once the rings are dry (call after workers
    /// joined), sends each live subscriber an EOS trailer closing the
    /// books against `snap` — a snapshot taken *after* the run — and
    /// returns the number of records written to the file sink.
    ///
    /// Trailer: `{"eos":true,"streamed":..,"dropped":..,"missed":..,
    /// "ring_dropped":..,"sampled":..}` with the invariant
    /// `streamed + dropped + missed + ring_dropped == sampled`.
    pub fn finish(&self, snap: &Snapshot) -> io::Result<u64> {
        self.shared.stop.store(true, Ordering::Release);
        let lines = match self.thread.lock().expect("bus thread").take() {
            Some(t) => t.join().expect("trace bus panicked")?,
            None => 0,
        };
        let sampled = snap.counter(c::TRACE_SAMPLED);
        let ring_dropped = snap.counter(c::TRACE_DROPPED);
        let subs = std::mem::take(&mut *self.shared.subs.lock().expect("trace subs"));
        for s in subs.iter().filter(|s| s.live) {
            let eos = format!(
                "{{\"eos\":true,\"streamed\":{},\"dropped\":{},\"missed\":{},\
                 \"ring_dropped\":{},\"sampled\":{}}}",
                s.streamed, s.dropped, s.missed, ring_dropped, sampled
            );
            let _ = send_patiently(&s.tx, Arc::new(eos), FINAL_PATIENCE);
        }
        Ok(lines)
    }
}

fn bus_loop(
    shared: &BusShared,
    mut consumers: Vec<TraceConsumer>,
    out: Option<PathBuf>,
) -> io::Result<u64> {
    let mut writer = match &out {
        Some(p) => Some(BufWriter::new(File::create(p)?)),
        None => None,
    };
    let mut buf: Vec<TraceRecord> = Vec::new();
    let mut lines = 0u64;
    loop {
        if let Some(b) = shared.health.get() {
            b.beat(Component::TraceBus);
        }
        let mut drained = 0;
        for cons in consumers.iter_mut() {
            drained += cons.drain(&mut buf);
        }
        if drained == 0 {
            // Workers are joined before `stop` is raised, so an empty
            // sweep after it means the rings are dry for good.
            if shared.stop.load(Ordering::Acquire) {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        let mut subs = shared.subs.lock().expect("trace subs");
        shared.drained.fetch_add(drained as u64, Ordering::Release);
        for rec in buf.drain(..) {
            let json = rec.to_json();
            if let Some(w) = writer.as_mut() {
                w.write_all(json.as_bytes())?;
                w.write_all(b"\n")?;
            }
            lines += 1;
            if subs.iter().any(|s| s.live) {
                let line = Arc::new(json);
                for s in subs.iter_mut().filter(|s| s.live) {
                    match s.tx.try_send(Arc::clone(&line)) {
                        Ok(()) => {
                            s.streamed += 1;
                            shared.control.incr(c::OBS_TRACE_STREAMED);
                        }
                        Err(TrySendError::Full(_)) => {
                            s.dropped += 1;
                            shared.control.incr(c::OBS_DROPPED_TRACE);
                        }
                        Err(TrySendError::Disconnected(_)) => s.live = false,
                    }
                }
            }
        }
    }
    if let Some(mut w) = writer {
        w.flush()?;
    }
    Ok(lines)
}

/// The TCP observability server (see the [module docs](self) for the
/// wire protocol).
#[derive(Debug)]
pub struct ObsServer {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    addr: SocketAddr,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the accept loop.
    pub fn spawn(
        addr: &str,
        telem: &Arc<LiveTelemetry>,
        pump: Arc<StatsPump>,
        bus: Arc<TraceBus>,
    ) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let gate = Arc::clone(telem.gate());
        let control = telem.control_handle();
        let thread = std::thread::Builder::new()
            .name("ta-obs".into())
            .spawn(move || accept_loop(listener, loop_stop, pump, bus, gate, control))?;
        Ok(ObsServer {
            stop,
            thread: Some(thread),
            addr: local,
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins every connection thread. Call after
    /// [`StatsPump::finalize`] and [`TraceBus::finish`]: streaming
    /// connections exit when their (disconnected) queues run dry.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[allow(clippy::needless_pass_by_value)]
fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    pump: Arc<StatsPump>,
    bus: Arc<TraceBus>,
    gate: Arc<ta_telemetry::SampleGate>,
    control: Handle,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                control.incr(c::OBS_CONNECTIONS);
                let pump = Arc::clone(&pump);
                let bus = Arc::clone(&bus);
                let gate = Arc::clone(&gate);
                let stop = Arc::clone(&stop);
                let control = control.clone();
                conns.push(std::thread::spawn(move || {
                    let _ = serve_conn(stream, &stop, &pump, &bus, &gate, &control);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    for conn in conns {
        let _ = conn.join();
    }
}

fn serve_conn(
    stream: TcpStream,
    stop: &AtomicBool,
    pump: &StatsPump,
    bus: &TraceBus,
    gate: &ta_telemetry::SampleGate,
    control: &Handle,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut line = String::new();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
        let cmd = line.trim();
        if cmd.is_empty() {
            continue;
        }
        let mut words = cmd.split_whitespace();
        let verb = words.next().map(|w| w.to_ascii_uppercase());
        let arg = words.next().and_then(|v| v.parse::<u64>().ok());
        match verb.as_deref() {
            Some("STATS") => {
                control.incr(c::OBS_STATS_REQUESTS);
                out.write_all(pump.render_now().as_bytes())?;
                out.write_all(b"\n")?;
            }
            Some("WATCH") => match arg.filter(|ms| *ms > 0) {
                Some(ms) => {
                    let rx = pump.subscribe(Duration::from_millis(ms));
                    return stream_lines(&rx, out, stop);
                }
                None => out.write_all(b"ERR WATCH needs a positive interval in ms\n")?,
            },
            Some("TRACE") => match arg {
                Some(n) => {
                    // Arm 1-in-n sampling if tracing was off; an explicit
                    // --trace-sample (gate already nonzero) wins.
                    if n > 0 && gate.get() == 0 {
                        gate.set(n as u32);
                    }
                    let sub = bus.subscribe();
                    return stream_lines(&sub.rx, out, stop);
                }
                None => out.write_all(b"ERR TRACE needs a sample interval\n")?,
            },
            _ => out.write_all(b"ERR unknown command (STATS | WATCH <ms> | TRACE <n>)\n")?,
        }
    }
}

/// Forwards queued lines to the socket until the producer disconnects
/// (finalize/EOS already queued) — then drains what's left and returns.
fn stream_lines(
    rx: &Receiver<Arc<String>>,
    mut out: TcpStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(line) => {
                out.write_all(line.as_bytes())?;
                out.write_all(b"\n")?;
            }
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // The channel buffers survive sender drop: flush the tail (final
    // stats line / EOS trailer) before closing.
    for line in rx.try_iter() {
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::LiveCounters;
    use token_account::live::Decision;

    fn parse_seq(line: &str) -> u64 {
        line.split("\"seq\":")
            .nth(1)
            .and_then(|s| s.split(',').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no seq in {line}"))
    }

    #[test]
    fn stats_pump_seq_is_one_monotone_stream_across_sinks() {
        let telem = LiveTelemetry::new(1, 0, 16);
        let pump = StatsPump::start(Arc::clone(&telem), Instant::now(), None);
        // Intervals chosen so fewer than WATCH_QUEUE lines accumulate in
        // the unread queues before finalize.
        let a = pump.subscribe(Duration::from_millis(10));
        let b = pump.subscribe(Duration::from_millis(10));
        // One-shot STATS renders interleave with the periodic stream.
        let s1 = parse_seq(&pump.render_now());
        std::thread::sleep(Duration::from_millis(35));
        let s2 = parse_seq(&pump.render_now());
        assert!(s2 > s1);
        let last = pump.finalize();
        let lines_a: Vec<String> = a.try_iter().map(|l| l.as_ref().clone()).collect();
        let lines_b: Vec<String> = b.try_iter().map(|l| l.as_ref().clone()).collect();
        assert!(!lines_a.is_empty() && !lines_b.is_empty());
        for lines in [&lines_a, &lines_b] {
            let seqs: Vec<u64> = lines.iter().map(|l| parse_seq(l)).collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "seq not strictly increasing: {seqs:?}"
            );
        }
        // Both sinks end on the finalize line — identical bytes.
        assert_eq!(lines_a.last().unwrap(), &last);
        assert_eq!(lines_b.last().unwrap(), &last);
        // A seq shared between sinks means the very same tick-group
        // line, byte for byte.
        for la in &lines_a {
            for lb in &lines_b {
                if parse_seq(la) == parse_seq(lb) {
                    assert_eq!(la, lb);
                }
            }
        }
    }

    #[test]
    fn attached_board_puts_a_health_section_on_every_line() {
        use crate::health::{HealthState, OnJournalFail};
        let telem = LiveTelemetry::new(1, 0, 16);
        let pump = StatsPump::start(Arc::clone(&telem), Instant::now(), None);
        let board = HealthBoard::new(OnJournalFail::Halt);
        pump.attach_health(Arc::clone(&board));
        board.set_state(Component::Granter, HealthState::Degraded);
        let line = pump.render_now();
        assert!(line.starts_with("{\"schema\":\"ta-stats/v2\""), "{line}");
        assert!(
            line.contains(",\"health\":{\"policy\":\"halt\""),
            "no health section: {line}"
        );
        assert!(line.contains("\"granter\":\"degraded\""), "{line}");
        assert!(line.ends_with("\"durability\":\"ok\"}}"), "{line}");
        // The pump heartbeats as StatsPump once the board is attached.
        let deadline = Instant::now() + Duration::from_secs(5);
        while board.last_beat_ns(Component::StatsPump) == 0 {
            assert!(Instant::now() < deadline, "pump never beat");
            std::thread::sleep(Duration::from_millis(2));
        }
        pump.finalize();
    }

    #[test]
    fn watch_overflow_drops_and_counts_without_blocking() {
        let telem = LiveTelemetry::new(1, 0, 16);
        let pump = StatsPump::start(Arc::clone(&telem), Instant::now(), None);
        // Subscribe and never read: the bounded queue fills, further
        // lines are dropped, and the pump keeps running.
        let _rx = pump.subscribe(Duration::from_millis(1));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let snap = telem.snapshot();
            if snap.counter(c::OBS_DROPPED_WATCH) > 0 {
                assert!(snap.counter(c::OBS_WATCH_LINES) >= WATCH_QUEUE as u64);
                break;
            }
            assert!(Instant::now() < deadline, "no drops recorded");
            std::thread::sleep(Duration::from_millis(5));
        }
        pump.finalize();
    }

    #[test]
    fn trace_bus_closes_the_books_over_subscribers() {
        let telem = LiveTelemetry::new(1, 1, 1 << 14);
        let bus = TraceBus::start(&telem, None);
        let early = bus.subscribe();
        let mut wt = telem.worker(0);
        let mut counters = LiveCounters::default();
        let mut hist = ta_telemetry::LatencyHistogram::new();
        // Totals stay under TRACE_QUEUE so the unread test subscribers
        // can still take the EOS trailer after the fact.
        for i in 0..600u64 {
            counters.requests += 1;
            counters.reactive_held += 1;
            hist.record(50);
            wt.decision(&counters, &hist, i as usize, Decision::Hold, || 0);
        }
        // A late subscriber misses everything already drained.
        std::thread::sleep(Duration::from_millis(30));
        let late = bus.subscribe();
        for i in 0..400u64 {
            counters.requests += 1;
            counters.reactive_held += 1;
            hist.record(50);
            wt.decision(&counters, &hist, i as usize, Decision::Hold, || 0);
        }
        wt.finish(&counters, &hist);
        // Let the bus drain the rings dry before closing the books.
        std::thread::sleep(Duration::from_millis(50));
        let snap = telem.snapshot();
        bus.finish(&snap).expect("bus finish");
        let sampled = snap.counter(c::TRACE_SAMPLED);
        let ring_dropped = snap.counter(c::TRACE_DROPPED);
        assert_eq!(sampled, 1_000);
        for sub in [early, late] {
            let lines: Vec<String> = sub.rx.iter().map(|l| l.as_ref().clone()).collect();
            let eos = lines.last().expect("eos trailer");
            assert!(eos.starts_with("{\"eos\":true,"), "trailer: {eos}");
            let field = |key: &str| -> u64 {
                eos.split(&format!("\"{key}\":"))
                    .nth(1)
                    .and_then(|s| s.split([',', '}']).next())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("no {key} in {eos}"))
            };
            assert_eq!(field("sampled"), sampled);
            assert_eq!(field("missed"), sub.missed_at_start);
            // Exact wire closure: every sampled record is accounted for.
            assert_eq!(
                field("streamed") + field("dropped") + field("missed") + ring_dropped,
                sampled
            );
            // Everything queued actually reached this subscriber.
            assert_eq!(lines.len() as u64 - 1, field("streamed"));
        }
    }

    #[test]
    fn obs_server_speaks_stats_watch_and_errors() {
        let telem = LiveTelemetry::new(1, 0, 16);
        let pump = StatsPump::start(Arc::clone(&telem), Instant::now(), None);
        let bus = TraceBus::start(&telem, None);
        let server =
            ObsServer::spawn("127.0.0.1:0", &telem, Arc::clone(&pump), Arc::clone(&bus)).unwrap();
        let addr = server.addr();

        // STATS: one v2 line per request, seq strictly increasing.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"STATS\n").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut l1 = String::new();
        reader.read_line(&mut l1).unwrap();
        assert!(l1.starts_with("{\"schema\":\"ta-stats/v2\""), "{l1}");
        conn.write_all(b"STATS\n").unwrap();
        let mut l2 = String::new();
        reader.read_line(&mut l2).unwrap();
        assert!(parse_seq(&l2) > parse_seq(&l1));
        // Unknown verbs get a diagnostic, not a hangup.
        conn.write_all(b"NONSENSE\n").unwrap();
        let mut l3 = String::new();
        reader.read_line(&mut l3).unwrap();
        assert!(l3.starts_with("ERR"), "{l3}");
        drop(reader);
        drop(conn);

        // WATCH: pushed lines on an interval until the pump finalizes;
        // the final pushed line equals the pump's final line.
        let mut watch = TcpStream::connect(addr).unwrap();
        watch.write_all(b"WATCH 3\n").unwrap();
        let mut wreader = BufReader::new(watch);
        let mut first = String::new();
        wreader.read_line(&mut first).unwrap();
        assert!(first.starts_with("{\"schema\":\"ta-stats/v2\""), "{first}");
        std::thread::sleep(Duration::from_millis(20));
        let final_line = pump.finalize();
        let snap = telem.snapshot();
        bus.finish(&snap).unwrap();
        let mut last = first.clone();
        let mut cur = String::new();
        while {
            cur.clear();
            wreader.read_line(&mut cur).unwrap() > 0
        } {
            last = cur.clone();
        }
        assert_eq!(last.trim_end(), final_line);
        server.shutdown();
        let snap = telem.snapshot();
        assert!(snap.counter(c::OBS_CONNECTIONS) >= 2);
        assert_eq!(snap.counter(c::OBS_STATS_REQUESTS), 2);
        assert!(snap.counter(c::OBS_WATCH_LINES) >= 2);
    }

    #[test]
    fn trace_over_tcp_arms_the_gate_and_closes_at_eos() {
        let telem = LiveTelemetry::new(1, 0, 1 << 12);
        let pump = StatsPump::start(Arc::clone(&telem), Instant::now(), None);
        let bus = TraceBus::start(&telem, None);
        let server =
            ObsServer::spawn("127.0.0.1:0", &telem, Arc::clone(&pump), Arc::clone(&bus)).unwrap();

        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.write_all(b"TRACE 1\n").unwrap();
        // Wait for the server to arm 1-in-1 sampling.
        let deadline = Instant::now() + Duration::from_secs(5);
        while telem.gate().get() == 0 {
            assert!(Instant::now() < deadline, "gate never armed");
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut wt = telem.worker(0);
        let mut counters = LiveCounters::default();
        let mut hist = ta_telemetry::LatencyHistogram::new();
        for i in 0..1_000u64 {
            counters.requests += 1;
            counters.reactive_held += 1;
            hist.record(10);
            wt.decision(&counters, &hist, i as usize, Decision::Hold, || 0);
        }
        wt.finish(&counters, &hist);
        std::thread::sleep(Duration::from_millis(50));
        pump.finalize();
        let snap = telem.snapshot();
        bus.finish(&snap).unwrap();
        let mut records = 0u64;
        let mut eos = String::new();
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        while {
            line.clear();
            reader.read_line(&mut line).unwrap() > 0
        } {
            if line.starts_with("{\"eos\"") {
                eos = line.trim_end().to_string();
            } else {
                assert!(line.starts_with("{\"t_ns\":"), "{line}");
                records += 1;
            }
        }
        server.shutdown();
        assert!(!eos.is_empty(), "no EOS trailer");
        let field = |key: &str| -> u64 {
            eos.split(&format!("\"{key}\":"))
                .nth(1)
                .and_then(|s| s.split([',', '}']).next())
                .and_then(|s| s.parse().ok())
                .unwrap()
        };
        assert_eq!(field("sampled"), 1_000);
        assert_eq!(field("streamed"), records);
        assert_eq!(
            field("streamed") + field("dropped") + field("missed") + field("ring_dropped"),
            field("sampled")
        );
    }
}
