//! The concurrent admission runtime: strategy + sharded accounts.
//!
//! [`LiveRuntime`] is the shared, immutable heart of the live system: a
//! monomorphized [`LiveStrategy`] plus the [`ShardedAccounts`] map. All
//! methods take `&self`; worker threads and the granter share one
//! instance behind a plain reference (scoped threads) or an `Arc`.
//!
//! Two entry points mirror Algorithm 4's two events:
//!
//! * [`admit`](LiveRuntime::admit) — a request arrived for a client;
//!   evaluate `REACTIVE` and burn tokens. This is the worker hot path:
//!   one RNG draw, one atomic load, at most one CAS loop, a few counter
//!   increments — no allocation, no locks, no dispatch.
//! * [`round`](LiveRuntime::round) / [`round_sweep`](LiveRuntime::round_sweep)
//!   — one client's round tick, or a whole shard's. The granter thread
//!   calls `round_sweep` once per shard per Δ, walking the shard's
//!   contiguous accounts; the virtual-clock replay calls `round` per
//!   recorded tick instead.
//!
//! Callers pass their own RNG and [`LiveCounters`]; the runtime never
//! owns mutable state, which is what makes exact cross-validation
//! possible (the replay hands per-client RNG streams to the very same
//! code the wall-clock load generator runs).

use rand::Rng;

use token_account::live::{Decision, LiveStrategy};
use token_account::{Strategy, Usefulness};

use crate::accounts::ShardedAccounts;
use crate::counters::LiveCounters;
use crate::persist::{JournalHandle, RecoveredState};

/// Accounts swept per epoch-fence window in
/// [`LiveRuntime::round_sweep_journaled`]: between windows the sweep
/// steps out of its epoch so a concurrent snapshotter can freeze the
/// shard without waiting for the whole sweep.
const SWEEP_FENCE_CHUNK: usize = 1024;

/// The shared admission runtime (see the [module docs](self)).
#[derive(Debug)]
pub struct LiveRuntime<S: Strategy> {
    strategy: LiveStrategy<S>,
    accounts: ShardedAccounts,
}

impl<S: Strategy> LiveRuntime<S> {
    /// Builds the runtime for `clients` zero-balance accounts in `shards`
    /// blocks.
    pub fn new(strategy: S, clients: usize, shards: usize) -> Self {
        LiveRuntime {
            strategy: LiveStrategy::new(strategy),
            accounts: ShardedAccounts::new(clients, shards),
        }
    }

    /// The account map.
    #[inline]
    pub fn accounts(&self) -> &ShardedAccounts {
        &self.accounts
    }

    /// The strategy adapter.
    #[inline]
    pub fn strategy(&self) -> &LiveStrategy<S> {
        &self.strategy
    }

    /// Admission decision for a request at `client` (the worker hot
    /// path). Burns tokens for reactive sends; updates `counters`.
    #[inline]
    pub fn admit<R: Rng + ?Sized>(
        &self,
        client: usize,
        usefulness: Usefulness,
        rng: &mut R,
        counters: &mut LiveCounters,
    ) -> Decision {
        counters.requests += 1;
        let decision = self
            .strategy
            .decide_message(self.accounts.account(client), usefulness, rng);
        match decision {
            Decision::ReactiveSend(x) => counters.reactive_sent += x,
            _ => counters.reactive_held += 1,
        }
        decision
    }

    /// One round tick for `client`: grant-or-send per Algorithm 4.
    #[inline]
    pub fn round<R: Rng + ?Sized>(
        &self,
        client: usize,
        rng: &mut R,
        counters: &mut LiveCounters,
    ) -> Decision {
        counters.rounds += 1;
        let decision = self
            .strategy
            .decide_round(self.accounts.account(client), rng);
        match decision {
            Decision::ProactiveSend => counters.proactive_sent += 1,
            _ => counters.tokens_banked += 1,
        }
        decision
    }

    /// Applies one round Δ to every account of shard `s` in a contiguous
    /// batch (the granter path); `on_proactive` is invoked with each
    /// client id whose round resolved to a proactive send. Returns the
    /// number of accounts swept.
    pub fn round_sweep<R, F>(
        &self,
        s: usize,
        rng: &mut R,
        counters: &mut LiveCounters,
        mut on_proactive: F,
    ) -> u64
    where
        R: Rng + ?Sized,
        F: FnMut(usize),
    {
        let base = self.accounts.shard_range(s).start;
        let accounts = self.accounts.shard_accounts(s);
        for (i, account) in accounts.iter().enumerate() {
            counters.rounds += 1;
            match self.strategy.decide_round(account, rng) {
                Decision::ProactiveSend => {
                    counters.proactive_sent += 1;
                    on_proactive(base + i);
                }
                _ => counters.tokens_banked += 1,
            }
        }
        accounts.len() as u64
    }

    /// [`admit`](Self::admit) with durability: the decision runs inside
    /// the owning shard's epoch fence and any burned tokens are
    /// published to the journal as one negative delta.
    #[inline]
    pub fn admit_journaled<R: Rng + ?Sized>(
        &self,
        client: usize,
        usefulness: Usefulness,
        rng: &mut R,
        counters: &mut LiveCounters,
        journal: &mut JournalHandle,
    ) -> Decision {
        let shard = self.accounts.shard_of(client);
        journal.enter(shard);
        let decision = self.admit(client, usefulness, rng, counters);
        if let Decision::ReactiveSend(x) = decision {
            debug_assert!(x <= i32::MAX as u64, "reactive burst overflows a record");
            journal.record(shard, client as u32, -(x as i32));
        }
        journal.exit();
        decision
    }

    /// [`round_sweep`](Self::round_sweep) with durability: every banked
    /// token is published as a `+1` delta, run-length encoded — one
    /// range record per maximal run of consecutively banked accounts
    /// (the sweep banks into almost every account each round, so this
    /// is ~3 orders of magnitude fewer journal records than per-client
    /// deltas). The sweep re-takes the epoch fence every
    /// [`SWEEP_FENCE_CHUNK`] accounts so a snapshotter never waits for
    /// a whole multi-million-account shard walk; runs are flushed at
    /// the fence boundary so each range record is published inside the
    /// epoch that applied its grants.
    pub fn round_sweep_journaled<R, F>(
        &self,
        s: usize,
        rng: &mut R,
        counters: &mut LiveCounters,
        mut on_proactive: F,
        journal: &mut JournalHandle,
    ) -> u64
    where
        R: Rng + ?Sized,
        F: FnMut(usize),
    {
        let base = self.accounts.shard_range(s).start;
        let accounts = self.accounts.shard_accounts(s);
        let mut run_start: Option<usize> = None;
        journal.enter(s);
        for (i, account) in accounts.iter().enumerate() {
            if i != 0 && i % SWEEP_FENCE_CHUNK == 0 {
                if let Some(start) = run_start.take() {
                    journal.record_range(s, (base + start) as u32, (i - start) as u32);
                }
                journal.exit();
                journal.enter(s);
            }
            counters.rounds += 1;
            match self.strategy.decide_round(account, rng) {
                Decision::ProactiveSend => {
                    counters.proactive_sent += 1;
                    if let Some(start) = run_start.take() {
                        journal.record_range(s, (base + start) as u32, (i - start) as u32);
                    }
                    on_proactive(base + i);
                }
                _ => {
                    counters.tokens_banked += 1;
                    run_start.get_or_insert(i);
                }
            }
        }
        if let Some(start) = run_start.take() {
            journal.record_range(s, (base + start) as u32, (accounts.len() - start) as u32);
        }
        journal.exit();
        accounts.len() as u64
    }

    /// Rebuilds a runtime from a verified [`RecoveredState`]: same
    /// client→shard layout, balances restored exactly.
    pub fn from_recovered(strategy: S, state: &RecoveredState) -> Self {
        LiveRuntime {
            strategy: LiveStrategy::new(strategy),
            accounts: ShardedAccounts::from_balances(&state.balances, state.shards),
        }
    }

    /// Sum of the final balances (conservation checks).
    pub fn balances_sum(&self) -> i64 {
        self.accounts.balances_sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_sim::rng::Xoshiro256pp;
    use token_account::prelude::*;

    #[test]
    fn counters_follow_decisions_and_conserve() {
        let rt = LiveRuntime::new(RandomizedTokenAccount::new(2, 6).unwrap(), 64, 4);
        let mut rng = Xoshiro256pp::stream(1, 0);
        let mut c = LiveCounters::default();
        for step in 0..10_000usize {
            let client = step % 64;
            if step % 3 == 0 {
                rt.admit(client, Usefulness::Useful, &mut rng, &mut c);
            } else {
                rt.round(client, &mut rng, &mut c);
            }
        }
        assert!(c.is_consistent());
        assert!(c.conserves(rt.balances_sum()), "books must close: {c:?}");
        assert!(c.reactive_sent > 0 && c.proactive_sent > 0);
    }

    #[test]
    fn round_sweep_equals_per_client_rounds() {
        // One sweep with a fresh RNG equals calling `round` on each client
        // of the shard in order with the same RNG.
        let sweep_rt = LiveRuntime::new(SimpleTokenAccount::new(3), 40, 4);
        let single_rt = LiveRuntime::new(SimpleTokenAccount::new(3), 40, 4);
        for pass in 0..5u64 {
            let mut rng_a = Xoshiro256pp::stream(7, pass);
            let mut rng_b = Xoshiro256pp::stream(7, pass);
            let mut ca = LiveCounters::default();
            let mut cb = LiveCounters::default();
            let mut sent_a = Vec::new();
            for s in 0..sweep_rt.accounts().shard_count() {
                sweep_rt.round_sweep(s, &mut rng_a, &mut ca, |c| sent_a.push(c));
            }
            for client in 0..40 {
                single_rt.round(client, &mut rng_b, &mut cb);
            }
            assert_eq!(ca, cb, "pass {pass}");
        }
        for client in 0..40 {
            assert_eq!(
                sweep_rt.accounts().account(client).balance(),
                single_rt.accounts().account(client).balance()
            );
        }
    }
}
