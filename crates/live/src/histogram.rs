//! Decision-latency histograms — re-exported from `ta-telemetry`.
//!
//! The log-linear [`LatencyHistogram`] started life here as the
//! loadgen's private latency book; it is now a first-class `ta-telemetry`
//! instrument (owned form here, registered per-lane atomic form via
//! [`ta_telemetry::Registry::with_hists`]) so the same bucket math backs
//! worker-local books, the registry's histogram catalog, and the
//! `ta-stats/v2` wire encoding. This module remains the `ta-live`-facing
//! path for existing callers.

pub use ta_telemetry::hist::{bucket_index, bucket_value, BUCKETS};
pub use ta_telemetry::LatencyHistogram;
