//! Live-vs-sim cross-validation: the simulator as the runtime's oracle.
//!
//! The same *(strategy × arrival trace)* is executed twice:
//!
//! 1. **Sim side** — [`run_sim_oracle`] drives the discrete-event engine
//!    ([`ta_sim::engine::Simulation`]) with an [`AdmissionDriver`]: every
//!    node is one client whose round ticks come from the engine's Δ
//!    timer train and whose requests arrive through the engine's
//!    injection train (delivered as messages one transfer time later, so
//!    the reactive decision runs in the client's own event context).
//!    Decisions are made by the *sequential* Algorithm-4 state machine
//!    ([`TokenNode`]) with one private xoshiro stream per client, and
//!    every decided event is recorded into an [`ArrivalTrace`].
//! 2. **Live side** — [`replay_trace`] feeds the recorded trace to the
//!    concurrent runtime ([`LiveRuntime`]): worker threads partition the
//!    clients into contiguous blocks and replay each client's events in
//!    trace (= virtual time) order through the atomic
//!    accounts, with per-client streams constructed identically.
//!
//! Because a client's account is touched only by the worker owning it,
//! and each client's event subsequence replays in order, the live run is
//! a *deterministic* function of the trace for any worker count — so the
//! aggregate send/burn/grant counters and the final balance sum must
//! equal the simulator's **exactly**. [`replay_realtime`] additionally
//! replays the request arrivals against the wall clock with the granter
//! thread supplying rounds, where only distributional agreement (rates
//! within a tolerance) plus exact token conservation can be promised.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::Rng;

use ta_sim::config::SimConfig;
use ta_sim::engine::{AlwaysOn, Driver, SimApi, Simulation};
use ta_sim::rng::Xoshiro256pp;
use ta_sim::{NodeId, SimDuration};
use token_account::node::{RoundAction, TokenNode};
use token_account::spec::{StrategySpec, StrategyVisitor};
use token_account::{InvalidStrategyError, Strategy, Usefulness};

use crate::counters::LiveCounters;
use crate::runtime::LiveRuntime;

/// Stream namespace of per-client decision randomness, shared verbatim by
/// the sim driver and the live replay (the whole point: both sides draw
/// the same numbers in the same per-client order).
const DECISION_STREAM: u64 = 7 << 40;

/// The decision stream of `client` under `seed`.
#[inline]
fn decision_stream(seed: u64, client: usize) -> Xoshiro256pp {
    Xoshiro256pp::stream(seed, DECISION_STREAM | client as u64)
}

/// One recorded admission event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event, microseconds.
    pub time_us: u64,
    /// The client (sim node) it happened at.
    pub client: u32,
    /// What happened.
    pub kind: TraceKind,
}

/// The two admission events of Algorithm 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A round tick (grant-or-send decision).
    Round,
    /// A request arrival of the given usefulness.
    Request {
        /// Whether the request was useful (`u = 1`).
        useful: bool,
    },
}

/// A recorded *(strategy × arrival)* workload: globally time-ordered
/// admission events plus everything a replay needs to reproduce the
/// decisions bit for bit.
#[derive(Debug, Clone)]
pub struct ArrivalTrace {
    /// Events in the simulator's dispatch (= virtual time) order.
    pub events: Vec<TraceEvent>,
    /// Number of clients.
    pub clients: usize,
    /// Seed of the per-client decision streams.
    pub decision_seed: u64,
}

/// Counters plus final balances of one side of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SideOutcome {
    /// Aggregate admission counters.
    pub counters: LiveCounters,
    /// Sum of the final account balances.
    pub balances_sum: i64,
}

/// The sim-side driver: sequential Algorithm 4 over engine events, with
/// trace recording (see the [module docs](self)).
pub struct AdmissionDriver<S: Strategy> {
    strategy: S,
    nodes: Vec<TokenNode>,
    rngs: Vec<Xoshiro256pp>,
    useful_probability: f64,
    counters: LiveCounters,
    trace: Vec<TraceEvent>,
}

impl<S: Strategy> AdmissionDriver<S> {
    /// Builds the driver for `clients` zero-balance nodes.
    pub fn new(strategy: S, clients: usize, decision_seed: u64, useful_probability: f64) -> Self {
        AdmissionDriver {
            strategy,
            nodes: vec![TokenNode::new(0); clients],
            rngs: (0..clients)
                .map(|c| decision_stream(decision_seed, c))
                .collect(),
            useful_probability,
            counters: LiveCounters::default(),
            trace: Vec::new(),
        }
    }

    /// Outcome of the run so far.
    pub fn outcome(&self) -> SideOutcome {
        SideOutcome {
            counters: self.counters,
            balances_sum: self.nodes.iter().map(TokenNode::balance).sum(),
        }
    }
}

impl<S: Strategy> std::fmt::Debug for AdmissionDriver<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionDriver")
            .field("strategy", &self.strategy.label())
            .field("clients", &self.nodes.len())
            .field("counters", &self.counters)
            .field("trace_events", &self.trace.len())
            .finish()
    }
}

impl<S: Strategy> Driver for AdmissionDriver<S> {
    /// Request usefulness rides the message payload.
    type Msg = bool;

    fn on_round_tick(&mut self, api: &mut SimApi<'_, bool>, node: NodeId) {
        let i = node.index();
        self.trace.push(TraceEvent {
            time_us: api.now().as_micros(),
            client: node.raw(),
            kind: TraceKind::Round,
        });
        self.counters.rounds += 1;
        match self.nodes[i].on_round(&self.strategy, &mut self.rngs[i]) {
            RoundAction::SendProactive => self.counters.proactive_sent += 1,
            RoundAction::SaveToken => self.counters.tokens_banked += 1,
        }
    }

    fn on_message(&mut self, api: &mut SimApi<'_, bool>, _from: NodeId, to: NodeId, useful: bool) {
        let i = to.index();
        self.trace.push(TraceEvent {
            time_us: api.now().as_micros(),
            client: to.raw(),
            kind: TraceKind::Request { useful },
        });
        self.counters.requests += 1;
        let burst = self.nodes[i].on_message(
            &self.strategy,
            Usefulness::from_bool(useful),
            &mut self.rngs[i],
        );
        if burst == 0 {
            self.counters.reactive_held += 1;
        } else {
            self.counters.reactive_sent += burst;
        }
    }

    fn on_inject(&mut self, api: &mut SimApi<'_, bool>) {
        // A request enters the system: target and usefulness are drawn
        // from the engine's *global* stream (recorded in the trace, so
        // the replay never re-draws them), then delivered one transfer
        // time later in the target's own event context.
        if let Some(target) = api.random_online_node() {
            let useful = api.rng().gen::<f64>() < self.useful_probability;
            api.send(target, target, useful);
        }
    }
}

/// Parameters of the sim-oracle workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleWorkload {
    /// Clients (sim nodes).
    pub clients: usize,
    /// Proactive round length Δ.
    pub delta: SimDuration,
    /// Request injection period (one request per period at a random
    /// client).
    pub injection_period: SimDuration,
    /// Virtual run length.
    pub duration: SimDuration,
    /// Probability that a request is useful.
    pub useful_probability: f64,
    /// Master seed (engine schedule + decision streams).
    pub seed: u64,
}

impl OracleWorkload {
    /// A small workload exercising all decision paths.
    pub fn quick(clients: usize, seed: u64) -> Self {
        OracleWorkload {
            clients,
            delta: SimDuration::from_secs(10),
            injection_period: SimDuration::from_millis(400),
            duration: SimDuration::from_secs(600),
            useful_probability: 0.8,
            seed,
        }
    }
}

/// Runs the discrete-event oracle, returning its counters and the
/// recorded trace.
///
/// # Panics
///
/// Panics if the workload parameters fail [`SimConfig`] validation.
pub fn run_sim_oracle<S: Strategy>(strategy: S, w: &OracleWorkload) -> (SideOutcome, ArrivalTrace) {
    let cfg = SimConfig::builder(w.clients)
        .delta(w.delta)
        .transfer_time(SimDuration::from_micros((w.delta.as_micros() / 100).max(1)))
        .duration(w.duration)
        .injection_period(w.injection_period)
        .seed(w.seed)
        .build()
        .expect("valid oracle workload");
    let driver = AdmissionDriver::new(strategy, w.clients, w.seed, w.useful_probability);
    let mut sim = Simulation::new(cfg, &AlwaysOn, driver);
    sim.run_to_end();
    let (driver, _) = sim.into_parts();
    let outcome = driver.outcome();
    (
        outcome,
        ArrivalTrace {
            events: driver.trace,
            clients: w.clients,
            decision_seed: w.seed,
        },
    )
}

/// Replays a recorded trace through the concurrent runtime under the
/// virtual clock: `workers` threads each own a contiguous client block
/// and process their clients' events in trace order. Deterministic and
/// *exactly* equal to the sim side for every worker and shard count.
pub fn replay_trace<S: Strategy>(
    strategy: S,
    trace: &ArrivalTrace,
    workers: usize,
    account_shards: usize,
) -> SideOutcome {
    let runtime = LiveRuntime::new(strategy, trace.clients, account_shards);
    let workers = workers.clamp(1, trace.clients.max(1));
    let block = trace.clients.div_ceil(workers);
    // One O(events) prepass buckets each worker's event indices (in
    // trace order, so per-client order is preserved); workers then walk
    // only their own share instead of scanning — and skipping — the
    // whole trace each.
    assert!(trace.events.len() < u32::MAX as usize, "trace too long");
    let mut shares: Vec<Vec<u32>> = vec![Vec::new(); workers];
    for (i, ev) in trace.events.iter().enumerate() {
        shares[ev.client as usize / block].push(i as u32);
    }
    let counters = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let runtime = &runtime;
                let lo = (w * block).min(trace.clients);
                let hi = ((w + 1) * block).min(trace.clients);
                let events = &trace.events;
                let share = &shares[w];
                let seed = trace.decision_seed;
                scope.spawn(move || {
                    let mut rngs: Vec<Xoshiro256pp> =
                        (lo..hi).map(|c| decision_stream(seed, c)).collect();
                    let mut counters = LiveCounters::default();
                    for &i in share {
                        let ev = &events[i as usize];
                        let client = ev.client as usize;
                        let rng = &mut rngs[client - lo];
                        match ev.kind {
                            TraceKind::Round => {
                                runtime.round(client, rng, &mut counters);
                            }
                            TraceKind::Request { useful } => {
                                runtime.admit(
                                    client,
                                    Usefulness::from_bool(useful),
                                    rng,
                                    &mut counters,
                                );
                            }
                        }
                    }
                    counters
                })
            })
            .collect();
        let mut merged = LiveCounters::default();
        for h in handles {
            merged.merge(&h.join().unwrap());
        }
        merged
    });
    SideOutcome {
        counters,
        balances_sum: runtime.balances_sum(),
    }
}

/// Outcome of a wall-clock realtime replay.
#[derive(Debug, Clone, Copy)]
pub struct RealtimeOutcome {
    /// Merged counters (workers + granter).
    pub counters: LiveCounters,
    /// Final balance sum.
    pub balances_sum: i64,
    /// Wall-clock time spent.
    pub wall: Duration,
}

impl RealtimeOutcome {
    /// Exact conservation must hold even under real time.
    pub fn conserves(&self) -> bool {
        self.counters.is_consistent() && self.counters.conserves(self.balances_sum)
    }
}

/// Replays the trace's *request* arrivals against the wall clock
/// (virtual microseconds divided by `speedup`), while a granter thread
/// generates rounds live every `delta / speedup`. Decisions race
/// wall-clock time, so only distributional agreement with the sim is
/// expected — plus exact token conservation, which holds under any
/// interleaving.
pub fn replay_realtime<S: Strategy>(
    strategy: S,
    trace: &ArrivalTrace,
    workers: usize,
    account_shards: usize,
    delta: SimDuration,
    speedup: f64,
) -> RealtimeOutcome {
    let runtime = LiveRuntime::new(strategy, trace.clients, account_shards);
    let workers = workers.clamp(1, trace.clients.max(1));
    let block = trace.clients.div_ceil(workers);
    // Bucket each worker's *request* indices up front (rounds come from
    // the granter here), so workers walk their own share in time order
    // instead of scanning the whole trace.
    assert!(trace.events.len() < u32::MAX as usize, "trace too long");
    let mut shares: Vec<Vec<u32>> = vec![Vec::new(); workers];
    for (i, ev) in trace.events.iter().enumerate() {
        if matches!(ev.kind, TraceKind::Request { .. }) {
            shares[ev.client as usize / block].push(i as u32);
        }
    }
    let horizon_us = trace.events.last().map(|e| e.time_us).unwrap_or(0);
    let wall_of = |us: u64| Duration::from_secs_f64(us as f64 / 1e6 / speedup);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let counters = std::thread::scope(|scope| {
        let granter = {
            let runtime = &runtime;
            let stop = &stop;
            let period = wall_of(delta.as_micros()).max(Duration::from_micros(100));
            scope.spawn(move || {
                let mut rng = Xoshiro256pp::stream(0x9e3779, 0);
                let mut counters = LiveCounters::default();
                let mut next = period;
                while !stop.load(Ordering::Acquire) {
                    let now = start.elapsed();
                    if now < next {
                        std::thread::sleep((next - now).min(Duration::from_millis(2)));
                        continue;
                    }
                    for s in 0..runtime.accounts().shard_count() {
                        runtime.round_sweep(s, &mut rng, &mut counters, |_| {});
                    }
                    next += period;
                }
                counters
            })
        };
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let runtime = &runtime;
                let lo = (w * block).min(trace.clients);
                let hi = ((w + 1) * block).min(trace.clients);
                let events = &trace.events;
                let share = &shares[w];
                let seed = trace.decision_seed;
                scope.spawn(move || {
                    let mut rngs: Vec<Xoshiro256pp> =
                        (lo..hi).map(|c| decision_stream(seed, c)).collect();
                    let mut counters = LiveCounters::default();
                    for &i in share {
                        let ev = &events[i as usize];
                        let client = ev.client as usize;
                        let TraceKind::Request { useful } = ev.kind else {
                            unreachable!("shares hold request events only");
                        };
                        let at = wall_of(ev.time_us);
                        let mut now = start.elapsed();
                        while now < at {
                            if at - now > Duration::from_millis(2) {
                                std::thread::sleep(at - now - Duration::from_millis(1));
                            } else {
                                std::hint::spin_loop();
                            }
                            now = start.elapsed();
                        }
                        let rng = &mut rngs[client - lo];
                        runtime.admit(client, Usefulness::from_bool(useful), rng, &mut counters);
                    }
                    counters
                })
            })
            .collect();
        let mut merged = LiveCounters::default();
        for h in handles {
            merged.merge(&h.join().unwrap());
        }
        // Let the granter cover the full horizon before stopping it.
        let full = wall_of(horizon_us);
        while start.elapsed() < full {
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Release);
        merged.merge(&granter.join().unwrap());
        merged
    });
    RealtimeOutcome {
        counters,
        balances_sum: runtime.balances_sum(),
        wall: start.elapsed(),
    }
}

/// The result of one full live-vs-sim comparison.
#[derive(Debug)]
pub struct CrossValidation {
    /// The simulator's counters.
    pub sim: SideOutcome,
    /// The live runtime's counters under the virtual clock.
    pub live: SideOutcome,
}

impl CrossValidation {
    /// Whether the two sides agree exactly.
    pub fn exact_match(&self) -> bool {
        self.sim == self.live
    }
}

/// Runs the full cross-validation for one strategy: sim oracle, then a
/// virtual-clock replay with the given parallelism.
pub fn live_vs_sim<S: Strategy + Clone>(
    strategy: S,
    workload: &OracleWorkload,
    workers: usize,
    account_shards: usize,
) -> CrossValidation {
    let (sim, trace) = run_sim_oracle(strategy.clone(), workload);
    let live = replay_trace(strategy, &trace, workers, account_shards);
    CrossValidation { sim, live }
}

/// Monomorphizing bridge for serializable specs.
struct CrossValidationVisitor<'a> {
    workload: &'a OracleWorkload,
    workers: usize,
    account_shards: usize,
}

impl StrategyVisitor for CrossValidationVisitor<'_> {
    type Output = CrossValidation;
    fn visit<S: Strategy + Clone + 'static>(self, strategy: S) -> CrossValidation {
        live_vs_sim(strategy, self.workload, self.workers, self.account_shards)
    }
}

/// [`live_vs_sim`] for a serializable [`StrategySpec`], monomorphized via
/// the visitor.
///
/// # Errors
///
/// Propagates [`InvalidStrategyError`] from the strategy constructor.
pub fn live_vs_sim_spec(
    spec: StrategySpec,
    workload: &OracleWorkload,
    workers: usize,
    account_shards: usize,
) -> Result<CrossValidation, InvalidStrategyError> {
    spec.dispatch(CrossValidationVisitor {
        workload,
        workers,
        account_shards,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use token_account::prelude::*;

    #[test]
    fn oracle_records_a_consistent_trace() {
        let w = OracleWorkload::quick(20, 3);
        let (outcome, trace) = run_sim_oracle(SimpleTokenAccount::new(5), &w);
        assert!(outcome.counters.is_consistent());
        assert!(outcome.counters.conserves(outcome.balances_sum));
        assert_eq!(trace.clients, 20);
        let rounds = trace
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::Round)
            .count() as u64;
        let requests = trace.events.len() as u64 - rounds;
        assert_eq!(rounds, outcome.counters.rounds);
        assert_eq!(requests, outcome.counters.requests);
        assert!(
            trace
                .events
                .windows(2)
                .all(|w| w[0].time_us <= w[1].time_us),
            "trace must be time-ordered"
        );
        assert!(requests > 0 && rounds > 0);
    }

    #[test]
    fn replay_is_exact_for_single_worker() {
        let w = OracleWorkload::quick(20, 11);
        let strategy = RandomizedTokenAccount::new(2, 6).unwrap();
        let cv = live_vs_sim(strategy, &w, 1, 1);
        assert!(cv.exact_match(), "sim {:?} != live {:?}", cv.sim, cv.live);
    }
}
