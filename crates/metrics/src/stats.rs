//! Streaming descriptive statistics (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Single-pass mean/variance/min/max accumulator.
///
/// ```
/// use ta_metrics::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction (0 when fewer than two
    /// observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

/// Peak-to-mean ratio of a sequence of interval counts — the burstiness
/// measure of a traffic histogram (1.0 = perfectly smooth; large values =
/// bursty). Returns 0 for empty or all-zero input.
///
/// ```
/// use ta_metrics::stats::peak_to_mean;
///
/// assert_eq!(peak_to_mean(&[4, 4, 4, 4]), 1.0);
/// assert_eq!(peak_to_mean(&[0, 16, 0, 0]), 4.0);
/// assert_eq!(peak_to_mean(&[]), 0.0);
/// ```
pub fn peak_to_mean(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let peak = *counts.iter().max().expect("non-empty") as f64;
    let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        peak / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s: OnlineStats = [5.0].into_iter().collect();
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.5).collect();
        let s: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.population_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_combined_stream() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let (left, right) = data.split_at(200);
        let mut a: OnlineStats = left.iter().copied().collect();
        let b: OnlineStats = right.iter().copied().collect();
        let whole: OnlineStats = data.iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn peak_to_mean_cases() {
        assert_eq!(peak_to_mean(&[2, 2, 2]), 1.0);
        assert_eq!(peak_to_mean(&[0, 0, 0]), 0.0);
        assert!((peak_to_mean(&[1, 3, 2]) - 1.5).abs() < 1e-12);
        // A single burst among quiet intervals scores the interval count.
        assert_eq!(peak_to_mean(&[10, 0, 0, 0, 0]), 5.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
