//! Plain-text and CSV table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// ```
/// use ta_metrics::table::Table;
///
/// let mut t = Table::new(vec!["strategy".into(), "speedup".into()]);
/// t.row(vec!["simple(C=20)".into(), "3.1".into()]);
/// t.row(vec!["randomized(A=10,C=20)".into(), "4.0".into()]);
/// let text = t.render();
/// assert!(text.contains("strategy"));
/// assert!(text.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Appends a row of mixed displayable cells.
    pub fn row_display<I, T>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = T>,
        T: ToString,
    {
        self.row(cells.into_iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            // Trim trailing padding for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                    out.push('"');
                    out.push_str(&cell.replace('"', "\"\""));
                    out.push('"');
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name".into(), "value".into()]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row_display(["beta", "22.5"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // "value" column starts at the same offset in all rows.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
        assert_eq!(&lines[3][col..col + 4], "22.5");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
        assert!(Table::new(vec!["x".into()]).is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_panics() {
        let _ = Table::new(vec![]);
    }
}
