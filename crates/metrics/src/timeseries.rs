//! Time series of metric samples.
//!
//! Every experiment in the paper reports a metric sampled over virtual
//! time. [`TimeSeries`] is the common currency between the applications
//! (which record), the runner (which averages over independent runs), and
//! the figure harness (which prints and smooths — Figure 2's push gossip
//! panels are "smoothed based on averaging measurements over 15 minute
//! periods").

use serde::{Deserialize, Serialize};

/// A sequence of `(time_seconds, value)` samples in non-decreasing time
/// order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Creates a series from parallel vectors.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or times decrease.
    pub fn from_parts(times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "times must be non-decreasing"
        );
        TimeSeries { times, values }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last sample.
    pub fn push(&mut self, time: f64, value: f64) {
        if let Some(&last) = self.times.last() {
            assert!(time >= last, "sample time {time} precedes {last}");
        }
        self.times.push(time);
        self.values.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Sample times (seconds).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The last value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Mean of the values (NaN-free input assumed).
    pub fn mean_value(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Mean of the values over samples with `time >= from`.
    ///
    /// Used for equilibrium estimates that must skip the initial transient
    /// (Figure 5 compares against the *steady-state* token count).
    pub fn mean_value_from(&self, from: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (t, v) in self.iter() {
            if t >= from {
                sum += v;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }

    /// First sample time at which the value reaches at least `threshold`
    /// (e.g. "when did gossip learning reach 80 % of optimal speed").
    pub fn first_time_above(&self, threshold: f64) -> Option<f64> {
        self.iter().find(|&(_, v)| v >= threshold).map(|(t, _)| t)
    }

    /// First sample time at which the value drops to at most `threshold`
    /// (e.g. "when did the eigenvector angle fall below 0.01").
    pub fn first_time_below(&self, threshold: f64) -> Option<f64> {
        self.iter().find(|&(_, v)| v <= threshold).map(|(t, _)| t)
    }

    /// Moving-average smoothing over a time window (centred on each
    /// sample): the Figure 2/3 push gossip treatment with a 15-minute
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `window_seconds` is not positive.
    pub fn smooth(&self, window_seconds: f64) -> TimeSeries {
        assert!(window_seconds > 0.0, "window must be positive");
        let half = window_seconds / 2.0;
        let mut values = Vec::with_capacity(self.len());
        let mut lo = 0usize;
        let mut hi = 0usize;
        for &t in &self.times {
            while lo < self.len() && self.times[lo] < t - half {
                lo += 1;
            }
            if hi < lo {
                hi = lo;
            }
            while hi < self.len() && self.times[hi] <= t + half {
                hi += 1;
            }
            let slice = &self.values[lo..hi];
            values.push(slice.iter().sum::<f64>() / slice.len() as f64);
        }
        TimeSeries {
            times: self.times.clone(),
            values,
        }
    }

    /// Pointwise mean of several series sampled at identical times (the
    /// "average of 10 independent runs" of Section 4.2).
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty or the time grids differ.
    pub fn mean_of(series: &[TimeSeries]) -> TimeSeries {
        Self::mean_of_iter(series.iter())
    }

    /// Pointwise mean over borrowed series — the clone-free variant used by
    /// the experiment runner, which averages hundreds of per-replica series
    /// per sweep and must not copy each one first.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty or the time grids differ.
    pub fn mean_of_iter<'a, I>(series: I) -> TimeSeries
    where
        I: IntoIterator<Item = &'a TimeSeries>,
    {
        let mut iter = series.into_iter();
        let first = iter.next().expect("need at least one series");
        let mut values = first.values.clone();
        let mut n = 1u64;
        for s in iter {
            assert_eq!(s.times, first.times, "time grids differ between runs");
            for (acc, v) in values.iter_mut().zip(&s.values) {
                *acc += v;
            }
            n += 1;
        }
        let scale = 1.0 / n as f64;
        for v in values.iter_mut() {
            *v *= scale;
        }
        TimeSeries {
            times: first.times.clone(),
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pairs: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, v) in pairs {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn push_and_accessors() {
        let s = series(&[(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.times(), &[0.0, 10.0, 20.0]);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.last_value(), Some(3.0));
        assert_eq!(s.mean_value(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn rejects_time_regression() {
        let mut s = series(&[(10.0, 1.0)]);
        s.push(5.0, 2.0);
    }

    #[test]
    fn from_parts_validates() {
        let s = TimeSeries::from_parts(vec![0.0, 1.0], vec![5.0, 6.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_rejects_mismatch() {
        let _ = TimeSeries::from_parts(vec![0.0], vec![1.0, 2.0]);
    }

    #[test]
    fn threshold_crossings() {
        let s = series(&[(0.0, 0.1), (10.0, 0.5), (20.0, 0.9), (30.0, 0.4)]);
        assert_eq!(s.first_time_above(0.5), Some(10.0));
        assert_eq!(s.first_time_above(2.0), None);
        assert_eq!(s.first_time_below(0.2), Some(0.0));
        let falling = series(&[(0.0, 1.0), (10.0, 0.3)]);
        assert_eq!(falling.first_time_below(0.5), Some(10.0));
        assert_eq!(falling.first_time_below(0.0), None);
    }

    #[test]
    fn mean_value_from_skips_transient() {
        let s = series(&[(0.0, 100.0), (10.0, 1.0), (20.0, 3.0)]);
        assert_eq!(s.mean_value_from(10.0), Some(2.0));
        assert_eq!(s.mean_value_from(100.0), None);
    }

    #[test]
    fn smoothing_averages_within_window() {
        let s = series(&[(0.0, 0.0), (10.0, 10.0), (20.0, 20.0), (30.0, 30.0)]);
        // Window of 20s centred: sample at 10 averages t in [0,20].
        let sm = s.smooth(20.0);
        assert_eq!(sm.times(), s.times());
        assert!((sm.values()[1] - 10.0).abs() < 1e-12);
        assert!((sm.values()[0] - 5.0).abs() < 1e-12); // [0,10]

        // A huge window flattens everything to the global mean.
        let flat = s.smooth(1e9);
        for &v in flat.values() {
            assert!((v - 15.0).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothing_preserves_constant_series() {
        let s = series(&[(0.0, 4.0), (5.0, 4.0), (10.0, 4.0)]);
        for &v in s.smooth(7.0).values() {
            assert!((v - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_of_averages_runs() {
        let a = series(&[(0.0, 1.0), (1.0, 3.0)]);
        let b = series(&[(0.0, 3.0), (1.0, 5.0)]);
        let m = TimeSeries::mean_of(&[a, b]);
        assert_eq!(m.values(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "time grids differ")]
    fn mean_of_rejects_mismatched_grids() {
        let a = series(&[(0.0, 1.0)]);
        let b = series(&[(1.0, 1.0)]);
        let _ = TimeSeries::mean_of(&[a, b]);
    }

    #[test]
    fn empty_series_edge_cases() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.last_value(), None);
        assert_eq!(s.mean_value(), None);
        assert!(s.smooth(10.0).is_empty());
    }
}
