//! # ta-metrics — time series, statistics and reporting
//!
//! Support crate for the token account reproduction:
//!
//! * [`timeseries::TimeSeries`] — metric samples over virtual time, with
//!   the paper's multi-run averaging and 15-minute smoothing.
//! * [`stats::OnlineStats`] — streaming mean/variance/min/max.
//! * [`table::Table`] — aligned text and CSV tables for reports.
//! * [`output`] — gnuplot-ready `.dat` files.
//!
//! ```
//! use ta_metrics::timeseries::TimeSeries;
//!
//! let run1 = TimeSeries::from_parts(vec![0.0, 60.0], vec![0.25, 0.75]);
//! let run2 = TimeSeries::from_parts(vec![0.0, 60.0], vec![0.75, 0.25]);
//! let mean = TimeSeries::mean_of(&[run1, run2]);
//! assert_eq!(mean.values(), &[0.5, 0.5]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod output;
pub mod stats;
pub mod table;
pub mod timeseries;

pub use stats::OnlineStats;
pub use table::Table;
pub use timeseries::TimeSeries;
