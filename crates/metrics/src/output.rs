//! Writing experiment data files.
//!
//! Results are written as whitespace-separated `.dat` files (one column of
//! time plus one column per labelled series), the format gnuplot and
//! pandas both read directly — the working format for regenerating the
//! paper's figures.

use std::fs;
use std::io;
use std::path::Path;

use crate::timeseries::TimeSeries;

/// Renders several series sharing one time grid as a `.dat` document.
///
/// # Panics
///
/// Panics if `series` and `labels` lengths differ, or the time grids of
/// the series differ.
pub fn render_dat(title: &str, labels: &[&str], series: &[TimeSeries]) -> String {
    assert_eq!(labels.len(), series.len(), "one label per series required");
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str("# time_s");
    for label in labels {
        out.push(' ');
        // Spaces inside labels would break column counting.
        out.push_str(&label.replace(' ', "_"));
    }
    out.push('\n');
    if series.is_empty() {
        return out;
    }
    let times = series[0].times();
    for s in series {
        assert_eq!(s.times(), times, "series time grids differ");
    }
    for (i, &t) in times.iter().enumerate() {
        out.push_str(&format!("{t}"));
        for s in series {
            out.push_str(&format!(" {}", s.values()[i]));
        }
        out.push('\n');
    }
    out
}

/// Writes [`render_dat`] output to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
pub fn write_dat(
    path: &Path,
    title: &str,
    labels: &[&str],
    series: &[TimeSeries],
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, render_dat(title, labels, series))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_series() -> (TimeSeries, TimeSeries) {
        let a = TimeSeries::from_parts(vec![0.0, 1.0], vec![10.0, 11.0]);
        let b = TimeSeries::from_parts(vec![0.0, 1.0], vec![20.0, 21.0]);
        (a, b)
    }

    #[test]
    fn renders_columns() {
        let (a, b) = two_series();
        let text = render_dat("demo", &["first", "second run"], &[a, b]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# demo");
        assert_eq!(lines[1], "# time_s first second_run");
        assert_eq!(lines[2], "0 10 20");
        assert_eq!(lines[3], "1 11 21");
    }

    #[test]
    fn empty_series_list_renders_header_only() {
        let text = render_dat("empty", &[], &[]);
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "one label per series")]
    fn label_mismatch_panics() {
        let (a, _) = two_series();
        let _ = render_dat("bad", &[], &[a]);
    }

    #[test]
    fn writes_to_disk_creating_directories() {
        let dir = std::env::temp_dir().join(format!("ta-metrics-test-{}", std::process::id()));
        let path = dir.join("nested/out.dat");
        let (a, b) = two_series();
        write_dat(&path, "t", &["a", "b"], &[a, b]).unwrap();
        let read = fs::read_to_string(&path).unwrap();
        assert!(read.contains("0 10 20"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
