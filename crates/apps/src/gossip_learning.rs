//! Gossip learning (Section 2.2 / 4.1.1).
//!
//! Machine-learning models perform random walks; each visit trains the
//! model on the local example. As in the paper, "we did not implement any
//! actual machine learning tasks, but just simulated the age of the models
//! as this forms the basis of our performance metric": the state of a node
//! is the *age* of its current model — the number of nodes the model has
//! visited.
//!
//! **Usefulness** (Section 3.2): a received model is useful iff it is at
//! least as old as the local one; then it is "trained" (age + 1) and
//! stored, otherwise discarded.
//!
//! **Metric** (eq. 6): the mean over online nodes of `n_i(t) / n*(t)`,
//! where `n*(t) = t / transfer_time` is the age of a model forwarded with
//! zero delay ("hot potato"). 1.0 means reactive-optimal speed; the purely
//! proactive baseline reaches roughly `transfer_time/Δ`-scaled ages.

use ta_sim::shard::ShardPlan;
use ta_sim::{NodeId, SimDuration, SimTime};
use token_account::Usefulness;

use crate::app::Application;
use crate::protocol::sharded::{ApplicationShard, ShardableApplication};

/// Eq. 6 from shared integer partials: mean relative age over online
/// nodes. One implementation for the serial and the sharded metric so the
/// two cannot drift — the partials are integers, so any fold order yields
/// the same sums and the same f64 result.
fn eq6_metric(
    online_age_sum: u64,
    online_count: usize,
    transfer: SimDuration,
    now: SimTime,
) -> f64 {
    let optimal = now.as_secs_f64() / transfer.as_secs_f64();
    if optimal <= 0.0 || online_count == 0 {
        return 0.0;
    }
    online_age_sum as f64 / (online_count as f64 * optimal)
}

/// The age-update rule of Section 3.2, shared by the serial and sharded
/// applications: adopt-and-train iff at least as old, returning the new
/// online sum contribution.
#[inline]
fn adopt_age(age: &mut u64, online: bool, incoming: u64, online_age_sum: &mut u64) -> Usefulness {
    if incoming >= *age {
        let new_age = incoming + 1;
        if online {
            *online_age_sum += new_age - *age;
        }
        *age = new_age;
        Usefulness::Useful
    } else {
        Usefulness::NotUseful
    }
}

/// A gossip-learning model message: the model's age (visit count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelMsg {
    /// Number of nodes this model has visited.
    pub age: u64,
}

/// The gossip learning application state.
#[derive(Debug, Clone)]
pub struct GossipLearning {
    ages: Vec<u64>,
    online: Vec<bool>,
    /// Σ ages over online nodes, maintained incrementally so the metric is
    /// O(1) even at N = 500,000.
    online_age_sum: u64,
    online_count: usize,
    transfer: SimDuration,
}

impl GossipLearning {
    /// Creates the application for `n` nodes with the given message
    /// transfer time (the denominator scale of eq. 6) and the initial
    /// online set.
    ///
    /// # Panics
    ///
    /// Panics if `initial_online.len() != n` or the transfer time is zero.
    pub fn new(n: usize, transfer: SimDuration, initial_online: &[bool]) -> Self {
        assert_eq!(initial_online.len(), n, "initial_online length mismatch");
        assert!(!transfer.is_zero(), "transfer time must be positive");
        GossipLearning {
            ages: vec![0; n],
            online: initial_online.to_vec(),
            online_age_sum: 0,
            online_count: initial_online.iter().filter(|&&b| b).count(),
            transfer,
        }
    }

    /// Age of the model currently stored at `node`.
    pub fn age(&self, node: NodeId) -> u64 {
        self.ages[node.index()]
    }

    /// All model ages (for distribution analyses).
    pub fn ages(&self) -> &[u64] {
        &self.ages
    }

    /// The reactive-optimal age `n*(t) = t / transfer_time`.
    pub fn optimal_age(&self, now: SimTime) -> f64 {
        now.as_secs_f64() / self.transfer.as_secs_f64()
    }
}

impl Application for GossipLearning {
    type Msg = ModelMsg;

    fn create_message(&mut self, node: NodeId) -> ModelMsg {
        ModelMsg {
            age: self.ages[node.index()],
        }
    }

    fn update_state(
        &mut self,
        node: NodeId,
        _from: NodeId,
        msg: &ModelMsg,
        _now: SimTime,
    ) -> Usefulness {
        let i = node.index();
        adopt_age(
            &mut self.ages[i],
            self.online[i],
            msg.age,
            &mut self.online_age_sum,
        )
    }

    fn metric(&self, _online_count: usize, now: SimTime) -> f64 {
        eq6_metric(self.online_age_sum, self.online_count, self.transfer, now)
    }

    fn on_node_up(&mut self, node: NodeId, _now: SimTime) {
        if !self.online[node.index()] {
            self.online[node.index()] = true;
            self.online_age_sum += self.ages[node.index()];
            self.online_count += 1;
        }
    }

    fn on_node_down(&mut self, node: NodeId, _now: SimTime) {
        if self.online[node.index()] {
            self.online[node.index()] = false;
            self.online_age_sum -= self.ages[node.index()];
            self.online_count -= 1;
        }
    }

    fn name(&self) -> &'static str {
        "gossip-learning"
    }
}

/// One shard's block of [`GossipLearning`]: ages and online bookkeeping
/// for the owned nodes only (the metric partials are integers, so shard
/// sums merge exactly).
#[derive(Debug, Clone)]
pub struct GossipLearningShard {
    base: usize,
    ages: Vec<u64>,
    online: Vec<bool>,
    online_age_sum: u64,
    online_count: usize,
    transfer: SimDuration,
}

impl GossipLearningShard {
    #[inline]
    fn local(&self, node: NodeId) -> usize {
        node.index() - self.base
    }
}

impl ApplicationShard for GossipLearningShard {
    type Msg = ModelMsg;

    fn create_message(&mut self, node: NodeId) -> ModelMsg {
        ModelMsg {
            age: self.ages[self.local(node)],
        }
    }

    fn update_state(
        &mut self,
        node: NodeId,
        _from: NodeId,
        msg: &ModelMsg,
        _now: SimTime,
    ) -> Usefulness {
        let i = self.local(node);
        adopt_age(
            &mut self.ages[i],
            self.online[i],
            msg.age,
            &mut self.online_age_sum,
        )
    }

    fn on_node_up(&mut self, node: NodeId, _now: SimTime) {
        let i = self.local(node);
        if !self.online[i] {
            self.online[i] = true;
            self.online_age_sum += self.ages[i];
            self.online_count += 1;
        }
    }

    fn on_node_down(&mut self, node: NodeId, _now: SimTime) {
        let i = self.local(node);
        if self.online[i] {
            self.online[i] = false;
            self.online_age_sum -= self.ages[i];
            self.online_count -= 1;
        }
    }
}

impl ShardableApplication for GossipLearning {
    type Shard = GossipLearningShard;

    fn split(self, plan: &ShardPlan) -> Vec<GossipLearningShard> {
        let mut ages = self.ages;
        let mut online = self.online;
        let mut blocks = Vec::with_capacity(plan.shards());
        for s in (0..plan.shards()).rev() {
            let start = plan.range(s).start;
            blocks.push((ages.split_off(start), online.split_off(start)));
        }
        blocks.reverse();
        blocks
            .into_iter()
            .enumerate()
            .map(|(s, (ages, online))| {
                let online_age_sum = ages
                    .iter()
                    .zip(&online)
                    .filter(|(_, &up)| up)
                    .map(|(&a, _)| a)
                    .sum();
                let online_count = online.iter().filter(|&&up| up).count();
                GossipLearningShard {
                    base: plan.range(s).start,
                    ages,
                    online,
                    online_age_sum,
                    online_count,
                    transfer: self.transfer,
                }
            })
            .collect()
    }

    fn merge(_plan: &ShardPlan, shards: Vec<GossipLearningShard>) -> Self {
        let transfer = shards[0].transfer;
        let mut ages = Vec::new();
        let mut online = Vec::new();
        let mut online_age_sum = 0u64;
        let mut online_count = 0usize;
        for sh in shards {
            ages.extend(sh.ages);
            online.extend(sh.online);
            online_age_sum += sh.online_age_sum;
            online_count += sh.online_count;
        }
        GossipLearning {
            ages,
            online,
            online_age_sum,
            online_count,
            transfer,
        }
    }

    fn metric_sharded(shards: &[&GossipLearningShard], _online_count: usize, now: SimTime) -> f64 {
        // u64/usize partials: any fold order gives the serial sums, and
        // `eq6_metric` is the single shared formula.
        let sum: u64 = shards.iter().map(|s| s.online_age_sum).sum();
        let count: usize = shards.iter().map(|s| s.online_count).sum();
        eq6_metric(sum, count, shards[0].transfer, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(n: usize) -> GossipLearning {
        GossipLearning::new(n, SimDuration::from_secs_f64(1.728), &vec![true; n])
    }

    #[test]
    fn fresher_model_is_adopted_and_trained() {
        let mut a = app(3);
        let u = a.update_state(
            NodeId::new(0),
            NodeId::new(1),
            &ModelMsg { age: 5 },
            SimTime::from_secs(10),
        );
        assert_eq!(u, Usefulness::Useful);
        assert_eq!(a.age(NodeId::new(0)), 6);
    }

    #[test]
    fn equal_age_counts_as_useful() {
        // "usefulness is 0 if the current model is older than the received
        // model, and 1 otherwise" — equal age is useful.
        let mut a = app(2);
        a.ages[0] = 4;
        a.online_age_sum = 4;
        let u = a.update_state(
            NodeId::new(0),
            NodeId::new(1),
            &ModelMsg { age: 4 },
            SimTime::from_secs(1),
        );
        assert_eq!(u, Usefulness::Useful);
        assert_eq!(a.age(NodeId::new(0)), 5);
    }

    #[test]
    fn staler_model_is_discarded() {
        let mut a = app(2);
        a.ages[0] = 10;
        a.online_age_sum = 10;
        let u = a.update_state(
            NodeId::new(0),
            NodeId::new(1),
            &ModelMsg { age: 3 },
            SimTime::from_secs(1),
        );
        assert_eq!(u, Usefulness::NotUseful);
        assert_eq!(a.age(NodeId::new(0)), 10);
    }

    #[test]
    fn create_message_copies_state() {
        let mut a = app(2);
        a.ages[1] = 7;
        assert_eq!(a.create_message(NodeId::new(1)), ModelMsg { age: 7 });
        // Creating a message does not change state.
        assert_eq!(a.age(NodeId::new(1)), 7);
    }

    #[test]
    fn metric_is_relative_to_hot_potato_speed() {
        let mut a = app(2);
        // After 17.28 s the optimal model visited 10 nodes.
        let now = SimTime::from_secs_f64(17.28);
        assert!((a.optimal_age(now) - 10.0).abs() < 1e-9);
        a.ages = vec![5, 5];
        a.online_age_sum = 10;
        // Mean age 5 vs optimal 10 ⇒ 0.5.
        assert!((a.metric(2, now) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn metric_at_time_zero_is_zero() {
        let a = app(2);
        assert_eq!(a.metric(2, SimTime::ZERO), 0.0);
    }

    #[test]
    fn churn_bookkeeping_tracks_online_sum() {
        let mut a = GossipLearning::new(2, SimDuration::from_secs(1), &[true, false]);
        a.ages = vec![4, 6];
        a.online_age_sum = 4;
        let now = SimTime::from_secs(10);
        // Node 1 online: sum 10 over 2 nodes; optimal age = 10.
        a.on_node_up(NodeId::new(1), now);
        assert!((a.metric(2, now) - 0.5).abs() < 1e-9);
        // Node 0 offline: sum 6 over 1 node.
        a.on_node_down(NodeId::new(0), now);
        assert!((a.metric(1, now) - 0.6).abs() < 1e-9);
        // Duplicate transitions are idempotent.
        a.on_node_down(NodeId::new(0), now);
        assert!((a.metric(1, now) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn offline_updates_do_not_corrupt_online_sum() {
        let mut a = GossipLearning::new(2, SimDuration::from_secs(1), &[true, false]);
        // An update at the offline node (cannot happen through the engine,
        // but the invariant should hold regardless).
        a.update_state(
            NodeId::new(1),
            NodeId::new(0),
            &ModelMsg { age: 3 },
            SimTime::from_secs(1),
        );
        assert_eq!(a.online_age_sum, 0);
        a.on_node_up(NodeId::new(1), SimTime::from_secs(2));
        assert_eq!(a.online_age_sum, 4);
    }
}
