//! The application interface of the token account framework.
//!
//! Section 3.2: "To implement our applications in the framework we have to
//! provide the application specific implementations of two methods:
//! `CREATEMESSAGE()` ... and `UPDATESTATE(m)` ... including "defining the
//! usefulness of the received message". The remaining methods are metric
//! and churn bookkeeping hooks used by the experiment harness.

use ta_sim::{NodeId, SimTime};
use token_account::Usefulness;

/// An application running over the token account service.
pub trait Application {
    /// The message payload (a copy of the relevant node state).
    type Msg: Clone;

    /// `CREATEMESSAGE()`: constructs a message from `node`'s current state.
    fn create_message(&mut self, node: NodeId) -> Self::Msg;

    /// `UPDATESTATE(m)`: updates `node`'s state with a message received
    /// from `from`, returning its usefulness.
    fn update_state(
        &mut self,
        node: NodeId,
        from: NodeId,
        msg: &Self::Msg,
        now: SimTime,
    ) -> Usefulness;

    /// The application's performance metric at `now`, computed over the
    /// currently online population of size `online_count`.
    fn metric(&self, online_count: usize, now: SimTime) -> f64;

    /// Injection hook: fresh external data arrives at `target` (used by
    /// push gossip, which receives a new update every 17.28 s).
    fn inject(&mut self, target: NodeId, now: SimTime) {
        let _ = (target, now);
    }

    /// `node` came online (metric bookkeeping; the paper computes metrics
    /// over online nodes only).
    fn on_node_up(&mut self, node: NodeId, now: SimTime) {
        let _ = (node, now);
    }

    /// `node` went offline.
    fn on_node_down(&mut self, node: NodeId, now: SimTime) {
        let _ = (node, now);
    }

    /// Short application name for reports.
    fn name(&self) -> &'static str;
}
