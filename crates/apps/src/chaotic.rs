//! Chaotic asynchronous power iteration (Section 2.4 / 4.1.3).
//!
//! The network computes the dominant eigenvector of the column-stochastic
//! matrix of its own overlay (Lubachevsky & Mitra's chaotic iteration,
//! Algorithm 3): node `i` buffers the last value `b_ki` received from each
//! in-neighbour `k`, computes `x_i = Σ_k A_ik · b_ki` with
//! `A_ik = 1/outdeg(k)`, and sends `x_i` to a sampled out-neighbour.
//!
//! **Usefulness** (Section 3.2): a message is useful iff it changes the
//! buffered value (and hence the local state).
//!
//! **Metric**: the angle between the current global iterate `x` and the
//! true dominant eigenvector, computed centrally at construction time
//! (Section 4.1.3). Zero means a perfect solution.

use std::sync::Arc;

use ta_overlay::spectral::{angle_between, dominant_eigenvector, NotStochasticError};
use ta_overlay::Topology;
use ta_sim::{NodeId, SimTime};
use token_account::Usefulness;

use crate::app::Application;

/// A chaotic-iteration message: the sender's current weight `x_i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightMsg {
    /// The sender's current iterate value.
    pub x: f64,
}

/// The chaotic power iteration application state.
#[derive(Debug, Clone)]
pub struct ChaoticIteration {
    topo: Arc<Topology>,
    /// Buffered incoming values, CSR-aligned with the in-adjacency of the
    /// topology: `buffers[in_offset(i) + slot] = b_ki`.
    buffers: Vec<f64>,
    /// Per-node offsets into `buffers` (mirror of the topology in-CSR).
    offsets: Vec<usize>,
    /// The reference dominant eigenvector (L2-normalized).
    reference: Vec<f64>,
}

impl ChaoticIteration {
    /// Creates the application over `topo`, initializing all buffers to 1
    /// ("any positive value", Algorithm 3) and computing the reference
    /// eigenvector by centralized power iteration.
    ///
    /// # Errors
    ///
    /// Returns [`NotStochasticError`] if some node has out-degree zero
    /// (the matrix would not be column-stochastic).
    pub fn new(topo: Arc<Topology>) -> Result<Self, NotStochasticError> {
        let reference = dominant_eigenvector(&topo, 100_000, 1e-14)?;
        Ok(Self::with_reference(topo, reference))
    }

    /// Creates the application with a precomputed reference eigenvector.
    ///
    /// The reference only depends on the topology, so multi-run experiments
    /// compute it once and share it across runs instead of re-running the
    /// centralized power iteration per replica.
    ///
    /// # Panics
    ///
    /// Panics if `reference.len() != topo.n()`.
    pub fn with_reference(topo: Arc<Topology>, reference: Vec<f64>) -> Self {
        assert_eq!(
            reference.len(),
            topo.n(),
            "reference eigenvector length mismatch"
        );
        let n = topo.n();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for i in 0..n {
            let node = NodeId::from_index(i);
            let last = *offsets.last().expect("offsets never empty");
            offsets.push(last + topo.in_degree(node));
        }
        let total = *offsets.last().expect("offsets never empty");
        ChaoticIteration {
            topo,
            buffers: vec![1.0; total],
            offsets,
            reference,
        }
    }

    /// Re-initializes every buffer with a uniform random value in
    /// `(0.1, 2.0)`.
    ///
    /// Algorithm 3 initializes `b_ki` to "any positive value"; the constant
    /// 1.0 default is nearly the dominant eigenvector on near-regular
    /// graphs (a degenerate start), so experiments randomize the buffers to
    /// measure actual convergence.
    pub fn randomize_buffers<R: rand::Rng + ?Sized>(&mut self, rng: &mut R) {
        for b in &mut self.buffers {
            *b = 0.1 + 1.9 * rng.gen::<f64>();
        }
    }

    /// The current iterate `x_i` of `node`: `Σ_k b_ki / outdeg(k)`.
    pub fn value(&self, node: NodeId) -> f64 {
        let i = node.index();
        let in_neighbors = self.topo.in_neighbors(node);
        let base = self.offsets[i];
        let mut acc = 0.0;
        for (slot, &k) in in_neighbors.iter().enumerate() {
            acc += self.buffers[base + slot] / self.topo.out_degree(k) as f64;
        }
        acc
    }

    /// The full current iterate vector.
    pub fn vector(&self) -> Vec<f64> {
        (0..self.topo.n())
            .map(|i| self.value(NodeId::from_index(i)))
            .collect()
    }

    /// The reference dominant eigenvector.
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    /// Angle (radians) between the current iterate and the reference.
    pub fn angle(&self) -> f64 {
        angle_between(&self.vector(), &self.reference)
    }
}

impl Application for ChaoticIteration {
    type Msg = WeightMsg;

    fn create_message(&mut self, node: NodeId) -> WeightMsg {
        WeightMsg {
            x: self.value(node),
        }
    }

    fn update_state(
        &mut self,
        node: NodeId,
        from: NodeId,
        msg: &WeightMsg,
        _now: SimTime,
    ) -> Usefulness {
        match self.topo.in_edge_index(node, from) {
            Some(slot) => {
                let idx = self.offsets[node.index()] + slot;
                let changed = self.buffers[idx] != msg.x;
                self.buffers[idx] = msg.x;
                // "usefulness is 1 iff the received message causes a change
                // in the local state."
                Usefulness::from_bool(changed)
            }
            // A weight from a non-in-neighbour cannot update the matrix
            // row; possible only through pull replies, which chaotic
            // iteration does not use.
            None => Usefulness::NotUseful,
        }
    }

    fn metric(&self, _online_count: usize, _now: SimTime) -> f64 {
        self.angle()
    }

    fn name(&self) -> &'static str {
        "chaotic-iteration"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ta_overlay::generators::{complete, watts_strogatz_strongly_connected};

    fn complete_app(n: usize) -> ChaoticIteration {
        ChaoticIteration::new(Arc::new(complete(n).unwrap())).unwrap()
    }

    #[test]
    fn initial_values_are_uniform() {
        let app = complete_app(4);
        // Every buffer is 1, outdeg = 3: x_i = 3 · (1/3) = 1.
        for i in 0..4 {
            assert!((app.value(NodeId::new(i)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn complete_graph_starts_at_the_fixed_point() {
        // The uniform vector is the dominant eigenvector of the complete
        // graph, so the initial angle is already ~0.
        let app = complete_app(5);
        assert!(app.angle() < 1e-9, "angle = {}", app.angle());
    }

    #[test]
    fn update_state_reports_change_as_useful() {
        let mut app = complete_app(3);
        let now = SimTime::from_secs(1);
        let u = app.update_state(NodeId::new(0), NodeId::new(1), &WeightMsg { x: 2.0 }, now);
        assert_eq!(u, Usefulness::Useful);
        // Same value again: no change, not useful.
        let u = app.update_state(NodeId::new(0), NodeId::new(1), &WeightMsg { x: 2.0 }, now);
        assert_eq!(u, Usefulness::NotUseful);
        // x_0 = (2 + 1)/2 ... complete(3): outdeg 2, in-neighbours {1, 2}:
        // x_0 = 2/2 + 1/2 = 1.5.
        assert!((app.value(NodeId::new(0)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn message_from_non_neighbor_is_ignored() {
        // Ring 0 -> 1 -> 2 -> 0: node 0's only in-neighbour is 2.
        let topo = Arc::new(ta_overlay::generators::ring(3).unwrap());
        let mut app = ChaoticIteration::new(topo).unwrap();
        let now = SimTime::from_secs(1);
        let before = app.value(NodeId::new(0));
        let u = app.update_state(NodeId::new(0), NodeId::new(1), &WeightMsg { x: 9.0 }, now);
        assert_eq!(u, Usefulness::NotUseful);
        assert_eq!(app.value(NodeId::new(0)), before);
    }

    #[test]
    fn synchronous_sweeps_converge_on_small_world() {
        // Simulate perfect synchronous rounds by delivering every edge's
        // value each sweep; the angle must fall monotonically-ish to ~0.
        let topo = watts_strogatz_strongly_connected(100, 4, 0.05, 3, 20).unwrap();
        let topo = Arc::new(topo);
        let mut app = ChaoticIteration::new(Arc::clone(&topo)).unwrap();
        let now = SimTime::from_secs(1);
        let initial_angle = app.angle();
        for _ in 0..200 {
            // Snapshot then deliver x_k to every out-neighbour of k.
            let values: Vec<f64> = app.vector();
            for k in 0..100u32 {
                let from = NodeId::new(k);
                for &to in topo.out_neighbors(from) {
                    app.update_state(
                        to,
                        from,
                        &WeightMsg {
                            x: values[k as usize],
                        },
                        now,
                    );
                }
            }
        }
        let final_angle = app.angle();
        // The WS graph is chosen for *slow* mixing (Section 4.1.3), so two
        // hundred sweeps will not reach machine precision — two orders of
        // magnitude is already clear convergence.
        assert!(
            final_angle < initial_angle / 100.0 && final_angle < 1e-2,
            "angle {initial_angle} -> {final_angle}"
        );
    }

    #[test]
    fn create_message_carries_current_value() {
        let mut app = complete_app(3);
        let msg = app.create_message(NodeId::new(2));
        assert!((msg.x - app.value(NodeId::new(2))).abs() < 1e-12);
    }

    #[test]
    fn rejects_zero_out_degree_topologies() {
        let topo = Arc::new(Topology::from_edges(2, [(0, 1)]).unwrap());
        assert!(ChaoticIteration::new(topo).is_err());
    }
}
