//! # ta-apps — the paper's three applications over the token account service
//!
//! * [`gossip_learning::GossipLearning`] — random-walking models trained at
//!   every visit (Algorithm 1; metric eq. 6).
//! * [`push_gossip::PushGossip`] — continuous broadcast of timestamped
//!   updates (Algorithm 2; metric eq. 7; pull-on-rejoin under churn).
//! * [`chaotic::ChaoticIteration`] — asynchronous power iteration on the
//!   overlay's column-stochastic matrix (Algorithm 3; angle metric).
//!
//! All three implement [`app::Application`] (the paper's
//! `CREATEMESSAGE`/`UPDATESTATE` API) and run under
//! [`protocol::TokenProtocol`], the executable form of Algorithm 4 that
//! plugs into the [`ta_sim`] engine.
//!
//! ```
//! use std::sync::Arc;
//! use ta_apps::protocol::TokenProtocol;
//! use ta_apps::push_gossip::PushGossip;
//! use ta_overlay::generators::k_out_random;
//! use ta_sim::prelude::*;
//! use token_account::prelude::*;
//!
//! let n = 100;
//! let mut rng = Xoshiro256pp::stream(7, 0);
//! let topo = Arc::new(k_out_random(n, 20, &mut rng)?);
//! let cfg = SimConfig::builder(n)
//!     .duration(SimDuration::from_secs(3600))
//!     .sample_period(SimDuration::from_secs(600))
//!     .injection_period(SimDuration::from_secs_f64(17.28))
//!     .seed(7)
//!     .build()?;
//! let app = PushGossip::new(n, &vec![true; n]);
//! // The strategy type is fixed here, so the per-event hot path carries
//! // no virtual dispatch (pass a `Box<dyn Strategy>` to pick at run time).
//! let strategy = RandomizedTokenAccount::new(10, 20)?;
//! let proto = TokenProtocol::new(topo, strategy, app, vec![true; n]);
//! let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
//! sim.run_to_end();
//! let results = sim.into_parts().0.into_results();
//! assert!(results.metric.len() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod chaotic;
pub mod gossip_learning;
pub mod protocol;
pub mod push_gossip;
pub mod sgd;

pub use app::Application;
pub use chaotic::ChaoticIteration;
pub use gossip_learning::GossipLearning;
pub use protocol::sharded::{
    ApplicationShard, ShardableApplication, TokenProtocolGlobal, TokenProtocolShard,
};
pub use protocol::{ProtocolMsg, ProtocolResults, ProtocolStats, ReplyPolicy, TokenProtocol};
pub use push_gossip::PushGossip;
pub use sgd::SgdGossipLearning;
