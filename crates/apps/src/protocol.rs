//! The token account protocol adapter: Algorithm 4 as a simulator driver.
//!
//! [`TokenProtocol`] glues together the four layers of the reproduction:
//! the [`ta_sim`] engine (clock, transfer, churn), an overlay
//! [`Topology`] with online-aware peer sampling, a token
//! [`Strategy`], and an [`Application`]. It is the
//! executable form of Algorithm 4:
//!
//! * round tick → `PROACTIVE(a)` decides between sending a fresh state
//!   copy to a random online neighbour and banking the token;
//! * message receipt → `UPDATESTATE` yields the usefulness, `REACTIVE(a,u)`
//!   (probabilistically rounded) decides how many state copies to send,
//!   burning that many tokens;
//! * rejoin after churn (optional) → a pull request to one online
//!   neighbour, answered with the neighbour's state *iff* it can spend a
//!   token (Section 4.1.2).
//!
//! When a send cannot be performed because no neighbour is online, the
//! token is banked (proactive case) or refunded (reactive case), keeping
//! the one-token-per-Δ accounting exact.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

#[path = "protocol_sharded.rs"]
pub mod sharded;
use ta_metrics::TimeSeries;
use ta_overlay::sampling::OnlineNeighbors;
use ta_overlay::Topology;
use ta_sim::engine::{Driver, MsgBatch, SimApi};
use ta_sim::{NodeId, SimTime};
use token_account::node::{RoundAction, TokenNode};
use token_account::Strategy;

use crate::app::Application;

/// Wire format: application payloads plus the pull-request control message.
#[derive(Debug, Clone)]
pub enum ProtocolMsg<M> {
    /// An application state copy.
    App(M),
    /// A rejoining node asking one neighbour for its state.
    PullRequest,
}

/// Where reactive messages are addressed.
///
/// The paper's Algorithm 4 sends every message to `selectPeer()`
/// ([`ReplyPolicy::RandomPeer`]). [`ReplyPolicy::SenderFirst`] is a
/// push–pull-flavoured variant: the *first* reactive message triggered by
/// an incoming message is addressed back to its sender (so a node that
/// pushed a stale update immediately receives the fresher one); any
/// remaining burst goes to random peers. Token accounting is unchanged.
///
/// The `ablation` experiment shows why Algorithm 4 chooses random
/// addressing: when the reactive burst is small (e.g. the simple
/// strategy's single message), answering the sender consumes the entire
/// budget on a pairwise bounce and destroys the exponential fan-out that
/// broadcast relies on — lag grows by an order of magnitude. A real
/// push–pull design needs a *separate* reply budget, which is exactly the
/// pull-request/one-token mechanism the paper adds for churn rejoins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplyPolicy {
    /// Algorithm 4 as published: all sends to `selectPeer()`.
    #[default]
    RandomPeer,
    /// First reactive send answers the sender (push–pull variant; see the
    /// type-level discussion for why this hurts broadcast).
    SenderFirst,
}

/// Message counters of one protocol run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolStats {
    /// Proactive sends (round ticks that spent their token on a message).
    pub proactive_sent: u64,
    /// Reactive sends (token-burning responses).
    pub reactive_sent: u64,
    /// Round ticks that banked the token.
    pub tokens_banked: u64,
    /// Proactive sends skipped because no neighbour was online.
    pub proactive_skipped: u64,
    /// Reactive sends refunded because no neighbour was online.
    pub reactive_refunded: u64,
    /// Pull requests sent on rejoin.
    pub pull_requests: u64,
    /// Pull requests answered (a token was available).
    pub pull_replies: u64,
    /// Pull requests ignored (answering node had no token).
    pub pull_ignored: u64,
}

impl ProtocolStats {
    /// Total messages that actually left a node.
    pub fn total_sent(&self) -> u64 {
        self.proactive_sent + self.reactive_sent + self.pull_requests + self.pull_replies
    }

    /// Accumulates another run's (or shard's) counters into this one —
    /// the single place that knows every field, so a counter added later
    /// cannot be silently dropped from merged sharded results.
    pub fn merge(&mut self, other: &ProtocolStats) {
        self.proactive_sent += other.proactive_sent;
        self.reactive_sent += other.reactive_sent;
        self.tokens_banked += other.tokens_banked;
        self.proactive_skipped += other.proactive_skipped;
        self.reactive_refunded += other.reactive_refunded;
        self.pull_requests += other.pull_requests;
        self.pull_replies += other.pull_replies;
        self.pull_ignored += other.pull_ignored;
    }
}

/// Everything a finished run hands back to the harness.
#[derive(Debug)]
pub struct ProtocolResults<A> {
    /// The application, with its final state.
    pub app: A,
    /// The metric time series (one sample per configured sample period).
    pub metric: TimeSeries,
    /// Average token balance over online nodes, if recording was enabled.
    pub tokens: TimeSeries,
    /// Message counters.
    pub stats: ProtocolStats,
    /// Messages sent per transfer-time slot — the traffic histogram behind
    /// the paper's burstiness guarantee (Section 3.4). Index `i` counts
    /// sends in `[i·τ, (i+1)·τ)` where `τ` is the configured transfer
    /// time (Δ/100 in the paper's setup): fine enough to expose reactive
    /// cascades, which complete within a few transfer times.
    pub sends_per_slot: Vec<u64>,
    /// Sum of the final token balances over all nodes. Together with the
    /// counters this closes the books:
    /// `tokens_banked + proactive_skipped - reactive_sent - pull_replies
    /// == balances_sum` for every non-debt strategy (refunded reactive
    /// tokens cancel out).
    pub balances_sum: i64,
}

/// The Algorithm-4 driver. See the [module docs](self).
///
/// Generic over the [`Strategy`] so the per-event `PROACTIVE`/`REACTIVE`
/// evaluations are direct, inlinable calls — the strategy type is selected
/// once at construction, the same way the engine selects its event queue.
/// `S` defaults to `Box<dyn Strategy>` as the type-erased escape hatch for
/// callers that pick strategies at run time and don't care about the
/// virtual-call tax; hot paths should pass a concrete strategy (the
/// experiments runner dispatches via [`token_account::StrategyVisitor`]).
pub struct TokenProtocol<A: Application, S: Strategy = Box<dyn Strategy>> {
    strategy: S,
    app: A,
    topo: Arc<Topology>,
    nodes: Vec<TokenNode>,
    /// Driver-side packed mirror of the online set (kept by up/down
    /// callbacks): O(1) uniform online-neighbour selection per send.
    ///
    /// Held behind an [`Arc`] with copy-on-churn semantics
    /// ([`Arc::make_mut`] on the first transition): failure-free runs of
    /// one prepared grid can share a single frozen mirror — an O(E) build
    /// per (spec × run) job otherwise — and the sharded engine hands each
    /// shard a handle to the same frozen replica.
    peers: Arc<OnlineNeighbors>,
    pull_on_rejoin: bool,
    record_tokens: bool,
    react_to_injections: bool,
    reply_policy: ReplyPolicy,
    metric: TimeSeries,
    tokens: TimeSeries,
    stats: ProtocolStats,
    /// Sends per transfer-time slot (burstiness histogram).
    sends_per_slot: Vec<u64>,
    /// Transfer-time slot length in µs, cached on first use (the config is
    /// not available at construction; 0 means "not yet cached").
    slot_len_us: u64,
}

impl<A: Application, S: Strategy> TokenProtocol<A, S> {
    /// Builds the driver.
    ///
    /// `initial_online` must reflect the availability model's state at time
    /// zero (the engine reports only *transitions* through callbacks).
    /// Accounts start with zero tokens, as in Section 4.1.
    ///
    /// # Panics
    ///
    /// Panics if `initial_online.len()` differs from the topology size.
    pub fn new(topo: Arc<Topology>, strategy: S, app: A, initial_online: Vec<bool>) -> Self {
        let peers = Arc::new(OnlineNeighbors::new(&topo, &initial_online));
        Self::with_shared_peers(topo, strategy, app, initial_online, peers)
    }

    /// Builds the driver around an existing online-neighbour mirror.
    ///
    /// The mirror must have been built for this topology and online set;
    /// failure-free experiment grids build it once per topology and share
    /// the frozen copy across every run (the first churn transition of a
    /// run copies it, so sharing is always sound).
    ///
    /// # Panics
    ///
    /// Panics if `initial_online` does not match the topology size or the
    /// mirror's flags.
    pub fn with_shared_peers(
        topo: Arc<Topology>,
        strategy: S,
        app: A,
        initial_online: Vec<bool>,
        peers: Arc<OnlineNeighbors>,
    ) -> Self {
        assert_eq!(
            initial_online.len(),
            topo.n(),
            "initial_online length must equal the node count"
        );
        assert_eq!(
            peers.online_flags(),
            &initial_online[..],
            "shared mirror does not match the initial online set"
        );
        let n = topo.n();
        TokenProtocol {
            strategy,
            app,
            topo,
            nodes: vec![TokenNode::new(0); n],
            peers,
            pull_on_rejoin: false,
            record_tokens: false,
            react_to_injections: false,
            reply_policy: ReplyPolicy::default(),
            metric: TimeSeries::new(),
            tokens: TimeSeries::new(),
            stats: ProtocolStats::default(),
            sends_per_slot: Vec::new(),
            slot_len_us: 0,
        }
    }

    /// Enables the Section 4.1.2 pull request on rejoin (push gossip churn
    /// scenario).
    pub fn with_pull_on_rejoin(mut self) -> Self {
        self.pull_on_rejoin = true;
        self
    }

    /// Records the average token balance at every sample (Figure 5).
    pub fn with_token_recording(mut self) -> Self {
        self.record_tokens = true;
        self
    }

    /// Selects where reactive bursts are addressed (see [`ReplyPolicy`]).
    pub fn with_reply_policy(mut self, policy: ReplyPolicy) -> Self {
        self.reply_policy = policy;
        self
    }

    /// Treats external injections as useful state changes that trigger the
    /// reactive function.
    ///
    /// Algorithm 4 reacts only to *messages*, so token-account strategies
    /// leave this off. The purely reactive reference, however, "send[s]
    /// messages whenever their state changes" (Section 1) — without this
    /// option it would sit silent forever in push gossip, where fresh data
    /// enters by injection rather than by message. Used by the
    /// `burstiness` and `faults` experiments for the reactive rows.
    pub fn with_injection_reaction(mut self) -> Self {
        self.react_to_injections = true;
        self
    }

    /// The application (for inspection mid-run).
    pub fn app(&self) -> &A {
        &self.app
    }

    /// The overlay topology this protocol runs over.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Message counters so far.
    pub fn stats(&self) -> &ProtocolStats {
        &self.stats
    }

    /// Token balance of `node` (diagnostics and tests).
    pub fn balance(&self, node: NodeId) -> i64 {
        self.nodes[node.index()].balance()
    }

    /// Sum of all token balances (conservation checks; see
    /// [`ProtocolResults::balances_sum`]).
    pub fn balances_sum(&self) -> i64 {
        self.nodes.iter().map(TokenNode::balance).sum()
    }

    /// Finishes the run, yielding the recorded results.
    pub fn into_results(self) -> ProtocolResults<A> {
        let balances_sum = self.balances_sum();
        ProtocolResults {
            app: self.app,
            metric: self.metric,
            tokens: self.tokens,
            stats: self.stats,
            sends_per_slot: self.sends_per_slot,
            balances_sum,
        }
    }

    /// Accounts one send in the traffic histogram (transfer-time slots).
    fn record_send(&mut self, api: &SimApi<'_, ProtocolMsg<A::Msg>>) {
        if self.slot_len_us == 0 {
            // The config only becomes reachable through the API, so the
            // slot length is cached on the first send instead of at
            // construction; `max(1)` keeps the sentinel unreachable.
            self.slot_len_us = api.config().transfer_time().as_micros().max(1);
        }
        let bucket = (api.now().as_micros() / self.slot_len_us) as usize;
        if bucket >= self.sends_per_slot.len() {
            self.sends_per_slot.resize(bucket + 1, 0);
        }
        self.sends_per_slot[bucket] += 1;
    }

    /// Sends one state copy from `node` to a random online neighbour.
    /// Returns whether a peer was available.
    fn send_state(&mut self, api: &mut SimApi<'_, ProtocolMsg<A::Msg>>, node: NodeId) -> bool {
        match self.peers.select(node, api.rng()) {
            Some(peer) => {
                let msg = self.app.create_message(node);
                api.send(node, peer, ProtocolMsg::App(msg));
                self.record_send(api);
                true
            }
            None => false,
        }
    }

    /// Accounts `count` sends at one instant — every send of one
    /// delivery (or one same-time batch) lands in the same transfer-time
    /// slot, so one bucket add covers them all (bitwise the same
    /// histogram per-send recording produces).
    fn record_sends_at(&mut self, now: SimTime, count: u64) {
        debug_assert!(self.slot_len_us != 0, "slot length must be cached first");
        let bucket = (now.as_micros() / self.slot_len_us) as usize;
        if bucket >= self.sends_per_slot.len() {
            self.sends_per_slot.resize(bucket + 1, 0);
        }
        self.sends_per_slot[bucket] += count;
    }

    /// Caches the transfer-slot length on first use (the config is only
    /// reachable through the API; `max(1)` keeps the 0 sentinel
    /// unreachable).
    #[inline]
    fn ensure_slot_len(&mut self, api: &SimApi<'_, ProtocolMsg<A::Msg>>) {
        if self.slot_len_us == 0 {
            self.slot_len_us = api.config().transfer_time().as_micros().max(1);
        }
    }

    /// Handles one delivered protocol message at online node `to` — the
    /// single body behind [`Driver::on_message`] and
    /// [`Driver::on_message_batch`], so the two entry points cannot
    /// drift. Returns the number of sends performed; the caller accounts
    /// them in the traffic histogram (all at `now`, hence one bucket).
    fn handle_message(
        &mut self,
        api: &mut SimApi<'_, ProtocolMsg<A::Msg>>,
        from: NodeId,
        to: NodeId,
        idx: usize,
        now: SimTime,
        msg: ProtocolMsg<A::Msg>,
    ) -> u64 {
        let mut sent = 0u64;
        match msg {
            ProtocolMsg::PullRequest => {
                // Section 4.1.2: answer with the latest state iff a token
                // is available; otherwise stay silent.
                if self.nodes[idx].try_spend_one() {
                    let reply = self.app.create_message(to);
                    api.send(to, from, ProtocolMsg::App(reply));
                    sent += 1;
                    self.stats.pull_replies += 1;
                } else {
                    self.stats.pull_ignored += 1;
                }
            }
            ProtocolMsg::App(payload) => {
                let usefulness = self.app.update_state(to, from, &payload, now);
                let burst = self.nodes[idx].on_message(&self.strategy, usefulness, api.rng());
                for i in 0..burst {
                    // Push–pull extension: the first reactive message may
                    // answer the sender directly instead of a random peer.
                    let answered_sender = i == 0
                        && self.reply_policy == ReplyPolicy::SenderFirst
                        && self.peers.is_online(from);
                    let peer = if answered_sender {
                        Some(from)
                    } else {
                        self.peers.select(to, api.rng())
                    };
                    match peer {
                        Some(peer) => {
                            let m = self.app.create_message(to);
                            api.send(to, peer, ProtocolMsg::App(m));
                            sent += 1;
                            self.stats.reactive_sent += 1;
                        }
                        None => {
                            // Token already burned for a send that cannot
                            // happen: refund it.
                            self.nodes[idx].bank_token();
                            self.stats.reactive_refunded += 1;
                        }
                    }
                }
            }
        }
        sent
    }
}

impl<A: Application, S: Strategy> Driver for TokenProtocol<A, S> {
    type Msg = ProtocolMsg<A::Msg>;

    fn on_round_tick(&mut self, api: &mut SimApi<'_, Self::Msg>, node: NodeId) {
        let action = self.nodes[node.index()].on_round(&self.strategy, api.rng());
        match action {
            RoundAction::SendProactive => {
                if self.send_state(api, node) {
                    self.stats.proactive_sent += 1;
                } else {
                    // No online neighbour: bank the granted token instead.
                    self.nodes[node.index()].bank_token();
                    self.stats.proactive_skipped += 1;
                }
            }
            RoundAction::SaveToken => {
                self.stats.tokens_banked += 1;
            }
        }
    }

    fn on_message(
        &mut self,
        api: &mut SimApi<'_, Self::Msg>,
        from: NodeId,
        to: NodeId,
        msg: Self::Msg,
    ) {
        self.ensure_slot_len(api);
        let now = api.now();
        let sent = self.handle_message(api, from, to, to.index(), now, msg);
        if sent > 0 {
            self.record_sends_at(now, sent);
        }
    }

    /// The batched delivery hot path: one call per destination node per
    /// same-instant run, with the per-delivery lookups — destination
    /// index, clock read, histogram slot — hoisted out of the loop. The
    /// per-message body is shared with [`Driver::on_message`]
    /// (`handle_message`), so the two entry points cannot drift — the
    /// engines split runs differently, and any divergence would break
    /// the byte-identical-results guarantee.
    fn on_message_batch(
        &mut self,
        api: &mut SimApi<'_, Self::Msg>,
        to: NodeId,
        msgs: &mut MsgBatch<'_, Self::Msg>,
    ) {
        let idx = to.index();
        let now = api.now();
        self.ensure_slot_len(api);
        let mut sent_in_slot = 0u64;
        for (from, msg) in msgs.by_ref() {
            sent_in_slot += self.handle_message(api, from, to, idx, now, msg);
        }
        if sent_in_slot > 0 {
            self.record_sends_at(now, sent_in_slot);
        }
    }

    fn on_node_up(&mut self, api: &mut SimApi<'_, Self::Msg>, node: NodeId) {
        Arc::make_mut(&mut self.peers).set_online(node, true);
        self.app.on_node_up(node, api.now());
        if self.pull_on_rejoin {
            if let Some(peer) = self.peers.select(node, api.rng()) {
                api.send(node, peer, ProtocolMsg::PullRequest);
                self.stats.pull_requests += 1;
            }
        }
    }

    fn on_node_down(&mut self, api: &mut SimApi<'_, Self::Msg>, node: NodeId) {
        Arc::make_mut(&mut self.peers).set_online(node, false);
        self.app.on_node_down(node, api.now());
    }

    fn on_sample(&mut self, api: &mut SimApi<'_, Self::Msg>) {
        let now = api.now();
        let online_count = api.online_count();
        let value = self.app.metric(online_count, now);
        self.metric.push(now.as_secs_f64(), value);
        if self.record_tokens {
            let (sum, count) = self
                .peers
                .online_flags()
                .iter()
                .zip(&self.nodes)
                .filter(|(&up, _)| up)
                .fold((0i64, 0usize), |(s, c), (_, node)| {
                    (s + node.balance(), c + 1)
                });
            let avg = if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            };
            self.tokens.push(now.as_secs_f64(), avg);
        }
    }

    fn on_inject(&mut self, api: &mut SimApi<'_, Self::Msg>) {
        if let Some(target) = api.random_online_node() {
            self.app.inject(target, api.now());
            if self.react_to_injections {
                let burst = self.nodes[target.index()].on_message(
                    &self.strategy,
                    token_account::Usefulness::Useful,
                    api.rng(),
                );
                for _ in 0..burst {
                    if self.send_state(api, target) {
                        self.stats.reactive_sent += 1;
                    } else {
                        self.nodes[target.index()].bank_token();
                        self.stats.reactive_refunded += 1;
                    }
                }
            }
        }
    }
}

impl<A: Application + std::fmt::Debug, S: Strategy> std::fmt::Debug for TokenProtocol<A, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenProtocol")
            .field("strategy", &self.strategy.label())
            .field("app", &self.app)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ta_overlay::generators::k_out_random;
    use ta_sim::config::SimConfig;
    use ta_sim::engine::{AlwaysOn, Simulation};
    use ta_sim::rng::Xoshiro256pp;
    use ta_sim::{SimDuration, SimTime};
    use token_account::prelude::*;
    use token_account::Usefulness;

    /// A counting application: state is "how many messages seen".
    #[derive(Debug, Default)]
    struct Counter {
        seen: Vec<u64>,
    }

    impl Counter {
        fn new(n: usize) -> Self {
            Counter { seen: vec![0; n] }
        }
    }

    impl Application for Counter {
        type Msg = ();
        fn create_message(&mut self, _node: NodeId) {}
        fn update_state(
            &mut self,
            node: NodeId,
            _from: NodeId,
            _msg: &(),
            _now: SimTime,
        ) -> Usefulness {
            self.seen[node.index()] += 1;
            Usefulness::Useful
        }
        fn metric(&self, _online: usize, _now: SimTime) -> f64 {
            self.seen.iter().sum::<u64>() as f64
        }
        fn name(&self) -> &'static str {
            "counter"
        }
    }

    fn run_proto(
        strategy: Box<dyn Strategy>,
        n: usize,
        secs: u64,
    ) -> (ProtocolResults<Counter>, ta_sim::SimStats) {
        let cfg = SimConfig::builder(n)
            .delta(SimDuration::from_secs(10))
            .transfer_time(SimDuration::from_secs(1))
            .duration(SimDuration::from_secs(secs))
            .sample_period(SimDuration::from_secs(10))
            .seed(42)
            .build()
            .unwrap();
        let mut rng = Xoshiro256pp::stream(42, 1);
        let topo = Arc::new(k_out_random(n, 5.min(n - 1), &mut rng).unwrap());
        let proto = TokenProtocol::new(Arc::clone(&topo), strategy, Counter::new(n), vec![true; n])
            .with_token_recording();
        let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
        sim.run_to_end();
        let (proto, stats) = sim.into_parts();
        (proto.into_results(), stats)
    }

    #[test]
    fn purely_proactive_sends_once_per_tick() {
        let (results, stats) = run_proto(Box::new(PurelyProactive), 20, 300);
        assert_eq!(results.stats.proactive_sent, stats.ticks_fired);
        assert_eq!(results.stats.reactive_sent, 0);
        assert_eq!(results.stats.tokens_banked, 0);
    }

    #[test]
    fn simple_strategy_respects_global_rate() {
        // Rate limiting: total sends <= ticks + N·C (Section 3.4).
        let n = 20u64;
        let c = 5u64;
        let (results, stats) = run_proto(Box::new(SimpleTokenAccount::new(c)), n as usize, 600);
        let bound = stats.ticks_fired + n * c;
        assert!(
            results.stats.total_sent() <= bound,
            "sent {} > bound {bound}",
            results.stats.total_sent()
        );
        // And the system is live: messages do flow.
        assert!(results.stats.total_sent() > 0);
        assert!(results.stats.reactive_sent > 0);
    }

    #[test]
    fn token_conservation_holds() {
        // Real conservation: every token granted is either still on an
        // account or was burned by a send. Grants come from round-tick
        // banking, skipped proactive sends, and reactive refunds; burns
        // come from reactive sends (incl. the refunded ones, which cancel)
        // and pull replies. banked − spent must equal the sum of the final
        // balances exactly.
        let (results, _) = run_proto(
            Box::new(RandomizedTokenAccount::new(2, 6).unwrap()),
            10,
            1000,
        );
        let banked = results.stats.tokens_banked
            + results.stats.reactive_refunded
            + results.stats.proactive_skipped;
        let spent = results.stats.reactive_sent
            + results.stats.reactive_refunded
            + results.stats.pull_replies;
        assert!(
            banked >= spent,
            "non-debt strategies cannot overspend: banked {banked} < spent {spent}"
        );
        assert_eq!(
            (banked - spent) as i64,
            results.balances_sum,
            "token books must balance: banked {banked}, spent {spent}, \
             final balances {}",
            results.balances_sum
        );
        // And the run actually exercised the reactive path.
        assert!(results.stats.reactive_sent > 0);
    }

    #[test]
    fn balances_sum_visible_before_and_after_into_results() {
        let n = 8;
        let cfg = SimConfig::builder(n)
            .delta(SimDuration::from_secs(10))
            .transfer_time(SimDuration::from_secs(1))
            .duration(SimDuration::from_secs(200))
            .seed(3)
            .build()
            .unwrap();
        let mut rng = Xoshiro256pp::stream(3, 1);
        let topo = Arc::new(k_out_random(n, 3, &mut rng).unwrap());
        let proto = TokenProtocol::new(
            topo,
            Box::new(SimpleTokenAccount::new(4)) as Box<dyn Strategy>,
            Counter::new(n),
            vec![true; n],
        );
        let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
        sim.run_to_end();
        let live_sum = sim.driver().balances_sum();
        let per_node: i64 = (0..n)
            .map(|i| sim.driver().balance(NodeId::from_index(i)))
            .sum();
        assert_eq!(live_sum, per_node);
        let (proto, _) = sim.into_parts();
        assert_eq!(proto.into_results().balances_sum, live_sum);
    }

    #[test]
    fn metric_series_is_recorded_per_sample() {
        let (results, stats) = run_proto(Box::new(PurelyProactive), 10, 200);
        assert_eq!(results.metric.len() as u64, stats.samples);
        assert_eq!(results.tokens.len() as u64, stats.samples);
        // Counter metric is monotone in time.
        let v = results.metric.values();
        assert!(v.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn average_tokens_never_exceed_capacity() {
        let (results, _) = run_proto(
            Box::new(RandomizedTokenAccount::new(5, 10).unwrap()),
            30,
            2000,
        );
        for &v in results.tokens.values() {
            assert!((0.0..=10.0).contains(&v), "avg tokens {v}");
        }
    }

    #[test]
    fn boxed_and_monomorphized_strategies_are_bit_identical() {
        // The strategy type parameter is a pure dispatch optimization: a
        // concrete strategy and its boxed erasure must consume identical
        // randomness and produce identical runs.
        let n = 25;
        let run = |boxed: bool| {
            let cfg = SimConfig::builder(n)
                .delta(SimDuration::from_secs(10))
                .transfer_time(SimDuration::from_secs(1))
                .duration(SimDuration::from_secs(500))
                .seed(9)
                .build()
                .unwrap();
            let mut rng = Xoshiro256pp::stream(9, 1);
            let topo = Arc::new(k_out_random(n, 5, &mut rng).unwrap());
            let strategy = RandomizedTokenAccount::new(2, 6).unwrap();
            if boxed {
                let proto = TokenProtocol::new(
                    topo,
                    Box::new(strategy) as Box<dyn Strategy>,
                    Counter::new(n),
                    vec![true; n],
                );
                let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
                sim.run_to_end();
                let (proto, stats) = sim.into_parts();
                (proto.into_results().stats, stats)
            } else {
                let proto = TokenProtocol::new(topo, strategy, Counter::new(n), vec![true; n]);
                let mut sim = Simulation::new(cfg, &AlwaysOn, proto);
                sim.run_to_end();
                let (proto, stats) = sim.into_parts();
                (proto.into_results().stats, stats)
            }
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    #[should_panic(expected = "initial_online length")]
    fn initial_online_must_match_topology() {
        let mut rng = Xoshiro256pp::stream(1, 1);
        let topo = Arc::new(k_out_random(5, 2, &mut rng).unwrap());
        let _ = TokenProtocol::new(
            topo,
            Box::new(PurelyProactive),
            Counter::new(5),
            vec![true; 3],
        );
    }
}
