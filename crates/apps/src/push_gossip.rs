//! Push gossip broadcast (Section 2.3 / 4.1.2).
//!
//! A continuous stream of timestamped updates is injected into the network
//! (one every 17.28 s at a random online node); every node stores only the
//! freshest update it knows and pushes it onward. A received message is
//! useful iff it carries a fresher update than the locally stored one.
//!
//! **Metric** (eq. 7): the average *lag* over online nodes — the number of
//! injections between the globally freshest update and the one a node
//! stores. Multiplied by the injection period this is the average time lag
//! in seconds; the figure harness reports both.

use ta_sim::shard::ShardPlan;
use ta_sim::{NodeId, SimTime};
use token_account::Usefulness;

use crate::app::Application;
use crate::protocol::sharded::{ApplicationShard, ShardableApplication};

/// A push gossip message: the timestamp (injection index) of an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateMsg {
    /// Injection sequence number; larger is fresher.
    pub id: u64,
}

/// The push gossip application state.
#[derive(Debug, Clone)]
pub struct PushGossip {
    /// Freshest update id known per node; 0 = nothing yet (ids start at 1).
    latest: Vec<u64>,
    online: Vec<bool>,
    /// Σ latest over online nodes, maintained incrementally (O(1) metric).
    online_sum: u64,
    online_count: usize,
    /// Id of the last injected update (0 before the first injection).
    freshest: u64,
}

impl PushGossip {
    /// Creates the application for `n` nodes with the initial online set.
    ///
    /// # Panics
    ///
    /// Panics if `initial_online.len() != n`.
    pub fn new(n: usize, initial_online: &[bool]) -> Self {
        assert_eq!(initial_online.len(), n, "initial_online length mismatch");
        PushGossip {
            latest: vec![0; n],
            online: initial_online.to_vec(),
            online_sum: 0,
            online_count: initial_online.iter().filter(|&&b| b).count(),
            freshest: 0,
        }
    }

    /// The freshest update id anywhere in the network.
    pub fn freshest(&self) -> u64 {
        self.freshest
    }

    /// The update id stored at `node` (0 if none).
    pub fn stored(&self, node: NodeId) -> u64 {
        self.latest[node.index()]
    }

    fn store(&mut self, node: NodeId, id: u64) {
        let current = self.latest[node.index()];
        if id > current {
            self.latest[node.index()] = id;
            if self.online[node.index()] {
                self.online_sum += id - current;
            }
        }
    }
}

impl Application for PushGossip {
    type Msg = UpdateMsg;

    fn create_message(&mut self, node: NodeId) -> UpdateMsg {
        UpdateMsg {
            id: self.latest[node.index()],
        }
    }

    fn update_state(
        &mut self,
        node: NodeId,
        _from: NodeId,
        msg: &UpdateMsg,
        _now: SimTime,
    ) -> Usefulness {
        if msg.id > self.latest[node.index()] {
            self.store(node, msg.id);
            Usefulness::Useful
        } else {
            Usefulness::NotUseful
        }
    }

    fn metric(&self, _online_count: usize, _now: SimTime) -> f64 {
        if self.online_count == 0 {
            return 0.0;
        }
        // eq. 7: t − (1/N) Σ t_i over the online population.
        self.freshest as f64 - self.online_sum as f64 / self.online_count as f64
    }

    fn inject(&mut self, target: NodeId, _now: SimTime) {
        self.freshest += 1;
        let id = self.freshest;
        self.store(target, id);
    }

    fn on_node_up(&mut self, node: NodeId, _now: SimTime) {
        if !self.online[node.index()] {
            self.online[node.index()] = true;
            self.online_sum += self.latest[node.index()];
            self.online_count += 1;
        }
    }

    fn on_node_down(&mut self, node: NodeId, _now: SimTime) {
        if self.online[node.index()] {
            self.online[node.index()] = false;
            self.online_sum -= self.latest[node.index()];
            self.online_count -= 1;
        }
    }

    fn name(&self) -> &'static str {
        "push-gossip"
    }
}

/// One shard's block of [`PushGossip`]: the owned nodes' freshest-update
/// ids and online flags, plus a replica of the global injection counter.
///
/// The lag metric (eq. 7) is a fold of *integer* partials — `Σ latest`
/// and the online count over the owned block — so
/// [`metric_sharded`](ShardableApplication::metric_sharded) folds the
/// shards in order (contiguous blocks = serial node order, the same
/// ordered-fold discipline `SgdGossipLearning` uses for its f64
/// accumulation) and reproduces [`Application::metric`] bitwise: the
/// only floating-point arithmetic is the final division, applied to
/// sums that are exact integers on both paths.
///
/// `freshest` is global state: every injection increments it
/// network-wide. The owning shard advances it in
/// [`inject`](ApplicationShard::inject) (and stores the update); every
/// other shard advances its replica through
/// [`on_remote_inject`](ApplicationShard::on_remote_inject) — injections
/// fire at window barriers, so the replicas agree whenever the metric is
/// sampled.
#[derive(Debug, Clone)]
pub struct PushGossipShard {
    base: usize,
    latest: Vec<u64>,
    online: Vec<bool>,
    online_sum: u64,
    online_count: usize,
    freshest: u64,
}

impl PushGossipShard {
    #[inline]
    fn local(&self, node: NodeId) -> usize {
        node.index() - self.base
    }

    fn store(&mut self, i: usize, id: u64) {
        let current = self.latest[i];
        if id > current {
            self.latest[i] = id;
            if self.online[i] {
                self.online_sum += id - current;
            }
        }
    }
}

impl ApplicationShard for PushGossipShard {
    type Msg = UpdateMsg;

    fn create_message(&mut self, node: NodeId) -> UpdateMsg {
        UpdateMsg {
            id: self.latest[self.local(node)],
        }
    }

    fn update_state(
        &mut self,
        node: NodeId,
        _from: NodeId,
        msg: &UpdateMsg,
        _now: SimTime,
    ) -> Usefulness {
        let i = self.local(node);
        if msg.id > self.latest[i] {
            self.store(i, msg.id);
            Usefulness::Useful
        } else {
            Usefulness::NotUseful
        }
    }

    fn inject(&mut self, target: NodeId, _now: SimTime) {
        self.freshest += 1;
        let id = self.freshest;
        let i = self.local(target);
        self.store(i, id);
    }

    fn on_remote_inject(&mut self, _now: SimTime) {
        self.freshest += 1;
    }

    fn on_node_up(&mut self, node: NodeId, _now: SimTime) {
        let i = self.local(node);
        if !self.online[i] {
            self.online[i] = true;
            self.online_sum += self.latest[i];
            self.online_count += 1;
        }
    }

    fn on_node_down(&mut self, node: NodeId, _now: SimTime) {
        let i = self.local(node);
        if self.online[i] {
            self.online[i] = false;
            self.online_sum -= self.latest[i];
            self.online_count -= 1;
        }
    }
}

impl ShardableApplication for PushGossip {
    type Shard = PushGossipShard;

    fn split(self, plan: &ShardPlan) -> Vec<PushGossipShard> {
        let mut latest = self.latest;
        let mut online = self.online;
        let mut blocks = Vec::with_capacity(plan.shards());
        for s in (0..plan.shards()).rev() {
            let start = plan.range(s).start;
            blocks.push((latest.split_off(start), online.split_off(start)));
        }
        blocks.reverse();
        blocks
            .into_iter()
            .enumerate()
            .map(|(s, (latest, online))| {
                let online_sum = latest
                    .iter()
                    .zip(&online)
                    .filter(|(_, &up)| up)
                    .map(|(&id, _)| id)
                    .sum();
                let online_count = online.iter().filter(|&&up| up).count();
                PushGossipShard {
                    base: plan.range(s).start,
                    latest,
                    online,
                    online_sum,
                    online_count,
                    freshest: self.freshest,
                }
            })
            .collect()
    }

    fn merge(_plan: &ShardPlan, shards: Vec<PushGossipShard>) -> Self {
        debug_assert!(
            shards.windows(2).all(|w| w[0].freshest == w[1].freshest),
            "freshest replicas diverged across shards"
        );
        let freshest = shards[0].freshest;
        let mut latest = Vec::new();
        let mut online = Vec::new();
        let mut online_sum = 0u64;
        let mut online_count = 0usize;
        for sh in shards {
            latest.extend(sh.latest);
            online.extend(sh.online);
            online_sum += sh.online_sum;
            online_count += sh.online_count;
        }
        PushGossip {
            latest,
            online,
            online_sum,
            online_count,
            freshest,
        }
    }

    fn metric_sharded(shards: &[&PushGossipShard], _online_count: usize, _now: SimTime) -> f64 {
        // u64/usize partials folded in shard (= serial node) order: the
        // sums are exact integers, so the single division below is
        // bitwise the serial eq. 7 evaluation.
        let sum: u64 = shards.iter().map(|s| s.online_sum).sum();
        let count: usize = shards.iter().map(|s| s.online_count).sum();
        if count == 0 {
            return 0.0;
        }
        shards[0].freshest as f64 - sum as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> SimTime {
        SimTime::from_secs(100)
    }

    #[test]
    fn injections_advance_the_freshest_update() {
        let mut a = PushGossip::new(3, &[true; 3]);
        a.inject(NodeId::new(0), now());
        a.inject(NodeId::new(1), now());
        assert_eq!(a.freshest(), 2);
        assert_eq!(a.stored(NodeId::new(0)), 1);
        assert_eq!(a.stored(NodeId::new(1)), 2);
        assert_eq!(a.stored(NodeId::new(2)), 0);
    }

    #[test]
    fn fresher_update_is_useful_and_stored() {
        let mut a = PushGossip::new(2, &[true; 2]);
        let u = a.update_state(NodeId::new(0), NodeId::new(1), &UpdateMsg { id: 3 }, now());
        assert_eq!(u, Usefulness::Useful);
        assert_eq!(a.stored(NodeId::new(0)), 3);
    }

    #[test]
    fn stale_or_equal_update_is_useless() {
        let mut a = PushGossip::new(2, &[true; 2]);
        a.update_state(NodeId::new(0), NodeId::new(1), &UpdateMsg { id: 3 }, now());
        let u = a.update_state(NodeId::new(0), NodeId::new(1), &UpdateMsg { id: 3 }, now());
        assert_eq!(u, Usefulness::NotUseful);
        let u = a.update_state(NodeId::new(0), NodeId::new(1), &UpdateMsg { id: 2 }, now());
        assert_eq!(u, Usefulness::NotUseful);
        assert_eq!(a.stored(NodeId::new(0)), 3);
    }

    #[test]
    fn metric_is_the_average_lag() {
        let mut a = PushGossip::new(4, &[true; 4]);
        // Inject 10 updates, all landing at node 0.
        for _ in 0..10 {
            a.inject(NodeId::new(0), now());
        }
        // Nodes: 10, 0, 0, 0 ⇒ mean 2.5 ⇒ lag 7.5.
        assert!((a.metric(4, now()) - 7.5).abs() < 1e-9);
        // Spread the freshest to everyone: lag 0.
        for i in 1..4 {
            a.update_state(NodeId::new(i), NodeId::new(0), &UpdateMsg { id: 10 }, now());
        }
        assert!(a.metric(4, now()).abs() < 1e-9);
    }

    #[test]
    fn metric_ignores_offline_nodes() {
        let mut a = PushGossip::new(3, &[true, true, false]);
        for _ in 0..6 {
            a.inject(NodeId::new(0), now());
        }
        // Online: node0=6, node1=0 ⇒ lag = 6 − 3 = 3 (node 2 invisible).
        assert!((a.metric(2, now()) - 3.0).abs() < 1e-9);
        // Node 2 rejoins with nothing: lag = 6 − 2 = 4.
        a.on_node_up(NodeId::new(2), now());
        assert!((a.metric(3, now()) - 4.0).abs() < 1e-9);
        // Node 0 (the only holder of id 6) leaves: lag = 6 − 0 = 6.
        a.on_node_down(NodeId::new(0), now());
        assert!((a.metric(2, now()) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn create_message_copies_the_stored_update() {
        let mut a = PushGossip::new(2, &[true; 2]);
        a.inject(NodeId::new(1), now());
        assert_eq!(a.create_message(NodeId::new(1)), UpdateMsg { id: 1 });
        assert_eq!(a.create_message(NodeId::new(0)), UpdateMsg { id: 0 });
    }

    #[test]
    fn empty_online_population_has_zero_metric() {
        let a = PushGossip::new(2, &[false, false]);
        assert_eq!(a.metric(0, now()), 0.0);
    }

    #[test]
    fn split_merge_roundtrips_and_replicates_freshest() {
        let n = 11;
        let mut app = PushGossip::new(n, &[true; 11]);
        for i in 0..7 {
            app.inject(NodeId::from_index(i % n), now());
        }
        app.on_node_down(NodeId::from_index(2), now());
        let (before_latest, before_metric) = (app.latest.clone(), app.metric(10, now()));
        let plan = ShardPlan::new(n, 3);
        let mut shards = app.split(&plan);
        {
            let views: Vec<&PushGossipShard> = shards.iter().collect();
            let sharded_metric = PushGossip::metric_sharded(&views, 10, now());
            assert_eq!(sharded_metric.to_bits(), before_metric.to_bits());
        }
        // An injection at shard 1's node must keep every replica's
        // freshest in lockstep via on_remote_inject.
        let target = NodeId::from_index(plan.range(1).start);
        for (s, sh) in shards.iter_mut().enumerate() {
            if s == 1 {
                sh.inject(target, now());
            } else {
                sh.on_remote_inject(now());
            }
        }
        let merged = PushGossip::merge(&plan, shards);
        assert_eq!(merged.freshest(), 8);
        assert_eq!(merged.stored(target), 8);
        for (i, &before) in before_latest.iter().enumerate() {
            let node = NodeId::from_index(i);
            let expect = if node == target { 8 } else { before };
            assert_eq!(merged.stored(node), expect);
        }
    }

    #[test]
    fn injection_into_offline_target_keeps_sums_consistent() {
        // The engine only injects at online nodes, but the invariant must
        // hold even if an integration misuses the API.
        let mut a = PushGossip::new(2, &[true, false]);
        a.inject(NodeId::new(1), now());
        assert_eq!(a.online_sum, 0);
        a.on_node_up(NodeId::new(1), now());
        assert_eq!(a.online_sum, 1);
    }
}
