//! Push gossip broadcast (Section 2.3 / 4.1.2).
//!
//! A continuous stream of timestamped updates is injected into the network
//! (one every 17.28 s at a random online node); every node stores only the
//! freshest update it knows and pushes it onward. A received message is
//! useful iff it carries a fresher update than the locally stored one.
//!
//! **Metric** (eq. 7): the average *lag* over online nodes — the number of
//! injections between the globally freshest update and the one a node
//! stores. Multiplied by the injection period this is the average time lag
//! in seconds; the figure harness reports both.

use ta_sim::{NodeId, SimTime};
use token_account::Usefulness;

use crate::app::Application;

/// A push gossip message: the timestamp (injection index) of an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateMsg {
    /// Injection sequence number; larger is fresher.
    pub id: u64,
}

/// The push gossip application state.
#[derive(Debug, Clone)]
pub struct PushGossip {
    /// Freshest update id known per node; 0 = nothing yet (ids start at 1).
    latest: Vec<u64>,
    online: Vec<bool>,
    /// Σ latest over online nodes, maintained incrementally (O(1) metric).
    online_sum: u64,
    online_count: usize,
    /// Id of the last injected update (0 before the first injection).
    freshest: u64,
}

impl PushGossip {
    /// Creates the application for `n` nodes with the initial online set.
    ///
    /// # Panics
    ///
    /// Panics if `initial_online.len() != n`.
    pub fn new(n: usize, initial_online: &[bool]) -> Self {
        assert_eq!(initial_online.len(), n, "initial_online length mismatch");
        PushGossip {
            latest: vec![0; n],
            online: initial_online.to_vec(),
            online_sum: 0,
            online_count: initial_online.iter().filter(|&&b| b).count(),
            freshest: 0,
        }
    }

    /// The freshest update id anywhere in the network.
    pub fn freshest(&self) -> u64 {
        self.freshest
    }

    /// The update id stored at `node` (0 if none).
    pub fn stored(&self, node: NodeId) -> u64 {
        self.latest[node.index()]
    }

    fn store(&mut self, node: NodeId, id: u64) {
        let current = self.latest[node.index()];
        if id > current {
            self.latest[node.index()] = id;
            if self.online[node.index()] {
                self.online_sum += id - current;
            }
        }
    }
}

impl Application for PushGossip {
    type Msg = UpdateMsg;

    fn create_message(&mut self, node: NodeId) -> UpdateMsg {
        UpdateMsg {
            id: self.latest[node.index()],
        }
    }

    fn update_state(
        &mut self,
        node: NodeId,
        _from: NodeId,
        msg: &UpdateMsg,
        _now: SimTime,
    ) -> Usefulness {
        if msg.id > self.latest[node.index()] {
            self.store(node, msg.id);
            Usefulness::Useful
        } else {
            Usefulness::NotUseful
        }
    }

    fn metric(&self, _online_count: usize, _now: SimTime) -> f64 {
        if self.online_count == 0 {
            return 0.0;
        }
        // eq. 7: t − (1/N) Σ t_i over the online population.
        self.freshest as f64 - self.online_sum as f64 / self.online_count as f64
    }

    fn inject(&mut self, target: NodeId, _now: SimTime) {
        self.freshest += 1;
        let id = self.freshest;
        self.store(target, id);
    }

    fn on_node_up(&mut self, node: NodeId, _now: SimTime) {
        if !self.online[node.index()] {
            self.online[node.index()] = true;
            self.online_sum += self.latest[node.index()];
            self.online_count += 1;
        }
    }

    fn on_node_down(&mut self, node: NodeId, _now: SimTime) {
        if self.online[node.index()] {
            self.online[node.index()] = false;
            self.online_sum -= self.latest[node.index()];
            self.online_count -= 1;
        }
    }

    fn name(&self) -> &'static str {
        "push-gossip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn now() -> SimTime {
        SimTime::from_secs(100)
    }

    #[test]
    fn injections_advance_the_freshest_update() {
        let mut a = PushGossip::new(3, &[true; 3]);
        a.inject(NodeId::new(0), now());
        a.inject(NodeId::new(1), now());
        assert_eq!(a.freshest(), 2);
        assert_eq!(a.stored(NodeId::new(0)), 1);
        assert_eq!(a.stored(NodeId::new(1)), 2);
        assert_eq!(a.stored(NodeId::new(2)), 0);
    }

    #[test]
    fn fresher_update_is_useful_and_stored() {
        let mut a = PushGossip::new(2, &[true; 2]);
        let u = a.update_state(NodeId::new(0), NodeId::new(1), &UpdateMsg { id: 3 }, now());
        assert_eq!(u, Usefulness::Useful);
        assert_eq!(a.stored(NodeId::new(0)), 3);
    }

    #[test]
    fn stale_or_equal_update_is_useless() {
        let mut a = PushGossip::new(2, &[true; 2]);
        a.update_state(NodeId::new(0), NodeId::new(1), &UpdateMsg { id: 3 }, now());
        let u = a.update_state(NodeId::new(0), NodeId::new(1), &UpdateMsg { id: 3 }, now());
        assert_eq!(u, Usefulness::NotUseful);
        let u = a.update_state(NodeId::new(0), NodeId::new(1), &UpdateMsg { id: 2 }, now());
        assert_eq!(u, Usefulness::NotUseful);
        assert_eq!(a.stored(NodeId::new(0)), 3);
    }

    #[test]
    fn metric_is_the_average_lag() {
        let mut a = PushGossip::new(4, &[true; 4]);
        // Inject 10 updates, all landing at node 0.
        for _ in 0..10 {
            a.inject(NodeId::new(0), now());
        }
        // Nodes: 10, 0, 0, 0 ⇒ mean 2.5 ⇒ lag 7.5.
        assert!((a.metric(4, now()) - 7.5).abs() < 1e-9);
        // Spread the freshest to everyone: lag 0.
        for i in 1..4 {
            a.update_state(NodeId::new(i), NodeId::new(0), &UpdateMsg { id: 10 }, now());
        }
        assert!(a.metric(4, now()).abs() < 1e-9);
    }

    #[test]
    fn metric_ignores_offline_nodes() {
        let mut a = PushGossip::new(3, &[true, true, false]);
        for _ in 0..6 {
            a.inject(NodeId::new(0), now());
        }
        // Online: node0=6, node1=0 ⇒ lag = 6 − 3 = 3 (node 2 invisible).
        assert!((a.metric(2, now()) - 3.0).abs() < 1e-9);
        // Node 2 rejoins with nothing: lag = 6 − 2 = 4.
        a.on_node_up(NodeId::new(2), now());
        assert!((a.metric(3, now()) - 4.0).abs() < 1e-9);
        // Node 0 (the only holder of id 6) leaves: lag = 6 − 0 = 6.
        a.on_node_down(NodeId::new(0), now());
        assert!((a.metric(2, now()) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn create_message_copies_the_stored_update() {
        let mut a = PushGossip::new(2, &[true; 2]);
        a.inject(NodeId::new(1), now());
        assert_eq!(a.create_message(NodeId::new(1)), UpdateMsg { id: 1 });
        assert_eq!(a.create_message(NodeId::new(0)), UpdateMsg { id: 0 });
    }

    #[test]
    fn empty_online_population_has_zero_metric() {
        let a = PushGossip::new(2, &[false, false]);
        assert_eq!(a.metric(0, now()), 0.0);
    }

    #[test]
    fn injection_into_offline_target_keeps_sums_consistent() {
        // The engine only injects at online nodes, but the invariant must
        // hold even if an integration misuses the API.
        let mut a = PushGossip::new(2, &[true, false]);
        a.inject(NodeId::new(1), now());
        assert_eq!(a.online_sum, 0);
        a.on_node_up(NodeId::new(1), now());
        assert_eq!(a.online_sum, 1);
    }
}
