//! Real gossip learning: linear models trained by SGD on fully
//! distributed data.
//!
//! The paper's evaluation deliberately simulates only the *age* of the
//! walking models ("no actual machine learning task is necessary for this
//! metric"), because age determines learning speed. This module implements
//! the actual Algorithm 1 workload the paper describes — stochastic
//! gradient descent over a machine-learning database with **one training
//! example per node** [4, 5] — so the library is usable for real
//! decentralized learning and the age↔loss relationship is testable.
//!
//! The task is least-squares regression: example `(x_i, y_i)` with
//! `y_i = w*·x_i + noise`; a model walking the network applies one SGD
//! step per visit:
//!
//! ```text
//! w ← w − η (wᵀx_i − y_i) x_i
//! ```
//!
//! Usefulness mirrors the age rule of Section 3.2 (a model at least as
//! trained as the local one is adopted and trained). The metric is the
//! mean squared error of the *average* of the currently stored models over
//! the whole dataset — decentralized learning's standard progress measure.

use rand::Rng;
use ta_sim::rng::Xoshiro256pp;
use ta_sim::{NodeId, SimTime};
use token_account::Usefulness;

use crate::app::Application;

/// A walking linear model: weights plus its visit count (age).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Weight vector (including bias as the last component).
    pub weights: Vec<f64>,
    /// Number of SGD steps applied (the paper's age counter).
    pub age: u64,
}

impl LinearModel {
    /// A zero-initialized model of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        LinearModel {
            weights: vec![0.0; dim],
            age: 0,
        }
    }

    /// The prediction `wᵀx`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum()
    }

    /// One SGD step on `(x, y)` with learning rate `eta`.
    pub fn sgd_step(&mut self, x: &[f64], y: f64, eta: f64) {
        let err = self.predict(x) - y;
        for (w, v) in self.weights.iter_mut().zip(x) {
            *w -= eta * err * v;
        }
        self.age += 1;
    }
}

/// A synthetic fully distributed regression dataset: one example per node.
#[derive(Debug, Clone)]
pub struct RegressionData {
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    true_weights: Vec<f64>,
}

impl RegressionData {
    /// Generates `n` examples of dimension `dim` (plus bias) from a random
    /// ground-truth weight vector with additive noise of the given
    /// standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `dim == 0`.
    pub fn generate(n: usize, dim: usize, noise: f64, seed: u64) -> Self {
        assert!(n > 0 && dim > 0, "dataset needs positive n and dim");
        let mut rng = Xoshiro256pp::stream(seed, 0x5da);
        let d = dim + 1; // bias column
        let true_weights: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let mut x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            x.push(1.0); // bias
            let clean: f64 = true_weights.iter().zip(&x).map(|(w, v)| w * v).sum();
            // Box–Muller normal noise.
            let u1: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.next_f64();
            let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            ys.push(clean + noise * gauss);
            xs.push(x);
        }
        RegressionData {
            xs,
            ys,
            true_weights,
        }
    }

    /// Number of examples (= nodes).
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if the dataset is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature dimension including the bias column.
    pub fn dim(&self) -> usize {
        self.xs[0].len()
    }

    /// The example held by `node`.
    pub fn example(&self, node: NodeId) -> (&[f64], f64) {
        (&self.xs[node.index()], self.ys[node.index()])
    }

    /// The generating weights (for diagnostics).
    pub fn true_weights(&self) -> &[f64] {
        &self.true_weights
    }

    /// Mean squared error of `weights` over the whole dataset.
    pub fn mse(&self, weights: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (x, &y) in self.xs.iter().zip(&self.ys) {
            let pred: f64 = weights.iter().zip(x).map(|(w, v)| w * v).sum();
            acc += (pred - y) * (pred - y);
        }
        acc / self.len() as f64
    }
}

/// Gossip learning with real SGD models (Algorithm 1 with actual training).
#[derive(Debug, Clone)]
pub struct SgdGossipLearning {
    data: RegressionData,
    models: Vec<LinearModel>,
    eta: f64,
}

impl SgdGossipLearning {
    /// Creates the application: one zero model and one example per node.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn new(data: RegressionData, eta: f64) -> Self {
        assert!(
            eta.is_finite() && eta > 0.0,
            "learning rate must be positive"
        );
        let n = data.len();
        let dim = data.dim();
        SgdGossipLearning {
            data,
            models: (0..n).map(|_| LinearModel::zeros(dim)).collect(),
            eta,
        }
    }

    /// The model currently stored at `node`.
    pub fn model(&self, node: NodeId) -> &LinearModel {
        &self.models[node.index()]
    }

    /// Component-wise average of all stored models.
    pub fn average_model(&self) -> Vec<f64> {
        let dim = self.data.dim();
        let mut avg = vec![0.0; dim];
        for m in &self.models {
            for (a, w) in avg.iter_mut().zip(&m.weights) {
                *a += w;
            }
        }
        for a in avg.iter_mut() {
            *a /= self.models.len() as f64;
        }
        avg
    }

    /// MSE of the average model over the dataset (the reported metric).
    pub fn global_mse(&self) -> f64 {
        self.data.mse(&self.average_model())
    }

    /// Mean model age (comparable with the age-only simulation).
    pub fn mean_age(&self) -> f64 {
        self.models.iter().map(|m| m.age as f64).sum::<f64>() / self.models.len() as f64
    }
}

impl Application for SgdGossipLearning {
    type Msg = LinearModel;

    fn create_message(&mut self, node: NodeId) -> LinearModel {
        self.models[node.index()].clone()
    }

    fn update_state(
        &mut self,
        node: NodeId,
        _from: NodeId,
        msg: &LinearModel,
        _now: SimTime,
    ) -> Usefulness {
        let current = &self.models[node.index()];
        if msg.age >= current.age {
            // Adopt, then train on the local example (Algorithm 1's
            // updateModel).
            let mut adopted = msg.clone();
            let (x, y) = self.data.example(node);
            adopted.sgd_step(x, y, self.eta);
            self.models[node.index()] = adopted;
            Usefulness::Useful
        } else {
            Usefulness::NotUseful
        }
    }

    fn metric(&self, _online_count: usize, _now: SimTime) -> f64 {
        self.global_mse()
    }

    fn name(&self) -> &'static str {
        "sgd-gossip-learning"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> RegressionData {
        RegressionData::generate(n, 4, 0.01, 7)
    }

    #[test]
    fn dataset_is_deterministic_and_learnable() {
        let a = data(50);
        let b = data(50);
        assert_eq!(a.xs, b.xs);
        assert_eq!(a.ys, b.ys);
        // The true weights achieve near-noise-level MSE.
        assert!(a.mse(a.true_weights()) < 0.01);
        // The zero model does not.
        assert!(a.mse(&vec![0.0; a.dim()]) > 0.05);
    }

    #[test]
    fn sgd_step_reduces_pointwise_error() {
        let d = data(10);
        let mut m = LinearModel::zeros(d.dim());
        let (x, y) = d.example(NodeId::new(0));
        let before = (m.predict(x) - y).abs();
        m.sgd_step(x, y, 0.1);
        let after = (m.predict(x) - y).abs();
        assert!(after < before);
        assert_eq!(m.age, 1);
    }

    #[test]
    fn centralized_walk_converges() {
        // A single model visiting every node repeatedly (the reactive
        // ideal) must drive the global MSE near the noise floor.
        let d = data(60);
        let mut app = SgdGossipLearning::new(d, 0.2);
        let mut model = LinearModel::zeros(app.data.dim());
        for sweep in 0..60 {
            for i in 0..60 {
                let (x, y) = app.data.example(NodeId::new(i as u32));
                model.sgd_step(x, y, 0.2);
            }
            let _ = sweep;
        }
        assert!(app.data.mse(&model.weights) < 0.02);
        // Store it everywhere: global MSE reflects it.
        for m in app.models.iter_mut() {
            *m = model.clone();
        }
        assert!(app.global_mse() < 0.02);
    }

    #[test]
    fn update_state_follows_the_age_rule() {
        let d = data(10);
        let mut app = SgdGossipLearning::new(d, 0.1);
        let now = SimTime::from_secs(1);
        let mut walker = LinearModel::zeros(app.data.dim());
        walker.age = 3;
        let u = app.update_state(NodeId::new(0), NodeId::new(1), &walker, now);
        assert_eq!(u, Usefulness::Useful);
        assert_eq!(app.model(NodeId::new(0)).age, 4);
        // An older (less trained) model is rejected.
        let stale = LinearModel::zeros(app.data.dim());
        let u = app.update_state(NodeId::new(0), NodeId::new(1), &stale, now);
        assert_eq!(u, Usefulness::NotUseful);
        assert_eq!(app.model(NodeId::new(0)).age, 4);
    }

    #[test]
    fn average_model_is_componentwise_mean() {
        let d = data(2);
        let dim = d.dim();
        let mut app = SgdGossipLearning::new(d, 0.1);
        app.models[0].weights = vec![1.0; dim];
        app.models[1].weights = vec![3.0; dim];
        assert_eq!(app.average_model(), vec![2.0; dim]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_learning_rate() {
        let _ = SgdGossipLearning::new(data(5), 0.0);
    }
}
