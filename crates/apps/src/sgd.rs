//! Real gossip learning: linear models trained by SGD on fully
//! distributed data.
//!
//! The paper's evaluation deliberately simulates only the *age* of the
//! walking models ("no actual machine learning task is necessary for this
//! metric"), because age determines learning speed. This module implements
//! the actual Algorithm 1 workload the paper describes — stochastic
//! gradient descent over a machine-learning database with **one training
//! example per node** [4, 5] — so the library is usable for real
//! decentralized learning and the age↔loss relationship is testable.
//!
//! The task is least-squares regression: example `(x_i, y_i)` with
//! `y_i = w*·x_i + noise`; a model walking the network applies one SGD
//! step per visit:
//!
//! ```text
//! w ← w − η (wᵀx_i − y_i) x_i
//! ```
//!
//! Usefulness mirrors the age rule of Section 3.2 (a model at least as
//! trained as the local one is adopted and trained). The metric is the
//! mean squared error of the *average* of the currently stored models over
//! the whole dataset — decentralized learning's standard progress measure.

use std::sync::Arc;

use rand::Rng;
use ta_sim::rng::Xoshiro256pp;
use ta_sim::{NodeId, SimTime};
use token_account::Usefulness;

use ta_sim::shard::ShardPlan;

use crate::app::Application;
use crate::protocol::sharded::{ApplicationShard, ShardableApplication};

/// A walking linear model: weights plus its visit count (age).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Weight vector (including bias as the last component).
    pub weights: Vec<f64>,
    /// Number of SGD steps applied (the paper's age counter).
    pub age: u64,
}

impl LinearModel {
    /// A zero-initialized model of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        LinearModel {
            weights: vec![0.0; dim],
            age: 0,
        }
    }

    /// The prediction `wᵀx`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum()
    }

    /// One SGD step on `(x, y)` with learning rate `eta`.
    pub fn sgd_step(&mut self, x: &[f64], y: f64, eta: f64) {
        let err = self.predict(x) - y;
        for (w, v) in self.weights.iter_mut().zip(x) {
            *w -= eta * err * v;
        }
        self.age += 1;
    }
}

/// A synthetic fully distributed regression dataset: one example per node.
#[derive(Debug, Clone)]
pub struct RegressionData {
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    true_weights: Vec<f64>,
}

impl RegressionData {
    /// Generates `n` examples of dimension `dim` (plus bias) from a random
    /// ground-truth weight vector with additive noise of the given
    /// standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `dim == 0`.
    pub fn generate(n: usize, dim: usize, noise: f64, seed: u64) -> Self {
        assert!(n > 0 && dim > 0, "dataset needs positive n and dim");
        let mut rng = Xoshiro256pp::stream(seed, 0x5da);
        let d = dim + 1; // bias column
        let true_weights: Vec<f64> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let mut x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            x.push(1.0); // bias
            let clean: f64 = true_weights.iter().zip(&x).map(|(w, v)| w * v).sum();
            // Box–Muller normal noise.
            let u1: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.next_f64();
            let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            ys.push(clean + noise * gauss);
            xs.push(x);
        }
        RegressionData {
            xs,
            ys,
            true_weights,
        }
    }

    /// Number of examples (= nodes).
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True if the dataset is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature dimension including the bias column.
    pub fn dim(&self) -> usize {
        self.xs[0].len()
    }

    /// The example held by `node`.
    pub fn example(&self, node: NodeId) -> (&[f64], f64) {
        (&self.xs[node.index()], self.ys[node.index()])
    }

    /// The generating weights (for diagnostics).
    pub fn true_weights(&self) -> &[f64] {
        &self.true_weights
    }

    /// Mean squared error of `weights` over the whole dataset.
    pub fn mse(&self, weights: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (x, &y) in self.xs.iter().zip(&self.ys) {
            let pred: f64 = weights.iter().zip(x).map(|(w, v)| w * v).sum();
            acc += (pred - y) * (pred - y);
        }
        acc / self.len() as f64
    }
}

/// A walking model message: a shared, immutable weight snapshot plus the
/// age counter.
///
/// The weights sit behind an [`Arc`] shared with the sending node's own
/// model buffer, so creating and cloning messages — once per send in the
/// protocol layer, plus the clone the engine's event queue owns per
/// in-flight delivery — costs a reference-count bump instead of a fresh
/// `Vec<f64>`. A reactive burst of `k` sends is `k` refcount bumps and
/// **zero** allocations; copy-on-write at the receiver keeps value
/// semantics exact.
#[derive(Debug, Clone, PartialEq)]
pub struct SgdMsg {
    weights: Arc<Vec<f64>>,
    age: u64,
}

impl SgdMsg {
    /// Builds a message from raw weights (tests and external tooling; the
    /// application itself shares its model buffers without this path).
    pub fn new(weights: Vec<f64>, age: u64) -> Self {
        SgdMsg {
            weights: Arc::new(weights),
            age,
        }
    }

    /// The snapshotted weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The model age at snapshot time.
    pub fn age(&self) -> u64 {
        self.age
    }

    /// Whether two messages share one physical weight buffer (allocation
    /// accounting in tests).
    pub fn shares_buffer(&self, other: &SgdMsg) -> bool {
        Arc::ptr_eq(&self.weights, &other.weights)
    }
}

/// Gossip learning with real SGD models (Algorithm 1 with actual training).
///
/// The per-node weight vectors live behind [`Arc`]s shared with outgoing
/// messages: `CREATEMESSAGE` is a refcount bump (zero copies, zero
/// allocations), and `UPDATESTATE` adoption is copy-on-write — when no
/// in-flight message still references the node's buffer, the adopted model
/// and its SGD step are written in a single fused pass over the existing
/// allocation; otherwise one fresh buffer is built in the same fused pass.
/// Either way a useful message costs one vector *write*, where the cloning
/// design paid two allocations plus two full copies per message.
#[derive(Debug, Clone)]
pub struct SgdGossipLearning {
    /// The dataset, behind an [`Arc`] so shards of a partitioned run can
    /// share one copy (every node's example is needed for the global MSE).
    data: Arc<RegressionData>,
    /// Current weight vector per node, shared with in-flight messages.
    weights: Vec<Arc<Vec<f64>>>,
    /// Current model age per node.
    ages: Vec<u64>,
    eta: f64,
}

impl SgdGossipLearning {
    /// Creates the application: one zero model and one example per node.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is not positive and finite.
    pub fn new(data: RegressionData, eta: f64) -> Self {
        assert!(
            eta.is_finite() && eta > 0.0,
            "learning rate must be positive"
        );
        let n = data.len();
        let dim = data.dim();
        SgdGossipLearning {
            data: Arc::new(data),
            weights: (0..n).map(|_| Arc::new(vec![0.0; dim])).collect(),
            ages: vec![0; n],
            eta,
        }
    }

    /// The weight vector currently stored at `node`.
    pub fn weights(&self, node: NodeId) -> &[f64] {
        &self.weights[node.index()]
    }

    /// The age of the model currently stored at `node`.
    pub fn age(&self, node: NodeId) -> u64 {
        self.ages[node.index()]
    }

    /// The model currently stored at `node`, as an owned [`LinearModel`]
    /// (convenience for diagnostics; copies the weights).
    pub fn model(&self, node: NodeId) -> LinearModel {
        LinearModel {
            weights: self.weights[node.index()].as_ref().clone(),
            age: self.ages[node.index()],
        }
    }

    /// Component-wise average of all stored models.
    pub fn average_model(&self) -> Vec<f64> {
        average_model_of(self.data.dim(), self.weights.len(), self.weights.iter())
    }

    /// MSE of the average model over the dataset (the reported metric).
    pub fn global_mse(&self) -> f64 {
        self.data.mse(&self.average_model())
    }

    /// Mean model age (comparable with the age-only simulation).
    pub fn mean_age(&self) -> f64 {
        self.ages.iter().map(|&a| a as f64).sum::<f64>() / self.ages.len() as f64
    }
}

impl Application for SgdGossipLearning {
    type Msg = SgdMsg;

    fn create_message(&mut self, node: NodeId) -> SgdMsg {
        // Zero-copy: the message shares the node's current buffer. The
        // buffer is immutable while shared (adoption below goes
        // copy-on-write), so in-flight messages keep value semantics.
        let i = node.index();
        SgdMsg {
            weights: Arc::clone(&self.weights[i]),
            age: self.ages[i],
        }
    }

    fn update_state(
        &mut self,
        node: NodeId,
        _from: NodeId,
        msg: &SgdMsg,
        _now: SimTime,
    ) -> Usefulness {
        let i = node.index();
        let (x, y) = self.data.example(node);
        fused_adopt(&mut self.weights[i], &mut self.ages[i], x, y, self.eta, msg)
    }

    fn metric(&self, _online_count: usize, _now: SimTime) -> f64 {
        self.global_mse()
    }

    fn name(&self) -> &'static str {
        "sgd-gossip-learning"
    }
}

/// The fused adopt-and-train pass (Algorithm 1's `updateModel`), shared by
/// the serial application and its shard so the arithmetic cannot drift:
/// `out = msg − η·err·x` with the gradient evaluated on the incoming model
/// — exactly clone-then-step without the intermediate copy. In-place when
/// the node's buffer is unshared, copy-on-write otherwise (in-flight
/// messages keep their snapshot).
fn fused_adopt(
    slot: &mut Arc<Vec<f64>>,
    age: &mut u64,
    x: &[f64],
    y: f64,
    eta: f64,
    msg: &SgdMsg,
) -> Usefulness {
    if msg.age >= *age {
        let err: f64 = msg.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() - y;
        match Arc::get_mut(slot) {
            // Unique buffer: rewrite it in place, no allocation. The
            // incoming message cannot alias it (aliasing implies a second
            // reference, and `get_mut` would have refused).
            Some(buf) => {
                for ((b, &m), &v) in buf.iter_mut().zip(msg.weights.iter()).zip(x) {
                    *b = m - eta * err * v;
                }
            }
            // Shared with in-flight messages: leave their snapshot
            // untouched and build the successor buffer directly.
            None => {
                *slot = Arc::new(
                    msg.weights
                        .iter()
                        .zip(x)
                        .map(|(&m, &v)| m - eta * err * v)
                        .collect(),
                );
            }
        }
        *age = msg.age + 1;
        Usefulness::Useful
    } else {
        Usefulness::NotUseful
    }
}

/// Component-wise mean of `n` models visited in iteration order; one
/// implementation for the serial metric and the sharded fold so the f64
/// addition sequence is identical (the sharded caller chains the shard
/// blocks in shard order, which *is* node order for contiguous blocks).
fn average_model_of<'a, I: Iterator<Item = &'a Arc<Vec<f64>>>>(
    dim: usize,
    n: usize,
    models: I,
) -> Vec<f64> {
    let mut avg = vec![0.0; dim];
    for m in models {
        for (a, w) in avg.iter_mut().zip(m.iter()) {
            *a += w;
        }
    }
    for a in avg.iter_mut() {
        *a /= n as f64;
    }
    avg
}

/// One shard's block of [`SgdGossipLearning`]: the owned models plus a
/// shared handle to the full dataset.
#[derive(Debug, Clone)]
pub struct SgdGossipLearningShard {
    base: usize,
    data: Arc<RegressionData>,
    weights: Vec<Arc<Vec<f64>>>,
    ages: Vec<u64>,
    eta: f64,
}

impl ApplicationShard for SgdGossipLearningShard {
    type Msg = SgdMsg;

    fn create_message(&mut self, node: NodeId) -> SgdMsg {
        let i = node.index() - self.base;
        SgdMsg {
            weights: Arc::clone(&self.weights[i]),
            age: self.ages[i],
        }
    }

    fn update_state(
        &mut self,
        node: NodeId,
        _from: NodeId,
        msg: &SgdMsg,
        _now: SimTime,
    ) -> Usefulness {
        let i = node.index() - self.base;
        let (x, y) = self.data.example(node);
        fused_adopt(&mut self.weights[i], &mut self.ages[i], x, y, self.eta, msg)
    }
}

impl ShardableApplication for SgdGossipLearning {
    type Shard = SgdGossipLearningShard;

    fn split(self, plan: &ShardPlan) -> Vec<SgdGossipLearningShard> {
        let mut weights = self.weights;
        let mut ages = self.ages;
        let mut blocks = Vec::with_capacity(plan.shards());
        for s in (0..plan.shards()).rev() {
            let start = plan.range(s).start;
            blocks.push((weights.split_off(start), ages.split_off(start)));
        }
        blocks.reverse();
        blocks
            .into_iter()
            .enumerate()
            .map(|(s, (weights, ages))| SgdGossipLearningShard {
                base: plan.range(s).start,
                data: Arc::clone(&self.data),
                weights,
                ages,
                eta: self.eta,
            })
            .collect()
    }

    fn merge(_plan: &ShardPlan, shards: Vec<SgdGossipLearningShard>) -> Self {
        let data = Arc::clone(&shards[0].data);
        let eta = shards[0].eta;
        let mut weights = Vec::new();
        let mut ages = Vec::new();
        for sh in shards {
            weights.extend(sh.weights);
            ages.extend(sh.ages);
        }
        SgdGossipLearning {
            data,
            weights,
            ages,
            eta,
        }
    }

    fn metric_sharded(
        shards: &[&SgdGossipLearningShard],
        _online_count: usize,
        _now: SimTime,
    ) -> f64 {
        let data = &shards[0].data;
        let n: usize = shards.iter().map(|s| s.weights.len()).sum();
        let avg = average_model_of(data.dim(), n, shards.iter().flat_map(|s| s.weights.iter()));
        data.mse(&avg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> RegressionData {
        RegressionData::generate(n, 4, 0.01, 7)
    }

    #[test]
    fn dataset_is_deterministic_and_learnable() {
        let a = data(50);
        let b = data(50);
        assert_eq!(a.xs, b.xs);
        assert_eq!(a.ys, b.ys);
        // The true weights achieve near-noise-level MSE.
        assert!(a.mse(a.true_weights()) < 0.01);
        // The zero model does not.
        assert!(a.mse(&vec![0.0; a.dim()]) > 0.05);
    }

    #[test]
    fn sgd_step_reduces_pointwise_error() {
        let d = data(10);
        let mut m = LinearModel::zeros(d.dim());
        let (x, y) = d.example(NodeId::new(0));
        let before = (m.predict(x) - y).abs();
        m.sgd_step(x, y, 0.1);
        let after = (m.predict(x) - y).abs();
        assert!(after < before);
        assert_eq!(m.age, 1);
    }

    #[test]
    fn centralized_walk_converges() {
        // A single model visiting every node repeatedly (the reactive
        // ideal) must drive the global MSE near the noise floor.
        let d = data(60);
        let mut app = SgdGossipLearning::new(d, 0.2);
        let mut model = LinearModel::zeros(app.data.dim());
        for sweep in 0..60 {
            for i in 0..60 {
                let (x, y) = app.data.example(NodeId::new(i as u32));
                model.sgd_step(x, y, 0.2);
            }
            let _ = sweep;
        }
        assert!(app.data.mse(&model.weights) < 0.02);
        // Store it everywhere: global MSE reflects it.
        for w in app.weights.iter_mut() {
            *w = Arc::new(model.weights.clone());
        }
        assert!(app.global_mse() < 0.02);
    }

    #[test]
    fn fused_adoption_matches_clone_then_step() {
        // The single-pass adopt+train must equal the reference two-step
        // (clone, then sgd_step) bit for bit.
        let d = data(6);
        let mut app = SgdGossipLearning::new(d.clone(), 0.17);
        let incoming: Vec<f64> = (0..d.dim()).map(|j| 0.3 * j as f64 - 0.4).collect();
        let msg = SgdMsg::new(incoming.clone(), 5);
        app.update_state(NodeId::new(2), NodeId::new(0), &msg, SimTime::from_secs(1));
        let mut reference = LinearModel {
            weights: incoming,
            age: 5,
        };
        let (x, y) = d.example(NodeId::new(2));
        reference.sgd_step(x, y, 0.17);
        assert_eq!(app.weights(NodeId::new(2)), reference.weights.as_slice());
        assert_eq!(app.age(NodeId::new(2)), reference.age);
    }

    #[test]
    fn update_state_follows_the_age_rule() {
        let d = data(10);
        let mut app = SgdGossipLearning::new(d, 0.1);
        let now = SimTime::from_secs(1);
        let dim = app.data.dim();
        let walker = SgdMsg::new(vec![0.0; dim], 3);
        let u = app.update_state(NodeId::new(0), NodeId::new(1), &walker, now);
        assert_eq!(u, Usefulness::Useful);
        assert_eq!(app.age(NodeId::new(0)), 4);
        // An older (less trained) model is rejected.
        let stale = SgdMsg::new(vec![0.0; dim], 0);
        let u = app.update_state(NodeId::new(0), NodeId::new(1), &stale, now);
        assert_eq!(u, Usefulness::NotUseful);
        assert_eq!(app.age(NodeId::new(0)), 4);
    }

    #[test]
    fn burst_sends_share_one_buffer_with_zero_copies() {
        // k messages from an unchanged model are k Arc clones of the
        // node's own buffer: a reactive burst costs zero allocations.
        let mut app = SgdGossipLearning::new(data(5), 0.1);
        let a = app.create_message(NodeId::new(2));
        let b = app.create_message(NodeId::new(2));
        let c = app.create_message(NodeId::new(2));
        assert!(a.shares_buffer(&b) && b.shares_buffer(&c));
        assert_eq!(a.weights(), app.weights(NodeId::new(2)));
        assert_eq!(Arc::as_ptr(&a.weights), Arc::as_ptr(&app.weights[2]));
    }

    #[test]
    fn in_flight_messages_keep_value_semantics_across_adoption() {
        let mut app = SgdGossipLearning::new(data(5), 0.1);
        let before = app.create_message(NodeId::new(0));
        let incoming = SgdMsg::new(vec![0.5; app.data.dim()], 7);
        let u = app.update_state(
            NodeId::new(0),
            NodeId::new(1),
            &incoming,
            SimTime::from_secs(1),
        );
        assert_eq!(u, Usefulness::Useful);
        let after = app.create_message(NodeId::new(0));
        // Copy-on-write: the node moved to a fresh buffer because `before`
        // still holds the old one, whose contents must be unchanged.
        assert!(!after.shares_buffer(&before));
        assert_eq!(after.age(), 8);
        assert_eq!(before.age(), 0);
        assert_eq!(before.weights(), vec![0.0; app.data.dim()].as_slice());
        assert_eq!(after.weights(), app.weights(NodeId::new(0)));
        assert_ne!(after.weights(), before.weights());
    }

    #[test]
    fn adoption_reuses_the_node_weight_buffer_when_unshared() {
        // With no outstanding messages, copy-on-write degenerates to an
        // in-place rewrite: the node's buffer is never reallocated.
        let mut app = SgdGossipLearning::new(data(5), 0.1);
        let ptr_before = Arc::as_ptr(&app.weights[0]);
        for age in 1..20 {
            let msg = SgdMsg::new(vec![0.1 * age as f64; app.data.dim()], age);
            app.update_state(NodeId::new(0), NodeId::new(1), &msg, SimTime::from_secs(1));
        }
        assert_eq!(ptr_before, Arc::as_ptr(&app.weights[0]));
        assert_eq!(app.age(NodeId::new(0)), 20);
    }

    #[test]
    fn average_model_is_componentwise_mean() {
        let d = data(2);
        let dim = d.dim();
        let mut app = SgdGossipLearning::new(d, 0.1);
        app.weights[0] = Arc::new(vec![1.0; dim]);
        app.weights[1] = Arc::new(vec![3.0; dim]);
        assert_eq!(app.average_model(), vec![2.0; dim]);
        // The owned-model accessor mirrors the shared state.
        assert_eq!(app.model(NodeId::new(0)).weights, vec![1.0; dim]);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_bad_learning_rate() {
        let _ = SgdGossipLearning::new(data(5), 0.0);
    }
}
