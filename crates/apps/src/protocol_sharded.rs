//! Sharding the Algorithm-4 driver: [`TokenProtocol`] as a
//! [`ShardableDriver`].
//!
//! A [`TokenProtocolShard`] owns a contiguous block of nodes — their
//! [`TokenNode`] accounts, their slice of the application state
//! ([`ApplicationShard`]) — plus a full copy-on-churn replica of the
//! online-neighbour mirror, kept exact by the engine's replayed churn.
//! The per-event bodies mirror the serial [`Driver`] implementation
//! line for line (same strategy evaluations, same RNG draw order, same
//! counter updates), which the digest-equality tests pin down; any drift
//! between the two is a bug.
//!
//! Metric samples run at window barriers through
//! [`ShardableApplication::metric_sharded`], which must reproduce
//! [`Application::metric`] *bitwise*. The two supplied applications show
//! the two ways to do that: `GossipLearning` folds integer partials
//! (order-free), `SgdGossipLearning` walks the shards in order so its
//! f64 accumulation visits nodes in exactly the serial node-id order
//! (shards are contiguous blocks precisely to allow this).
//!
//! [`Driver`]: ta_sim::engine::Driver

use std::sync::Arc;

use ta_metrics::TimeSeries;
use ta_overlay::sampling::OnlineNeighbors;
use ta_sim::engine::MsgBatch;
use ta_sim::shard::{BarrierApi, ShardApi, ShardDriver, ShardPlan, ShardableDriver};
use ta_sim::{NodeId, SimConfig, SimTime};
use token_account::node::{RoundAction, TokenNode};
use token_account::{Strategy, Usefulness};

use super::{ProtocolMsg, ProtocolStats, ReplyPolicy, TokenProtocol};
use crate::app::Application;

/// One shard's slice of an application: the node-scoped half of
/// [`Application`], operating only on owned nodes.
pub trait ApplicationShard: Send {
    /// The message payload (must match the parent application's).
    type Msg: Clone + Send;

    /// `CREATEMESSAGE()` for an owned node.
    fn create_message(&mut self, node: NodeId) -> Self::Msg;

    /// `UPDATESTATE(m)` at an owned node.
    fn update_state(
        &mut self,
        node: NodeId,
        from: NodeId,
        msg: &Self::Msg,
        now: SimTime,
    ) -> Usefulness;

    /// Fresh external data arrives at owned node `target`.
    fn inject(&mut self, target: NodeId, now: SimTime) {
        let _ = (target, now);
    }

    /// An injection happened at a node *another* shard owns.
    ///
    /// Injections fire at window barriers, where the coordinator owns
    /// every shard, so this broadcast is race-free. Applications whose
    /// injection updates *global* state (push gossip's injection counter,
    /// which numbers every update network-wide) advance their replica of
    /// that state here so all shards agree at the next barrier; the
    /// node-local half of the injection stays with the owner's
    /// [`inject`](Self::inject). Purely node-local applications ignore
    /// it.
    fn on_remote_inject(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Owned `node` came online.
    fn on_node_up(&mut self, node: NodeId, now: SimTime) {
        let _ = (node, now);
    }

    /// Owned `node` went offline.
    fn on_node_down(&mut self, node: NodeId, now: SimTime) {
        let _ = (node, now);
    }
}

/// An application that can be partitioned across shards.
pub trait ShardableApplication: Application + Sized {
    /// One shard's slice of the application state.
    type Shard: ApplicationShard<Msg = Self::Msg>;

    /// Partitions the state into `plan.shards()` contiguous blocks.
    fn split(self, plan: &ShardPlan) -> Vec<Self::Shard>;

    /// Reassembles the application (inverse of [`split`](Self::split)).
    fn merge(plan: &ShardPlan, shards: Vec<Self::Shard>) -> Self;

    /// The performance metric over the partitioned state. **Must equal
    /// [`Application::metric`] of the assembled state bitwise**: fold
    /// integer partials, or accumulate f64 by walking `shards` in order
    /// (contiguous blocks make that the serial node order).
    fn metric_sharded(shards: &[&Self::Shard], online_count: usize, now: SimTime) -> f64;
}

/// One shard of the Algorithm-4 driver (see the [module docs](self)).
pub struct TokenProtocolShard<P: ApplicationShard, S: Strategy> {
    strategy: S,
    app: P,
    /// First owned node index.
    base: usize,
    /// Token accounts of the owned block.
    nodes: Vec<TokenNode>,
    /// Full online-neighbour replica (copy-on-churn; identical to the
    /// serial driver's mirror at every instant).
    peers: Arc<OnlineNeighbors>,
    pull_on_rejoin: bool,
    reply_policy: ReplyPolicy,
    stats: ProtocolStats,
    sends_per_slot: Vec<u64>,
    slot_len_us: u64,
}

impl<P: ApplicationShard, S: Strategy> TokenProtocolShard<P, S> {
    #[inline]
    fn local(&self, node: NodeId) -> usize {
        node.index() - self.base
    }

    /// Accounts one send in the traffic histogram (transfer-time slots);
    /// the shard histograms sum elementwise to the serial one.
    fn record_send_at(&mut self, now: SimTime, cfg: &SimConfig) {
        if self.slot_len_us == 0 {
            self.slot_len_us = cfg.transfer_time().as_micros().max(1);
        }
        self.record_sends_at(now, 1);
    }

    /// Accounts `count` sends at one instant (the batch path — mirrors
    /// `TokenProtocol::record_sends_at` so the bucketing cannot drift
    /// between the serial and sharded drivers).
    fn record_sends_at(&mut self, now: SimTime, count: u64) {
        debug_assert!(self.slot_len_us != 0, "slot length must be cached first");
        let bucket = (now.as_micros() / self.slot_len_us) as usize;
        if bucket >= self.sends_per_slot.len() {
            self.sends_per_slot.resize(bucket + 1, 0);
        }
        self.sends_per_slot[bucket] += count;
    }

    /// Sends one state copy from owned `node` to a random online
    /// neighbour. Returns whether a peer was available.
    fn send_state(&mut self, api: &mut ShardApi<'_, ProtocolMsg<P::Msg>>, node: NodeId) -> bool {
        match self.peers.select(node, api.rng()) {
            Some(peer) => {
                let msg = self.app.create_message(node);
                api.send(node, peer, ProtocolMsg::App(msg));
                self.record_send_at(api.now(), api.config());
                true
            }
            None => false,
        }
    }

    /// Caches the transfer-slot length on first use (mirrors
    /// `TokenProtocol::ensure_slot_len`).
    #[inline]
    fn ensure_slot_len(&mut self, cfg: &SimConfig) {
        if self.slot_len_us == 0 {
            self.slot_len_us = cfg.transfer_time().as_micros().max(1);
        }
    }

    /// Handles one delivered protocol message at owned online node `to` —
    /// the single body behind the per-event and batched hooks, mirroring
    /// `TokenProtocol::handle_message` so the serial and sharded drivers
    /// cannot drift. Returns the number of sends performed (accounted by
    /// the caller, all at `now`).
    fn handle_message(
        &mut self,
        api: &mut ShardApi<'_, ProtocolMsg<P::Msg>>,
        from: NodeId,
        to: NodeId,
        local: usize,
        now: SimTime,
        msg: ProtocolMsg<P::Msg>,
    ) -> u64 {
        let mut sent = 0u64;
        match msg {
            ProtocolMsg::PullRequest => {
                if self.nodes[local].try_spend_one() {
                    let reply = self.app.create_message(to);
                    api.send(to, from, ProtocolMsg::App(reply));
                    sent += 1;
                    self.stats.pull_replies += 1;
                } else {
                    self.stats.pull_ignored += 1;
                }
            }
            ProtocolMsg::App(payload) => {
                let usefulness = self.app.update_state(to, from, &payload, now);
                let burst = self.nodes[local].on_message(&self.strategy, usefulness, api.rng());
                for i in 0..burst {
                    let answered_sender = i == 0
                        && self.reply_policy == ReplyPolicy::SenderFirst
                        && self.peers.is_online(from);
                    let peer = if answered_sender {
                        Some(from)
                    } else {
                        self.peers.select(to, api.rng())
                    };
                    match peer {
                        Some(peer) => {
                            let m = self.app.create_message(to);
                            api.send(to, peer, ProtocolMsg::App(m));
                            sent += 1;
                            self.stats.reactive_sent += 1;
                        }
                        None => {
                            self.nodes[local].bank_token();
                            self.stats.reactive_refunded += 1;
                        }
                    }
                }
            }
        }
        sent
    }
}

impl<P: ApplicationShard, S: Strategy> ShardDriver for TokenProtocolShard<P, S> {
    type Msg = ProtocolMsg<P::Msg>;

    fn on_round_tick(&mut self, api: &mut ShardApi<'_, Self::Msg>, node: NodeId) {
        let local = self.local(node);
        let action = self.nodes[local].on_round(&self.strategy, api.rng());
        match action {
            RoundAction::SendProactive => {
                if self.send_state(api, node) {
                    self.stats.proactive_sent += 1;
                } else {
                    self.nodes[local].bank_token();
                    self.stats.proactive_skipped += 1;
                }
            }
            RoundAction::SaveToken => {
                self.stats.tokens_banked += 1;
            }
        }
    }

    fn on_message(
        &mut self,
        api: &mut ShardApi<'_, Self::Msg>,
        from: NodeId,
        to: NodeId,
        msg: Self::Msg,
    ) {
        self.ensure_slot_len(api.config());
        let now = api.now();
        let local = self.local(to);
        let sent = self.handle_message(api, from, to, local, now, msg);
        if sent > 0 {
            self.record_sends_at(now, sent);
        }
    }

    /// The batched delivery hot path — the shard mirror of
    /// `TokenProtocol::on_message_batch`, with the same hoisted lookups
    /// and the shared per-message body (`handle_message`), so the
    /// per-event and batched hooks cannot drift.
    fn on_message_batch(
        &mut self,
        api: &mut ShardApi<'_, Self::Msg>,
        to: NodeId,
        msgs: &mut MsgBatch<'_, Self::Msg>,
    ) {
        let local = self.local(to);
        let now = api.now();
        self.ensure_slot_len(api.config());
        let mut sent_in_slot = 0u64;
        for (from, msg) in msgs.by_ref() {
            sent_in_slot += self.handle_message(api, from, to, local, now, msg);
        }
        if sent_in_slot > 0 {
            self.record_sends_at(now, sent_in_slot);
        }
    }

    fn on_node_up(&mut self, api: &mut ShardApi<'_, Self::Msg>, node: NodeId, owned: bool) {
        Arc::make_mut(&mut self.peers).set_online(node, true);
        if owned {
            self.app.on_node_up(node, api.now());
            if self.pull_on_rejoin {
                if let Some(peer) = self.peers.select(node, api.rng()) {
                    api.send(node, peer, ProtocolMsg::PullRequest);
                    self.stats.pull_requests += 1;
                }
            }
        }
    }

    fn on_node_down(&mut self, api: &mut ShardApi<'_, Self::Msg>, node: NodeId, owned: bool) {
        Arc::make_mut(&mut self.peers).set_online(node, false);
        if owned {
            self.app.on_node_down(node, api.now());
        }
    }
}

/// Coordinator-side state of a sharded [`TokenProtocol`] run: the metric
/// series the barrier-time sample callback accumulates, plus what merge
/// needs to reassemble the driver.
pub struct TokenProtocolGlobal {
    topo: Arc<ta_overlay::Topology>,
    metric: TimeSeries,
    tokens: TimeSeries,
    record_tokens: bool,
    react_to_injections: bool,
}

impl<A, S> ShardableDriver for TokenProtocol<A, S>
where
    A: ShardableApplication,
    A::Msg: Send,
    S: Strategy + Clone,
{
    type Shard = TokenProtocolShard<A::Shard, S>;
    type Global = TokenProtocolGlobal;

    fn split(self, plan: &ShardPlan) -> (Self::Global, Vec<Self::Shard>) {
        let apps = self.app.split(plan);
        assert_eq!(apps.len(), plan.shards(), "application split arity");
        let mut nodes = self.nodes;
        let mut node_blocks = Vec::with_capacity(plan.shards());
        for s in (0..plan.shards()).rev() {
            node_blocks.push(nodes.split_off(plan.range(s).start));
        }
        node_blocks.reverse();
        let shards = apps
            .into_iter()
            .zip(node_blocks)
            .enumerate()
            .map(|(s, (app, nodes))| TokenProtocolShard {
                strategy: self.strategy.clone(),
                app,
                base: plan.range(s).start,
                nodes,
                peers: Arc::clone(&self.peers),
                pull_on_rejoin: self.pull_on_rejoin,
                reply_policy: self.reply_policy,
                // Pre-run counters belong to shard 0 so the merged sums
                // equal the serial run's (they are zero in practice: the
                // driver is split before the first event).
                stats: if s == 0 {
                    self.stats
                } else {
                    ProtocolStats::default()
                },
                sends_per_slot: if s == 0 {
                    self.sends_per_slot.clone()
                } else {
                    Vec::new()
                },
                slot_len_us: self.slot_len_us,
            })
            .collect();
        (
            TokenProtocolGlobal {
                topo: self.topo,
                metric: self.metric,
                tokens: self.tokens,
                record_tokens: self.record_tokens,
                react_to_injections: self.react_to_injections,
            },
            shards,
        )
    }

    fn merge(plan: &ShardPlan, global: Self::Global, shards: Vec<Self::Shard>) -> Self {
        let _ = plan;
        let mut shards = shards;
        let mut stats = ProtocolStats::default();
        let mut sends_per_slot: Vec<u64> = Vec::new();
        let mut slot_len_us = 0;
        for sh in &shards {
            stats.merge(&sh.stats);
            if sh.sends_per_slot.len() > sends_per_slot.len() {
                sends_per_slot.resize(sh.sends_per_slot.len(), 0);
            }
            for (acc, v) in sends_per_slot.iter_mut().zip(&sh.sends_per_slot) {
                *acc += v;
            }
            slot_len_us = slot_len_us.max(sh.slot_len_us);
        }
        let mut nodes = Vec::new();
        let mut apps = Vec::with_capacity(shards.len());
        // Every replica of the mirror saw the identical transition
        // sequence; shard 0's is the serial driver's mirror.
        let peers = Arc::clone(&shards[0].peers);
        let pull_on_rejoin = shards[0].pull_on_rejoin;
        let reply_policy = shards[0].reply_policy;
        let strategy = shards[0].strategy.clone();
        for sh in shards.drain(..) {
            nodes.extend(sh.nodes);
            apps.push(sh.app);
        }
        TokenProtocol {
            strategy,
            app: A::merge(plan, apps),
            topo: global.topo,
            nodes,
            peers,
            pull_on_rejoin,
            record_tokens: global.record_tokens,
            react_to_injections: global.react_to_injections,
            reply_policy,
            metric: global.metric,
            tokens: global.tokens,
            stats,
            sends_per_slot,
            slot_len_us,
        }
    }

    fn on_sample(
        global: &mut Self::Global,
        shards: &mut [&mut Self::Shard],
        api: &mut BarrierApi<'_, Self::Msg>,
    ) {
        let now = api.now();
        let online_count = api.online_count();
        let value = {
            let apps: Vec<&A::Shard> = shards.iter().map(|sh| &sh.app).collect();
            A::metric_sharded(&apps, online_count, now)
        };
        global.metric.push(now.as_secs_f64(), value);
        if global.record_tokens {
            // Shard blocks are contiguous, so folding them in shard order
            // is the serial node-order fold; sums are integers, so the
            // division below is bitwise the serial one.
            let (sum, count) = shards.iter().fold((0i64, 0usize), |(s, c), sh| {
                let flags = &sh.peers.online_flags()[sh.base..sh.base + sh.nodes.len()];
                flags
                    .iter()
                    .zip(&sh.nodes)
                    .filter(|(&up, _)| up)
                    .fold((s, c), |(s, c), (_, node)| (s + node.balance(), c + 1))
            });
            let avg = if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            };
            global.tokens.push(now.as_secs_f64(), avg);
        }
    }

    fn on_inject(
        global: &mut Self::Global,
        shards: &mut [&mut Self::Shard],
        api: &mut BarrierApi<'_, Self::Msg>,
    ) {
        if let Some(target) = api.random_online_node() {
            let now = api.now();
            let shard = api.plan().shard_of(target);
            // Global halves of the injection (e.g. push gossip's update
            // counter) advance on every replica; the node-local half goes
            // to the owner below.
            for (s, sh) in shards.iter_mut().enumerate() {
                if s != shard {
                    sh.app.on_remote_inject(now);
                }
            }
            let sh = &mut *shards[shard];
            sh.app.inject(target, now);
            if global.react_to_injections {
                let local = target.index() - sh.base;
                let burst = sh.nodes[local].on_message(&sh.strategy, Usefulness::Useful, api.rng());
                for _ in 0..burst {
                    match sh.peers.select(target, api.rng()) {
                        Some(peer) => {
                            let msg = sh.app.create_message(target);
                            api.send(target, peer, ProtocolMsg::App(msg));
                            sh.record_send_at(now, api.config());
                            sh.stats.reactive_sent += 1;
                        }
                        None => {
                            sh.nodes[local].bank_token();
                            sh.stats.reactive_refunded += 1;
                        }
                    }
                }
            }
        }
    }
}

impl<P: ApplicationShard + std::fmt::Debug, S: Strategy> std::fmt::Debug
    for TokenProtocolShard<P, S>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenProtocolShard")
            .field("strategy", &self.strategy.label())
            .field("base", &self.base)
            .field("owned", &self.nodes.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl std::fmt::Debug for TokenProtocolGlobal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenProtocolGlobal")
            .field("samples", &self.metric.len())
            .field("record_tokens", &self.record_tokens)
            .finish()
    }
}
