//! Digest equality of the full Algorithm-4 driver: a sharded
//! [`TokenProtocol`] run must be byte-identical to the serial engine for
//! both shardable applications, every shard count, both queues, and churn
//! on/off — including the metric series (f64 bits), the token series, the
//! burstiness histogram, every counter, and the final application state.

use std::sync::Arc;

use ta_apps::gossip_learning::GossipLearning;
use ta_apps::protocol::{ProtocolResults, TokenProtocol};
use ta_apps::sgd::{RegressionData, SgdGossipLearning};
use ta_apps::{Application, ShardableApplication};
use ta_overlay::generators::k_out_random;
use ta_overlay::Topology;
use ta_sim::config::{QueueKind, SimConfig};
use ta_sim::engine::{AvailabilityModel, Simulation};
use ta_sim::rng::Xoshiro256pp;
use ta_sim::shard::{ShardOpts, ShardedSimulation};
use ta_sim::{NodeId, SimDuration, SimStats, SimTime};
use token_account::prelude::*;

/// Scripted deterministic churn touching both shard-boundary-aligned and
/// off-grid instants.
struct Flap;

impl AvailabilityModel for Flap {
    fn initially_online(&self, node: NodeId) -> bool {
        node.index() % 7 != 3
    }
    fn for_each_transition(&self, node: NodeId, f: &mut dyn FnMut(SimTime, bool)) {
        let i = node.index() as u64;
        match i % 4 {
            0 => {
                f(SimTime::from_secs(30 + i % 11), false);
                f(SimTime::from_secs(90 + i % 5), true);
            }
            1 if i % 7 == 3 => f(SimTime::from_micros(45_000_000 + i * 77_001), true),
            2 => f(SimTime::from_secs(150), false),
            _ => {}
        }
    }
}

fn cfg(n: usize, queue: QueueKind, seed: u64) -> SimConfig {
    SimConfig::builder(n)
        .delta(SimDuration::from_secs(20))
        .transfer_time(SimDuration::from_millis(1500))
        .duration(SimDuration::from_secs(400))
        .sample_period(SimDuration::from_secs(20))
        .injection_period(SimDuration::from_secs(13))
        .queue(queue)
        .seed(seed)
        .build()
        .unwrap()
}

fn topo(n: usize, seed: u64) -> Arc<Topology> {
    let mut rng = Xoshiro256pp::stream(seed, 1);
    Arc::new(k_out_random(n, 6, &mut rng).unwrap())
}

/// Everything a run produces, reduced to exactly comparable form
/// (f64 compared by bits).
#[derive(Debug, PartialEq, Eq)]
struct Digest {
    metric: Vec<(u64, u64)>,
    tokens: Vec<(u64, u64)>,
    stats: ta_apps::ProtocolStats,
    sim: SimStats,
    sends_per_slot: Vec<u64>,
    balances_sum: i64,
    app: Vec<u64>,
}

fn digest<A: ta_apps::Application>(
    results: ProtocolResults<A>,
    sim: SimStats,
    app_state: Vec<u64>,
) -> Digest {
    let bits = |ts: &ta_metrics::TimeSeries| {
        ts.times()
            .iter()
            .zip(ts.values())
            .map(|(&t, &v)| (t.to_bits(), v.to_bits()))
            .collect()
    };
    Digest {
        metric: bits(&results.metric),
        tokens: bits(&results.tokens),
        stats: results.stats,
        sim,
        sends_per_slot: results.sends_per_slot,
        balances_sum: results.balances_sum,
        app: app_state,
    }
}

fn build_gossip(
    n: usize,
    seed: u64,
    topo: &Arc<Topology>,
    churn: bool,
) -> TokenProtocol<GossipLearning, RandomizedTokenAccount> {
    let initial: Vec<bool> = (0..n)
        .map(|i| {
            if churn {
                Flap.initially_online(NodeId::from_index(i))
            } else {
                true
            }
        })
        .collect();
    let app = GossipLearning::new(n, SimDuration::from_millis(1500), &initial);
    let strategy = RandomizedTokenAccount::new(3, 8).unwrap();
    let mut proto = TokenProtocol::new(Arc::clone(topo), strategy, app, initial)
        .with_token_recording()
        .with_injection_reaction();
    if churn {
        proto = proto.with_pull_on_rejoin();
    }
    let _ = seed;
    proto
}

fn gossip_digest(
    n: usize,
    queue: QueueKind,
    seed: u64,
    churn: bool,
    shards: Option<(usize, usize, bool)>,
) -> Digest {
    let topo = topo(n, seed);
    let proto = build_gossip(n, seed, &topo, churn);
    let config = cfg(n, queue, seed);
    let avail: &dyn AvailabilityModel = if churn { &Flap } else { &ta_sim::AlwaysOn };
    let (proto, sim) = match shards {
        None => {
            let mut sim = Simulation::new(config, avail, proto);
            sim.run_to_end();
            sim.into_parts()
        }
        Some((shards, threads, pin)) => {
            let opts = ShardOpts {
                shards,
                threads,
                pin,
            };
            let mut sim = ShardedSimulation::with_opts(config, avail, proto, opts);
            sim.run_to_end();
            sim.into_parts()
        }
    };
    let results = proto.into_results();
    let ages = results.app.ages().to_vec();
    digest(results, sim, ages)
}

#[test]
fn gossip_learning_sharded_is_byte_identical() {
    for queue in [QueueKind::Heap, QueueKind::Wheel] {
        for churn in [false, true] {
            let serial = gossip_digest(60, queue, 9, churn, None);
            assert!(serial.sim.messages_delivered > 0);
            if churn {
                assert!(serial.stats.pull_requests > 0, "churn run must pull");
            }
            for (shards, pin) in [(1, false), (2, false), (2, true), (4, true)] {
                let sharded = gossip_digest(60, queue, 9, churn, Some((shards, 2, pin)));
                assert_eq!(
                    serial, sharded,
                    "gossip-learning {queue:?} churn={churn} S={shards} pin={pin}"
                );
            }
        }
    }
}

/// Push gossip is the injection-heavy application: every update enters
/// through the barrier-time inject hook, whose global counter each shard
/// replicates via `on_remote_inject`. The digest covers the lag metric
/// (f64 bits), counters, histograms, and the full per-node update state.
fn push_gossip_digest(
    n: usize,
    queue: QueueKind,
    seed: u64,
    churn: bool,
    shards: Option<(usize, usize, bool)>,
) -> Digest {
    use ta_apps::push_gossip::PushGossip;
    let topo = topo(n, seed);
    let initial: Vec<bool> = (0..n)
        .map(|i| {
            if churn {
                Flap.initially_online(NodeId::from_index(i))
            } else {
                true
            }
        })
        .collect();
    let app = PushGossip::new(n, &initial);
    let strategy = RandomizedTokenAccount::new(3, 8).unwrap();
    let mut proto =
        TokenProtocol::new(Arc::clone(&topo), strategy, app, initial).with_token_recording();
    if churn {
        proto = proto.with_pull_on_rejoin();
    }
    let config = cfg(n, queue, seed);
    let avail: &dyn AvailabilityModel = if churn { &Flap } else { &ta_sim::AlwaysOn };
    let (proto, sim) = match shards {
        None => {
            let mut sim = Simulation::new(config, avail, proto);
            sim.run_to_end();
            sim.into_parts()
        }
        Some((shards, threads, pin)) => {
            let opts = ShardOpts {
                shards,
                threads,
                pin,
            };
            let mut sim = ShardedSimulation::with_opts(config, avail, proto, opts);
            sim.run_to_end();
            sim.into_parts()
        }
    };
    let results = proto.into_results();
    let state: Vec<u64> = (0..n)
        .map(|i| results.app.stored(NodeId::from_index(i)))
        .chain([results.app.freshest()])
        .collect();
    digest(results, sim, state)
}

#[test]
fn push_gossip_sharded_is_byte_identical() {
    for queue in [QueueKind::Heap, QueueKind::Wheel] {
        for churn in [false, true] {
            let serial = push_gossip_digest(60, queue, 21, churn, None);
            assert!(serial.sim.injections > 0, "workload must inject updates");
            assert!(serial.sim.messages_delivered > 0);
            for (shards, pin) in [(1, false), (2, false), (2, true), (4, true)] {
                let sharded = push_gossip_digest(60, queue, 21, churn, Some((shards, 2, pin)));
                assert_eq!(
                    serial, sharded,
                    "push-gossip {queue:?} churn={churn} S={shards} pin={pin}"
                );
            }
        }
    }
}

#[test]
fn sgd_sharded_is_byte_identical_including_f64_metric() {
    let n = 40;
    let data = RegressionData::generate(n, 6, 0.05, 17);
    let run = |shards: Option<(usize, usize, bool)>| {
        let topo = topo(n, 3);
        let app = SgdGossipLearning::new(data.clone(), 0.15);
        let strategy = RandomizedTokenAccount::new(3, 8).unwrap();
        let proto = TokenProtocol::new(Arc::clone(&topo), strategy, app, vec![true; n]);
        let config = cfg(n, QueueKind::Wheel, 3);
        let (proto, sim) = match shards {
            None => {
                let mut s = Simulation::new(config, &ta_sim::AlwaysOn, proto);
                s.run_to_end();
                s.into_parts()
            }
            Some((shards, threads, pin)) => {
                let opts = ShardOpts {
                    shards,
                    threads,
                    pin,
                };
                let mut sim = ShardedSimulation::with_opts(config, &ta_sim::AlwaysOn, proto, opts);
                sim.run_to_end();
                sim.into_parts()
            }
        };
        let results = proto.into_results();
        // Full model state, bit-exact.
        let weights: Vec<u64> = (0..n)
            .flat_map(|i| {
                results
                    .app
                    .weights(NodeId::from_index(i))
                    .iter()
                    .map(|w| w.to_bits())
                    .collect::<Vec<_>>()
            })
            .collect();
        digest(results, sim, weights)
    };
    let serial = run(None);
    assert!(!serial.metric.is_empty());
    for (shards, pin) in [(1, false), (2, true), (3, false), (4, true)] {
        let sharded = run(Some((shards, 2, pin)));
        assert_eq!(serial, sharded, "sgd S={shards} pin={pin}");
    }
}

#[test]
fn shardable_app_split_merge_roundtrips() {
    use ta_sim::shard::ShardPlan;
    let n = 23;
    let plan = ShardPlan::new(n, 4);
    let mut app = GossipLearning::new(n, SimDuration::from_secs(1), &vec![true; n]);
    for i in 0..n {
        let msg = ta_apps::gossip_learning::ModelMsg { age: i as u64 * 3 };
        app.update_state(
            NodeId::from_index(i),
            NodeId::from_index((i + 1) % n),
            &msg,
            SimTime::from_secs(1),
        );
    }
    let before = app.ages().to_vec();
    let shards = app.split(&plan);
    let merged = GossipLearning::merge(&plan, shards);
    assert_eq!(merged.ages(), &before[..]);
}
