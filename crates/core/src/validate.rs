//! Numerical verification of the strategy contract.
//!
//! Section 3.1 imposes monotonicity and no-overspending requirements on the
//! proactive/reactive pair, and Section 3.4 defines the capacity in terms
//! of the proactive function. [`check_strategy_contract`] verifies all of
//! them over an integer balance grid; the workspace property tests run it
//! across the whole `(A, C)` parameter space, and strategy authors can use
//! it as a self-test.

use std::error::Error;
use std::fmt;

use crate::strategy::{Capacity, Strategy};
use crate::usefulness::Usefulness;

/// A violation of the strategy contract found by
/// [`check_strategy_contract`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ContractViolation {
    /// `proactive(a)` left `[0, 1]`.
    ProactiveOutOfRange {
        /// Balance at which it happened.
        balance: i64,
        /// Offending value.
        value: f64,
    },
    /// `proactive` decreased as the balance grew.
    ProactiveNotMonotone {
        /// Balance at which it happened.
        balance: i64,
    },
    /// `reactive` returned a negative or non-finite value.
    ReactiveInvalid {
        /// Balance at which it happened.
        balance: i64,
        /// Offending value.
        value: f64,
    },
    /// `reactive` decreased as the balance grew.
    ReactiveNotMonotoneInBalance {
        /// Balance at which it happened.
        balance: i64,
    },
    /// `reactive` decreased as usefulness grew.
    ReactiveNotMonotoneInUsefulness {
        /// Balance at which it happened.
        balance: i64,
    },
    /// `reactive(a, u) > a` for a strategy that does not allow debt.
    Overspend {
        /// Balance at which it happened.
        balance: i64,
        /// Offending value.
        value: f64,
    },
    /// `capacity()` reported `Finite(c)` but `proactive(c) != 1`.
    CapacityNotSaturating {
        /// Reported capacity.
        capacity: u64,
    },
    /// `capacity()` reported `Finite(c)` but some smaller balance already
    /// saturates, so `c` is not the smallest.
    CapacityNotTight {
        /// Reported capacity.
        capacity: u64,
        /// Smaller balance with `proactive = 1`.
        smaller: i64,
    },
    /// `capacity()` reported `Unbounded` but `proactive` reached 1 on the
    /// grid.
    UnexpectedSaturation {
        /// Balance at which `proactive` hit 1.
        balance: i64,
    },
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractViolation::ProactiveOutOfRange { balance, value } => {
                write!(f, "proactive({balance}) = {value} outside [0, 1]")
            }
            ContractViolation::ProactiveNotMonotone { balance } => {
                write!(f, "proactive decreases at balance {balance}")
            }
            ContractViolation::ReactiveInvalid { balance, value } => {
                write!(f, "reactive({balance}) = {value} is invalid")
            }
            ContractViolation::ReactiveNotMonotoneInBalance { balance } => {
                write!(f, "reactive decreases in balance at {balance}")
            }
            ContractViolation::ReactiveNotMonotoneInUsefulness { balance } => {
                write!(f, "reactive decreases in usefulness at balance {balance}")
            }
            ContractViolation::Overspend { balance, value } => {
                write!(f, "reactive({balance}) = {value} overspends")
            }
            ContractViolation::CapacityNotSaturating { capacity } => {
                write!(f, "proactive(C = {capacity}) != 1")
            }
            ContractViolation::CapacityNotTight { capacity, smaller } => {
                write!(
                    f,
                    "capacity {capacity} is not tight: proactive({smaller}) = 1"
                )
            }
            ContractViolation::UnexpectedSaturation { balance } => {
                write!(f, "unbounded strategy saturates at balance {balance}")
            }
        }
    }
}

impl Error for ContractViolation {}

/// Checks the Section 3.1/3.4 contract of `strategy` over balances
/// `0..=max_balance` (plus a few negative probes).
///
/// # Errors
///
/// Returns the first [`ContractViolation`] found.
pub fn check_strategy_contract<S: Strategy + ?Sized>(
    strategy: &S,
    max_balance: i64,
) -> Result<(), ContractViolation> {
    let usefulness_grid = [
        Usefulness::NotUseful,
        Usefulness::graded(0.25),
        Usefulness::graded(0.5),
        Usefulness::graded(0.75),
        Usefulness::Useful,
    ];

    let mut prev_proactive = f64::NEG_INFINITY;
    let mut prev_reactive = vec![f64::NEG_INFINITY; usefulness_grid.len()];

    for balance in -2..=max_balance {
        let p = strategy.proactive(balance);
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(ContractViolation::ProactiveOutOfRange { balance, value: p });
        }
        if p < prev_proactive {
            return Err(ContractViolation::ProactiveNotMonotone { balance });
        }
        prev_proactive = p;

        let mut prev_u = f64::NEG_INFINITY;
        for (i, &u) in usefulness_grid.iter().enumerate() {
            let r = strategy.reactive(balance, u);
            if r < 0.0 || !r.is_finite() {
                return Err(ContractViolation::ReactiveInvalid { balance, value: r });
            }
            if !strategy.allows_debt() && r > balance.max(0) as f64 {
                return Err(ContractViolation::Overspend { balance, value: r });
            }
            if r < prev_reactive[i] {
                return Err(ContractViolation::ReactiveNotMonotoneInBalance { balance });
            }
            prev_reactive[i] = r;
            if r < prev_u {
                return Err(ContractViolation::ReactiveNotMonotoneInUsefulness { balance });
            }
            prev_u = r;
        }
    }

    match strategy.capacity() {
        Capacity::Finite(c) => {
            let c_i = c as i64;
            if strategy.proactive(c_i) != 1.0 {
                return Err(ContractViolation::CapacityNotSaturating { capacity: c });
            }
            // Tightness: no smaller non-negative balance saturates.
            for smaller in 0..c_i {
                if strategy.proactive(smaller) >= 1.0 {
                    return Err(ContractViolation::CapacityNotTight {
                        capacity: c,
                        smaller,
                    });
                }
            }
        }
        Capacity::Unbounded => {
            for balance in 0..=max_balance {
                if strategy.proactive(balance) >= 1.0 {
                    return Err(ContractViolation::UnexpectedSaturation { balance });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{
        GeneralizedTokenAccount, PurelyProactive, PurelyReactive, RandomizedTokenAccount,
        SimpleTokenAccount,
    };

    #[test]
    fn all_paper_strategies_satisfy_the_contract() {
        check_strategy_contract(&PurelyProactive, 200).unwrap();
        check_strategy_contract(&PurelyReactive::if_useful(3).unwrap(), 200).unwrap();
        check_strategy_contract(&PurelyReactive::unconditional(2).unwrap(), 200).unwrap();
        check_strategy_contract(&SimpleTokenAccount::new(0), 200).unwrap();
        check_strategy_contract(&SimpleTokenAccount::new(20), 200).unwrap();
        for (a, c) in [(1, 1), (1, 10), (5, 10), (10, 20), (40, 120)] {
            check_strategy_contract(&GeneralizedTokenAccount::new(a, c).unwrap(), 200).unwrap();
            check_strategy_contract(&RandomizedTokenAccount::new(a, c).unwrap(), 200).unwrap();
        }
    }

    /// A deliberately broken strategy for negative tests.
    #[derive(Debug)]
    struct Broken(u8);

    impl Strategy for Broken {
        fn proactive(&self, balance: i64) -> f64 {
            match self.0 {
                0 => 1.5,                       // out of range
                1 => -(balance as f64) / 100.0, // decreasing
                _ => 0.0,
            }
        }
        fn reactive(&self, balance: i64, u: Usefulness) -> f64 {
            match self.0 {
                2 => -1.0,                          // negative
                3 => (balance.max(0) as f64) + 1.0, // overspend
                // Anti-monotone in u but within the balance, so only the
                // usefulness check can trip.
                4 => (balance.max(0) as f64).min(1.0) * (1.0 - u.value()),
                _ => 0.0,
            }
        }
        fn capacity(&self) -> Capacity {
            match self.0 {
                5 => Capacity::Finite(10), // but proactive never 1
                _ => Capacity::Unbounded,
            }
        }
        fn name(&self) -> &'static str {
            "broken"
        }
        fn allows_debt(&self) -> bool {
            false
        }
    }

    #[test]
    fn detects_out_of_range_proactive() {
        assert!(matches!(
            check_strategy_contract(&Broken(0), 10).unwrap_err(),
            ContractViolation::ProactiveOutOfRange { .. }
        ));
    }

    #[test]
    fn detects_non_monotone_proactive() {
        assert!(matches!(
            check_strategy_contract(&Broken(1), 10).unwrap_err(),
            ContractViolation::ProactiveNotMonotone { .. }
        ));
    }

    #[test]
    fn detects_negative_reactive() {
        assert!(matches!(
            check_strategy_contract(&Broken(2), 10).unwrap_err(),
            ContractViolation::ReactiveInvalid { .. }
        ));
    }

    #[test]
    fn detects_overspend() {
        assert!(matches!(
            check_strategy_contract(&Broken(3), 10).unwrap_err(),
            ContractViolation::Overspend { .. }
        ));
    }

    #[test]
    fn detects_usefulness_anti_monotonicity() {
        assert!(matches!(
            check_strategy_contract(&Broken(4), 10).unwrap_err(),
            ContractViolation::ReactiveNotMonotoneInUsefulness { .. }
        ));
    }

    #[test]
    fn detects_non_saturating_capacity() {
        assert!(matches!(
            check_strategy_contract(&Broken(5), 10).unwrap_err(),
            ContractViolation::CapacityNotSaturating { .. }
        ));
    }

    #[test]
    fn violations_display() {
        let v = ContractViolation::Overspend {
            balance: 3,
            value: 4.0,
        };
        assert!(v.to_string().contains("overspends"));
    }
}
