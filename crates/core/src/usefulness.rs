//! Message usefulness.
//!
//! The reactive function `REACTIVE(a, u)` takes the *usefulness* `u` of the
//! received message: "some messages are more important than others in most
//! applications" (Section 3.1). The paper treats `u` as Boolean and notes
//! that "finer grading is possible in the future" — [`Usefulness::Graded`]
//! implements that extension.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How useful a received message was to the application.
///
/// Ordered: `NotUseful < Graded(x) < Useful` by [`value`](Usefulness::value)
/// (reactive functions must be monotone non-decreasing in it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Usefulness {
    /// The message carried no new information (`u = 0`).
    NotUseful,
    /// The message was useful (`u = 1`).
    Useful,
    /// Graded usefulness in `(0, 1)` — the paper's "finer grading" future
    /// extension. Construct via [`Usefulness::graded`].
    Graded(f64),
}

impl Usefulness {
    /// Converts a Boolean usefulness (the paper's model).
    #[inline]
    pub fn from_bool(useful: bool) -> Self {
        if useful {
            Usefulness::Useful
        } else {
            Usefulness::NotUseful
        }
    }

    /// Creates a graded usefulness, snapping the endpoints to the Boolean
    /// variants.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or outside `[0, 1]`.
    pub fn graded(value: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&value),
            "usefulness grade {value} outside [0, 1]"
        );
        if value == 0.0 {
            Usefulness::NotUseful
        } else if value == 1.0 {
            Usefulness::Useful
        } else {
            Usefulness::Graded(value)
        }
    }

    /// The numeric value `u ∈ [0, 1]`.
    #[inline]
    pub fn value(self) -> f64 {
        match self {
            Usefulness::NotUseful => 0.0,
            Usefulness::Useful => 1.0,
            Usefulness::Graded(x) => x,
        }
    }

    /// Boolean view: anything with positive value counts as useful.
    #[inline]
    pub fn is_useful(self) -> bool {
        self.value() > 0.0
    }
}

impl From<bool> for Usefulness {
    fn from(useful: bool) -> Self {
        Usefulness::from_bool(useful)
    }
}

impl fmt::Display for Usefulness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Usefulness::NotUseful => write!(f, "not-useful"),
            Usefulness::Useful => write!(f, "useful"),
            Usefulness::Graded(x) => write!(f, "graded({x})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_conversions() {
        assert_eq!(Usefulness::from_bool(true), Usefulness::Useful);
        assert_eq!(Usefulness::from(false), Usefulness::NotUseful);
        assert_eq!(Usefulness::Useful.value(), 1.0);
        assert_eq!(Usefulness::NotUseful.value(), 0.0);
    }

    #[test]
    fn graded_snaps_endpoints() {
        assert_eq!(Usefulness::graded(0.0), Usefulness::NotUseful);
        assert_eq!(Usefulness::graded(1.0), Usefulness::Useful);
        assert_eq!(Usefulness::graded(0.5), Usefulness::Graded(0.5));
    }

    #[test]
    fn is_useful_threshold() {
        assert!(Usefulness::Useful.is_useful());
        assert!(Usefulness::Graded(0.1).is_useful());
        assert!(!Usefulness::NotUseful.is_useful());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn graded_rejects_out_of_range() {
        let _ = Usefulness::graded(1.5);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn graded_rejects_nan() {
        let _ = Usefulness::graded(f64::NAN);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Usefulness::Useful.to_string(), "useful");
        assert_eq!(Usefulness::Graded(0.25).to_string(), "graded(0.25)");
    }
}
