//! The strategy abstraction: the `PROACTIVE(a)` / `REACTIVE(a, u)` pair.
//!
//! A token account algorithm is fully specified by two functions
//! (Section 3.1):
//!
//! * `PROACTIVE(a)` — the probability of sending a proactive message in a
//!   round, given the account balance `a`; monotone non-decreasing in `a`.
//! * `REACTIVE(a, u)` — the (possibly fractional) number of messages to
//!   send in reaction to an incoming message of usefulness `u`; monotone
//!   non-decreasing in both arguments, and at most `a` ("we do not allow
//!   overspending") unless the strategy explicitly allows debt.
//!
//! Section 3.4 defines the **token capacity** `C`: the smallest balance at
//! which `PROACTIVE` returns 1. A finite capacity bounds bursts — a node can
//! send at most `t/Δ + C` messages in any window of length `t`. Strategies
//! report theirs via [`Strategy::capacity`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::usefulness::Usefulness;

/// The token capacity of a strategy (Section 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Capacity {
    /// `PROACTIVE(c) = 1`: at most `c` tokens can ever accumulate.
    Finite(u64),
    /// `PROACTIVE` never reaches 1; the balance may grow without bound.
    /// "Not a desirable property" — only the purely reactive reference
    /// strategy has it.
    Unbounded,
}

impl Capacity {
    /// The finite capacity value, if any.
    pub fn finite(self) -> Option<u64> {
        match self {
            Capacity::Finite(c) => Some(c),
            Capacity::Unbounded => None,
        }
    }

    /// Upper bound on messages sent in a window of `rounds` round lengths
    /// (Section 3.4: `t/Δ + C`), or `None` for unbounded strategies.
    pub fn burst_bound(self, rounds: u64) -> Option<u64> {
        self.finite().map(|c| rounds + c)
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capacity::Finite(c) => write!(f, "C={c}"),
            Capacity::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// A token account strategy: an implementation of the proactive/reactive
/// function pair.
///
/// # Contract
///
/// Implementations must satisfy, for all balances `a <= b` and usefulness
/// `u <= v` (by [`Usefulness::value`]):
///
/// * `0 <= proactive(a) <= 1` and `proactive(a) <= proactive(b)`;
/// * `reactive(a, u) >= 0`, `reactive(a, u) <= reactive(b, u)`, and
///   `reactive(a, u) <= reactive(a, v)`;
/// * `reactive(a, u) <= max(a, 0)` unless [`allows_debt`](Self::allows_debt);
/// * if `capacity()` is [`Capacity::Finite`]`(c)`, then `proactive(c) = 1`
///   and `c` is the smallest such balance.
///
/// [`crate::validate::check_strategy_contract`] verifies these numerically;
/// the workspace property tests run it over the whole parameter grid.
pub trait Strategy: fmt::Debug + Send + Sync {
    /// Probability of sending a proactive message at balance `balance`.
    fn proactive(&self, balance: i64) -> f64;

    /// Number of reactive messages (possibly fractional; the framework
    /// applies probabilistic rounding) for a message of usefulness
    /// `usefulness` at balance `balance`.
    fn reactive(&self, balance: i64, usefulness: Usefulness) -> f64;

    /// The token capacity (Section 3.4).
    fn capacity(&self) -> Capacity;

    /// Short machine-friendly family name (`"simple"`, `"randomized"`, ...).
    fn name(&self) -> &'static str;

    /// Human-readable label including parameters, e.g. `generalized(A=5,C=10)`.
    fn label(&self) -> String {
        self.name().to_string()
    }

    /// Whether the strategy may spend tokens it does not have (only the
    /// purely reactive reference does).
    fn allows_debt(&self) -> bool {
        false
    }

    /// Continuous extension of [`proactive`](Self::proactive) used by the
    /// mean-field analysis (Section 4.3). Defaults to the step evaluation
    /// at `⌊a⌋`.
    fn proactive_smooth(&self, balance: f64) -> f64 {
        self.proactive(balance.floor() as i64)
    }

    /// Continuous extension of [`reactive`](Self::reactive) used by the
    /// mean-field analysis. Defaults to the step evaluation at `⌊a⌋`.
    fn reactive_smooth(&self, balance: f64, usefulness: Usefulness) -> f64 {
        self.reactive(balance.floor() as i64, usefulness)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    fn proactive(&self, balance: i64) -> f64 {
        (**self).proactive(balance)
    }
    fn reactive(&self, balance: i64, usefulness: Usefulness) -> f64 {
        (**self).reactive(balance, usefulness)
    }
    fn capacity(&self) -> Capacity {
        (**self).capacity()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn label(&self) -> String {
        (**self).label()
    }
    fn allows_debt(&self) -> bool {
        (**self).allows_debt()
    }
    fn proactive_smooth(&self, balance: f64) -> f64 {
        (**self).proactive_smooth(balance)
    }
    fn reactive_smooth(&self, balance: f64, usefulness: Usefulness) -> f64 {
        (**self).reactive_smooth(balance, usefulness)
    }
}

impl<S: Strategy + ?Sized> Strategy for std::sync::Arc<S> {
    fn proactive(&self, balance: i64) -> f64 {
        (**self).proactive(balance)
    }
    fn reactive(&self, balance: i64, usefulness: Usefulness) -> f64 {
        (**self).reactive(balance, usefulness)
    }
    fn capacity(&self) -> Capacity {
        (**self).capacity()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn label(&self) -> String {
        (**self).label()
    }
    fn allows_debt(&self) -> bool {
        (**self).allows_debt()
    }
    fn proactive_smooth(&self, balance: f64) -> f64 {
        (**self).proactive_smooth(balance)
    }
    fn reactive_smooth(&self, balance: f64, usefulness: Usefulness) -> f64 {
        (**self).reactive_smooth(balance, usefulness)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    fn proactive(&self, balance: i64) -> f64 {
        (**self).proactive(balance)
    }
    fn reactive(&self, balance: i64, usefulness: Usefulness) -> f64 {
        (**self).reactive(balance, usefulness)
    }
    fn capacity(&self) -> Capacity {
        (**self).capacity()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn label(&self) -> String {
        (**self).label()
    }
    fn allows_debt(&self) -> bool {
        (**self).allows_debt()
    }
    fn proactive_smooth(&self, balance: f64) -> f64 {
        (**self).proactive_smooth(balance)
    }
    fn reactive_smooth(&self, balance: f64, usefulness: Usefulness) -> f64 {
        (**self).reactive_smooth(balance, usefulness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::RandomizedTokenAccount;

    #[test]
    fn reference_and_box_delegate_all_methods() {
        let concrete = RandomizedTokenAccount::new(5, 10).unwrap();
        let by_ref: &dyn Strategy = &concrete;
        let boxed: Box<dyn Strategy> = Box::new(concrete);
        for a in [-1i64, 0, 3, 7, 10, 50] {
            assert_eq!(by_ref.proactive(a), concrete.proactive(a));
            assert_eq!(boxed.proactive(a), concrete.proactive(a));
            for u in [Usefulness::NotUseful, Usefulness::Useful] {
                assert_eq!(by_ref.reactive(a, u), concrete.reactive(a, u));
                assert_eq!(boxed.reactive(a, u), concrete.reactive(a, u));
                assert_eq!(
                    boxed.reactive_smooth(a as f64 + 0.5, u),
                    concrete.reactive_smooth(a as f64 + 0.5, u)
                );
            }
            assert_eq!(
                boxed.proactive_smooth(a as f64 + 0.5),
                concrete.proactive_smooth(a as f64 + 0.5)
            );
        }
        assert_eq!(by_ref.capacity(), concrete.capacity());
        assert_eq!(boxed.capacity(), concrete.capacity());
        assert_eq!(by_ref.name(), concrete.name());
        assert_eq!(boxed.label(), concrete.label());
        assert_eq!(boxed.allows_debt(), concrete.allows_debt());
        // A double indirection also works (Box<&S>, &Box<S>).
        let double: &dyn Strategy = &boxed;
        assert_eq!(double.label(), concrete.label());
    }

    #[test]
    fn strategies_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Box<dyn Strategy>>();
        assert_send_sync::<RandomizedTokenAccount>();
    }

    #[test]
    fn capacity_accessors() {
        assert_eq!(Capacity::Finite(5).finite(), Some(5));
        assert_eq!(Capacity::Unbounded.finite(), None);
    }

    #[test]
    fn burst_bound_follows_section_3_4() {
        // A node cannot send more than t/Δ + C messages in time t.
        assert_eq!(Capacity::Finite(20).burst_bound(1000), Some(1020));
        assert_eq!(Capacity::Unbounded.burst_bound(1000), None);
    }

    #[test]
    fn capacity_display() {
        assert_eq!(Capacity::Finite(7).to_string(), "C=7");
        assert_eq!(Capacity::Unbounded.to_string(), "unbounded");
    }
}
