//! Per-node framework logic: Algorithm 4 of the paper.
//!
//! [`TokenNode`] is deliberately substrate-agnostic: it owns only the token
//! account and encodes the *decisions* of Algorithm 4 — whether a round
//! sends a proactive message or banks the token, and how many reactive
//! messages an incoming message triggers. Scheduling, peer selection, and
//! message construction belong to the integration layer (`ta-apps` in this
//! workspace, or a real network stack in a deployment).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::account::TokenAccount;
use crate::rounding::rand_round;
use crate::strategy::Strategy;
use crate::usefulness::Usefulness;

/// What a round tick resolves to (lines 4–10 of Algorithm 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoundAction {
    /// Send one proactive message (the granted token is consumed by it).
    SendProactive,
    /// Bank the token (`a ← a + 1`).
    SaveToken,
}

/// The token-account state machine of one node.
///
/// ```
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
/// use token_account::node::{RoundAction, TokenNode};
/// use token_account::strategies::SimpleTokenAccount;
/// use token_account::usefulness::Usefulness;
///
/// let strategy = SimpleTokenAccount::new(10);
/// let mut node = TokenNode::new(0);
/// let mut rng = StdRng::seed_from_u64(1);
///
/// // Empty account: the round banks a token.
/// assert_eq!(node.on_round(&strategy, &mut rng), RoundAction::SaveToken);
/// assert_eq!(node.balance(), 1);
///
/// // A useful message triggers one reactive send, burning the token.
/// let sends = node.on_message(&strategy, Usefulness::Useful, &mut rng);
/// assert_eq!(sends, 1);
/// assert_eq!(node.balance(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TokenNode {
    account: TokenAccount,
}

impl TokenNode {
    /// Creates a node with `initial` tokens (the paper starts at zero).
    pub fn new(initial: i64) -> Self {
        TokenNode {
            account: TokenAccount::new(initial),
        }
    }

    /// Current token balance.
    #[inline]
    pub fn balance(&self) -> i64 {
        self.account.balance()
    }

    /// The underlying account.
    #[inline]
    pub fn account(&self) -> &TokenAccount {
        &self.account
    }

    /// One round tick (lines 3–10 of Algorithm 4): with probability
    /// `PROACTIVE(a)` the node sends a proactive message, otherwise it
    /// banks the token.
    pub fn on_round<S, R>(&mut self, strategy: &S, rng: &mut R) -> RoundAction
    where
        S: Strategy + ?Sized,
        R: Rng + ?Sized,
    {
        let p = strategy.proactive(self.account.balance());
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "proactive({}) = {p} outside [0, 1] for {}",
            self.account.balance(),
            strategy.label()
        );
        // gen::<f64>() is uniform in [0, 1): p = 1 always sends, p = 0 never.
        if rng.gen::<f64>() < p {
            RoundAction::SendProactive
        } else {
            self.account.grant();
            RoundAction::SaveToken
        }
    }

    /// Reaction to an incoming message (lines 11–18 of Algorithm 4, after
    /// the application's `updateState` determined `usefulness`): returns
    /// the number of reactive messages to send, with the same number of
    /// tokens already removed from the account.
    pub fn on_message<S, R>(&mut self, strategy: &S, usefulness: Usefulness, rng: &mut R) -> u64
    where
        S: Strategy + ?Sized,
        R: Rng + ?Sized,
    {
        let balance = self.account.balance();
        let r = strategy.reactive(balance, usefulness);
        debug_assert!(
            r >= 0.0 && r.is_finite(),
            "reactive({balance}, {usefulness}) = {r} invalid for {}",
            strategy.label()
        );
        let x = rand_round(r, rng);
        if strategy.allows_debt() {
            self.account.force_spend(x);
            x
        } else {
            debug_assert!(
                r <= balance.max(0) as f64,
                "reactive({balance}, {usefulness}) = {r} overspends for {}",
                strategy.label()
            );
            let spent = self.account.spend_up_to(x);
            debug_assert_eq!(spent, x, "probabilistic rounding overspent");
            spent
        }
    }

    /// Spends one token if available (used by the push gossip pull-request
    /// extension: a rejoining node's pull is answered only "if this
    /// neighbor has tokens", Section 4.1.2).
    pub fn try_spend_one(&mut self) -> bool {
        self.account.try_spend(1)
    }

    /// Banks one token outside the round flow.
    ///
    /// Integrations call this when a send decided by Algorithm 4 cannot be
    /// performed (e.g. no neighbour is online): the proactive token is
    /// banked instead of lost, and a burned reactive token is refunded,
    /// keeping the one-token-per-Δ accounting exact.
    pub fn bank_token(&mut self) {
        self.account.grant();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{
        GeneralizedTokenAccount, PurelyProactive, PurelyReactive, RandomizedTokenAccount,
        SimpleTokenAccount,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn purely_proactive_always_sends_and_never_accumulates() {
        let s = PurelyProactive;
        let mut node = TokenNode::new(0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(node.on_round(&s, &mut rng), RoundAction::SendProactive);
        }
        assert_eq!(node.balance(), 0);
        assert_eq!(node.on_message(&s, Usefulness::Useful, &mut rng), 0);
    }

    #[test]
    fn purely_reactive_goes_into_debt() {
        let s = PurelyReactive::if_useful(2).unwrap();
        let mut node = TokenNode::new(0);
        let mut rng = StdRng::seed_from_u64(2);
        // Rounds only bank tokens.
        assert_eq!(node.on_round(&s, &mut rng), RoundAction::SaveToken);
        assert_eq!(node.balance(), 1);
        // Useful message bursts k = 2 regardless of balance.
        assert_eq!(node.on_message(&s, Usefulness::Useful, &mut rng), 2);
        assert_eq!(node.balance(), -1);
    }

    #[test]
    fn simple_account_fills_to_capacity_then_sends() {
        let s = SimpleTokenAccount::new(3);
        let mut node = TokenNode::new(0);
        let mut rng = StdRng::seed_from_u64(3);
        for expected in 1..=3i64 {
            assert_eq!(node.on_round(&s, &mut rng), RoundAction::SaveToken);
            assert_eq!(node.balance(), expected);
        }
        // Full: every further round sends proactively, balance stays at C.
        for _ in 0..10 {
            assert_eq!(node.on_round(&s, &mut rng), RoundAction::SendProactive);
        }
        assert_eq!(node.balance(), 3);
    }

    #[test]
    fn balance_never_exceeds_capacity() {
        // Section 3.4: C is the maximal number of tokens accumulable.
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(SimpleTokenAccount::new(5)),
            Box::new(GeneralizedTokenAccount::new(2, 5).unwrap()),
            Box::new(RandomizedTokenAccount::new(2, 5).unwrap()),
        ];
        let mut rng = StdRng::seed_from_u64(4);
        for s in &strategies {
            let mut node = TokenNode::new(0);
            for step in 0..1000 {
                if step % 3 == 0 {
                    node.on_message(s, Usefulness::Useful, &mut rng);
                } else {
                    node.on_round(s, &mut rng);
                }
                assert!(
                    node.balance() <= 5,
                    "{} exceeded capacity: {}",
                    s.label(),
                    node.balance()
                );
                assert!(node.balance() >= 0);
            }
        }
    }

    #[test]
    fn reactive_spend_reduces_balance_by_messages_sent() {
        let s = GeneralizedTokenAccount::new(1, 40).unwrap();
        let mut node = TokenNode::new(0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..7 {
            node.on_round(&s, &mut rng);
        }
        let before = node.balance();
        let sent = node.on_message(&s, Usefulness::Useful, &mut rng);
        assert_eq!(sent as i64, before - node.balance());
        // A = 1 spends everything.
        assert_eq!(node.balance(), 0);
        assert_eq!(sent as i64, before);
    }

    #[test]
    fn randomized_expected_spend_is_balance_over_a() {
        let s = RandomizedTokenAccount::new(10, 1000).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let trials = 20_000;
        let mut total = 0u64;
        for _ in 0..trials {
            let mut node = TokenNode::new(15);
            total += node.on_message(&s, Usefulness::Useful, &mut rng);
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 1.5).abs() < 0.05, "mean spend {mean}");
    }

    #[test]
    fn try_spend_one_for_pull_replies() {
        let mut node = TokenNode::new(1);
        assert!(node.try_spend_one());
        assert!(!node.try_spend_one());
        assert_eq!(node.balance(), 0);
    }

    #[test]
    fn proactive_probability_is_respected_statistically() {
        // Randomized with A=1, C=9: ramp over [0, 9], so
        // proactive(5) = (5 − 1 + 1)/(9 − 1 + 1) = 5/9.
        let s = RandomizedTokenAccount::new(1, 9).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 40_000;
        let mut sends = 0;
        for _ in 0..trials {
            let mut node = TokenNode::new(5);
            if node.on_round(&s, &mut rng) == RoundAction::SendProactive {
                sends += 1;
            }
        }
        let rate = sends as f64 / trials as f64;
        assert!((rate - 5.0 / 9.0).abs() < 0.02, "send rate {rate}");
    }
}
