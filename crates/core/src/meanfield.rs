//! The mean-field token model of Section 4.3.
//!
//! The paper derives a mean-field approximation of the average token count
//! `a(t)` and the per-node message rate `v(t) = dw/dt`:
//!
//! ```text
//! da/dt = 1/Δ − v                                      (eq. 8)
//! dv/dt = v · (REACTIVE(a, u) − 1) + PROACTIVE(a)/Δ    (eq. 9)
//! ```
//!
//! In equilibrium (`da/dt = 0`, `dv/dt = 0`):
//!
//! ```text
//! REACTIVE(a, u) + PROACTIVE(a) = 1                    (eq. 10)
//! ```
//!
//! For the randomized strategy at `u = 1` this solves in closed form to
//! `a = A·C/(C + 1) ≈ A`, which Figure 5 validates against simulation.
//! This module provides a numeric equilibrium solver (bisection over the
//! monotone left-hand side of eq. 10) and a fixed-step RK4 integrator for
//! the transient dynamics.

use serde::{Deserialize, Serialize};

use crate::strategy::{Capacity, Strategy};
use crate::usefulness::Usefulness;

/// One sample of the integrated mean-field trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanFieldState {
    /// Time in seconds.
    pub time: f64,
    /// Average token balance `a(t)`.
    pub tokens: f64,
    /// Per-node message rate `v(t) = dw/dt`, in messages per second.
    pub rate: f64,
}

/// The mean-field model of a strategy under fixed usefulness.
#[derive(Debug, Clone, Copy)]
pub struct MeanFieldModel<'a, S: Strategy + ?Sized> {
    strategy: &'a S,
    delta_secs: f64,
    usefulness: Usefulness,
}

impl<'a, S: Strategy + ?Sized> MeanFieldModel<'a, S> {
    /// Builds the model with round length `delta_secs` (Δ, in seconds) and
    /// the assumed usefulness of incoming messages (`u = 1` "is acceptable
    /// for gossip learning").
    ///
    /// # Panics
    ///
    /// Panics if `delta_secs` is not positive and finite.
    pub fn new(strategy: &'a S, delta_secs: f64, usefulness: Usefulness) -> Self {
        assert!(
            delta_secs.is_finite() && delta_secs > 0.0,
            "delta must be positive, got {delta_secs}"
        );
        MeanFieldModel {
            strategy,
            delta_secs,
            usefulness,
        }
    }

    /// Left-hand side of eq. 10 minus one: `g(a) = REACTIVE(a, u) +
    /// PROACTIVE(a) − 1`, monotone non-decreasing in `a`.
    fn excess(&self, a: f64) -> f64 {
        self.strategy.reactive_smooth(a, self.usefulness) + self.strategy.proactive_smooth(a) - 1.0
    }

    /// Solves eq. 10 for the equilibrium balance by bisection.
    ///
    /// Returns `None` when no equilibrium exists with a non-negative
    /// balance — e.g. the purely reactive strategy with `k > 1`, where the
    /// message rate is self-amplifying, or `k < 1`, where it decays.
    /// For strategies whose left-hand side is flat at 1 over an interval
    /// (the simple strategy), the *smallest* equilibrium is returned.
    pub fn equilibrium_balance(&self) -> Option<f64> {
        let upper = match self.strategy.capacity() {
            Capacity::Finite(c) => c as f64,
            // Probe a generous range for unbounded strategies.
            Capacity::Unbounded => 1e6,
        };
        let g0 = self.excess(0.0);
        if g0 > 0.0 {
            return None; // already overshooting with an empty account
        }
        if g0 == 0.0 {
            return Some(0.0);
        }
        let g_up = self.excess(upper);
        if g_up < 0.0 {
            return None; // never reaches balance (unbounded, k < 1)
        }
        // Invariant: g(lo) < 0 <= g(hi).
        let (mut lo, mut hi) = (0.0, upper);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.excess(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(hi)
    }

    /// Integrates eqs. 8–9 with classical RK4 from `(a0, v0)` for
    /// `t_end` seconds with step `dt`, sampling every `sample_every` steps.
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `t_end` are not positive, or `sample_every` is 0.
    pub fn integrate(
        &self,
        a0: f64,
        v0: f64,
        t_end: f64,
        dt: f64,
        sample_every: usize,
    ) -> Vec<MeanFieldState> {
        assert!(dt > 0.0 && t_end > 0.0, "dt and t_end must be positive");
        assert!(sample_every > 0, "sample_every must be positive");
        let steps = (t_end / dt).ceil() as usize;
        let mut out = Vec::with_capacity(steps / sample_every + 2);
        let mut a = a0;
        let mut v = v0;
        out.push(MeanFieldState {
            time: 0.0,
            tokens: a,
            rate: v,
        });
        let deriv = |a: f64, v: f64| -> (f64, f64) {
            let da = 1.0 / self.delta_secs - v;
            let dv = v * (self.strategy.reactive_smooth(a, self.usefulness) - 1.0)
                + self.strategy.proactive_smooth(a) / self.delta_secs;
            (da, dv)
        };
        for step in 1..=steps {
            let (k1a, k1v) = deriv(a, v);
            let (k2a, k2v) = deriv(a + 0.5 * dt * k1a, v + 0.5 * dt * k1v);
            let (k3a, k3v) = deriv(a + 0.5 * dt * k2a, v + 0.5 * dt * k2v);
            let (k4a, k4v) = deriv(a + dt * k3a, v + dt * k3v);
            a += dt / 6.0 * (k1a + 2.0 * k2a + 2.0 * k3a + k4a);
            v += dt / 6.0 * (k1v + 2.0 * k2v + 2.0 * k3v + k4v);
            // The physical domain is a >= 0, v >= 0.
            a = a.max(0.0);
            v = v.max(0.0);
            if step % sample_every == 0 || step == steps {
                out.push(MeanFieldState {
                    time: step as f64 * dt,
                    tokens: a,
                    rate: v,
                });
            }
        }
        out
    }
}

/// Closed-form equilibrium of the randomized strategy for `u = 1`
/// (Section 4.3): `a = A·C/(C + 1)`.
pub fn randomized_equilibrium(a: u64, c: u64) -> f64 {
    let a = a as f64;
    let c = c as f64;
    a * c / (c + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategies::{
        PurelyProactive, PurelyReactive, RandomizedTokenAccount, SimpleTokenAccount,
    };

    #[test]
    fn randomized_equilibrium_matches_closed_form() {
        for (a, c) in [
            (1u64, 1u64),
            (1, 10),
            (5, 10),
            (10, 20),
            (20, 40),
            (40, 120),
        ] {
            let s = RandomizedTokenAccount::new(a, c).unwrap();
            let model = MeanFieldModel::new(&s, 172.8, Usefulness::Useful);
            let solved = model.equilibrium_balance().expect("equilibrium exists");
            let predicted = randomized_equilibrium(a, c);
            assert!(
                (solved - predicted).abs() < 1e-6,
                "A={a} C={c}: solved {solved}, closed form {predicted}"
            );
        }
    }

    #[test]
    fn closed_form_is_slightly_below_a() {
        // a = A·C/(C+1) ⇒ a ≈ A for large C.
        assert!((randomized_equilibrium(10, 1000) - 10.0).abs() < 0.01);
        assert!(randomized_equilibrium(10, 20) < 10.0);
    }

    #[test]
    fn purely_proactive_equilibrium_is_zero() {
        // proactive ≡ 1 ⇒ g(0) = 0: equilibrium at an empty account.
        let s = PurelyProactive;
        let model = MeanFieldModel::new(&s, 172.8, Usefulness::Useful);
        assert_eq!(model.equilibrium_balance(), Some(0.0));
    }

    #[test]
    fn purely_reactive_with_large_k_has_no_equilibrium() {
        let s = PurelyReactive::unconditional(2).unwrap();
        let model = MeanFieldModel::new(&s, 172.8, Usefulness::Useful);
        assert_eq!(model.equilibrium_balance(), None);
    }

    #[test]
    fn purely_reactive_with_k1_balances_exactly() {
        // reactive ≡ 1, proactive ≡ 0 ⇒ g ≡ 0; smallest root is 0.
        let s = PurelyReactive::unconditional(1).unwrap();
        let model = MeanFieldModel::new(&s, 172.8, Usefulness::Useful);
        assert_eq!(model.equilibrium_balance(), Some(0.0));
    }

    #[test]
    fn simple_equilibrium_is_at_the_reactive_step() {
        // Simple: reactive jumps to 1 at a > 0 ⇒ smallest equilibrium ~0.
        let s = SimpleTokenAccount::new(20);
        let model = MeanFieldModel::new(&s, 172.8, Usefulness::Useful);
        let eq = model.equilibrium_balance().unwrap();
        assert!((0.0..1e-3).contains(&eq), "eq = {eq}");
    }

    #[test]
    fn integration_converges_to_equilibrium() {
        // Randomized A=10, C=20 from an empty account, as in Figure 5.
        let s = RandomizedTokenAccount::new(10, 20).unwrap();
        let model = MeanFieldModel::new(&s, 172.8, Usefulness::Useful);
        let traj = model.integrate(0.0, 0.0, 172_800.0, 1.0, 1000);
        let last = traj.last().unwrap();
        let predicted = randomized_equilibrium(10, 20);
        assert!(
            (last.tokens - predicted).abs() < 0.5,
            "final tokens {} vs predicted {predicted}",
            last.tokens
        );
        // Message rate settles at the token grant rate 1/Δ.
        assert!((last.rate - 1.0 / 172.8).abs() < 1e-4, "rate {}", last.rate);
    }

    #[test]
    fn trajectory_is_sampled_as_requested() {
        let s = RandomizedTokenAccount::new(5, 10).unwrap();
        let model = MeanFieldModel::new(&s, 100.0, Usefulness::Useful);
        let traj = model.integrate(0.0, 0.0, 100.0, 1.0, 10);
        // t=0 + 10 samples (every 10 steps of 100 total).
        assert_eq!(traj.len(), 11);
        assert_eq!(traj[0].time, 0.0);
        assert!((traj[1].time - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tokens_rise_before_settling() {
        // From a = 0 the account must fill up before spending kicks in.
        let s = RandomizedTokenAccount::new(10, 20).unwrap();
        let model = MeanFieldModel::new(&s, 172.8, Usefulness::Useful);
        let traj = model.integrate(0.0, 0.0, 20_000.0, 1.0, 100);
        let early = traj[1].tokens;
        let later = traj.last().unwrap().tokens;
        assert!(later > early, "tokens should accumulate from empty");
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_bad_delta() {
        let s = PurelyProactive;
        let _ = MeanFieldModel::new(&s, 0.0, Usefulness::Useful);
    }
}
