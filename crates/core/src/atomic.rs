//! The token account as a lock-free atomic cell.
//!
//! [`AtomicTokenAccount`] is the concurrent counterpart of
//! [`TokenAccount`](crate::account::TokenAccount): the same signed balance
//! and the same non-negativity contract, but every operation is a single
//! atomic instruction or a short CAS loop, so millions of clients can hit
//! one account map from many threads without locks. Grants are
//! `fetch_add` (wait-free); conditional spends are a compare-exchange
//! loop that never drives the balance negative, no matter how the loop
//! interleaves with concurrent grants and spends.
//!
//! All operations use [`Ordering::Relaxed`]: the balance is a counter,
//! not a synchronization point — callers that need happens-before edges
//! (e.g. the live runtime's shutdown barrier) establish them with their
//! own acquire/release operations. Relaxed still guarantees a single
//! modification order per account, which is exactly what the
//! conservation invariant needs.

use std::fmt;
use std::sync::atomic::{AtomicI64, Ordering};

/// A node's token balance, shareable across threads.
///
/// ```
/// use token_account::atomic::AtomicTokenAccount;
///
/// let acct = AtomicTokenAccount::new(0);
/// acct.grant();
/// acct.grant();
/// assert_eq!(acct.balance(), 2);
/// assert!(acct.try_spend(2));
/// assert!(!acct.try_spend(1)); // empty: spending is refused
/// assert_eq!(acct.balance(), 0);
/// ```
#[derive(Debug, Default)]
pub struct AtomicTokenAccount {
    balance: AtomicI64,
}

impl AtomicTokenAccount {
    /// Creates an account with the given starting balance.
    #[inline]
    pub const fn new(initial: i64) -> Self {
        AtomicTokenAccount {
            balance: AtomicI64::new(initial),
        }
    }

    /// Current balance. Negative only if [`force_spend`](Self::force_spend)
    /// was used (debt-allowing strategies).
    #[inline]
    pub fn balance(&self) -> i64 {
        self.balance.load(Ordering::Relaxed)
    }

    /// Grants one token (wait-free).
    #[inline]
    pub fn grant(&self) {
        self.balance.fetch_add(1, Ordering::Relaxed);
    }

    /// Grants `amount` tokens at once (granter-thread batches).
    #[inline]
    pub fn grant_many(&self, amount: u64) {
        self.balance.fetch_add(amount as i64, Ordering::Relaxed);
    }

    /// Spends `amount` tokens iff the balance covers them; returns whether
    /// the spend happened. A CAS loop: under contention it retries with
    /// the freshly observed balance, so the balance can never go negative
    /// through this path — the exact refusal rule of the sequential
    /// [`TokenAccount::try_spend`](crate::account::TokenAccount::try_spend).
    #[inline]
    pub fn try_spend(&self, amount: u64) -> bool {
        let amount = amount as i64;
        let mut current = self.balance.load(Ordering::Relaxed);
        loop {
            if current < amount {
                return false;
            }
            match self.balance.compare_exchange_weak(
                current,
                current - amount,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Spends up to `amount` tokens, never going below zero; returns how
    /// many were actually spent (the concurrent `spend_up_to`).
    #[inline]
    pub fn spend_up_to(&self, amount: u64) -> u64 {
        let mut current = self.balance.load(Ordering::Relaxed);
        loop {
            let spend = (amount as i64).min(current.max(0));
            if spend == 0 {
                return 0;
            }
            match self.balance.compare_exchange_weak(
                current,
                current - spend,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return spend as u64,
                Err(observed) => current = observed,
            }
        }
    }

    /// Spends `amount` tokens unconditionally, allowing debt (wait-free;
    /// only for strategies with
    /// [`allows_debt`](crate::strategy::Strategy::allows_debt)).
    #[inline]
    pub fn force_spend(&self, amount: u64) {
        self.balance.fetch_sub(amount as i64, Ordering::Relaxed);
    }

    /// True if no token can be spent.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.balance() <= 0
    }
}

impl fmt::Display for AtomicTokenAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} tokens", self.balance())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_and_spend_mirror_the_sequential_account() {
        let a = AtomicTokenAccount::new(3);
        assert!(a.try_spend(3));
        assert!(!a.try_spend(1));
        assert_eq!(a.balance(), 0);
        assert!(a.is_empty());
        a.grant();
        a.grant_many(4);
        assert_eq!(a.balance(), 5);
        assert_eq!(a.spend_up_to(9), 5);
        assert_eq!(a.spend_up_to(9), 0);
    }

    #[test]
    fn try_spend_zero_always_succeeds() {
        let a = AtomicTokenAccount::new(0);
        assert!(a.try_spend(0));
        assert_eq!(a.balance(), 0);
    }

    #[test]
    fn force_spend_allows_debt() {
        let a = AtomicTokenAccount::new(1);
        a.force_spend(3);
        assert_eq!(a.balance(), -2);
        assert_eq!(a.spend_up_to(2), 0, "no conditional spend out of debt");
        a.grant();
        assert_eq!(a.balance(), -1);
    }

    #[test]
    fn contended_spends_never_overdraw() {
        let a = AtomicTokenAccount::new(0);
        let a = &a;
        let spent_total: u64 = std::thread::scope(|scope| {
            let grants = 4_000u64;
            let granter = scope.spawn(move || {
                for _ in 0..grants {
                    a.grant();
                }
            });
            let spenders: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        let mut spent = 0u64;
                        for _ in 0..2_000 {
                            if a.try_spend(1) {
                                spent += 1;
                            }
                            spent += a.spend_up_to(2);
                        }
                        spent
                    })
                })
                .collect();
            granter.join().unwrap();
            spenders.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let balance = a.balance();
        assert!(balance >= 0, "conditional spends drove balance negative");
        assert_eq!(4_000 - spent_total as i64, balance, "tokens not conserved");
    }
}
