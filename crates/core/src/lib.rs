//! # token-account — the token account algorithms of Danner & Jelasity
//!
//! This crate implements the primary contribution of *"Token Account
//! Algorithms: The Best of the Proactive and Reactive Worlds"* (ICDCS
//! 2018): an application-layer traffic-shaping service that spans the
//! design space between purely proactive (fixed-rate, round-based) and
//! purely reactive (flooding) communication.
//!
//! Each node holds a [`account::TokenAccount`]; one token is granted per
//! round Δ. A [`strategy::Strategy`] supplies the two functions that define
//! an algorithm in the family:
//!
//! * `PROACTIVE(a)` — probability of a periodic send at balance `a`;
//! * `REACTIVE(a, u)` — messages to send in reaction to a message of
//!   usefulness `u`.
//!
//! [`node::TokenNode`] executes Algorithm 4 of the paper over any strategy;
//! [`strategies`] provides the paper's implementations (simple,
//! generalized, randomized, plus both pure extremes); [`meanfield`] carries
//! the Section 4.3 analysis; [`validate`] checks the Section 3.1 contract.
//!
//! The crate is substrate-independent: it knows nothing about simulators,
//! overlays, or clocks, so the same logic can drive a real deployment.
//!
//! # Example: one node, one round, one message
//!
//! ```
//! use rand::SeedableRng;
//! use rand::rngs::StdRng;
//! use token_account::prelude::*;
//!
//! let strategy = RandomizedTokenAccount::new(10, 20)?;
//! let mut node = TokenNode::new(0);
//! let mut rng = StdRng::seed_from_u64(7);
//!
//! // Round tick: with an empty account the node always banks the token
//! // (proactive probability is 0 below A − 1 = 9 tokens).
//! assert_eq!(node.on_round(&strategy, &mut rng), RoundAction::SaveToken);
//!
//! // Useful message: spends Bernoulli-rounded balance/A tokens.
//! let sends = node.on_message(&strategy, Usefulness::Useful, &mut rng);
//! assert!(sends <= 1);
//!
//! // The burst bound of Section 3.4 holds by construction.
//! assert_eq!(strategy.capacity().burst_bound(1000), Some(1020));
//! # Ok::<(), token_account::error::InvalidStrategyError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod account;
pub mod atomic;
pub mod error;
pub mod live;
pub mod meanfield;
pub mod node;
pub mod rounding;
pub mod spec;
pub mod strategies;
pub mod strategy;
pub mod usefulness;
pub mod validate;

pub use account::TokenAccount;
pub use atomic::AtomicTokenAccount;
pub use error::InvalidStrategyError;
pub use live::{Decision, LiveStrategy};
pub use node::{RoundAction, TokenNode};
pub use spec::{StrategySpec, StrategyVisitor};
pub use strategy::{Capacity, Strategy};
pub use usefulness::Usefulness;

/// Convenient glob import for framework users.
pub mod prelude {
    pub use crate::account::TokenAccount;
    pub use crate::atomic::AtomicTokenAccount;
    pub use crate::live::{Decision, LiveStrategy};
    pub use crate::meanfield::{randomized_equilibrium, MeanFieldModel};
    pub use crate::node::{RoundAction, TokenNode};
    pub use crate::rounding::rand_round;
    pub use crate::spec::{StrategySpec, StrategyVisitor};
    pub use crate::strategies::{
        GeneralizedTokenAccount, PurelyProactive, PurelyReactive, RandomizedTokenAccount,
        SimpleTokenAccount,
    };
    pub use crate::strategy::{Capacity, Strategy};
    pub use crate::usefulness::Usefulness;
}
