//! The simple token account strategy (Section 3.3.1).

use crate::strategy::{Capacity, Strategy};
use crate::usefulness::Usefulness;

/// The simple token account strategy of Section 3.3.1:
///
/// ```text
/// PROACTIVE(a) = 1 if a >= C, else 0        (eq. 1)
/// REACTIVE(a, u) = 1 if a > 0, else 0       (eq. 2)
/// ```
///
/// The reactive side is the classical token bucket; the proactive side
/// fires only on a full account, which "helps maintain a certain level of
/// communication rate naturally even under high message drop rates". With
/// `C = 0` this degenerates to the purely proactive baseline — exactly how
/// the paper instantiates its baseline (Section 4.1).
///
/// ```
/// use token_account::strategies::SimpleTokenAccount;
/// use token_account::strategy::Strategy;
/// use token_account::usefulness::Usefulness;
///
/// let s = SimpleTokenAccount::new(10);
/// assert_eq!(s.proactive(9), 0.0);
/// assert_eq!(s.proactive(10), 1.0);
/// assert_eq!(s.reactive(1, Usefulness::NotUseful), 1.0); // u is ignored
/// assert_eq!(s.reactive(0, Usefulness::Useful), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimpleTokenAccount {
    capacity: u64,
}

impl SimpleTokenAccount {
    /// Creates the strategy with token capacity `C >= 0`.
    pub fn new(capacity: u64) -> Self {
        SimpleTokenAccount { capacity }
    }

    /// The capacity parameter `C`.
    pub fn capacity_param(&self) -> u64 {
        self.capacity
    }
}

impl Strategy for SimpleTokenAccount {
    fn proactive(&self, balance: i64) -> f64 {
        if balance >= self.capacity as i64 {
            1.0
        } else {
            0.0
        }
    }

    fn reactive(&self, balance: i64, _usefulness: Usefulness) -> f64 {
        if balance > 0 {
            1.0
        } else {
            0.0
        }
    }

    fn capacity(&self) -> Capacity {
        Capacity::Finite(self.capacity)
    }

    fn name(&self) -> &'static str {
        "simple"
    }

    fn label(&self) -> String {
        format!("simple(C={})", self.capacity)
    }

    fn proactive_smooth(&self, balance: f64) -> f64 {
        if balance >= self.capacity as f64 {
            1.0
        } else {
            0.0
        }
    }

    fn reactive_smooth(&self, balance: f64, _usefulness: Usefulness) -> f64 {
        if balance > 0.0 {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proactive_steps_at_capacity() {
        let s = SimpleTokenAccount::new(5);
        assert_eq!(s.proactive(4), 0.0);
        assert_eq!(s.proactive(5), 1.0);
        assert_eq!(s.proactive(6), 1.0);
        assert_eq!(s.proactive(-1), 0.0);
    }

    #[test]
    fn reactive_is_token_bucket() {
        let s = SimpleTokenAccount::new(5);
        for u in [Usefulness::Useful, Usefulness::NotUseful] {
            assert_eq!(s.reactive(0, u), 0.0);
            assert_eq!(s.reactive(1, u), 1.0);
            assert_eq!(s.reactive(5, u), 1.0);
            assert_eq!(s.reactive(-2, u), 0.0);
        }
    }

    #[test]
    fn zero_capacity_is_purely_proactive() {
        let s = SimpleTokenAccount::new(0);
        assert_eq!(s.proactive(0), 1.0);
        // Reactive can never fire: balance stays at zero when every round
        // sends proactively.
        assert_eq!(s.reactive(0, Usefulness::Useful), 0.0);
    }

    #[test]
    fn reactive_never_overspends() {
        let s = SimpleTokenAccount::new(100);
        for a in 0..100i64 {
            assert!(s.reactive(a, Usefulness::Useful) <= a.max(0) as f64);
        }
    }

    #[test]
    fn metadata() {
        let s = SimpleTokenAccount::new(20);
        assert_eq!(s.capacity(), Capacity::Finite(20));
        assert_eq!(s.name(), "simple");
        assert_eq!(s.label(), "simple(C=20)");
        assert_eq!(s.capacity_param(), 20);
        assert!(!s.allows_debt());
    }
}
