//! The purely reactive reference strategy (flooding).

use crate::error::InvalidStrategyError;
use crate::strategy::{Capacity, Strategy};
use crate::usefulness::Usefulness;

/// The purely reactive strategy: `PROACTIVE(a) ≡ 0`,
/// `REACTIVE(a, u) ≡ k` or `≡ u·k` (Section 3.1).
///
/// Requires "relaxing the non-negativity constraint of the balance"
/// ([`allows_debt`](Strategy::allows_debt) is true) and has
/// [`Capacity::Unbounded`] — it provides **no rate limiting** and is
/// excluded from the paper's experiments as "obviously not a viable
/// strategy" (Section 4.1). It exists here as the speed-of-light reference
/// (flooding / hot-potato random walks).
///
/// ```
/// use token_account::strategies::PurelyReactive;
/// use token_account::strategy::Strategy;
/// use token_account::usefulness::Usefulness;
///
/// let s = PurelyReactive::if_useful(2)?;
/// assert_eq!(s.reactive(0, Usefulness::Useful), 2.0);
/// assert_eq!(s.reactive(0, Usefulness::NotUseful), 0.0);
/// assert_eq!(s.proactive(100), 0.0);
/// # Ok::<(), token_account::error::InvalidStrategyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PurelyReactive {
    burst: u64,
    respond_to_useless: bool,
}

impl PurelyReactive {
    /// The `REACTIVE(a, u) ≡ u·k` variant: only useful messages trigger
    /// responses (graded usefulness scales the burst).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidStrategyError::ZeroBurst`] when `k == 0`.
    pub fn if_useful(k: u64) -> Result<Self, InvalidStrategyError> {
        if k == 0 {
            return Err(InvalidStrategyError::ZeroBurst);
        }
        Ok(PurelyReactive {
            burst: k,
            respond_to_useless: false,
        })
    }

    /// The `REACTIVE(a, u) ≡ k` variant: every message triggers `k`
    /// responses regardless of usefulness.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidStrategyError::ZeroBurst`] when `k == 0`.
    pub fn unconditional(k: u64) -> Result<Self, InvalidStrategyError> {
        if k == 0 {
            return Err(InvalidStrategyError::ZeroBurst);
        }
        Ok(PurelyReactive {
            burst: k,
            respond_to_useless: true,
        })
    }

    /// The burst size `k`.
    pub fn burst(&self) -> u64 {
        self.burst
    }
}

impl Strategy for PurelyReactive {
    fn proactive(&self, _balance: i64) -> f64 {
        0.0
    }

    fn reactive(&self, _balance: i64, usefulness: Usefulness) -> f64 {
        if self.respond_to_useless {
            self.burst as f64
        } else {
            self.burst as f64 * usefulness.value()
        }
    }

    fn capacity(&self) -> Capacity {
        Capacity::Unbounded
    }

    fn name(&self) -> &'static str {
        "reactive"
    }

    fn label(&self) -> String {
        if self.respond_to_useless {
            format!("reactive(k={})", self.burst)
        } else {
            format!("reactive(k={},useful-only)", self.burst)
        }
    }

    fn allows_debt(&self) -> bool {
        true
    }

    fn proactive_smooth(&self, _balance: f64) -> f64 {
        0.0
    }

    fn reactive_smooth(&self, _balance: f64, usefulness: Usefulness) -> f64 {
        self.reactive(0, usefulness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn if_useful_scales_with_usefulness() {
        let s = PurelyReactive::if_useful(3).unwrap();
        assert_eq!(s.reactive(0, Usefulness::Useful), 3.0);
        assert_eq!(s.reactive(0, Usefulness::NotUseful), 0.0);
        assert_eq!(s.reactive(0, Usefulness::graded(0.5)), 1.5);
        // Balance-independent.
        assert_eq!(s.reactive(-10, Usefulness::Useful), 3.0);
    }

    #[test]
    fn unconditional_ignores_usefulness() {
        let s = PurelyReactive::unconditional(2).unwrap();
        assert_eq!(s.reactive(0, Usefulness::NotUseful), 2.0);
        assert_eq!(s.reactive(5, Usefulness::Useful), 2.0);
    }

    #[test]
    fn rejects_zero_burst() {
        assert_eq!(
            PurelyReactive::if_useful(0).unwrap_err(),
            InvalidStrategyError::ZeroBurst
        );
        assert_eq!(
            PurelyReactive::unconditional(0).unwrap_err(),
            InvalidStrategyError::ZeroBurst
        );
    }

    #[test]
    fn metadata() {
        let s = PurelyReactive::if_useful(1).unwrap();
        assert_eq!(s.capacity(), Capacity::Unbounded);
        assert!(s.allows_debt());
        assert_eq!(s.name(), "reactive");
        assert!(s.label().contains("k=1"));
        assert_eq!(s.burst(), 1);
    }

    #[test]
    fn never_proactive() {
        let s = PurelyReactive::unconditional(1).unwrap();
        for a in [-3i64, 0, 1000] {
            assert_eq!(s.proactive(a), 0.0);
        }
    }
}
